package dpfs_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/bench"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
)

// startBenchCluster launches a 4-server unshaped cluster and returns a
// cleanup func plus an engine (shared by tests and benchmarks).
func startBenchCluster(tb testing.TB, cfg bench.Config) (func(), *core.FS) {
	tb.Helper()
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: cfg.Dir})
	if err != nil {
		tb.Fatal(err)
	}
	fs, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		c.Close()
		tb.Fatal(err)
	}
	return func() {
		fs.Close()
		c.Close()
	}, fs
}

// TestPublicAPI drives the exported package surface end to end against
// a real cluster: Connect over TCP, directory ops, create/write/read
// with hints, import/export, remove.
func TestPublicAPI(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(3), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Connect through the network metadata server like an external
	// process would.
	client, err := dpfs.Connect(c.MetaSrv.Addr(), 0, dpfs.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	servers, err := client.Servers()
	if err != nil || len(servers) != 3 {
		t.Fatalf("Servers = %v, %v", servers, err)
	}

	if err := client.Mkdir("/proj"); err != nil {
		t.Fatal(err)
	}
	ok, err := client.IsDir("/proj")
	if err != nil || !ok {
		t.Fatalf("IsDir = %v %v", ok, err)
	}

	// A multidim array with the paper's hint flow.
	f, err := client.Create("/proj/temps", 8, []int64{128, 128}, dpfs.Hint{
		Level: dpfs.Multidim,
		Tile:  []int64{32, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	full := dpfs.FullSection([]int64{128, 128})
	data := make([]byte, full.Bytes(8))
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := f.WriteSection(ctx, full, data); err != nil {
		t.Fatal(err)
	}
	col := dpfs.NewSection([]int64{0, 96}, []int64{128, 32})
	buf := make([]byte, col.Bytes(8))
	if err := f.ReadSection(ctx, col, buf); err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 128; r++ {
		off := (r*128 + 96) * 8
		if !bytes.Equal(buf[r*32*8:(r+1)*32*8], data[off:off+32*8]) {
			t.Fatalf("column row %d mismatch", r)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fi, err := client.Stat("/proj/temps")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Geometry.Level != dpfs.Multidim || fi.Size != 128*128*8 {
		t.Fatalf("stat = %+v", fi)
	}
	dirs, files, err := client.ReadDir("/proj")
	if err != nil || len(dirs) != 0 || len(files) != 1 || files[0] != "temps" {
		t.Fatalf("ReadDir = %v %v %v", dirs, files, err)
	}

	// Import/export.
	payload := bytes.Repeat([]byte("seq"), 50000)
	if err := client.Import(ctx, bytes.NewReader(payload), "/proj/blob", int64(len(payload)), dpfs.Hint{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := client.Export(ctx, &out, "/proj/blob"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("import/export mismatch")
	}

	// Array-level checkpoint shape.
	ck, err := client.Create("/proj/ckpt", 8, []int64{64, 64}, dpfs.Hint{
		Level:   dpfs.Array,
		Pattern: []dpfs.Dist{dpfs.Block, dpfs.Star},
		Grid:    []int64{4, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	chunk := dpfs.NewSection([]int64{16, 0}, []int64{16, 64})
	cdata := make([]byte, chunk.Bytes(8))
	if err := ck.WriteSection(ctx, chunk, cdata); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Stats counters move.
	dpfs.ResetStats()
	f2, err := client.Open("/proj/temps")
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.ReadSection(ctx, col, buf); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if st := dpfs.ReadStats(); st.Requests == 0 || st.BytesUseful == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Remove everything.
	for _, p := range []string{"/proj/temps", "/proj/blob", "/proj/ckpt"} {
		if err := client.Remove(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Rmdir("/proj"); err != nil {
		t.Fatal(err)
	}
}

// TestConnectFailure: dialing a dead metadata server fails cleanly.
func TestConnectFailure(t *testing.T) {
	if _, err := dpfs.Connect("127.0.0.1:1", 0, dpfs.Options{}); err == nil {
		t.Fatal("connect to dead address should fail")
	}
}

// TestWrap exposes an in-process engine through the public client.
func TestWrap(t *testing.T) {
	cfg := bench.Config{Dir: t.TempDir()}
	cleanup, fs := startBenchCluster(t, cfg)
	defer cleanup()
	client := dpfs.Wrap(fs)
	if client.Engine() != fs {
		t.Fatal("Engine() identity")
	}
	if err := client.Mkdir("/x"); err != nil {
		t.Fatal(err)
	}
}
