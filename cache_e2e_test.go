package dpfs_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cache"
	"dpfs/internal/cluster"
)

// cacheOpts is the cached-client configuration the e2e tests use: data
// cache, metadata cache and readahead all on.
func cacheOpts() dpfs.Options {
	return dpfs.Options{
		Combine: true, Stagger: true, ParallelDispatch: true,
		CacheBytes: 64 << 20, MetaTTL: time.Minute, Readahead: 2,
	}
}

// TestCachedEqualsUncachedQuickcheck drives a seeded random op
// sequence — interleaved section writes and reads — against two files
// of identical geometry, one through a cached client and one through
// an uncached client, at each of the three file levels. Every read
// must return byte-identical data in both worlds: the cache may only
// change performance, never contents.
func TestCachedEqualsUncachedQuickcheck(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cachedCli, err := dpfs.Connect(c.MetaSrv.Addr(), 0, cacheOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cachedCli.Close()
	plainCli, err := dpfs.Connect(c.MetaSrv.Addr(), 1, dpfs.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plainCli.Close()

	const n = 128 // array edge, elemSize 1
	levels := []struct {
		name string
		hint dpfs.Hint
	}{
		{"linear", dpfs.Hint{Level: dpfs.Linear, BrickBytes: 1024}},
		{"multidim", dpfs.Hint{Level: dpfs.Multidim, Tile: []int64{32, 32}}},
		{"array", dpfs.Hint{Level: dpfs.Array,
			Pattern: []dpfs.Dist{dpfs.Star, dpfs.Block}, Grid: []int64{1, 4}}},
	}
	for _, lv := range levels {
		t.Run(lv.name, func(t *testing.T) {
			dims := []int64{n, n}
			fc, err := cachedCli.Create("/qc-"+lv.name+"-c", 1, dims, lv.hint)
			if err != nil {
				t.Fatal(err)
			}
			defer fc.Close()
			fu, err := plainCli.Create("/qc-"+lv.name+"-u", 1, dims, lv.hint)
			if err != nil {
				t.Fatal(err)
			}
			defer fu.Close()

			rng := rand.New(rand.NewSource(42))
			for op := 0; op < 60; op++ {
				// A random in-bounds section; small enough that reads
				// frequently revisit previously cached bricks.
				r0, c0 := rng.Int63n(n), rng.Int63n(n)
				rc, cc := 1+rng.Int63n(n-r0), 1+rng.Int63n(n-c0)
				sec := dpfs.NewSection([]int64{r0, c0}, []int64{rc, cc})
				if rng.Intn(3) == 0 { // write
					data := make([]byte, rc*cc)
					for i := range data {
						data[i] = byte(rng.Int())
					}
					if err := fc.WriteSection(ctx, sec, data); err != nil {
						t.Fatalf("op %d cached write: %v", op, err)
					}
					if err := fu.WriteSection(ctx, sec, data); err != nil {
						t.Fatalf("op %d uncached write: %v", op, err)
					}
					continue
				}
				gc := make([]byte, rc*cc)
				gu := make([]byte, rc*cc)
				if err := fc.ReadSection(ctx, sec, gc); err != nil {
					t.Fatalf("op %d cached read: %v", op, err)
				}
				if err := fu.ReadSection(ctx, sec, gu); err != nil {
					t.Fatalf("op %d uncached read: %v", op, err)
				}
				if !bytes.Equal(gc, gu) {
					t.Fatalf("op %d (%s sec %v): cached read diverges from uncached", op, lv.name, sec)
				}
			}

			// The cached client must actually have exercised the cache.
			snap := cachedCli.Engine().Metrics().Snapshot()
			if snap.Counters[cache.MetricDataHits] == 0 {
				t.Fatal("cache_data_hits_total = 0: the quickcheck never hit the cache")
			}
		})
	}
}

// TestStaleGenerationE2E pins the metadata-dependent retry hazard this
// PR closes: client A holds an open handle while client B removes and
// recreates the path. A's cached distribution now addresses dead
// subfiles — the servers must reject its generation loudly instead of
// serving zeros, and a fresh open (after invalidation) must see B's
// bytes.
func TestStaleGenerationE2E(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	a, err := dpfs.Connect(c.MetaSrv.Addr(), 0, cacheOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := dpfs.Connect(c.MetaSrv.Addr(), 1, dpfs.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const size = 8 * 1024
	hint := dpfs.Hint{Level: dpfs.Linear, BrickBytes: 1024}
	old := bytes.Repeat([]byte{0xAA}, size)
	fa, err := a.Create("/stale.dat", 1, []int64{size}, hint)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.WriteAt(ctx, old, 0); err != nil {
		t.Fatal(err)
	}

	// B swaps the file out from under A's handle.
	if err := b.Remove(ctx, "/stale.dat"); err != nil {
		t.Fatal(err)
	}
	fb, err := b.Create("/stale.dat", 1, []int64{size}, hint)
	if err != nil {
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0x55}, size)
	if err := fb.WriteAt(ctx, fresh, 0); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	// A's data cache may still answer some bricks locally, but any
	// brick that travels must be rejected: the handle's generation is
	// dead on every server. Invalidate A's caches first so the read is
	// forced onto the wire.
	a.Engine().InvalidateMeta("/stale.dat")
	got := make([]byte, size)
	err = fa.ReadAt(ctx, got, 0)
	if err == nil || !strings.Contains(err.Error(), "stale generation") {
		t.Fatalf("stale handle read error = %v, want stale generation", err)
	}
	fa.Close()

	// Reopening resolves the current generation and sees B's bytes.
	fa2, err := a.Open("/stale.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer fa2.Close()
	if err := fa2.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("reopened handle does not see the recreated file's bytes")
	}
}

// TestReadaheadE2E reads a linear file brick by brick in order and
// checks both correctness and that the sequential detector actually
// prefetched: later reads hit bricks the readahead already pulled in.
func TestReadaheadE2E(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cli, err := dpfs.Connect(c.MetaSrv.Addr(), 0, cacheOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const brick = 4096
	const bricks = 16
	const size = brick * bricks
	f, err := cli.Create("/ra.dat", 1, []int64{size}, dpfs.Hint{Level: dpfs.Linear, BrickBytes: brick})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}

	for b := 0; b < bricks; b++ {
		got := make([]byte, brick)
		if err := f.ReadAt(ctx, got, int64(b*brick)); err != nil {
			t.Fatalf("brick %d: %v", b, err)
		}
		if !bytes.Equal(got, data[b*brick:(b+1)*brick]) {
			t.Fatalf("brick %d: sequential read diverges", b)
		}
		// The prefetch is asynchronous; a real scan has think time
		// between bricks, and without it this loop outruns the
		// readahead and every read misses.
		time.Sleep(2 * time.Millisecond)
	}

	snap := cli.Engine().Metrics().Snapshot()
	if snap.Counters[cache.MetricPrefetch] == 0 {
		t.Fatal("cache_prefetch_total = 0: sequential scan never triggered readahead")
	}
	if snap.Counters[cache.MetricDataHits] == 0 {
		t.Fatal("cache_data_hits_total = 0: prefetched bricks never served a read")
	}
}
