package dpfs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/metadb"
	"dpfs/internal/metarepl"
	"dpfs/internal/obs"
)

// TestMetaReplFailoverSimulation is the deterministic primary-kill
// harness for replicated metadata shards (DESIGN.md §13): two catalog
// shards, each a 3-way replica group, serve a seeded concurrent
// create/write/read workload while each shard's current primary is
// killed mid-run. Clients ride through the failovers (their group
// connections chase the primary by redirect), and at the end the test
// asserts the properties replication must keep:
//
//   - zero lost acknowledged mutations — every file whose create was
//     acknowledged reads back byte-identical through a fresh client;
//   - replica convergence — all three replicas of each shard hold
//     byte-identical table contents once shipping settles;
//   - observable failover — metarepl_promotions_total > 0 on the
//     promoted replicas and meta_promotion events served by
//     /debug/events.
func TestMetaReplFailoverSimulation(t *testing.T) {
	const (
		shards    = 2
		replicas  = 3
		np        = 4
		perPhase  = 3 // files per client per phase
		fileBytes = 4096
	)
	events := obs.NewEventLog(512)
	c, err := cluster.Start(cluster.Config{
		Servers:             cluster.Uniform(3),
		Dir:                 t.TempDir(),
		MetaShards:          shards,
		MetaReplicas:        replicas,
		MetaHeartbeat:       10 * time.Millisecond,
		MetaElectionTimeout: 80 * time.Millisecond,
		MetaEvents:          events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	clients := make([]*core.FS, np)
	for r := 0; r < np; r++ {
		fs, err := c.NewFS(r, core.Options{Combine: true})
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		clients[r] = fs
	}

	path := func(rank, phase, i int) string {
		return fmt.Sprintf("/repl/r%d-ph%d-f%d.dat", rank, phase, i)
	}
	pattern := func(rank, phase, i int) []byte {
		data := make([]byte, fileBytes)
		for j := range data {
			data[j] = byte(j*29 + rank*11 + phase*17 + i*5 + 3)
		}
		return data
	}
	// retry runs op until it succeeds or the deadline passes. Failovers
	// surface as transport errors or aborted transactions that a later
	// attempt (against the newly elected primary) resolves.
	retry := func(what string, op func() error) error {
		var err error
		for attempt := 0; attempt < 2000; attempt++ {
			if err = op(); err == nil {
				return nil
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("%s: gave up after %v: %w", what, ctx.Err(), err)
			case <-time.After(2 * time.Millisecond):
			}
		}
		return fmt.Errorf("%s: still failing after 2000 attempts: %w", what, err)
	}

	cat, err := c.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Mkdir("/repl"); err != nil {
		t.Fatal(err)
	}

	hint := core.Hint{Level: dpfs.Linear, BrickBytes: 1024}
	workload := func(rank, phase int) error {
		for i := 0; i < perPhase; i++ {
			p := path(rank, phase, i)
			data := pattern(rank, phase, i)
			// Create with lost-ack tolerance: a retried create whose
			// earlier attempt committed before the primary died sees
			// "exists" — detect it by opening instead. Once this retry
			// returns nil the create counts as acknowledged and the file
			// must survive every later failover.
			err := retry("create "+p, func() error {
				f, err := clients[rank].Create(p, 1, []int64{fileBytes}, hint)
				if err != nil {
					if f2, err2 := clients[rank].Open(p); err2 == nil {
						f2.Close()
						return nil
					}
					return err
				}
				return f.Close()
			})
			if err != nil {
				return err
			}
			err = retry("write "+p, func() error {
				f, err := clients[rank].Open(p)
				if err != nil {
					return err
				}
				defer f.Close()
				return f.WriteSection(ctx, dpfs.FullSection([]int64{fileBytes}), data)
			})
			if err != nil {
				return err
			}
			err = retry("read "+p, func() error {
				f, err := clients[rank].Open(p)
				if err != nil {
					return err
				}
				defer f.Close()
				buf := make([]byte, fileBytes)
				if err := f.ReadSection(ctx, dpfs.FullSection([]int64{fileBytes}), buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, data) {
					return fmt.Errorf("read %s: bytes differ", p)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	waitPrimary := func(shard int) int {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if p := c.MetaPrimary(shard); p >= 0 {
				return p
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("shard %d never elected a primary", shard)
		return -1
	}

	// One phase per shard: launch the concurrent workload, kill that
	// shard's current primary mid-run, let the survivors elect and the
	// clients chase the new primary, then bring the killed replica back
	// as a follower before the next phase.
	for phase := 0; phase < shards; phase++ {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := workload(rank, phase); err != nil {
					errs <- err
				}
			}(r)
		}
		time.Sleep(20 * time.Millisecond) // let the workload hit the primary
		p := waitPrimary(phase)
		if err := c.KillMetaReplica(phase, p); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("phase %d: %v", phase, err)
		}
		// The survivors must have elected a different primary.
		if cur := waitPrimary(phase); cur == p {
			t.Fatalf("phase %d: killed primary %d still leads", phase, p)
		}
		if err := c.RestartMetaReplica(phase, p); err != nil {
			t.Fatal(err)
		}
	}

	// Full sweep through a fresh client: every acknowledged create of
	// every phase must read back byte-identical — zero lost mutations.
	fresh, err := c.NewFS(np, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for rank := 0; rank < np; rank++ {
		for phase := 0; phase < shards; phase++ {
			for i := 0; i < perPhase; i++ {
				p := path(rank, phase, i)
				f, err := fresh.Open(p)
				if err != nil {
					t.Fatalf("open %s: acknowledged create lost: %v", p, err)
				}
				buf := make([]byte, fileBytes)
				err = f.ReadSection(ctx, dpfs.FullSection([]int64{fileBytes}), buf)
				f.Close()
				if err != nil {
					t.Fatalf("read %s: %v", p, err)
				}
				if !bytes.Equal(buf, pattern(rank, phase, i)) {
					t.Fatalf("%s: contents differ from the written pattern", p)
				}
			}
		}
	}

	// Replica convergence: wait for shipping to settle, then require all
	// three replicas of each shard to agree byte-for-byte, table by
	// table. The restarted ex-primaries resynced by snapshot (their
	// in-memory state died with them), so this also proves resync.
	for s := 0; s < shards; s++ {
		p := waitPrimary(s)
		dbs := make([]*metadb.DB, replicas)
		for j := 0; j < replicas; j++ {
			dbs[j] = c.ReplDBs[s][j]
			if dbs[j] == nil {
				t.Fatalf("shard %d replica %d still down", s, j)
			}
		}
		wantSeq, _ := dbs[p].ReplState()
		for j := 0; j < replicas; j++ {
			deadline := time.Now().Add(10 * time.Second)
			for {
				seq, _ := dbs[j].ReplState()
				if seq >= wantSeq {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("shard %d replica %d stuck at seq %d, want %d", s, j, seq, wantSeq)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		for _, table := range dbs[p].TableNames() {
			want, err := dbs[p].Exec("SELECT * FROM " + table)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < replicas; j++ {
				if j == p {
					continue
				}
				got, err := dbs[j].Exec("SELECT * FROM " + table)
				if err != nil {
					t.Fatalf("shard %d replica %d table %s: %v", s, j, table, err)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Fatalf("shard %d replica %d table %s diverged from primary %d", s, j, table, p)
				}
			}
		}
	}

	// Observable failover: the promoted replicas counted themselves...
	promotions := int64(0)
	for s := 0; s < shards; s++ {
		for j := 0; j < replicas; j++ {
			if rep := c.Replicas[s][j]; rep != nil {
				promotions += rep.Metrics().Counter(metarepl.MetricPromotions).Value()
			}
		}
	}
	if promotions == 0 {
		t.Fatal("metarepl_promotions_total is 0 after two primary kills")
	}
	// ...and narrated the elections into the shared event log, queryable
	// through /debug/events like an operator would during an incident.
	if got := events.ByType(obs.EventMetaPromotion); len(got) == 0 {
		t.Fatalf("no %q events recorded; log:\n%v", obs.EventMetaPromotion, events.Events())
	}
	h := obs.NewHandler(obs.HandlerConfig{Events: events})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/events?type=" + obs.EventMetaPromotion)
	if err != nil {
		t.Fatal(err)
	}
	var got []obs.Event
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/events: bad JSON: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("/debug/events returned no meta_promotion events")
	}
	for _, e := range got {
		if e.Type != obs.EventMetaPromotion {
			t.Fatalf("/debug/events?type=%s returned %+v", obs.EventMetaPromotion, e)
		}
	}
}
