package dpfs_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/obs"
	"dpfs/internal/repair"
	"dpfs/internal/server"
)

// TestChaosEventLog kills one of four servers under a replicated
// workload and asserts the client's recovery machinery narrates
// itself into the cluster event log: retry exhaustion on the
// unreplicated file, breaker open on the dead server, failover on the
// replicated read, degraded commit on the replicated write — all
// queryable through /debug/events.
func TestChaosEventLog(t *testing.T) {
	const size = 8 * 4096
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	events := obs.NewEventLog(256)
	client, err := dpfs.Connect(c.MetaSrv.Addr(), 0, dpfs.Options{
		Combine: true, Stagger: true,
		Events: events,
		Retry: server.RetryPolicy{MaxRetries: 2, RequestTimeout: 2 * time.Second,
			BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
			BreakerThreshold: 4, BreakerCooldown: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Two files striped over all four servers: one unreplicated (reads
	// must exhaust retries once a server dies), one with R=2 (reads
	// fail over, writes degrade).
	single, err := client.Create("/events-r1", 1, []int64{size},
		dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	mirrored, err := client.Create("/events-r2", 1, []int64{size},
		dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mirrored.Close()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for _, f := range []*dpfs.File{single, mirrored} {
		if err := f.WriteAt(ctx, data, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Kill one server. Round-robin placement put bricks of both files
	// on it.
	if err := c.IOServers[len(c.IOServers)-1].Close(); err != nil {
		t.Fatal(err)
	}

	// Unreplicated read: no failover target, so the client must burn
	// its retries and report exhaustion (3 failed attempts, under the
	// breaker threshold of 4). A second read pushes the consecutive
	// failure count past the threshold and opens the breaker.
	for i := 0; i < 2; i++ {
		if err := single.ReadAt(ctx, make([]byte, size), 0); err == nil {
			t.Fatal("read of unreplicated file with a dead server unexpectedly succeeded")
		}
	}
	// Replicated read: every brick is still readable via the survivor.
	if err := mirrored.ReadAt(ctx, make([]byte, size), 0); err != nil {
		t.Fatalf("replicated read did not fail over: %v", err)
	}
	// Replicated write: commits one replica short.
	if err := mirrored.WriteAt(ctx, data, 0); err != nil {
		t.Fatalf("replicated write did not degrade: %v", err)
	}

	for _, typ := range []string{obs.EventRetryExhausted, obs.EventBreakerOpen,
		obs.EventFailover, obs.EventDegradedWrite} {
		if got := events.ByType(typ); len(got) == 0 {
			t.Errorf("no %q event recorded; log:\n%v", typ, events.Events())
		}
	}

	// The same log through the debug endpoint, filtered server-side.
	h := obs.NewHandler(obs.HandlerConfig{Events: events})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, typ := range []string{obs.EventFailover, obs.EventDegradedWrite} {
		resp, err := http.Get(srv.URL + "/debug/events?type=" + typ)
		if err != nil {
			t.Fatal(err)
		}
		var got []obs.Event
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/debug/events?type=%s: bad JSON: %v", typ, err)
		}
		if len(got) == 0 {
			t.Fatalf("/debug/events?type=%s returned no events", typ)
		}
		for _, e := range got {
			if e.Type != typ {
				t.Fatalf("/debug/events?type=%s returned %+v", typ, e)
			}
		}
	}
}

// TestGossipEventLog is TestChaosEventLog for the health plane: a
// gossip-enabled cluster narrates membership convergence into the
// event log, a killed server produces gossip_suspect from the
// surviving mesh, and a repair probe that finds the metadata service
// gone reports its fallback with meta_unreachable — all three new
// event types queryable alongside the breaker/failover events through
// /debug/events.
func TestGossipEventLog(t *testing.T) {
	events := obs.NewEventLog(512)
	c, err := cluster.Start(cluster.Config{
		Servers: cluster.Uniform(4), Dir: t.TempDir(),
		Gossip:         true,
		GossipInterval: 20 * time.Millisecond,
		GossipSeed:     42,
		GossipEvents:   events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	waitEvent := func(typ, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for len(events.ByType(typ)) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("no %q event: %s; log:\n%v", typ, what, events.Events())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Convergence: each node starts knowing only itself and learns the
	// rest as records merge in.
	waitEvent(obs.EventGossipMemberJoin, "the mesh never converged")

	// The prober's catalog connection must exist before the outage.
	cat, err := c.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	r := repair.New(cat, repair.Options{Gossip: c.GossipNodes[0], Events: events})
	defer r.Close()

	// A crash (listener and gossip node both gone) makes the survivors
	// suspect the silent peer.
	if err := c.KillServer(len(c.IOServers) - 1); err != nil {
		t.Fatal(err)
	}
	waitEvent(obs.EventGossipSuspect, "no survivor suspected the killed server")

	// With the catalog gone too, the probe falls back to the gossip
	// snapshot and says so.
	if err := c.StopMetaShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Probe(ctx); err != nil {
		t.Fatalf("probe did not fall back to the gossip snapshot: %v", err)
	}
	waitEvent(obs.EventMetaUnreachable, "the fallback probe stayed quiet")

	// The same three types through the debug endpoint.
	h := obs.NewHandler(obs.HandlerConfig{Events: events})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, typ := range []string{obs.EventGossipMemberJoin, obs.EventGossipSuspect,
		obs.EventMetaUnreachable} {
		resp, err := http.Get(srv.URL + "/debug/events?type=" + typ)
		if err != nil {
			t.Fatal(err)
		}
		var got []obs.Event
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/debug/events?type=%s: bad JSON: %v", typ, err)
		}
		if len(got) == 0 {
			t.Fatalf("/debug/events?type=%s returned no events", typ)
		}
	}
}
