package dpfs_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/meta"
	"dpfs/internal/repair"
	"dpfs/internal/server"
)

// TestReplicaFailoverE2E is the replication acceptance run: np=4
// clients over io=4 servers work on R=2 files while one server is
// killed mid-workload. Writes degrade (one replica short), reads fail
// over to the surviving copy, and every byte must match the fault-free
// truth. Then an online repair re-replicates the lost copies onto the
// survivors, and a fresh client — with the dead server still down —
// must read everything back from a fully R=2 catalog without a single
// failover.
func TestReplicaFailoverE2E(t *testing.T) {
	for _, mode := range []struct {
		name     string
		parallel bool
		cached   bool
	}{
		{"sequential", false, false},
		{"parallel", true, false},
		{"cached", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			runReplicaFailoverE2E(t, mode.parallel, mode.cached)
		})
	}
}

func runReplicaFailoverE2E(t *testing.T, parallel, cached bool) {
	const (
		np     = 4
		size   = 16 * 4096
		rounds = 3
	)
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	opts := dpfs.Options{
		Combine: true, Stagger: true, ParallelDispatch: parallel,
		Retry: server.RetryPolicy{MaxRetries: 2, RequestTimeout: 5 * time.Second,
			BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond},
	}
	if cached {
		opts.CacheBytes = 64 << 20
		opts.MetaTTL = time.Minute
		opts.Readahead = 2
	}
	clients := make([]*dpfs.Client, np)
	for r := 0; r < np; r++ {
		clients[r], err = dpfs.Connect(c.MetaSrv.Addr(), r, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer clients[r].Close()
	}

	pattern := func(r, round int) []byte {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i*13 + r*7 + round*101)
		}
		return data
	}
	filePath := func(r int) string { return fmt.Sprintf("/replica-chaos-%d", r) }

	files := make([]*dpfs.File, np)
	for r := 0; r < np; r++ {
		files[r], err = clients[r].Create(filePath(r), 1, []int64{size},
			dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer files[r].Close()
	}

	runRound := func(round int) {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				data := pattern(r, round)
				if err := files[r].WriteAt(ctx, data, 0); err != nil {
					errs <- fmt.Errorf("client %d round %d write: %w", r, round, err)
					return
				}
				got := make([]byte, size)
				if err := files[r].ReadAt(ctx, got, 0); err != nil {
					errs <- fmt.Errorf("client %d round %d read: %w", r, round, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("client %d round %d: roundtrip mismatch", r, round)
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// Round 0 healthy; the remaining rounds run degraded with one of
	// the four servers dead.
	runRound(0)
	deadIdx := len(c.IOServers) - 1
	deadName := c.Specs[deadIdx].Name
	if err := c.IOServers[deadIdx].Close(); err != nil {
		t.Fatal(err)
	}
	for round := 1; round < rounds; round++ {
		runRound(round)
	}

	// A fresh cold-cache client must see the final bytes with the dead
	// server still down — every brick it once held is read from the
	// surviving replica.
	clean, err := dpfs.Connect(c.MetaSrv.Addr(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < np; r++ {
		f, err := clean.Open(filePath(r))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		if err := f.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("degraded verification read of file %d: %v", r, err)
		}
		if !bytes.Equal(got, pattern(r, rounds-1)) {
			t.Fatalf("file %d: degraded bytes diverge from fault-free truth", r)
		}
		f.Close()
	}

	var failovers, degraded int64
	count := func(cl *dpfs.Client) {
		snap := cl.Engine().Metrics().Snapshot()
		failovers += snap.Counters[core.MetricFailovers]
		degraded += snap.Counters[core.MetricDegradedWrites]
	}
	for r := 0; r < np; r++ {
		count(clients[r])
	}
	count(clean)
	clean.Close()
	if failovers == 0 {
		t.Fatal("client_failovers = 0, want > 0 with a dead preferred replica")
	}
	if degraded == 0 {
		t.Fatal("client_degraded_writes = 0, want > 0 with a dead replica target")
	}
	t.Logf("dead=%s failovers=%d degraded_writes=%d", deadName, failovers, degraded)

	// Online repair: every file must come back to two live copies.
	rep, err := c.Repair(ctx, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("repair failed for %d files: %+v", rep.Failed, rep.Files)
	}
	if rep.Repaired != np {
		t.Fatalf("repair fixed %d files, want %d", rep.Repaired, np)
	}
	if rep.Alive[deadName] {
		t.Fatalf("repair probe thinks dead server %s is alive", deadName)
	}

	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < np; r++ {
		fi, rs, err := cat.LookupReplicated(filePath(r))
		if err != nil {
			t.Fatal(err)
		}
		for b, reps := range rs.Servers {
			if len(reps) != 2 {
				t.Fatalf("file %d brick %d: %d replicas after repair, want 2", r, b, len(reps))
			}
			for _, s := range reps {
				if fi.Servers[s] == deadName {
					t.Fatalf("file %d brick %d: replica still on dead server %s", r, b, deadName)
				}
			}
		}
	}
	hs, err := cat.ServerHealth()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, h := range hs {
		states[h.Name] = h.State
	}
	if st := states[deadName]; st == meta.StateAlive || st == "" {
		t.Fatalf("dead server %s marked %q in catalog, want suspect/dead", deadName, st)
	}

	// A fresh client over the repaired catalog reads everything without
	// touching the still-dead server: zero failovers.
	fresh, err := dpfs.Connect(c.MetaSrv.Addr(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for r := 0; r < np; r++ {
		f, err := fresh.Open(filePath(r))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		if err := f.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("post-repair read of file %d: %v", r, err)
		}
		if !bytes.Equal(got, pattern(r, rounds-1)) {
			t.Fatalf("file %d: post-repair bytes diverge from fault-free truth", r)
		}
		f.Close()
	}
	snap := fresh.Engine().Metrics().Snapshot()
	if got := snap.Counters[core.MetricFailovers]; got != 0 {
		t.Fatalf("post-repair reads took %d failovers, want 0 (dead server still in replica sets?)", got)
	}
}
