package dpfs_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/fault"
	"dpfs/internal/server"
)

// TestChaosE2E runs the full public-API stack — Connect through the
// network metadata server, np=4 clients over io=4 servers — under a
// seeded fault schedule of connection drops, latency spikes and torn
// frames, in both dispatch modes. Every roundtrip must be byte-exact
// and a fault-free verification pass must see the same bytes: the
// chaos has to be invisible above the client library, exactly what
// DPFS's idle-workstation substrate (Section 1) demands.
func TestChaosE2E(t *testing.T) {
	for _, mode := range []struct {
		name     string
		parallel bool
		cached   bool
		wireV2   bool
		seed     int64
	}{
		{"sequential", false, false, false, 11},
		{"parallel", true, false, false, 12},
		{"cached", true, true, false, 13},
		{"wirev2", true, false, true, 14},
	} {
		t.Run(mode.name, func(t *testing.T) {
			runChaosE2E(t, mode.parallel, mode.cached, mode.wireV2, mode.seed)
		})
	}
}

func runChaosE2E(t *testing.T, parallel, cached, wireV2 bool, seed int64) {
	const (
		np     = 4
		size   = 16 * 4096
		rounds = 3
	)
	// The flag-form spec, so this also exercises the -fault-spec path
	// end to end. The nth rules guarantee deterministic firings; the
	// prob rules add seed-dependent background noise.
	inj, err := fault.Parse("partial:nth=17; drop:nth=29; drop:prob=0.02; delay:prob=0.05,ms=2", seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, srv := range c.IOServers {
		inj.SetLabel(srv.Addr(), c.Specs[i].Name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	opts := dpfs.Options{
		Combine: true, Stagger: true, ParallelDispatch: parallel,
		WireV2: wireV2,
		Dial:   inj.DialContext,
		Retry: server.RetryPolicy{MaxRetries: 8, RequestTimeout: 5 * time.Second,
			BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond},
	}
	if cached {
		// Caching must be invisible under the same storm: hits, fills,
		// write invalidations and readahead all race the fault schedule.
		opts.CacheBytes = 64 << 20
		opts.MetaTTL = time.Minute
		opts.Readahead = 2
	}
	clients := make([]*dpfs.Client, np)
	for r := 0; r < np; r++ {
		clients[r], err = dpfs.Connect(c.MetaSrv.Addr(), r, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer clients[r].Close()
	}

	pattern := func(r int) []byte {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i*13 + r*7)
		}
		return data
	}

	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f, err := clients[r].Create(fmt.Sprintf("/chaos-e2e-%d", r), 1, []int64{size},
				dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096})
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			data := pattern(r)
			for round := 0; round < rounds; round++ {
				if err := f.WriteAt(ctx, data, 0); err != nil {
					errs <- fmt.Errorf("client %d round %d write: %w", r, round, err)
					return
				}
				got := make([]byte, size)
				if err := f.ReadAt(ctx, got, 0); err != nil {
					errs <- fmt.Errorf("client %d round %d read: %w", r, round, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("client %d round %d: faulty roundtrip mismatch", r, round)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The storm must actually have hit, and the recovery machinery must
	// have been what absorbed it.
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	var retries, evictions int64
	for r := 0; r < np; r++ {
		snap := clients[r].Engine().Metrics().Snapshot()
		retries += snap.Counters[server.MetricClientRetries]
		evictions += snap.Counters[server.MetricConnEvictions]
	}
	if retries == 0 {
		t.Fatal("summed client_retries = 0, want > 0 under the storm")
	}
	t.Logf("faults=%v retries=%d evictions=%d", inj.Counts(), retries, evictions)

	// Fault-free verification: a clean client must read back exactly
	// what the chaos-era writers claim they wrote.
	clean, err := dpfs.Connect(c.MetaSrv.Addr(), 0, dpfs.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	for r := 0; r < np; r++ {
		f, err := clean.Open(fmt.Sprintf("/chaos-e2e-%d", r))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		if err := f.ReadAt(ctx, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(r)) {
			t.Fatalf("file %d: stored bytes diverge from fault-free truth", r)
		}
		f.Close()
	}
}
