package server

import (
	"testing"
	"time"

	"dpfs/internal/netsim"
	"dpfs/internal/wire"
)

func TestServerMetrics(t *testing.T) {
	srv, cli := startServer(t, nil)
	ctx := ctxT(t)

	data := []byte("metrics payload")
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "m/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}},
		Data:    data,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "m/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}},
	}); err != nil {
		t.Fatal(err)
	}
	// An invalid request must bump the error counter, not just fail.
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "../escape"}); err == nil {
		t.Fatal("expected error for escaping path")
	}

	s := srv.Metrics().Snapshot()
	if got := s.Counters[MetricRequests]; got != 3 {
		t.Fatalf("requests_total = %d, want 3", got)
	}
	if got := s.Counters[MetricErrors]; got != 1 {
		t.Fatalf("errors_total = %d, want 1", got)
	}
	if s.Counters[MetricBytesIn] < int64(len(data)) {
		t.Fatalf("bytes_in_total = %d", s.Counters[MetricBytesIn])
	}
	if s.Counters[MetricBytesOut] < int64(len(data)) {
		t.Fatalf("bytes_out_total = %d", s.Counters[MetricBytesOut])
	}
	if got := s.Histograms[OpMetric(wire.OpWrite)].Count; got != 1 {
		t.Fatalf("op_write_us count = %d, want 1", got)
	}
	if got := s.Histograms[OpMetric(wire.OpRead)].Count; got != 2 {
		t.Fatalf("op_read_us count = %d, want 2", got)
	}
	if got := s.Histograms[MetricSubfileIO].Count; got != 2 {
		t.Fatalf("subfile_io_us count = %d, want 2 (write + good read)", got)
	}
	if got := s.Counters[MetricConnsTotal]; got < 1 {
		t.Fatalf("conns_total = %d", got)
	}
	if got := s.Gauges[MetricActiveConns]; got < 1 {
		t.Fatalf("active_conns = %d, want >= 1 while client holds its connection", got)
	}
}

func TestServerAdoptsNetsimWait(t *testing.T) {
	model := netsim.New(netsim.Params{Name: "t", RequestLatency: time.Millisecond})
	srv, cli := startServer(t, model)
	data := []byte("shaped")
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpWrite, Path: "n/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}},
		Data:    data,
	}); err != nil {
		t.Fatal(err)
	}
	s := srv.Metrics().Snapshot()
	h, ok := s.Histograms[MetricNetsimWait]
	if !ok {
		t.Fatal("netsim wait histogram not adopted into server registry")
	}
	if h.Count == 0 {
		t.Fatal("netsim wait histogram empty after a shaped request")
	}
}
