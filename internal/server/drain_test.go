package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dpfs/internal/netsim"
	"dpfs/internal/wire"
)

// TestShutdownDrainsInflight: a request occupying the simulated device
// when Shutdown begins must run to completion and get its response
// before the server exits — the graceful half of the SIGTERM path.
func TestShutdownDrainsInflight(t *testing.T) {
	// 1 MiB/s: a 512 KiB write reserves ~0.5s of device time.
	model := netsim.New(netsim.Params{Bandwidth: 1 << 20})
	srv, err := Listen(Config{Root: t.TempDir(), Model: model, Name: "drain"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(srv.Addr())
	defer cli.Close()

	data := make([]byte, 512<<10)
	for i := range data {
		data[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cli.Do(context.Background(), &wire.Request{
			Op: wire.OpWrite, Path: "drain.dat",
			Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}}, Data: data,
		})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the write reach the device
	if srv.Draining() {
		t.Fatal("draining before Shutdown was called")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shErr := make(chan error, 1)
	go func() { shErr <- srv.Shutdown(ctx) }()

	// Mid-drain the server must report itself draining.
	for i := 0; !srv.Draining(); i++ {
		if i > 100 {
			t.Fatal("server never entered the draining state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Health().Status; st != "draining" {
		t.Fatalf("mid-drain health = %q, want draining", st)
	}

	if err := <-shErr; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight write during drain: %v", err)
	}
	if conn, err := net.Dial("tcp", srv.Addr()); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after shutdown closed the listener")
	}
}

// TestShutdownDeadlineForces: when in-flight work outlives the drain
// deadline, Shutdown force-closes the remaining connections and
// returns the context error instead of hanging.
func TestShutdownDeadlineForces(t *testing.T) {
	// 1 MiB/s: a 4 MiB write reserves ~4s, far past the 200ms deadline.
	model := netsim.New(netsim.Params{Bandwidth: 1 << 20})
	srv, err := Listen(Config{Root: t.TempDir(), Model: model, Name: "force"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClientWith(srv.Addr(), ClientConfig{Retry: RetryPolicy{MaxRetries: -1}})
	defer cli.Close()

	data := make([]byte, 4<<20)
	done := make(chan error, 1)
	go func() {
		_, err := cli.Do(context.Background(), &wire.Request{
			Op: wire.OpWrite, Path: "force.dat",
			Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}}, Data: data,
		})
		done <- err
	}()
	// Wait until the server has actually claimed the write (dispatch
	// bumps requests_total on entry) — a fixed sleep races with loaded
	// machines, and a Shutdown before the claim drains gracefully.
	claimDeadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Counter(MetricRequests).Value() == 0 {
		if time.Now().After(claimDeadline) {
			t.Fatal("write never reached the server")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown error = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("forced shutdown took %v, want well under the write's 4s reservation", d)
	}
	if err := <-done; err == nil {
		t.Fatal("in-flight write survived a forced shutdown, want an error")
	}
}

// TestShutdownIdle: with nothing in flight, Shutdown closes idle
// pooled connections immediately and returns nil.
func TestShutdownIdle(t *testing.T) {
	srv, err := Listen(Config{Root: t.TempDir(), Name: "idle"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(srv.Addr())
	defer cli.Close()
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("double shutdown: %v", err)
	}
}
