package server

import (
	"bytes"
	"strings"
	"testing"

	"dpfs/internal/wire"
)

// TestGenerationStaleRejected exercises the stale-distribution guard: a
// request carrying an older generation than the server has seen for a
// path must error instead of silently answering from (or creating) an
// outdated subfile.
func TestGenerationStaleRejected(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)

	// g1 exists; a write at g2 advances the path and cleans up g1.
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "f.dat", Gen: 1,
		Extents: []wire.Extent{{Off: 0, Len: 3}}, Data: []byte("old"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "f.dat", Gen: 2,
		Extents: []wire.Extent{{Off: 0, Len: 3}}, Data: []byte("new"),
	}); err != nil {
		t.Fatal(err)
	}

	// A read against the removed generation fails loudly.
	_, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "f.dat", Gen: 1,
		Extents: []wire.Extent{{Off: 0, Len: 3}},
	})
	if err == nil || !strings.Contains(err.Error(), "stale generation") {
		t.Fatalf("stale read error = %v, want stale generation", err)
	}

	// The current generation still answers with its own bytes.
	resp, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "f.dat", Gen: 2,
		Extents: []wire.Extent{{Off: 0, Len: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, []byte("new")) {
		t.Fatalf("gen-2 read = %q, want %q", resp.Data, "new")
	}
}

// TestGenerationMemorySurvivesRestart checks the server reseeds its
// per-path generation memory from the on-disk subfile names, so stale
// requests stay rejected after a crash or restart.
func TestGenerationMemorySurvivesRestart(t *testing.T) {
	root := t.TempDir()
	srv, err := Listen(Config{Root: root, Name: "io-a"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(srv.Addr())
	ctx := ctxT(t)
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "f.dat", Gen: 5,
		Extents: []wire.Extent{{Off: 0, Len: 1}}, Data: []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	srv.Close()

	srv2, err := Listen(Config{Root: root, Name: "io-a"}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2 := NewClient(srv2.Addr())
	defer cli2.Close()
	_, err = cli2.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "f.dat", Gen: 4,
		Extents: []wire.Extent{{Off: 0, Len: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "stale generation") {
		t.Fatalf("post-restart stale read error = %v, want stale generation", err)
	}
}

// TestGenerationZeroLegacy checks that generation 0 (files created
// before the scheme, and paths that never advanced) bypasses the guard
// entirely — reads and writes behave as before.
func TestGenerationZeroLegacy(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "legacy.dat", Gen: 0,
		Extents: []wire.Extent{{Off: 0, Len: 3}}, Data: []byte("abc"),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "legacy.dat", Gen: 0,
		Extents: []wire.Extent{{Off: 0, Len: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, []byte("abc")) {
		t.Fatalf("legacy read = %q, want %q", resp.Data, "abc")
	}
}
