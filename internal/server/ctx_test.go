package server

import (
	"context"
	"net"
	"testing"
	"time"

	"dpfs/internal/netsim"
	"dpfs/internal/wire"
)

// TestAbandonedRequestFreesDevice: a client that disconnects while its
// request occupies the simulated device must not leave the device
// busy — the peer watchdog cancels the op and netsim returns the
// unserviced reservation.
func TestAbandonedRequestFreesDevice(t *testing.T) {
	// 1 MiB/s with no fixed latency: a 2 MiB write reserves ~2s.
	model := netsim.New(netsim.Params{Bandwidth: 1 << 20})
	s, err := Listen(Config{Root: t.TempDir(), Model: model, Name: "slow"}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Raw conn: ship a 2 MiB write, then abandon it mid-service.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2<<20)
	req := &wire.Request{Op: wire.OpWrite, Path: "/big",
		Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}}, Data: data}
	if err := wire.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the op reach the device
	conn.Close()                       // client gives up
	time.Sleep(100 * time.Millisecond) // let the watchdog release the device

	// A well-behaved client arriving after the abandonment must not
	// queue behind the dead request's 2s reservation.
	c := NewClient(s.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := c.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "/small",
		Extents: []wire.Extent{{Off: 0, Len: 1}}, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("request after abandonment took %v, want well under the 2s reservation", d)
	}
}

// TestWatchdogDoesNotDisturbPipelining: back-to-back requests on one
// connection must flow normally through the watchdog start/stop cycle
// (no swallowed bytes, no stray deadlines).
func TestWatchdogDoesNotDisturbPipelining(t *testing.T) {
	model := netsim.New(netsim.Params{RequestLatency: 100 * time.Microsecond, Bandwidth: 100 << 20})
	s, err := Listen(Config{Root: t.TempDir(), Model: model, Name: "shaped"}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(s.Addr())
	defer c.Close()
	ctx := context.Background()
	payload := []byte("watchdog")
	for i := 0; i < 50; i++ {
		if _, err := c.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "/w",
			Extents: []wire.Extent{{Off: int64(i * len(payload)), Len: int64(len(payload))}},
			Data:    payload}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := c.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "/w",
			Extents: []wire.Extent{{Off: int64(i * len(payload)), Len: int64(len(payload))}}})
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(resp.Data) != string(payload) {
			t.Fatalf("read %d = %q, want %q", i, resp.Data, payload)
		}
	}
	// One conn carried everything: the watchdog never poisoned it.
	if got := s.Metrics().Counter(MetricConnsTotal).Value(); got != 1 {
		t.Fatalf("server saw %d conns, want 1", got)
	}
}
