package server

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"dpfs/internal/fault"
	"dpfs/internal/obs"
	"dpfs/internal/wire"
)

// newTestServer starts a real I/O server on a loopback port.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen(Config{Root: t.TempDir(), Name: "test"}, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRetryRecoversFromDrops injects a deterministic schedule of
// connection drops and asserts the client retries through all of them
// with no caller-visible failure.
func TestRetryRecoversFromDrops(t *testing.T) {
	s := newTestServer(t)
	// Every 5th conn op drops the connection; each exchange is ~3 ops
	// (send, header read, body read), so drops land regularly.
	inj := fault.New(7, fault.Rule{Kind: fault.KindDrop, Nth: 5})
	reg := obs.NewRegistry()
	c := NewClientWith(s.Addr(), ClientConfig{
		Dial:    inj.DialContext,
		Metrics: reg,
		Retry:   RetryPolicy{MaxRetries: 8, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond},
	})
	defer c.Close()
	ctx := context.Background()
	data := []byte("fault tolerant bytes")
	for i := 0; i < 20; i++ {
		req := &wire.Request{Op: wire.OpWrite, Path: "/f",
			Extents: []wire.Extent{{Off: int64(i) * int64(len(data)), Len: int64(len(data))}}, Data: data}
		if _, err := c.Do(ctx, req); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if inj.Total() == 0 {
		t.Fatal("fault schedule never fired")
	}
	if got := reg.Counter(MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0")
	}
	if got := reg.Counter(MetricConnEvictions).Value(); got == 0 {
		t.Fatal("conn_evictions = 0, want > 0")
	}
	// The data must be intact despite the storm.
	resp, err := c.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "/f",
		Extents: []wire.Extent{{Off: 0, Len: int64(len(data))}}})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != string(data) {
		t.Fatalf("read back %q, want %q", resp.Data, data)
	}
}

// TestPerRequestTimeout points the client at a server that accepts and
// then never answers: every attempt must be cut by RequestTimeout and
// the retry budget must be spent.
func TestPerRequestTimeout(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the conn open, never respond
		}
	}()

	reg := obs.NewRegistry()
	c := NewClientWith(lis.Addr().String(), ClientConfig{
		Metrics: reg,
		Retry: RetryPolicy{MaxRetries: 2, RequestTimeout: 30 * time.Millisecond,
			BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	})
	defer c.Close()
	start := time.Now()
	_, err = c.Do(context.Background(), &wire.Request{Op: wire.OpPing})
	if err == nil {
		t.Fatal("ping of a mute server succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("gave up after %v, want >= 3 timed-out attempts (~90ms)", d)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 2 {
		t.Fatalf("client_retries = %d, want 2", got)
	}
}

// TestContextCancelStopsRetries: an exhausted context must end the
// retry ladder immediately.
func TestContextCancelStopsRetries(t *testing.T) {
	// Nothing listens on this address (reserved then released).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	reg := obs.NewRegistry()
	c := NewClientWith(addr, ClientConfig{
		Metrics: reg,
		Retry:   RetryPolicy{MaxRetries: 50, BackoffBase: 20 * time.Millisecond, BackoffMax: 20 * time.Millisecond},
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Do(ctx, &wire.Request{Op: wire.OpPing}); err == nil {
		t.Fatal("ping of a dead address succeeded")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("retry ladder ran %v past a 30ms context", d)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got >= 50 {
		t.Fatalf("client_retries = %d, want the context to cut the budget short", got)
	}
}

// TestBreakerFailsFastAndRecovers drives a server through a failure
// burst long enough to open the breaker, asserts fail-fast behavior
// during the cooldown, and verifies the half-open probe closes the
// breaker once the faults stop.
func TestBreakerFailsFastAndRecovers(t *testing.T) {
	s := newTestServer(t)
	const threshold = 3
	// Exactly `threshold` drops, then the link heals.
	inj := fault.New(3, fault.Rule{Kind: fault.KindDrop, Nth: 1, Count: threshold})
	reg := obs.NewRegistry()
	c := NewClientWith(s.Addr(), ClientConfig{
		Dial:    inj.DialContext,
		Metrics: reg,
		Retry: RetryPolicy{MaxRetries: -1, BreakerThreshold: threshold,
			BreakerCooldown: 50 * time.Millisecond},
	})
	defer c.Close()
	ctx := context.Background()

	for i := 0; i < threshold; i++ {
		if err := c.Ping(ctx); err == nil {
			t.Fatalf("ping %d succeeded through a dropping link", i)
		}
	}
	if got := reg.Counter(MetricServerUnhealthy).Value(); got != 1 {
		t.Fatalf("server_unhealthy = %d after the burst, want 1", got)
	}
	// Open breaker: fail fast, without touching the network.
	err := c.Ping(ctx)
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("ping during cooldown = %v, want ErrUnhealthy", err)
	}
	// After the cooldown the half-open probe goes through (the fault
	// budget is spent) and the breaker closes again.
	time.Sleep(60 * time.Millisecond)
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
}

// TestIdleProbeEvictsDeadConn pools a connection whose peer closes it
// mid-idle; the liveness probe must evict it at checkout instead of
// burning a retry on the next RPC.
func TestIdleProbeEvictsDeadConn(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// A server that answers exactly one request per connection, then
	// closes it 10ms later (a peer reaping idle conns).
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				if _, err := wire.ReadRequest(conn); err == nil {
					_ = wire.WriteResponse(conn, &wire.Response{})
				}
				time.Sleep(10 * time.Millisecond)
				conn.Close()
			}(conn)
		}
	}()

	reg := obs.NewRegistry()
	c := NewClientWith(lis.Addr().String(), ClientConfig{
		Metrics: reg,
		Retry:   RetryPolicy{ProbeIdle: 5 * time.Millisecond},
	})
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond) // peer reaps the pooled conn
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricConnEvictions).Value(); got == 0 {
		t.Fatal("conn_evictions = 0, want the probe to evict the dead conn")
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Fatalf("client_retries = %d, want 0 (probe should catch it before the RPC)", got)
	}
}

// TestIdleAgeCapEvicts discards conns that idled past MaxIdleAge even
// without probing.
func TestIdleAgeCapEvicts(t *testing.T) {
	s := newTestServer(t)
	reg := obs.NewRegistry()
	c := NewClientWith(s.Addr(), ClientConfig{
		Metrics: reg,
		Retry:   RetryPolicy{ProbeIdle: -1, MaxIdleAge: 5 * time.Millisecond},
	})
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricConnEvictions).Value(); got != 1 {
		t.Fatalf("conn_evictions = %d, want 1 (age cap)", got)
	}
}

// TestHealthyIdleConnIsReused: the probe must not evict a healthy
// pooled conn (no false positives).
func TestHealthyIdleConnIsReused(t *testing.T) {
	s := newTestServer(t)
	reg := obs.NewRegistry()
	c := NewClientWith(s.Addr(), ClientConfig{
		Metrics: reg,
		Retry:   RetryPolicy{ProbeIdle: 5 * time.Millisecond},
	})
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // idle long enough to trigger the probe
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricConnEvictions).Value(); got != 0 {
		t.Fatalf("conn_evictions = %d, want 0 (healthy conn wrongly evicted)", got)
	}
	if got := s.Metrics().Counter(MetricConnsTotal).Value(); got != 1 {
		t.Fatalf("server saw %d conns, want 1 (reuse)", got)
	}
}
