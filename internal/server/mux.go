package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dpfs/internal/wire"
)

// DefaultMuxWindow is the per-connection in-flight request bound used
// when ClientConfig does not specify one. A mux client opens another
// connection only when every existing one already carries this many
// outstanding tags, so steady-state fan-out rides one or two conns
// per server instead of one conn per concurrent request.
const DefaultMuxWindow = 32

// muxReadSlack pads the demux reader's connection read deadline beyond
// the latest per-call deadline. Per-call timeouts are enforced by the
// callers' own timers (which abandon the tag and leave the conn
// usable); the conn deadline is only the backstop that unwedges a
// reader whose peer stopped talking entirely.
const muxReadSlack = 500 * time.Millisecond

// errClientClosed fails calls in flight when the mux shuts down.
var errClientClosed = errors.New("dpfs: client closed")

// muxBufPool recycles demux-side response accumulation buffers. The
// reader cannot fill a caller's scratch buffer directly — a caller
// that times out reclaims its scratch while the reader may still be
// mid-frame — so DATA frames accumulate here and are copied into
// scratch only at delivery, after the tag can no longer be abandoned.
var muxBufPool sync.Pool

func muxGetBuf() []byte {
	if v := muxBufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

func muxPutBuf(b []byte) {
	if cap(b) > 0 {
		muxBufPool.Put(b[:0]) //nolint:staticcheck // slice header alloc is fine here
	}
}

// mux multiplexes a Client's requests over a small set of wire-v2
// connections: each request gets a tag, frames of different tags
// interleave on one conn, and a per-conn demux reader routes response
// frames back to waiting callers. It replaces the v1
// one-exchange-per-conn pool when ClientConfig.WireV2 is set.
type mux struct {
	c      *Client
	window int

	mu       sync.Mutex
	conns    []*muxConn
	closed   bool
	dialing  bool          // a dial is in flight (single-flight)
	dialDone chan struct{} // closed when the in-flight dial finishes
}

// muxConn is one wire-v2 connection and its demultiplexing state.
type muxConn struct {
	m    *mux
	conn net.Conn

	// wmu serializes frame writes. A request's REQ+DATA frames are
	// written under one hold (the server reads payloads inline, so they
	// must stay contiguous); CANCEL frames use TryLock and skip when the
	// conn is busy writing.
	wmu sync.Mutex

	// inflight reserves window slots: incremented under mux.mu when a
	// caller picks this conn, decremented (atomically, lock-free) when
	// the call finishes however it finishes.
	inflight atomic.Int64

	mu      sync.Mutex
	pending map[uint32]*muxCall
	nextTag uint32
	armed   time.Time // currently-set conn read deadline (zero = none)
	dead    bool
	active  bool // pending non-empty; mirrors the conn gauges
}

// muxCall is one in-flight tagged request.
type muxCall struct {
	deadline time.Time // per-attempt deadline (zero = unbounded)
	scratch  []byte    // caller's response buffer, filled at delivery
	buf      []byte    // reader-owned DATA accumulation
	resp     *wire.Response
	err      error
	done     chan struct{}
}

func newMux(c *Client, window int) *mux {
	if window <= 0 {
		window = DefaultMuxWindow
	}
	return &mux{c: c, window: window}
}

// attempt performs one exchange over a muxed conn: reserve a window
// slot, register a tag, write the frames, wait for the demux reader to
// deliver the response (or abandon the tag on timeout/cancel).
func (m *mux) attempt(ctx context.Context, req *wire.Request, scratch []byte) (*wire.Response, error) {
	mc, err := m.grab(ctx)
	if err != nil {
		return nil, err
	}
	defer mc.inflight.Add(-1)

	deadline, hasDeadline := ctx.Deadline()
	if t := m.c.retry.RequestTimeout; t > 0 {
		if d := time.Now().Add(t); !hasDeadline || d.Before(deadline) {
			deadline, hasDeadline = d, true
		}
	}
	call := &muxCall{scratch: scratch, done: make(chan struct{})}
	if hasDeadline {
		call.deadline = deadline
	}
	tag, err := mc.register(call)
	if err != nil {
		return nil, fmt.Errorf("dpfs server %s: send: %w", m.c.addr, err)
	}

	mc.wmu.Lock()
	if hasDeadline {
		_ = mc.conn.SetWriteDeadline(deadline)
	} else {
		_ = mc.conn.SetWriteDeadline(time.Time{})
	}
	err = wire.WriteRequestV2(mc.conn, tag, req)
	mc.wmu.Unlock()
	if err != nil {
		// A partial frame write desynchronizes the stream for every tag
		// on this conn; fail them all (idempotent if the reader already
		// noticed). The retry ladder redials.
		mc.fail(fmt.Errorf("dpfs server %s: send: %w", m.c.addr, err))
		<-call.done
		return nil, fmt.Errorf("dpfs server %s: send: %w", m.c.addr, err)
	}

	var timeout <-chan time.Time
	if hasDeadline {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-call.done:
	case <-ctx.Done():
		if mc.abandon(tag) {
			return nil, fmt.Errorf("dpfs server %s: %w", m.c.addr, ctx.Err())
		}
		<-call.done // delivery or conn death won the race; take its result
	case <-timeout:
		if mc.abandon(tag) {
			return nil, fmt.Errorf("dpfs server %s: receive: request timed out", m.c.addr)
		}
		<-call.done
	}
	if call.err != nil {
		return nil, fmt.Errorf("dpfs server %s: receive: %w", m.c.addr, call.err)
	}
	return call.resp, nil
}

// grab picks the least-loaded live conn with window room, dialing a new
// one when all are full (or none exist). The returned conn has one
// in-flight slot reserved for the caller. Dials are single-flighted: a
// concurrent burst arriving on a fresh mux waits for one dial and then
// shares the conn, instead of every caller opening its own — that
// collapse from conns-per-request to conns-per-window is the point of
// the mux.
func (m *mux) grab(ctx context.Context) (*muxConn, error) {
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			return nil, errClientClosed
		}
		var best *muxConn
		for _, mc := range m.conns {
			n := mc.inflight.Load()
			if n >= int64(m.window) {
				continue
			}
			if best == nil || n < best.inflight.Load() {
				best = mc
			}
		}
		if best != nil {
			best.inflight.Add(1)
			m.mu.Unlock()
			return best, nil
		}
		if !m.dialing {
			break
		}
		done := m.dialDone
		m.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return nil, fmt.Errorf("dpfs server %s: dial: %w", m.c.addr, ctx.Err())
		}
		m.mu.Lock()
	}
	m.dialing = true
	m.dialDone = make(chan struct{})
	m.mu.Unlock()

	conn, err := m.c.dial(ctx, m.c.addr)
	m.mu.Lock()
	m.dialing = false
	close(m.dialDone)
	if err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("dpfs server %s: dial: %w", m.c.addr, err)
	}
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return nil, errClientClosed
	}
	mc := &muxConn{m: m, conn: conn, pending: make(map[uint32]*muxCall)}
	m.conns = append(m.conns, mc)
	mc.inflight.Add(1)
	m.mu.Unlock()
	m.c.reg.Gauge(MetricClientConnsIdle).Inc()
	go mc.readLoop()
	return mc, nil
}

// remove detaches a dead conn from the mux.
func (m *mux) remove(mc *muxConn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, c := range m.conns {
		if c == mc {
			m.conns = append(m.conns[:i], m.conns[i+1:]...)
			return
		}
	}
}

// Close fails every in-flight call and closes all conns.
func (m *mux) Close() {
	m.mu.Lock()
	m.closed = true
	conns := append([]*muxConn(nil), m.conns...)
	m.mu.Unlock()
	for _, mc := range conns {
		mc.failQuiet(errClientClosed)
	}
}

// register allocates a tag for call and arms the conn's backstop read
// deadline.
func (mc *muxConn) register(call *muxCall) (uint32, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.dead {
		return 0, errors.New("connection closed")
	}
	for {
		mc.nextTag++
		if mc.nextTag == 0 {
			mc.nextTag = 1
		}
		if _, taken := mc.pending[mc.nextTag]; !taken {
			break
		}
	}
	mc.pending[mc.nextTag] = call
	mc.transitionLocked()
	mc.updateDeadlineLocked()
	return mc.nextTag, nil
}

// abandon gives up on tag (caller timeout or context cancel). It
// reports whether the tag was still pending: false means delivery or
// conn failure claimed it first and the caller must take the result
// from call.done instead — that handshake is what makes it safe for
// the caller to reuse its scratch buffer right after a true return.
// A best-effort CANCEL frame tells the server to stop working on the
// tag; the demux reader discards any frames that were already in
// flight for it.
func (mc *muxConn) abandon(tag uint32) bool {
	mc.mu.Lock()
	if _, ok := mc.pending[tag]; !ok {
		mc.mu.Unlock()
		return false
	}
	delete(mc.pending, tag)
	mc.transitionLocked()
	mc.updateDeadlineLocked()
	mc.mu.Unlock()

	if mc.wmu.TryLock() {
		_ = mc.conn.SetWriteDeadline(time.Now().Add(time.Second))
		_ = wire.WriteCancelFrame(mc.conn, tag)
		_ = mc.conn.SetWriteDeadline(time.Time{})
		mc.wmu.Unlock()
	}
	return true
}

// transitionLocked maintains the client_conns_idle/active gauges as the
// conn's pending set empties and fills. Called with mc.mu held.
func (mc *muxConn) transitionLocked() {
	active := len(mc.pending) > 0
	if active == mc.active {
		return
	}
	mc.active = active
	idleG := mc.m.c.reg.Gauge(MetricClientConnsIdle)
	activeG := mc.m.c.reg.Gauge(MetricClientConnsActive)
	if active {
		idleG.Add(-1)
		activeG.Inc()
	} else {
		activeG.Add(-1)
		idleG.Inc()
	}
}

// updateDeadlineLocked re-arms the conn's backstop read deadline: the
// latest pending per-call deadline plus slack, or none at all when a
// pending call is unbounded. Crucially, the deadline is CLEARED the
// moment the pending set empties — an idle muxed conn must never sit
// armed with a stale deadline, or the reader would wrongly kill it on
// the next quiet stretch (the mux mirror of the pooled-conn
// stale-deadline fix; see Client.get). Called with mc.mu held.
func (mc *muxConn) updateDeadlineLocked() {
	if mc.dead {
		return
	}
	if len(mc.pending) == 0 {
		if !mc.armed.IsZero() {
			_ = mc.conn.SetReadDeadline(time.Time{})
			mc.armed = time.Time{}
		}
		return
	}
	var max time.Time
	for _, c := range mc.pending {
		if c.deadline.IsZero() {
			if !mc.armed.IsZero() {
				_ = mc.conn.SetReadDeadline(time.Time{})
				mc.armed = time.Time{}
			}
			return
		}
		if c.deadline.After(max) {
			max = c.deadline
		}
	}
	d := max.Add(muxReadSlack)
	if !d.Equal(mc.armed) {
		_ = mc.conn.SetReadDeadline(d)
		mc.armed = d
	}
}

// readLoop is the demux reader: it owns the conn's read side, routing
// DATA frames into per-tag accumulation buffers and RESP frames to
// their waiting callers. Any read or framing error is a conn fault
// that fails exactly the tags in flight on this conn.
func (mc *muxConn) readLoop() {
	br := bufio.NewReaderSize(mc.conn, 64<<10)
	for {
		h, err := wire.ReadFrameHeader(br)
		if err != nil {
			mc.fail(err)
			return
		}
		switch h.Kind {
		case wire.FrameData:
			mc.mu.Lock()
			call := mc.pending[h.Tag]
			mc.mu.Unlock()
			if call == nil {
				// Abandoned or unknown tag: drain and drop.
				if err := wire.DiscardFrameBody(br, h); err != nil {
					mc.fail(err)
					return
				}
				continue
			}
			if call.buf == nil {
				call.buf = muxGetBuf()
			}
			off := len(call.buf)
			need := off + int(h.Len)
			if cap(call.buf) < need {
				grown := make([]byte, off, need)
				copy(grown, call.buf)
				call.buf = grown
			}
			call.buf = call.buf[:need]
			if _, err := io.ReadFull(br, call.buf[off:]); err != nil {
				mc.fail(err)
				return
			}
		case wire.FrameResp:
			body := make([]byte, h.Len)
			if _, err := io.ReadFull(br, body); err != nil {
				mc.fail(err)
				return
			}
			resp, dataLen, derr := wire.DecodeResponseMetaV2(body)
			if derr != nil {
				// Undecodable metadata means lost framing sync.
				mc.fail(derr)
				return
			}
			mc.deliver(h.Tag, resp, dataLen)
		default:
			// Unknown kinds (and stray CANCELs) must never wedge the mux
			// or fail an unrelated request: skip the body and move on.
			if err := wire.DiscardFrameBody(br, h); err != nil {
				mc.fail(err)
				return
			}
		}
	}
}

// deliver completes tag with resp. Once the tag is removed from pending
// (under mc.mu) the caller can no longer abandon it, so copying the
// accumulated payload into the caller's scratch afterwards is safe.
func (mc *muxConn) deliver(tag uint32, resp *wire.Response, dataLen int64) {
	mc.mu.Lock()
	call := mc.pending[tag]
	if call == nil {
		mc.mu.Unlock()
		return
	}
	delete(mc.pending, tag)
	mc.transitionLocked()
	mc.updateDeadlineLocked()
	mc.mu.Unlock()

	if resp.Err == "" {
		switch {
		case dataLen != int64(len(call.buf)):
			call.err = fmt.Errorf("wire: response announced %d data bytes, received %d", dataLen, len(call.buf))
		case len(call.buf) > 0:
			if cap(call.scratch) >= len(call.buf) {
				n := copy(call.scratch[:cap(call.scratch)], call.buf)
				resp.Data = call.scratch[:n]
				muxPutBuf(call.buf)
			} else {
				resp.Data = call.buf
			}
		}
	} else if call.buf != nil {
		// An error reported mid-stream abandons whatever data preceded it.
		muxPutBuf(call.buf)
	}
	call.resp = resp
	close(call.done)
}

// fail kills the conn and fails every pending tag with err — the v2
// fault boundary: a conn fault takes down exactly the requests
// multiplexed onto that conn, nothing else. Idempotent.
func (mc *muxConn) fail(err error) {
	if mc.failQuiet(err) {
		mc.m.c.reg.Counter(MetricConnEvictions).Inc()
	}
}

// failQuiet is fail without the eviction metric (clean shutdown).
// It reports whether this call transitioned the conn to dead.
func (mc *muxConn) failQuiet(err error) bool {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return false
	}
	mc.dead = true
	pending := mc.pending
	mc.pending = nil
	if mc.active {
		mc.m.c.reg.Gauge(MetricClientConnsActive).Add(-1)
	} else {
		mc.m.c.reg.Gauge(MetricClientConnsIdle).Add(-1)
	}
	mc.mu.Unlock()

	mc.conn.Close()
	mc.m.remove(mc)
	for _, call := range pending {
		call.err = err
		close(call.done)
	}
	return true
}
