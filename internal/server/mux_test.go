package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dpfs/internal/wire"
)

// startServerV2 starts a real server and a wire-v2 mux client.
func startServerV2(t *testing.T, cfg ClientConfig) (*Server, *Client) {
	t.Helper()
	srv, err := Listen(Config{Root: t.TempDir(), Name: "test-io"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg.WireV2 = true
	cli := NewClientWith(srv.Addr(), cfg)
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

func TestMuxRoundtrip(t *testing.T) {
	_, cli := startServerV2(t, ClientConfig{})
	ctx := ctxT(t)

	data := []byte("hello muxed brick world")
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "dir/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: 5}, {Off: 100, Len: 18}},
		Data:    data,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "dir/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: 5}, {Off: 100, Len: 18}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, data) {
		t.Fatalf("read back %q, want %q", resp.Data, data)
	}
	stat, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "dir/sub.f"})
	if err != nil {
		t.Fatal(err)
	}
	if stat.N != 118 {
		t.Fatalf("stat = %d, want 118", stat.N)
	}
}

// TestMuxSegmentsRoundtrip drives the scatter write path (REQ + DATA
// frames built from Segments in one vectored write) through a real
// server, with a payload big enough to split into several DATA frames.
func TestMuxSegmentsRoundtrip(t *testing.T) {
	_, cli := startServerV2(t, ClientConfig{})
	ctx := ctxT(t)

	big := bytes.Repeat([]byte("0123456789abcdef"), (wire.StreamChunk+4096)/16)
	segs := [][]byte{big[:777], big[777:4096], big[4096:]}
	if _, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "big.f",
		Extents:  []wire.Extent{{Off: 0, Len: int64(len(big))}},
		Segments: segs,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "big.f",
		Extents: []wire.Extent{{Off: 0, Len: int64(len(big))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, big) {
		t.Fatal("streamed read returned different bytes than the scatter write stored")
	}
}

// TestMuxFanInSharesConns is the mux's reason to exist: a 64-request
// concurrent burst must ride a handful of connections (ceil(64/window)
// plus dial-timing slack), not one conn per request like the v1 pool.
func TestMuxFanInSharesConns(t *testing.T) {
	srv, cli := startServerV2(t, ClientConfig{MuxWindow: 16})
	ctx := ctxT(t)

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("f%d", i%8)
			if _, err := cli.Do(ctx, &wire.Request{
				Op: wire.OpWrite, Path: path,
				Extents: []wire.Extent{{Off: int64(i) * 64, Len: 64}},
				Data:    bytes.Repeat([]byte{byte(i)}, 64),
			}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	conns := srv.Metrics().Counter(MetricConnsTotal).Value()
	if conns > 8 {
		t.Fatalf("64-way fan-in used %d conns; the mux should hold it near ceil(64/16)", conns)
	}
}

// TestMuxIdleConnSurvivesOldDeadline is the stale-deadline regression
// for the demux reader (the mux mirror of PR 2's pooled-conn fix): the
// conn read deadline armed for a request must be CLEARED when the
// pending set empties, so a muxed conn idling past the old deadline is
// not killed and the next request reuses it instead of redialing.
func TestMuxIdleConnSurvivesOldDeadline(t *testing.T) {
	srv, cli := startServerV2(t, ClientConfig{
		Retry: RetryPolicy{RequestTimeout: 150 * time.Millisecond, MaxRetries: -1},
	})
	ctx := ctxT(t)
	if err := cli.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	// Sit idle well past the first request's deadline + the reader's
	// slack; with a stale armed deadline the reader would kill the conn.
	time.Sleep(700 * time.Millisecond)
	if err := cli.Ping(ctx); err != nil {
		t.Fatalf("ping after idle period: %v", err)
	}
	if conns := srv.Metrics().Counter(MetricConnsTotal).Value(); conns != 1 {
		t.Fatalf("server saw %d conns; the idle muxed conn should have been reused", conns)
	}
	if ev := cli.Metrics().Counter(MetricConnEvictions).Value(); ev != 0 {
		t.Fatalf("%d mux conns evicted during an idle stretch", ev)
	}
}

// TestMuxConnGauges checks the client_conns_idle/active bookkeeping
// across the muxed conn's state transitions.
func TestMuxConnGauges(t *testing.T) {
	_, cli := startServerV2(t, ClientConfig{})
	ctx := ctxT(t)
	if err := cli.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	idle := cli.Metrics().Gauge(MetricClientConnsIdle).Value()
	active := cli.Metrics().Gauge(MetricClientConnsActive).Value()
	if idle != 1 || active != 0 {
		t.Fatalf("after ping: idle=%d active=%d, want 1/0", idle, active)
	}
	cli.Close()
	idle = cli.Metrics().Gauge(MetricClientConnsIdle).Value()
	active = cli.Metrics().Gauge(MetricClientConnsActive).Value()
	if idle != 0 || active != 0 {
		t.Fatalf("after close: idle=%d active=%d, want 0/0", idle, active)
	}
}

// TestServerV2SkipsUnknownFrames drives a raw v2 connection into a live
// server: an unknown frame kind (with a body) and a CANCEL for a tag
// the server has never seen must both be skipped, leaving the session
// fully usable for a normal request.
func TestServerV2SkipsUnknownFrames(t *testing.T) {
	srv, _ := startServerV2(t, ClientConfig{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := wire.WriteFrameHeader(conn, wire.FrameHeader{Kind: wire.FrameKind(0x66), Tag: 12, Len: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ignored")); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteCancelFrame(conn, 424242); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteRequestV2(conn, 7, &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadResponseV2Into(conn, 7, nil)
	if err != nil {
		t.Fatalf("ping after junk frames: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("ping answered with error %q", resp.Err)
	}
}

// TestServerV2CancelFrame checks that a CANCEL frame cancels the
// in-flight tag's context server-side without costing the connection:
// the canceled op's RESP reports a context error, and the next request
// on the same conn succeeds.
func TestServerV2CancelFrame(t *testing.T) {
	// No netsim model means ops don't block server-side, so instead of
	// timing-based assertions this just exercises cancel-then-reuse.
	srv, _ := startServerV2(t, ClientConfig{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteRequestV2(conn, 3, &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteCancelFrame(conn, 3); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadResponseV2Into(conn, 3, nil); err != nil {
		t.Fatalf("response for canceled tag: %v", err)
	}
	// The conn survived both the op and its cancellation.
	if err := wire.WriteRequestV2(conn, 4, &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponseV2Into(conn, 4, nil)
	if err != nil || resp.Err != "" {
		t.Fatalf("request after CANCEL: %v / %q", err, resp.Err)
	}
}

// stubV2Server implements just enough wire v2 to script fault
// scenarios: requests whose Path is "hang" are accepted and never
// answered; everything else gets an immediate RESP. Hung conns can be
// killed to simulate a mid-exchange conn fault.
type stubV2Server struct {
	lis net.Listener

	mu    sync.Mutex
	hung  []net.Conn // conns holding an unanswered "hang" tag
	conns int
}

func newStubV2Server(t *testing.T) *stubV2Server {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	st := &stubV2Server{lis: lis}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			st.mu.Lock()
			st.conns++
			st.mu.Unlock()
			go st.serve(conn)
		}
	}()
	return st
}

func (st *stubV2Server) serve(conn net.Conn) {
	defer conn.Close()
	var first [1]byte
	if _, err := conn.Read(first[:]); err != nil || first[0] != wire.Magic2 {
		return
	}
	rd := io.MultiReader(bytes.NewReader(first[:]), conn)
	var wmu sync.Mutex
	for {
		h, err := wire.ReadFrameHeader(rd)
		if err != nil {
			return
		}
		switch h.Kind {
		case wire.FrameReq:
			req, err := wire.ReadRequestV2(rd, h, nil)
			if err != nil {
				return
			}
			if req.Path == "hang" {
				st.mu.Lock()
				st.hung = append(st.hung, conn)
				st.mu.Unlock()
				continue // never answer
			}
			wmu.Lock()
			err = wire.WriteResponseV2(conn, h.Tag, &wire.Response{N: 1}, 0)
			wmu.Unlock()
			if err != nil {
				return
			}
		default:
			if err := wire.DiscardFrameBody(rd, h); err != nil {
				return
			}
		}
	}
}

func (st *stubV2Server) killHung() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, c := range st.hung {
		c.Close()
	}
	st.hung = nil
}

func (st *stubV2Server) connCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.conns
}

// TestMuxConnFaultFailsOnlyItsTags pins the v2 fault boundary: killing
// one muxed conn mid-exchange fails exactly the tags in flight on that
// conn; requests on other conns of the same client are untouched, and
// the client recovers on a fresh conn afterwards. MuxWindow 1 forces
// the hung tag and the healthy tag onto different conns; retries are
// disabled so the raw transport error surfaces.
func TestMuxConnFaultFailsOnlyItsTags(t *testing.T) {
	st := newStubV2Server(t)
	cli := NewClientWith(st.lis.Addr().String(), ClientConfig{
		WireV2:    true,
		MuxWindow: 1,
		Retry:     RetryPolicy{MaxRetries: -1, BreakerThreshold: -1},
	})
	defer cli.Close()
	ctx := ctxT(t)

	hangErr := make(chan error, 1)
	go func() {
		_, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "hang"})
		hangErr <- err
	}()
	// Wait until the stub holds the hung tag (its conn is pinned).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st.mu.Lock()
		n := len(st.hung)
		st.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stub never saw the hang request")
		}
		time.Sleep(time.Millisecond)
	}

	// A second request rides a second conn (window 1) and succeeds while
	// the first tag is still in flight on the faulted-to-be conn.
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "ok"}); err != nil {
		t.Fatalf("healthy-conn request failed: %v", err)
	}

	st.killHung()
	err := <-hangErr
	if err == nil {
		t.Fatal("request on the killed conn reported success")
	}
	if IsServerError(err) {
		t.Fatalf("conn fault surfaced as a server error (breaks failover): %v", err)
	}

	// The mux recovers: the next request succeeds, reusing the healthy
	// conn (now idle) rather than dialing a third.
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "again"}); err != nil {
		t.Fatalf("request after conn fault: %v", err)
	}
	if got := st.connCount(); got != 2 {
		t.Fatalf("stub saw %d conns, want 2 (hung + healthy; recovery reuses healthy)", got)
	}
}

// TestMuxAbandonSendsCancel checks the client side of cancellation: a
// caller whose context dies abandons its tag and emits a CANCEL frame,
// the error is transport-class, and the conn remains usable for the
// next request.
func TestMuxAbandonSendsCancel(t *testing.T) {
	st := newStubV2Server(t)
	cli := NewClientWith(st.lis.Addr().String(), ClientConfig{
		WireV2: true,
		Retry:  RetryPolicy{MaxRetries: -1, BreakerThreshold: -1},
	})
	defer cli.Close()

	ctx, cancel := context.WithCancel(ctxT(t))
	done := make(chan error, 1)
	go func() {
		_, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "hang"})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st.mu.Lock()
		n := len(st.hung)
		st.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stub never saw the hang request")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if err == nil || IsServerError(err) {
		t.Fatalf("abandoned call returned %v; want a transport-class error", err)
	}
	// Same conn, next tag: the abandonment did not poison the mux.
	if _, err := cli.Do(ctxT(t), &wire.Request{Op: wire.OpStat, Path: "ok"}); err != nil {
		t.Fatalf("request after abandon: %v", err)
	}
	if got := st.connCount(); got != 1 {
		t.Fatalf("stub saw %d conns, want 1 (abandon must not cost the conn)", got)
	}
}
