// Package server implements the DPFS I/O server of Section 2: a
// process on a storage machine that accepts brick requests over TCP and
// performs the actual I/O through the local file system API, storing
// each DPFS file's local bricks as one subfile. Requests from different
// connections are serviced concurrently (one goroutine per connection);
// an optional netsim.Model shapes service time to emulate the paper's
// heterogeneous storage classes.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpfs/internal/gossip"
	"dpfs/internal/netsim"
	"dpfs/internal/obs"
	"dpfs/internal/wire"
)

// Config configures a server.
type Config struct {
	// Root is the directory under which subfiles are stored.
	Root string
	// Model, when non-nil, charges simulated service time per request.
	Model *netsim.Model
	// Name labels the server in errors and logs.
	Name string
	// Events, when non-nil, receives the server's state-transition
	// events (drain begin/end, stale generations); nil falls back to
	// the process-wide obs.Events() log.
	Events *obs.EventLog
	// SlowRequest, when positive, emits a slow_request event (with the
	// request's span tree, when sampled) for any request whose handling
	// exceeds the threshold.
	SlowRequest time.Duration
	// WireV2 makes this server's own outbound connections (repair
	// OpCopy pulls from peer servers) speak wire v2. Inbound protocol
	// handling needs no flag: the server sniffs each connection's first
	// byte and serves whichever wire version the client opened with.
	WireV2 bool
}

// Server metric names (in the server's obs.Registry). Latency
// histograms record microseconds; the per-op handler histograms are
// named "op_<name>_us" (op_read_us, op_write_us, ...).
const (
	MetricActiveConns    = "active_conns"
	MetricConnsTotal     = "conns_total"
	MetricRequests       = "requests_total"
	MetricErrors         = "errors_total"
	MetricBytesIn        = "bytes_in_total"
	MetricBytesOut       = "bytes_out_total"
	MetricSubfileIO      = "subfile_io_us"
	MetricNetsimWait     = "netsim_wait_us"
	MetricCopyBytes      = "copy_bytes_total"
	MetricCopyPeerErrors = "copy_peer_errors_total"
	MetricDiskErrors     = "disk_errors_total"
	// MetricGossipDeltasSent counts gossip table deltas piggybacked on
	// outgoing responses (DESIGN.md §14).
	MetricGossipDeltasSent = "gossip_deltas_sent_total"
)

// OpMetric names the handler latency histogram for an op.
func OpMetric(op wire.Op) string {
	return "op_" + strings.ToLower(op.String()) + "_us"
}

// serverTraceCap bounds the per-server ring of recent sampled request
// traces served at /debug/trace.
const serverTraceCap = 256

// Server is one DPFS I/O server instance.
type Server struct {
	cfg    Config
	lis    net.Listener
	reg    *obs.Registry
	traces *obs.TraceLog
	events *obs.EventLog

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	files    map[string]*subfile
	gens     map[string]int64 // local base path → highest generation seen
	closed   bool
	draining bool
	wg       sync.WaitGroup

	// gossip, when set, is the server's membership node: inbound
	// connections opening with the gossip magic are handed to it, and
	// table deltas piggyback on outgoing responses (DESIGN.md §14).
	gossip atomic.Pointer[gossip.Node]

	ctx    context.Context
	cancel context.CancelFunc
}

// connState tracks what Shutdown drains: busy marks a v1 connection
// mid-request, inflight counts a v2 connection's outstanding tags.
// Connections with neither finish (and flush) their claimed work; idle
// ones are closed immediately.
type connState struct {
	busy     bool
	inflight int
	// gossipVer is the gossip-table version this connection last saw:
	// each client conn receives each membership change exactly once,
	// piggybacked on whatever response goes out next.
	gossipVer uint64
}

// subfile is an open local file with a reference to keep handle reuse
// cheap across requests.
type subfile struct {
	mu sync.Mutex // serializes size-extending writes
	f  *os.File
}

// Listen starts a server on addr ("" picks an ephemeral loopback
// port).
func Listen(cfg Config, addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	return New(cfg, lis)
}

// New starts a server on an existing listener.
func New(cfg Config, lis net.Listener) (*Server, error) {
	if cfg.Root == "" {
		return nil, errors.New("server: Config.Root is required")
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("server: create root: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		lis:    lis,
		reg:    obs.NewRegistry(),
		traces: obs.NewTraceLog(serverTraceCap),
		events: cfg.Events,
		conns:  make(map[net.Conn]*connState),
		files:  make(map[string]*subfile),
		gens:   make(map[string]int64),
		ctx:    ctx,
		cancel: cancel,
	}
	if s.events == nil {
		s.events = obs.Events()
	}
	if cfg.Model != nil {
		s.reg.RegisterHistogram(MetricNetsimWait, cfg.Model.WaitHistogram())
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Model returns the server's performance model (may be nil).
func (s *Server) Model() *netsim.Model { return s.cfg.Model }

// Metrics returns the server's metric registry: connection and session
// gauges, per-op handler latency histograms, bytes in/out, subfile I/O
// time and (when a model is attached) the netsim wait histogram.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Traces returns the server's ring of recent sampled request traces
// (requests that arrived carrying wire trace context). Served at
// /debug/trace by the daemon.
func (s *Server) Traces() *obs.TraceLog { return s.traces }

// component names the server in event-log entries.
func (s *Server) component() string {
	if s.cfg.Name != "" {
		return "server/" + s.cfg.Name
	}
	return "server"
}

// Close stops the server immediately: the listener and every
// connection are torn down without waiting for in-flight requests. Use
// Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.closeFiles()
	return err
}

// Shutdown drains the server: it stops accepting connections, lets
// every request already being served finish and flush its response,
// closes idle connections immediately, and refuses requests that arrive
// after the drain began (their connections drop, so clients retry or
// fail over). When ctx expires first, the remaining connections are
// torn down Close-style. Either way the listener is closed and all
// handler goroutines have exited on return.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	for c, st := range s.conns {
		if !st.busy && st.inflight == 0 {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.events.Emit(obs.EventDrainBegin, s.component(), nil)

	forced := false
	err := s.lis.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: abandon the drain and force-close what remains.
		forced = true
		s.cancel()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	s.cancel()
	s.closeFiles()
	s.events.Emit(obs.EventDrainEnd, s.component(),
		map[string]string{"forced": strconv.FormatBool(forced)})
	return err
}

func (s *Server) closeFiles() {
	s.mu.Lock()
	for _, sf := range s.files {
		sf.f.Close()
	}
	s.files = nil // open() refuses from here on
	s.mu.Unlock()
}

// Draining reports whether a graceful Shutdown is in progress or done.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// HealthState summarizes the server's degraded-state signals for a
// health endpoint: cumulative local disk I/O failures and failures
// reaching copy-source peers during repair.
type HealthState struct {
	Status         string `json:"status"` // "ok", "degraded" or "draining"
	DiskErrors     int64  `json:"disk_errors"`
	CopyPeerErrors int64  `json:"copy_peer_errors"`
}

// SetGossip attaches a gossip membership node: inbound connections
// opening with gossip.Magic are routed to it, and table deltas
// piggyback on outgoing responses so clients track membership at RPC
// latency. Safe to call at any time; nil detaches.
func (s *Server) SetGossip(n *gossip.Node) {
	s.gossip.Store(n)
}

// Gossip returns the attached gossip node (nil when gossip is off).
func (s *Server) Gossip() *gossip.Node {
	return s.gossip.Load()
}

// GenHighWater returns the highest subfile generation this server has
// observed across all bases — the mark gossip spreads so repair can
// plan without the catalog.
func (s *Server) GenHighWater() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hw int64
	for _, g := range s.gens {
		if g > hw {
			hw = g
		}
	}
	return hw
}

// attachDelta piggybacks a gossip table delta on resp when the table
// advanced past what this connection last saw. Best-effort: the
// response goes out unchanged when gossip is off or the table is
// quiet.
func (s *Server) attachDelta(st *connState, resp *wire.Response) {
	g := s.gossip.Load()
	if g == nil || st == nil || resp == nil {
		return
	}
	s.mu.Lock()
	last := st.gossipVer
	s.mu.Unlock()
	delta, v := g.DeltaSince(last)
	if v == last {
		return
	}
	s.mu.Lock()
	if st.gossipVer < v {
		st.gossipVer = v
	}
	s.mu.Unlock()
	if delta != nil {
		resp.Delta = delta
		s.reg.Counter(MetricGossipDeltasSent).Inc()
	}
}

// Health reports the server's current health classification.
func (s *Server) Health() HealthState {
	h := HealthState{
		Status:         "ok",
		DiskErrors:     s.reg.Counter(MetricDiskErrors).Value(),
		CopyPeerErrors: s.reg.Counter(MetricCopyPeerErrors).Value(),
	}
	if h.DiskErrors > 0 || h.CopyPeerErrors > 0 {
		h.Status = "degraded"
	}
	if s.Draining() {
		h.Status = "draining"
	}
	return h
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	s.reg.Counter(MetricConnsTotal).Inc()
	s.reg.Gauge(MetricActiveConns).Inc()
	// connCtx scopes every op of this connection: it dies with the
	// server, and (while an op is in flight on a shaped server) with
	// the peer — see watchPeer (v1) and the frame read loop (v2).
	connCtx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	defer func() {
		s.reg.Gauge(MetricActiveConns).Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// Version sniff: the first byte of a connection is the protocol
	// magic — 0xD9 opens a v1 one-exchange-at-a-time session, 0xDA a
	// v2 tagged-frame session, 0xDB one gossip exchange. All three
	// share one port, so mixed fleets, rolling -wire-v2 flips and the
	// gossip health plane need no extra listeners or coordination.
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	if first[0] == wire.Magic2 {
		s.handleConnV2(connCtx, cancel, conn, first[0])
		return
	}
	if first[0] == gossip.Magic {
		if g := s.gossip.Load(); g != nil {
			gossip.ServeConn(conn, g)
		}
		return
	}
	// v1 reads stay unbuffered past the replayed sniff byte: watchPeer
	// probes the raw conn mid-op, which a read-ahead buffer would break.
	rd := io.MultiReader(bytes.NewReader(first[:]), conn)
	for {
		req, err := wire.ReadRequest(rd)
		if err != nil {
			return // disconnect or framing error
		}
		// Claim the request against a concurrent drain: once draining,
		// new requests are refused (the connection drops and the client
		// retries or fails over); requests claimed before the drain run
		// to completion and their responses flush.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		st := s.conns[conn]
		if st == nil {
			s.mu.Unlock()
			return
		}
		st.busy = true
		s.mu.Unlock()
		var resp *wire.Response
		poisoned := false
		if s.cfg.Model != nil {
			// Shaped servers hold the simulated device for the op's
			// whole service time; watch the peer so a client that
			// gave up (timeout, retry elsewhere) releases the device
			// instead of leaving it busy.
			reqCtx, reqCancel := context.WithCancel(connCtx)
			stop := s.watchPeer(conn, reqCancel)
			resp = s.dispatch(reqCtx, req)
			poisoned = stop()
			reqCancel()
		} else {
			resp = s.dispatch(connCtx, req)
		}
		s.attachDelta(st, resp)
		err = wire.WriteResponse(conn, resp)
		if req.Op == wire.OpRead && resp.Data != nil {
			// Read responses carry a pooled buffer; it is ours again
			// once the frame is flushed (or failed).
			putReadBuf(resp.Data)
		}
		s.mu.Lock()
		st.busy = false
		drain := s.draining
		s.mu.Unlock()
		if err != nil || poisoned || drain {
			return
		}
	}
}

// handleConnV2 serves a wire-v2 tagged-frame session: the read loop
// decodes frames, each REQ frame spawns a handler goroutine for its
// tag, and responses are written back in completion order — frames of
// different tags interleave on the wire as subfile I/O completes, so
// one connection carries a whole dispatch burst. CANCEL frames cancel
// the named tag's context (the v2 replacement for both the v1
// conn-kill cancellation path and most of watchPeer's job: a client
// that gives up on a tag says so without giving up the conn; a peer
// that disconnects entirely still ends connCtx via the read loop's
// exit). first is the already-sniffed magic byte, replayed into the
// frame reader.
func (s *Server) handleConnV2(connCtx context.Context, cancel context.CancelFunc, conn net.Conn, first byte) {
	br := bufio.NewReaderSize(io.MultiReader(bytes.NewReader([]byte{first}), conn), 64<<10)
	var wmu sync.Mutex // serializes response frames across tag handlers
	var wg sync.WaitGroup
	// Handlers must finish (and flush) before handleConn closes the
	// conn; the read loop's exit cancels connCtx first so ops aborted
	// by a disconnect don't run to completion against a dead peer.
	defer wg.Wait()
	defer cancel()
	var cmu sync.Mutex
	tagCancels := make(map[uint32]context.CancelFunc)
	for {
		h, err := wire.ReadFrameHeader(br)
		if err != nil {
			return // disconnect or framing error
		}
		switch h.Kind {
		case wire.FrameReq:
			req, err := wire.ReadRequestV2(br, h, getReadBuf)
			if err != nil {
				return
			}
			// Claim the tag against a concurrent drain, mirroring the v1
			// busy flag: refused claims drop the conn (clients retry or
			// fail over), claimed tags run to completion and flush.
			s.mu.Lock()
			st := s.conns[conn]
			if s.draining || st == nil {
				s.mu.Unlock()
				if req.Data != nil {
					putReadBuf(req.Data)
				}
				return
			}
			st.inflight++
			s.mu.Unlock()
			reqCtx, reqCancel := context.WithCancel(connCtx)
			cmu.Lock()
			tagCancels[h.Tag] = reqCancel
			cmu.Unlock()
			wg.Add(1)
			go func(tag uint32, req *wire.Request) {
				defer wg.Done()
				s.serveTagV2(reqCtx, conn, st, &wmu, tag, req)
				reqCancel()
				cmu.Lock()
				delete(tagCancels, tag)
				cmu.Unlock()
				s.releaseV2(conn, st)
			}(h.Tag, req)
		case wire.FrameCancel:
			// Cancel the tag's in-flight op; a CANCEL for an unknown
			// (already finished, never started) tag is silently ignored.
			cmu.Lock()
			if c := tagCancels[h.Tag]; c != nil {
				c()
			}
			cmu.Unlock()
			if err := wire.DiscardFrameBody(br, h); err != nil {
				return
			}
		case wire.FrameData:
			// Request payloads are consumed inside ReadRequestV2; a DATA
			// frame here means the stream lost framing — drop the conn.
			return
		default:
			// Unknown kinds are skipped for forward compatibility; they
			// must not fail the session or any in-flight tag.
			if err := wire.DiscardFrameBody(br, h); err != nil {
				return
			}
		}
	}
}

// serveTagV2 runs one tagged request and writes its response frames.
// Read payloads stream as DATA frames chunk by chunk (the write mutex
// is held per frame, so a large read does not block other tags'
// responses); the RESP trailer then closes the tag — carrying the
// error when the op failed, even mid-stream, which is why a failed
// read no longer costs the connection.
func (s *Server) serveTagV2(ctx context.Context, conn net.Conn, st *connState, wmu *sync.Mutex, tag uint32, req *wire.Request) {
	var wErr error
	emit := func(chunk []byte) error {
		wmu.Lock()
		err := wire.WriteDataFrame(conn, tag, chunk)
		wmu.Unlock()
		if err != nil {
			wErr = err
		}
		return err
	}
	resp, streamed := s.dispatchEmit(ctx, req, emit)
	if req.Data != nil {
		// The request payload buffer came from the read pool
		// (ReadRequestV2's alloc hook) and the op is done with it.
		putReadBuf(req.Data)
	}
	if wErr != nil {
		// A failed DATA write may have left a partial frame on the
		// wire: the stream is desynchronized, kill the session.
		conn.Close()
		return
	}
	s.attachDelta(st, resp)
	wmu.Lock()
	err := wire.WriteResponseV2(conn, tag, resp, streamed)
	wmu.Unlock()
	if req.Op == wire.OpRead && resp.Data != nil {
		putReadBuf(resp.Data)
	}
	if err != nil {
		conn.Close()
	}
}

// releaseV2 returns a tag's drain claim. The read loop can be blocked
// in a frame read and so cannot poll the drain flag; the last handler
// to finish on a draining conn closes it, which both unblocks that
// read and signals the client.
func (s *Server) releaseV2(conn net.Conn, st *connState) {
	s.mu.Lock()
	st.inflight--
	drainClose := s.draining && st.inflight == 0
	s.mu.Unlock()
	if drainClose {
		conn.Close()
	}
}

// watchPeer watches conn for disconnection while one op is in flight.
// It exists only for wire v1 sessions on shaped servers — under v2 the
// read loop stays open concurrently with ops, so peer disconnection
// surfaces there and per-op cancellation arrives as CANCEL frames.
// The v1 protocol is strictly request/response — the client sends
// nothing until it has our reply — so any readability mid-op means the
// peer closed or reset the connection, and the op's context is
// cancelled.
// The returned stop function unblocks the watcher and reports whether
// the stream is poisoned (unexpected bytes arrived mid-op, so the
// connection must be dropped after the in-flight response). Call it
// BEFORE writing the response, or the watcher could swallow the first
// byte of the next request.
func (s *Server) watchPeer(conn net.Conn, cancel context.CancelFunc) (stop func() (poisoned bool)) {
	done := make(chan struct{})
	var sawData bool
	go func() {
		defer close(done)
		var b [1]byte
		n, err := conn.Read(b[:])
		if n > 0 {
			sawData = true
			return
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return // stop() poked the deadline: the op finished first
		}
		cancel() // peer closed/reset mid-op: free the device
	}()
	return func() bool {
		_ = conn.SetReadDeadline(time.Now()) // unblock the watcher
		<-done
		_ = conn.SetReadDeadline(time.Time{})
		return sawData
	}
}

// readBufPool recycles read-path extent buffers across requests:
// opRead draws from it and handleConn returns the buffer after the
// response frame is flushed, so steady-state reads allocate nothing
// per request.
var readBufPool sync.Pool

func getReadBuf(n int64) []byte {
	if p, ok := readBufPool.Get().(*[]byte); ok {
		if int64(cap(*p)) >= n {
			return (*p)[:n]
		}
	}
	return make([]byte, n)
}

func putReadBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	readBufPool.Put(&b)
}

func (s *Server) dispatch(ctx context.Context, req *wire.Request) *wire.Response {
	resp, _ := s.dispatchEmit(ctx, req, nil)
	return resp
}

// dispatchEmit is dispatch with an optional streaming sink: when emit
// is non-nil, read payloads are pushed through it as chunks instead of
// being buffered into the response, and the returned streamed count is
// what went through (the caller folds it into its RESP trailer).
// Metrics, spans and slow-request accounting cover streamed bytes the
// same as buffered ones.
func (s *Server) dispatchEmit(ctx context.Context, req *wire.Request, emit func([]byte) error) (*wire.Response, int64) {
	start := time.Now()
	s.reg.Counter(MetricRequests).Inc()
	s.reg.Counter(MetricBytesIn).Add(int64(len(req.Data)))
	// A sampled request carries wire trace context: open a server-side
	// span under the client's RPC span so the client (which receives
	// the span tree in the response trailer) and this server's own
	// /debug/trace both see the stitched tree.
	var sp *obs.Span
	if req.TraceID != 0 && req.Sampled {
		sp = obs.StartRemote("server.request",
			obs.TraceContext{TraceID: req.TraceID, SpanID: req.SpanID, Sampled: true})
		sp.Op = strings.ToLower(req.Op.String())
		sp.Path = req.Path
		sp.Server = s.cfg.Name
		sp.Extents = len(req.Extents)
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	var streamed int64
	var count func([]byte) error
	if emit != nil {
		count = func(chunk []byte) error {
			err := emit(chunk)
			if err == nil {
				streamed += int64(len(chunk))
			}
			return err
		}
	}
	resp, err := s.serve(ctx, req, count)
	if err != nil {
		s.reg.Counter(MetricErrors).Inc()
		resp = &wire.Response{Err: fmt.Sprintf("%s: %v", s.cfg.Name, err)}
	}
	elapsed := time.Since(start)
	if sp != nil {
		sp.Bytes = int64(len(req.Data)) + int64(len(resp.Data)) + streamed
		sp.End()
		s.traces.Add(&obs.Trace{Root: sp})
		resp.Trace = obs.EncodeSpans(sp)
	}
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		fields := map[string]string{
			"op":     req.Op.String(),
			"path":   req.Path,
			"dur_us": strconv.FormatInt(elapsed.Microseconds(), 10),
		}
		if sp != nil {
			fields["trace"] = (&obs.Trace{Root: sp}).String()
		}
		s.events.EmitTrace(obs.EventSlowRequest, s.component(), req.TraceID, fields)
	}
	s.reg.Histogram(OpMetric(req.Op)).Record(elapsed.Microseconds())
	s.reg.Counter(MetricBytesOut).Add(int64(len(resp.Data)) + streamed)
	return resp, streamed
}

func (s *Server) serve(ctx context.Context, req *wire.Request, emit func([]byte) error) (*wire.Response, error) {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{}, nil
	case wire.OpRead:
		if emit != nil {
			return s.opReadStream(ctx, req, emit)
		}
		return s.opRead(ctx, req)
	case wire.OpWrite:
		return s.opWrite(ctx, req)
	case wire.OpRemove:
		return s.opRemove(req)
	case wire.OpStat:
		return s.opStat(req)
	case wire.OpUsage:
		return s.opUsage()
	case wire.OpTruncate:
		return s.opTruncate(req)
	case wire.OpRename:
		return s.opRename(req)
	case wire.OpCopy:
		return s.opCopy(ctx, req)
	}
	return nil, fmt.Errorf("unknown op %v", req.Op)
}

// opCopy materializes brick slots of a subfile by copying bytes from a
// source subfile — the repair primitive. Extents pair up as (dst, src);
// the source descriptor in Data names a peer server (pull over the
// wire) or, with an empty address, this server itself (a local
// generation bump). The destination generation is recorded before any
// byte moves so a stale writer racing the repair is already fenced, but
// older on-disk generations are only removed after the copy succeeded —
// the local source may BE such an older generation.
func (s *Server) opCopy(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	srcAddr, srcPath, srcGen, err := wire.ParseCopySource(req.Data)
	if err != nil {
		return nil, err
	}
	if len(req.Extents)%2 != 0 {
		return nil, fmt.Errorf("copy needs (dst, src) extent pairs, got %d extents", len(req.Extents))
	}
	dst := make([]wire.Extent, 0, len(req.Extents)/2)
	src := make([]wire.Extent, 0, len(req.Extents)/2)
	for i := 0; i+1 < len(req.Extents); i += 2 {
		d, sr := req.Extents[i], req.Extents[i+1]
		if d.Len != sr.Len {
			return nil, fmt.Errorf("copy extent pair %d: dst %d bytes vs src %d bytes", i/2, d.Len, sr.Len)
		}
		dst = append(dst, d)
		src = append(src, sr)
	}
	total := wire.DataBytes(dst)
	if total < 0 || total > wire.MaxMessage {
		return nil, fmt.Errorf("copy of %d bytes out of range", total)
	}
	if err := s.checkGen(req.Path, req.Gen, false); err != nil {
		return nil, err
	}
	if srcAddr == "" && srcPath == "" {
		// Cleanup form: no bytes move; superseded generations of
		// req.Path are cleared. Repair sends this only after the new
		// generation is committed to the catalog, so the old copies are
		// no longer anyone's read source or crash-recovery state.
		if len(req.Extents) != 0 {
			return nil, errors.New("copy cleanup form takes no extents")
		}
		if base, err := s.localPath(req.Path); err == nil {
			s.removeOldGens(base, req.Gen)
		}
		return &wire.Response{}, nil
	}
	var data []byte
	if srcAddr == "" {
		// Local generation bump: the source is a superseded generation
		// of this same subfile, so the read must bypass the generation
		// check that the entry checkGen above just advanced.
		data, err = s.readLocal(ctx, srcPath, srcGen, src, wire.DataBytes(src))
		if err != nil {
			return nil, fmt.Errorf("copy local source: %w", err)
		}
		defer putReadBuf(data)
	} else {
		data, err = s.pullFrom(ctx, srcAddr, srcPath, srcGen, src)
		if err != nil {
			s.reg.Counter(MetricCopyPeerErrors).Inc()
			return nil, fmt.Errorf("copy from %s: %w", srcAddr, err)
		}
	}
	wreq := &wire.Request{Op: wire.OpWrite, Path: req.Path, Gen: req.Gen, Extents: dst, Data: data}
	if _, err := s.opWrite(ctx, wreq); err != nil {
		return nil, err
	}
	// Superseded generations are deliberately NOT removed here: repair
	// commits the new generation to the catalog only after every copy
	// landed, so the old generation must stay readable as the copy
	// source (and as the crash-recovery state) until then. The next
	// ordinary advancing write at the new generation cleans them.
	s.reg.Counter(MetricCopyBytes).Add(total)
	return &wire.Response{N: total}, nil
}

// pullFrom fetches extents of a subfile from a peer server over a
// dedicated connection. When the surrounding OpCopy request is traced
// the pull carries the trace context onward, so repair copies appear
// in the stitched tree as a server.rpc child with the peer's own
// spans below it.
func (s *Server) pullFrom(ctx context.Context, addr, path string, gen int64, exts []wire.Extent) ([]byte, error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	}
	preq := &wire.Request{Op: wire.OpRead, Path: path, Gen: gen, Extents: exts}
	var rpc *obs.Span
	if sp := obs.SpanFromContext(ctx); sp != nil {
		rpc = sp.Child("server.rpc")
		rpc.Op = "copy.pull"
		rpc.Server = addr
		rpc.Extents = len(exts)
		tc := rpc.Context()
		preq.TraceID, preq.SpanID, preq.Sampled = tc.TraceID, tc.SpanID, tc.Sampled
	}
	var resp *wire.Response
	if s.cfg.WireV2 {
		// Streamed pull: the peer's DATA frames arrive chunk by chunk
		// instead of one fully-buffered response body.
		const pullTag = 1
		if err := wire.WriteRequestV2(conn, pullTag, preq); err != nil {
			return nil, err
		}
		resp, err = wire.ReadResponseV2Into(conn, pullTag, nil)
	} else {
		if err := wire.WriteRequest(conn, preq); err != nil {
			return nil, err
		}
		resp, err = wire.ReadResponse(conn)
	}
	if rpc != nil {
		rpc.End()
		if err == nil && len(resp.Trace) > 0 {
			if remote, derr := obs.DecodeSpans(resp.Trace); derr == nil {
				for _, r := range remote {
					rpc.Adopt(r)
				}
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	if int64(len(resp.Data)) != wire.DataBytes(exts) {
		return nil, fmt.Errorf("source returned %d bytes for %d requested", len(resp.Data), wire.DataBytes(exts))
	}
	return resp.Data, nil
}

// subfileName maps a DPFS path and distribution generation to the wire
// subfile name. Generation 0 (legacy raw requests) addresses the bare
// path; generationed files live beside it as path@g<gen>, so two
// incarnations of the same DPFS path can never alias each other's
// bytes.
func subfileName(path string, gen int64) string {
	if gen == 0 {
		return path
	}
	return path + "@g" + strconv.FormatInt(gen, 10)
}

// checkGen enforces the monotonic-generation rule for a request, and is
// what turns a stale cached distribution into an error instead of wrong
// data. The server remembers, per subfile base, the highest generation
// any request has named (seeded from the files on disk the first time a
// base is touched — generations survive restarts through the @g names).
// A request older than that memory is stale: the path was removed and
// recreated after the client cached its distribution row, so the bricks
// it would address no longer exist — and since a missing subfile
// otherwise reads as zeros (hole semantics), without this check the
// staleness would be silent. advance is set by ops that may create the
// subfile (write, truncate): they also delete dead older-generation
// files left behind by a failed remove.
func (s *Server) checkGen(path string, gen int64, advance bool) error {
	if gen == 0 {
		return nil
	}
	base, err := s.localPath(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	seen, ok := s.gens[base]
	if !ok {
		seen = scanGens(base)
	}
	if gen > seen {
		s.gens[base] = gen
	} else {
		s.gens[base] = seen
	}
	s.mu.Unlock()
	if gen < seen {
		s.events.Emit(obs.EventStaleGen, s.component(), map[string]string{
			"path":      path,
			"req_gen":   strconv.FormatInt(gen, 10),
			"known_gen": strconv.FormatInt(seen, 10),
		})
		return fmt.Errorf("stale generation: request addresses %s at g%d but the server has seen g%d (file removed and recreated; re-open it)", path, gen, seen)
	}
	if advance && gen > seen && seen > 0 {
		// This generation supersedes older on-disk subfiles (a remove
		// that failed mid-way can leave them); they are dead weight and
		// must not be double-counted by usage.
		s.removeOldGens(base, gen)
	}
	return nil
}

// scanGens returns the highest @g generation present on disk for base
// (0 when none). Called once per base, under s.mu.
func scanGens(base string) int64 {
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		return 0
	}
	prefix := filepath.Base(base) + "@g"
	var max int64
	for _, e := range entries {
		g, ok := parseGen(e.Name(), prefix)
		if ok && g > max {
			max = g
		}
	}
	return max
}

func parseGen(name, prefix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	g, err := strconv.ParseInt(name[len(prefix):], 10, 64)
	if err != nil || g <= 0 {
		return 0, false
	}
	return g, true
}

// removeOldGens deletes on-disk generations of base older than gen.
func (s *Server) removeOldGens(base string, gen int64) {
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		return
	}
	prefix := filepath.Base(base) + "@g"
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), prefix); ok && g < gen {
			local := filepath.Join(filepath.Dir(base), e.Name())
			s.drop(local)
			_ = os.Remove(local)
		}
	}
}

// localPath maps a DPFS subfile name to a path under Root, rejecting
// escapes.
func (s *Server) localPath(p string) (string, error) {
	if p == "" {
		return "", errors.New("empty subfile path")
	}
	norm := strings.ReplaceAll(p, "\\", "/")
	for _, part := range strings.Split(norm, "/") {
		if part == ".." {
			return "", fmt.Errorf("invalid subfile path %q", p)
		}
	}
	return filepath.Join(s.cfg.Root, filepath.Clean("/"+norm)), nil
}

// open returns a cached handle for the subfile, creating it (and its
// parent directories) when create is set.
func (s *Server) open(p string, create bool) (*subfile, error) {
	local, err := s.localPath(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Gate on the file table, not the closed flag: a draining server
	// is closed to new requests but must still serve the ones it
	// claimed; only after closeFiles has run is the table gone.
	if s.files == nil {
		return nil, errors.New("server closed")
	}
	if sf, ok := s.files[local]; ok {
		return sf, nil
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
		if err := os.MkdirAll(filepath.Dir(local), 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(local, flags, 0o644)
	if err != nil {
		return nil, err
	}
	sf := &subfile{f: f}
	s.files[local] = sf
	return sf, nil
}

// drop closes and forgets a cached handle.
func (s *Server) drop(local string) {
	s.mu.Lock()
	if sf, ok := s.files[local]; ok {
		sf.f.Close()
		delete(s.files, local)
	}
	s.mu.Unlock()
}

func (s *Server) opRead(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	total := wire.DataBytes(req.Extents)
	if total < 0 || total > wire.MaxMessage {
		return nil, fmt.Errorf("read of %d bytes out of range", total)
	}
	if _, err := s.cfg.Model.Delay(ctx, len(req.Extents), total); err != nil {
		return nil, err
	}
	if err := s.checkGen(req.Path, req.Gen, false); err != nil {
		return nil, err
	}
	buf, err := s.readLocal(ctx, req.Path, req.Gen, req.Extents, total)
	if err != nil {
		return nil, err
	}
	return &wire.Response{Data: buf, N: total}, nil
}

// readLocal reads extents of one generationed subfile into a pooled
// buffer (return it with putReadBuf), bypassing the generation check:
// the caller has already enforced it, or is opCopy deliberately
// reading a superseded generation as its local copy source. A missing
// subfile and bytes past EOF read as zeros, matching hole semantics
// (client-side geometry guarantees the extents are within the file's
// logical size).
func (s *Server) readLocal(ctx context.Context, path string, gen int64, exts []wire.Extent, total int64) ([]byte, error) {
	sf, err := s.open(subfileName(path, gen), false)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			zeros := getReadBuf(total)
			for i := range zeros {
				zeros[i] = 0
			}
			return zeros, nil
		}
		return nil, err
	}
	buf := getReadBuf(total)
	pos := int64(0)
	sub := s.subfileSpan(ctx, "read", exts, total)
	ioStart := time.Now()
	for _, e := range exts {
		if e.Len < 0 || e.Off < 0 {
			return nil, fmt.Errorf("invalid extent [%d,%d)", e.Off, e.Off+e.Len)
		}
		n, err := sf.f.ReadAt(buf[pos:pos+e.Len], e.Off)
		if err != nil && err != io.EOF {
			s.reg.Counter(MetricDiskErrors).Inc()
			return nil, err
		}
		for i := pos + int64(n); i < pos+e.Len; i++ {
			buf[i] = 0
		}
		pos += e.Len
	}
	if sub != nil {
		sub.End()
	}
	s.reg.Histogram(MetricSubfileIO).Record(time.Since(ioStart).Microseconds())
	return buf, nil
}

// opReadStream is the wire-v2 read path: instead of buffering the
// whole payload, it reads extents through one pooled StreamChunk-sized
// buffer and pushes each filled chunk through emit (a DATA frame), so
// a large brick read holds O(StreamChunk) memory and other tags'
// frames interleave between chunks. Semantics match opRead/readLocal
// exactly — netsim delay, generation check, and zeros for a missing
// subfile or reads past EOF.
func (s *Server) opReadStream(ctx context.Context, req *wire.Request, emit func([]byte) error) (*wire.Response, error) {
	total := wire.DataBytes(req.Extents)
	if total < 0 || total > wire.MaxMessage {
		return nil, fmt.Errorf("read of %d bytes out of range", total)
	}
	if _, err := s.cfg.Model.Delay(ctx, len(req.Extents), total); err != nil {
		return nil, err
	}
	if err := s.checkGen(req.Path, req.Gen, false); err != nil {
		return nil, err
	}
	var sf *subfile
	missing := false
	if f, err := s.open(subfileName(req.Path, req.Gen), false); err == nil {
		sf = f
	} else if errors.Is(err, fs.ErrNotExist) {
		missing = true // whole subfile reads as zeros (hole semantics)
	} else {
		return nil, err
	}
	chunkCap := int64(wire.StreamChunk)
	if total < chunkCap {
		chunkCap = total
	}
	chunk := getReadBuf(chunkCap)
	defer putReadBuf(chunk)
	pend := int64(0)
	flush := func() error {
		if pend == 0 {
			return nil
		}
		err := emit(chunk[:pend])
		pend = 0
		return err
	}
	sub := s.subfileSpan(ctx, "read", req.Extents, total)
	ioStart := time.Now()
	for _, e := range req.Extents {
		if e.Len < 0 || e.Off < 0 {
			return nil, fmt.Errorf("invalid extent [%d,%d)", e.Off, e.Off+e.Len)
		}
		off, rem := e.Off, e.Len
		for rem > 0 {
			take := rem
			if room := chunkCap - pend; take > room {
				take = room
			}
			dst := chunk[pend : pend+take]
			if missing {
				for i := range dst {
					dst[i] = 0
				}
			} else {
				n, err := sf.f.ReadAt(dst, off)
				if err != nil && err != io.EOF {
					s.reg.Counter(MetricDiskErrors).Inc()
					return nil, err
				}
				for i := n; i < len(dst); i++ {
					dst[i] = 0
				}
			}
			pend += take
			off += take
			rem -= take
			if pend == chunkCap {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if sub != nil {
		sub.End()
	}
	s.reg.Histogram(MetricSubfileIO).Record(time.Since(ioStart).Microseconds())
	return &wire.Response{N: total}, nil
}

// subfileSpan opens a server.subfile child span under the request's
// span (nil when the request is untraced), covering the local I/O
// loop that MetricSubfileIO times.
func (s *Server) subfileSpan(ctx context.Context, op string, exts []wire.Extent, total int64) *obs.Span {
	sp := obs.SpanFromContext(ctx)
	if sp == nil {
		return nil
	}
	sub := sp.Child("server.subfile")
	sub.Op = op
	sub.Extents = len(exts)
	sub.Bytes = total
	return sub
}

func (s *Server) opWrite(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	total := wire.DataBytes(req.Extents)
	if total != int64(len(req.Data)) {
		return nil, fmt.Errorf("write carries %d bytes for %d bytes of extents", len(req.Data), total)
	}
	if _, err := s.cfg.Model.Delay(ctx, len(req.Extents), total); err != nil {
		return nil, err
	}
	if err := s.checkGen(req.Path, req.Gen, true); err != nil {
		return nil, err
	}
	sf, err := s.open(subfileName(req.Path, req.Gen), true)
	if err != nil {
		return nil, err
	}
	pos := int64(0)
	sub := s.subfileSpan(ctx, "write", req.Extents, total)
	ioStart := time.Now()
	for _, e := range req.Extents {
		if e.Len < 0 || e.Off < 0 {
			return nil, fmt.Errorf("invalid extent [%d,%d)", e.Off, e.Off+e.Len)
		}
		if _, err := sf.f.WriteAt(req.Data[pos:pos+e.Len], e.Off); err != nil {
			s.reg.Counter(MetricDiskErrors).Inc()
			return nil, err
		}
		pos += e.Len
	}
	if sub != nil {
		sub.End()
	}
	s.reg.Histogram(MetricSubfileIO).Record(time.Since(ioStart).Microseconds())
	return &wire.Response{N: total}, nil
}

func (s *Server) opRemove(req *wire.Request) (*wire.Response, error) {
	if err := s.checkGen(req.Path, req.Gen, false); err != nil {
		return nil, err
	}
	local, err := s.localPath(subfileName(req.Path, req.Gen))
	if err != nil {
		return nil, err
	}
	s.drop(local)
	if err := os.Remove(local); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	return &wire.Response{}, nil
}

func (s *Server) opStat(req *wire.Request) (*wire.Response, error) {
	if err := s.checkGen(req.Path, req.Gen, false); err != nil {
		return nil, err
	}
	local, err := s.localPath(subfileName(req.Path, req.Gen))
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(local)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &wire.Response{N: 0}, nil
		}
		return nil, err
	}
	return &wire.Response{N: st.Size()}, nil
}

// opUsage walks the root and sums stored bytes: the live counterpart of
// the DPFS-SERVER capacity bookkeeping.
func (s *Server) opUsage() (*wire.Response, error) {
	var total int64
	err := filepath.WalkDir(s.cfg.Root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		s.reg.Counter(MetricDiskErrors).Inc()
		return nil, err
	}
	return &wire.Response{N: total}, nil
}

// opRename moves a subfile to a new name (both confined under Root).
// Renaming a subfile that does not exist yet succeeds: sparse DPFS
// files may have no bricks on some servers.
func (s *Server) opRename(req *wire.Request) (*wire.Response, error) {
	if err := s.checkGen(req.Path, req.Gen, false); err != nil {
		return nil, err
	}
	// The destination inherits the generation; advance its base so dead
	// leftovers under the new name are cleared.
	if err := s.checkGen(string(req.Data), req.Gen, true); err != nil {
		return nil, err
	}
	oldLocal, err := s.localPath(subfileName(req.Path, req.Gen))
	if err != nil {
		return nil, err
	}
	newLocal, err := s.localPath(subfileName(string(req.Data), req.Gen))
	if err != nil {
		return nil, err
	}
	s.drop(oldLocal)
	s.drop(newLocal)
	if err := os.MkdirAll(filepath.Dir(newLocal), 0o755); err != nil {
		return nil, err
	}
	if err := os.Rename(oldLocal, newLocal); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &wire.Response{}, nil
		}
		return nil, err
	}
	return &wire.Response{N: 1}, nil
}

func (s *Server) opTruncate(req *wire.Request) (*wire.Response, error) {
	if len(req.Extents) != 1 {
		return nil, errors.New("truncate needs exactly one extent")
	}
	if err := s.checkGen(req.Path, req.Gen, true); err != nil {
		return nil, err
	}
	sf, err := s.open(subfileName(req.Path, req.Gen), true)
	if err != nil {
		return nil, err
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if err := sf.f.Truncate(req.Extents[0].Len); err != nil {
		return nil, err
	}
	return &wire.Response{}, nil
}
