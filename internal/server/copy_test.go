package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpfs/internal/wire"
)

// writeAt is a test shorthand for one OpWrite.
func writeAt(t *testing.T, cli *Client, path string, gen, off int64, data []byte) {
	t.Helper()
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpWrite, Path: path, Gen: gen,
		Extents: []wire.Extent{{Off: off, Len: int64(len(data))}}, Data: data,
	}); err != nil {
		t.Fatal(err)
	}
}

func readAt(t *testing.T, cli *Client, path string, gen, off, n int64) []byte {
	t.Helper()
	resp, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpRead, Path: path, Gen: gen,
		Extents: []wire.Extent{{Off: off, Len: n}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Data
}

// TestCopyPullFromPeer: the repair pull form — a destination server
// fetches brick extents from a source server's subfile and writes them
// at its own (destination) offsets.
func TestCopyPullFromPeer(t *testing.T) {
	src, srcCli := startServer(t, nil)
	_, dstCli := startServer(t, nil)

	// Source holds two bricks at slots 0 and 1 of gen 2.
	srcData0 := bytes.Repeat([]byte{0xAB}, 4096)
	srcData1 := bytes.Repeat([]byte{0xCD}, 4096)
	writeAt(t, srcCli, "f.dat", 2, 0, srcData0)
	writeAt(t, srcCli, "f.dat", 2, 4096, srcData1)
	// Pull both bricks: on dst they land at slots 1 and 0 (swapped),
	// exercising independent (dst, src) extent pairs.
	if _, err := dstCli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 2,
		Extents: []wire.Extent{
			{Off: 4096, Len: 4096}, {Off: 0, Len: 4096}, // dst slot 1 <- src slot 0
			{Off: 0, Len: 4096}, {Off: 4096, Len: 4096}, // dst slot 0 <- src slot 1
		},
		Data: []byte(wire.FormatCopySource(src.Addr(), "f.dat", 2)),
	}); err != nil {
		t.Fatal(err)
	}
	if got := readAt(t, dstCli, "f.dat", 2, 4096, 4096); !bytes.Equal(got, srcData0) {
		t.Fatal("pulled brick at dst slot 1 diverges from source slot 0")
	}
	if got := readAt(t, dstCli, "f.dat", 2, 0, 4096); !bytes.Equal(got, srcData1) {
		t.Fatal("pulled brick at dst slot 0 diverges from source slot 1")
	}
}

// TestCopyLocalGenBump: the repair retention form — a server carries
// its own bricks into a new generation, leaving the old generation's
// subfile on disk (crash safety: the catalog may still point at it).
func TestCopyLocalGenBump(t *testing.T) {
	srv, cli := startServer(t, nil)
	data := bytes.Repeat([]byte{0x5A}, 4096)
	writeAt(t, cli, "f.dat", 1, 0, data)

	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 3,
		Extents: []wire.Extent{{Off: 0, Len: 4096}, {Off: 0, Len: 4096}},
		Data:    []byte(wire.FormatCopySource("", "f.dat", 1)),
	}); err != nil {
		t.Fatal(err)
	}
	if got := readAt(t, cli, "f.dat", 3, 0, 4096); !bytes.Equal(got, data) {
		t.Fatal("bumped generation diverges from the original bytes")
	}
	// The old generation must still exist on disk: repair has not
	// committed the catalog yet, and a crash now must leave gen 1
	// recoverable.
	if _, err := os.Stat(filepath.Join(srv.cfg.Root, "f.dat@g1")); err != nil {
		t.Fatalf("old generation removed before cleanup: %v", err)
	}
	// But serving it is refused: the server's gen memory moved on.
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpRead, Path: "f.dat", Gen: 1,
		Extents: []wire.Extent{{Off: 0, Len: 4096}},
	}); err == nil || !strings.Contains(err.Error(), "stale generation") {
		t.Fatalf("read at superseded gen = %v, want stale generation", err)
	}
}

// TestCopyCleanupForm: the post-commit form deletes superseded on-disk
// generations and leaves the committed one serving.
func TestCopyCleanupForm(t *testing.T) {
	srv, cli := startServer(t, nil)
	data := bytes.Repeat([]byte{0x77}, 4096)
	writeAt(t, cli, "f.dat", 1, 0, data)
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 2,
		Extents: []wire.Extent{{Off: 0, Len: 4096}, {Off: 0, Len: 4096}},
		Data:    []byte(wire.FormatCopySource("", "f.dat", 1)),
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 2,
		Data: []byte(wire.FormatCopySource("", "", 0)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(srv.cfg.Root, "f.dat@g1")); !os.IsNotExist(err) {
		t.Fatalf("cleanup left the superseded generation on disk (err=%v)", err)
	}
	if got := readAt(t, cli, "f.dat", 2, 0, 4096); !bytes.Equal(got, data) {
		t.Fatal("committed generation lost after cleanup")
	}

	// The cleanup form takes no extents.
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 2,
		Extents: []wire.Extent{{Off: 0, Len: 1}, {Off: 0, Len: 1}},
		Data:    []byte(wire.FormatCopySource("", "", 0)),
	}); err == nil {
		t.Fatal("cleanup form with extents accepted, want error")
	}
}

// TestCopyValidation covers the malformed-request guards.
func TestCopyValidation(t *testing.T) {
	_, cli := startServer(t, nil)
	// Odd extent count: extents must come in (dst, src) pairs.
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 1,
		Extents: []wire.Extent{{Off: 0, Len: 4096}},
		Data:    []byte(wire.FormatCopySource("", "f.dat", 0)),
	}); err == nil {
		t.Fatal("odd extent count accepted, want error")
	}
	// Length mismatch within a pair.
	if _, err := cli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 1,
		Extents: []wire.Extent{{Off: 0, Len: 4096}, {Off: 0, Len: 2048}},
		Data:    []byte(wire.FormatCopySource("", "f.dat", 0)),
	}); err == nil {
		t.Fatal("mismatched pair lengths accepted, want error")
	}
}

// TestCopyPullFromPeerWireV2: the same pull form with the destination
// configured for wire v2 — its outbound fetch to the source rides
// tagged frames (the source auto-detects the protocol per conn).
func TestCopyPullFromPeerWireV2(t *testing.T) {
	src, srcCli := startServer(t, nil)
	dst, err := Listen(Config{Root: t.TempDir(), Name: "test-io-v2", WireV2: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	dstCli := NewClient(dst.Addr())
	t.Cleanup(func() {
		dstCli.Close()
		dst.Close()
	})

	srcData := bytes.Repeat([]byte{0x5A}, 8192)
	writeAt(t, srcCli, "f.dat", 2, 0, srcData)
	if _, err := dstCli.Do(ctxT(t), &wire.Request{
		Op: wire.OpCopy, Path: "f.dat", Gen: 2,
		Extents: []wire.Extent{{Off: 0, Len: 8192}, {Off: 0, Len: 8192}},
		Data:    []byte(wire.FormatCopySource(src.Addr(), "f.dat", 2)),
	}); err != nil {
		t.Fatal(err)
	}
	if got := readAt(t, dstCli, "f.dat", 2, 0, 8192); !bytes.Equal(got, srcData) {
		t.Fatal("brick pulled over wire v2 diverges from the source")
	}
}
