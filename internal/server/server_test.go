package server

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs/internal/netsim"
	"dpfs/internal/wire"
)

func startServer(t *testing.T, model *netsim.Model) (*Server, *Client) {
	t.Helper()
	srv, err := Listen(Config{Root: t.TempDir(), Model: model, Name: "test-io"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(srv.Addr())
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestPing(t *testing.T) {
	_, cli := startServer(t, nil)
	if err := cli.Ping(ctxT(t)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)

	data := []byte("hello brick world")
	_, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpWrite, Path: "dir/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: 5}, {Off: 100, Len: 12}},
		Data:    data,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{
		Op: wire.OpRead, Path: "dir/sub.f",
		Extents: []wire.Extent{{Off: 0, Len: 5}, {Off: 100, Len: 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, data) {
		t.Fatalf("read %q, want %q", resp.Data, data)
	}
	// The gap between the extents reads as zeros.
	resp, err = cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "dir/sub.f",
		Extents: []wire.Extent{{Off: 50, Len: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, make([]byte, 10)) {
		t.Fatalf("hole read %v", resp.Data)
	}
}

func TestReadPastEOFZeroFills(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 4}}, Data: []byte("abcd")}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "f",
		Extents: []wire.Extent{{Off: 2, Len: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("cd"), make([]byte, 6)...)
	if !bytes.Equal(resp.Data, want) {
		t.Fatalf("read %v, want %v", resp.Data, want)
	}
}

func TestReadMissingSubfileReturnsZeros(t *testing.T) {
	_, cli := startServer(t, nil)
	resp, err := cli.Do(ctxT(t), &wire.Request{Op: wire.OpRead, Path: "nope",
		Extents: []wire.Extent{{Off: 0, Len: 16}}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, make([]byte, 16)) {
		t.Fatalf("missing subfile read = %v", resp.Data)
	}
}

func TestStatRemoveUsage(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "a",
		Extents: []wire.Extent{{Off: 0, Len: 8}}, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "a"})
	if err != nil || resp.N != 8 {
		t.Fatalf("stat = %+v, %v", resp, err)
	}
	resp, err = cli.Do(ctx, &wire.Request{Op: wire.OpUsage})
	if err != nil || resp.N != 8 {
		t.Fatalf("usage = %+v, %v", resp, err)
	}
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpRemove, Path: "a"}); err != nil {
		t.Fatal(err)
	}
	resp, err = cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "a"})
	if err != nil || resp.N != 0 {
		t.Fatalf("stat after remove = %+v, %v", resp, err)
	}
	// Removing a missing subfile is idempotent.
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpRemove, Path: "a"}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 100}}, Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpTruncate, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 10}}}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Do(ctx, &wire.Request{Op: wire.OpStat, Path: "f"})
	if err != nil || resp.N != 10 {
		t.Fatalf("size after truncate = %+v, %v", resp, err)
	}
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpTruncate, Path: "f"}); err == nil {
		t.Fatal("truncate without extent should fail")
	}
}

func TestPathEscapesRejected(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	for _, p := range []string{"../escape", "a/../../b", ""} {
		if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: p,
			Extents: []wire.Extent{{Off: 0, Len: 1}}, Data: []byte{1}}); err == nil {
			t.Errorf("path %q accepted", p)
		}
	}
	// Absolute paths are confined under the root rather than escaping.
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "/abs/ok",
		Extents: []wire.Extent{{Off: 0, Len: 1}}, Data: []byte{1}}); err != nil {
		t.Errorf("absolute path rejected: %v", err)
	}
}

func TestBadExtents(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "f",
		Extents: []wire.Extent{{Off: -1, Len: 4}}, Data: make([]byte, 4)}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 4}}, Data: make([]byte, 2)}); err == nil {
		t.Error("mismatched data length accepted")
	}
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.Op(42), Path: "f"}); err == nil {
		t.Error("unknown op accepted")
	}
	// The connection survives server-side errors.
	if err := cli.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(w)}, 1024)
			path := fmt.Sprintf("f%d", w)
			for i := 0; i < 10; i++ {
				if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: path,
					Extents: []wire.Extent{{Off: int64(i) * 1024, Len: 1024}}, Data: data}); err != nil {
					errs <- err
					return
				}
			}
			resp, err := cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: path,
				Extents: []wire.Extent{{Off: 3 * 1024, Len: 1024}}})
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp.Data, data) {
				errs <- fmt.Errorf("worker %d read wrong data", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestModelShapesService(t *testing.T) {
	model := netsim.New(netsim.Params{RequestLatency: 20 * time.Millisecond})
	_, cli := startServer(t, model)
	start := time.Now()
	if err := cli.Ping(ctxT(t)); err != nil { // ping is free
		t.Fatal(err)
	}
	if _, err := cli.Do(ctxT(t), &wire.Request{Op: wire.OpRead, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 1}}}); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 18*time.Millisecond {
		t.Errorf("shaped read returned in %v, want >= ~20ms", e)
	}
	if _, reqs := model.Stats(); reqs != 1 {
		t.Errorf("model charged %d requests, want 1", reqs)
	}
}

func TestServerClose(t *testing.T) {
	srv, err := Listen(Config{Root: t.TempDir()}, "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(srv.Addr())
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := cli.Ping(ctx); err == nil {
		t.Fatal("ping against closed server should fail")
	}
	cli.Close()
	if err := cli.Ping(context.Background()); err == nil {
		t.Fatal("ping on closed client should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Listen(Config{}, ""); err == nil {
		t.Fatal("empty root accepted")
	}
}

func TestConnectionPoolReuse(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	for i := 0; i < 50; i++ {
		if err := cli.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cli.mu.Lock()
	idle := len(cli.idle)
	cli.mu.Unlock()
	if idle != 1 {
		t.Errorf("sequential pings left %d idle conns, want 1 (reuse)", idle)
	}
}

func TestClientConfigMaxIdleConns(t *testing.T) {
	srv, _ := startServer(t, nil)
	cli := NewClientWith(srv.Addr(), ClientConfig{MaxIdleConns: 2})
	defer cli.Close()
	ctx := ctxT(t)

	// Burst of concurrent requests, then check the pool respects the
	// configured bound.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cli.Ping(ctx); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	cli.mu.Lock()
	idle := len(cli.idle)
	cli.mu.Unlock()
	if idle > 2 {
		t.Errorf("pool holds %d idle conns, configured max 2", idle)
	}

	if def := NewClient(srv.Addr()); def.maxIdle != DefaultMaxIdleConns {
		t.Errorf("NewClient maxIdle = %d, want %d", def.maxIdle, DefaultMaxIdleConns)
	}
}

// A pooled connection must not keep the previous request's deadline:
// after a deadline-bearing request completes and its deadline passes, a
// later deadline-free request reusing the conn must still succeed.
func TestPooledConnDeadlineCleared(t *testing.T) {
	_, cli := startServer(t, nil)
	dctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	if err := cli.Ping(dctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	time.Sleep(400 * time.Millisecond) // let the old deadline expire
	cli.mu.Lock()
	pooled := len(cli.idle)
	cli.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("expected the conn back in the pool, have %d", pooled)
	}
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatalf("reused conn failed after old deadline expired: %v", err)
	}
}

// Read responses draw their buffers from a pool; back-to-back reads
// must stay byte-correct (no stale pooled bytes leaking through) even
// when sizes shrink between requests.
func TestReadBufferPoolCorrectness(t *testing.T) {
	_, cli := startServer(t, nil)
	ctx := ctxT(t)
	big := bytes.Repeat([]byte{0xAB}, 8192)
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 8192}}, Data: big}); err != nil {
		t.Fatal(err)
	}
	// Large read primes the pool with a dirty buffer.
	if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "f",
		Extents: []wire.Extent{{Off: 0, Len: 8192}}}); err != nil {
		t.Fatal(err)
	}
	// Smaller read past EOF must come back zero-filled, not 0xAB.
	resp, err := cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "f",
		Extents: []wire.Extent{{Off: 8192, Len: 100}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range resp.Data {
		if b != 0 {
			t.Fatalf("EOF read byte %d = %#x, want 0 (stale pooled data)", i, b)
		}
	}
	// Missing subfile read is all zeros too.
	resp, err = cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "nope",
		Extents: []wire.Extent{{Off: 0, Len: 4096}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range resp.Data {
		if b != 0 {
			t.Fatalf("missing-subfile read byte %d = %#x, want 0", i, b)
		}
	}
}
