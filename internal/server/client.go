package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dpfs/internal/wire"
)

// Client is a pooled connection to one DPFS I/O server. Concurrent
// requests each use their own TCP connection (mirroring the paper's
// server spawning a handler per request); idle connections are reused.
type Client struct {
	addr    string
	maxIdle int

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// DefaultMaxIdleConns is the idle-connection bound used when
// ClientConfig does not specify one.
const DefaultMaxIdleConns = 16

// ClientConfig tunes a Client.
type ClientConfig struct {
	// MaxIdleConns bounds pooled idle connections per server (default
	// DefaultMaxIdleConns). Raise it to at least the expected dispatch
	// fan-out so a concurrent burst does not thrash dials when the
	// burst's connections come back to the pool.
	MaxIdleConns int
}

// NewClient creates a lazy client for the server at addr with default
// configuration; no connection is made until the first request.
func NewClient(addr string) *Client { return NewClientWith(addr, ClientConfig{}) }

// NewClientWith creates a lazy client with explicit configuration.
func NewClientWith(addr string, cfg ClientConfig) *Client {
	if cfg.MaxIdleConns <= 0 {
		cfg.MaxIdleConns = DefaultMaxIdleConns
	}
	return &Client{addr: addr, maxIdle: cfg.MaxIdleConns}
}

// Addr returns the server address the client targets.
func (c *Client) Addr() string { return c.addr }

// Do performs one request/response exchange.
func (c *Client) Do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	return c.do(ctx, req, nil)
}

// DoScratch is Do with a caller-supplied response-body buffer: when
// scratch is large enough (expected data + wire.RespOverhead) the
// response's Data aliases it instead of a fresh allocation, so the
// caller must consume Data before reusing scratch. This is the
// allocation-free read path; see wire.ReadResponseInto.
func (c *Client) DoScratch(ctx context.Context, req *wire.Request, scratch []byte) (*wire.Response, error) {
	return c.do(ctx, req, scratch)
}

func (c *Client) do(ctx context.Context, req *wire.Request, scratch []byte) (*wire.Response, error) {
	conn, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		_ = conn.SetDeadline(deadline)
	}
	if err := wire.WriteRequest(conn, req); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dpfs server %s: send: %w", c.addr, err)
	}
	resp, err := wire.ReadResponseInto(conn, scratch)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dpfs server %s: receive: %w", c.addr, err)
	}
	// Clear the deadline before pooling so an idle connection never
	// sits armed with an expired deadline (conns only carry a deadline
	// while a request with one is in flight).
	if hasDeadline {
		_ = conn.SetDeadline(time.Time{})
	}
	c.put(conn)
	if resp.Err != "" {
		return nil, fmt.Errorf("dpfs server %s: %s", c.addr, resp.Err)
	}
	return resp, nil
}

// Ping checks the server is reachable.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.Do(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

func (c *Client) get(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("dpfs: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("dpfs server %s: dial: %w", c.addr, err)
	}
	return conn, nil
}

func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.maxIdle {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// Close drops all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}
