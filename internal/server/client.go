package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"dpfs/internal/obs"
	"dpfs/internal/wire"
)

// Client is a pooled connection to one DPFS I/O server. Concurrent
// requests each use their own TCP connection (mirroring the paper's
// server spawning a handler per request); idle connections are reused.
//
// The client survives the flaky substrate DPFS targets (idle
// workstation disks on shared links, Section 1 of the paper): each RPC
// gets a per-attempt deadline and a bounded number of retries with
// exponential backoff + jitter, failed connections are evicted instead
// of pooled, pooled connections are liveness-checked before reuse, and
// a per-server breaker fails fast once a server has been failing
// consecutively, so a dead server degrades throughput instead of
// convoying every caller on full timeout ladders. Retrying a DPFS
// exchange is safe: every wire op is an idempotent replay (reads and
// extent writes are absolute-offset, remove/rename/truncate tolerate
// re-application).
//
// Idempotence alone does not cover metadata-dependent retries: a
// request addresses the subfile named by the client's cached
// distribution row, and if the file was removed and recreated while
// the client backed off, a replayed read would land on a path the
// server recreates on demand — and silently return zeros (missing
// extents read as holes). Every request therefore carries the
// distribution's generation (wire.Request.Gen): the server remembers
// the newest generation it has seen per path and rejects older ones
// with a "stale generation" error, so a stale cached distribution
// fails loudly instead of serving the wrong file's bytes. See the
// generation scheme in internal/server (checkGen) and the catalog's
// generation counter (meta.Catalog.NextGeneration).
type Client struct {
	addr    string
	maxIdle int
	dial    DialFunc
	retry   RetryPolicy
	reg     *obs.Registry
	events  *obs.EventLog
	onDelta func([]byte)

	mu     sync.Mutex
	idle   []idleConn
	closed bool

	// Breaker state (guarded by mu): fails counts consecutive failed
	// attempts; once it reaches the threshold the breaker is open and
	// requests fail fast until openUntil, when one half-open probe may
	// go through.
	fails     int
	openUntil time.Time
	probing   bool

	// mux, when non-nil, replaces the pooled one-exchange-per-conn
	// transport with the wire-v2 tagged-frame multiplexer (see mux.go);
	// the retry/breaker ladder above is shared by both transports.
	mux *mux
}

// idleConn is a pooled connection and the instant it went idle.
type idleConn struct {
	c     net.Conn
	since time.Time
}

// DialFunc opens a transport connection to a server address. The
// default is a plain TCP dial; tests and chaos tooling substitute a
// fault-injecting dialer (internal/fault).
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// DefaultMaxIdleConns is the idle-connection bound used when
// ClientConfig does not specify one.
const DefaultMaxIdleConns = 16

// Client recovery metric names. These live in the registry passed via
// ClientConfig.Metrics (the client engine shares its own), so recovery
// is visible in /metrics next to the traffic counters.
const (
	// MetricClientRetries counts re-attempted exchanges.
	MetricClientRetries = "client_retries_total"
	// MetricConnEvictions counts connections discarded as poisoned
	// (failed mid-exchange, failed the liveness probe, or idled past
	// the age cap).
	MetricConnEvictions = "conn_evictions_total"
	// MetricServerUnhealthy counts breaker openings.
	MetricServerUnhealthy = "server_unhealthy_total"
	// MetricClientConnsIdle gauges connections currently held open but
	// carrying no request — pooled conns (wire v1) or muxed conns with
	// an empty pending set (wire v2) — summed over the servers sharing
	// the registry.
	MetricClientConnsIdle = "client_conns_idle"
	// MetricClientConnsActive gauges connections currently carrying at
	// least one in-flight request. Under wire v1 every concurrent
	// request holds its own conn; under wire v2 a whole dispatch burst
	// can ride one active conn — the pair of gauges is the direct
	// observable of that difference.
	MetricClientConnsActive = "client_conns_active"
)

// ErrUnhealthy is wrapped into fail-fast errors while a server's
// breaker is open.
var ErrUnhealthy = errors.New("server unhealthy (breaker open)")

// ServerError wraps an error string the server itself returned: the
// exchange completed, the operation failed as an application outcome.
// Transport-class failures (dial errors, timeouts, broken connections,
// ErrUnhealthy fail-fasts) are NOT ServerErrors — that distinction is
// what read failover keys on: a replica is only worth trying when the
// previous one was unreachable, not when it answered with an error
// every replica would repeat (e.g. "stale generation").
type ServerError struct {
	Addr string
	Msg  string
}

// Error implements error, preserving the historical message shape.
func (e *ServerError) Error() string { return fmt.Sprintf("dpfs server %s: %s", e.Addr, e.Msg) }

// IsServerError reports whether err (anywhere in its chain) is an
// application error returned by a server rather than a transport
// failure.
func IsServerError(err error) bool {
	var se *ServerError
	return errors.As(err, &se)
}

// RetryPolicy tunes the client's recovery machinery. The zero value
// selects the defaults below; set a field negative to disable that
// mechanism.
type RetryPolicy struct {
	// MaxRetries bounds re-attempts after the first failed exchange
	// (default 2; negative disables retries). Only transport failures
	// are retried — an error the server itself returned means the
	// exchange completed and is surfaced as-is.
	MaxRetries int
	// RequestTimeout is the per-attempt deadline. It combines with any
	// context deadline (the earlier wins); zero applies no per-attempt
	// bound beyond the context's.
	RequestTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: attempt n sleeps a uniformly jittered duration in
	// (0, min(BackoffBase * 2^(n-1), BackoffMax)] (defaults 2ms and
	// 100ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold opens the per-server breaker after this many
	// consecutive failed attempts (default 16; negative disables the
	// breaker). While open, requests fail fast with ErrUnhealthy.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// letting one half-open probe through (default 250ms).
	BreakerCooldown time.Duration
	// ProbeIdle liveness-checks a pooled connection that has been idle
	// at least this long before reusing it (default 1s; negative
	// disables probing). The probe is a one-byte read under a short
	// deadline: a healthy idle conn times out quietly, a conn killed
	// mid-idle reports EOF/reset and is evicted instead of failing the
	// next RPC.
	ProbeIdle time.Duration
	// MaxIdleAge discards pooled connections that have been idle
	// longer than this without probing (default 2m; negative disables
	// the cap).
	MaxIdleAge time.Duration
}

// Default retry policy values.
const (
	DefaultMaxRetries       = 2
	DefaultBackoffBase      = 2 * time.Millisecond
	DefaultBackoffMax       = 100 * time.Millisecond
	DefaultBreakerThreshold = 16
	DefaultBreakerCooldown  = 250 * time.Millisecond
	DefaultProbeIdle        = time.Second
	DefaultMaxIdleAge       = 2 * time.Minute
)

// probeWindow is the read deadline of the pooled-conn liveness probe:
// long enough for a delivered FIN/RST to surface, short enough to be
// invisible next to a network round trip.
const probeWindow = time.Millisecond

// withDefaults resolves the policy's zero values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	switch {
	case p.MaxRetries == 0:
		p.MaxRetries = DefaultMaxRetries
	case p.MaxRetries < 0:
		p.MaxRetries = 0
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = DefaultBackoffMax
	}
	switch {
	case p.BreakerThreshold == 0:
		p.BreakerThreshold = DefaultBreakerThreshold
	case p.BreakerThreshold < 0:
		p.BreakerThreshold = 0 // disabled
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = DefaultBreakerCooldown
	}
	switch {
	case p.ProbeIdle == 0:
		p.ProbeIdle = DefaultProbeIdle
	case p.ProbeIdle < 0:
		p.ProbeIdle = 0 // disabled
	}
	switch {
	case p.MaxIdleAge == 0:
		p.MaxIdleAge = DefaultMaxIdleAge
	case p.MaxIdleAge < 0:
		p.MaxIdleAge = 0 // disabled
	}
	if p.RequestTimeout < 0 {
		p.RequestTimeout = 0
	}
	return p
}

// ClientConfig tunes a Client.
type ClientConfig struct {
	// MaxIdleConns bounds pooled idle connections per server (default
	// DefaultMaxIdleConns). Raise it to at least the expected dispatch
	// fan-out so a concurrent burst does not thrash dials when the
	// burst's connections come back to the pool.
	MaxIdleConns int
	// Dial overrides the transport dialer (fault injection, tests).
	Dial DialFunc
	// Retry tunes timeouts, retries, the liveness probe and the
	// breaker; the zero value applies the documented defaults.
	Retry RetryPolicy
	// Metrics receives the recovery counters (client_retries_total,
	// conn_evictions_total, server_unhealthy_total). Nil gets a
	// private registry.
	Metrics *obs.Registry
	// Events receives breaker transitions and retry exhaustion as
	// structured cluster events. Nil uses the process-default log.
	Events *obs.EventLog
	// WireV2 switches the client from the v1 one-exchange-per-conn pool
	// to the v2 tagged-frame mux: many outstanding requests multiplex
	// over a small set of connections, payloads stream as chunked DATA
	// frames, and timeouts abandon a tag with a CANCEL frame instead of
	// killing the conn. Requires a server that speaks wire v2 (servers
	// sniff the protocol version per conn, so mixed fleets work).
	WireV2 bool
	// MuxWindow bounds in-flight requests per muxed conn (default
	// DefaultMuxWindow); a new conn is dialed only when every existing
	// one is at the window. Only meaningful with WireV2.
	MuxWindow int
	// OnDelta, when non-nil, receives the raw gossip server-table
	// delta piggybacked on a response (wire.Response.Delta) before the
	// response is returned. Deltas are best-effort: the callback must
	// tolerate garbage (gossip.DecodeDelta rejects it) and must not
	// block — it runs on the request path.
	OnDelta func(delta []byte)
}

// NewClient creates a lazy client for the server at addr with default
// configuration; no connection is made until the first request.
func NewClient(addr string) *Client { return NewClientWith(addr, ClientConfig{}) }

// NewClientWith creates a lazy client with explicit configuration.
func NewClientWith(addr string, cfg ClientConfig) *Client {
	if cfg.MaxIdleConns <= 0 {
		cfg.MaxIdleConns = DefaultMaxIdleConns
	}
	if cfg.Dial == nil {
		cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Events == nil {
		cfg.Events = obs.Events()
	}
	c := &Client{
		addr:    addr,
		maxIdle: cfg.MaxIdleConns,
		dial:    cfg.Dial,
		retry:   cfg.Retry.withDefaults(),
		reg:     cfg.Metrics,
		events:  cfg.Events,
		onDelta: cfg.OnDelta,
	}
	if cfg.WireV2 {
		c.mux = newMux(c, cfg.MuxWindow)
	}
	return c
}

// Addr returns the server address the client targets.
func (c *Client) Addr() string { return c.addr }

// Metrics returns the registry holding the client's recovery counters.
func (c *Client) Metrics() *obs.Registry { return c.reg }

// Do performs one request/response exchange, retrying transport
// failures per the client's RetryPolicy.
func (c *Client) Do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	return c.do(ctx, req, nil)
}

// DoScratch is Do with a caller-supplied response-body buffer: when
// scratch is large enough (expected data + wire.RespOverhead) the
// response's Data aliases it instead of a fresh allocation, so the
// caller must consume Data before reusing scratch. This is the
// allocation-free read path; see wire.ReadResponseInto.
func (c *Client) DoScratch(ctx context.Context, req *wire.Request, scratch []byte) (*wire.Response, error) {
	return c.do(ctx, req, scratch)
}

func (c *Client) do(ctx context.Context, req *wire.Request, scratch []byte) (*wire.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				return nil, lastErr
			}
			c.reg.Counter(MetricClientRetries).Inc()
		}
		probe, err := c.breakerAllow()
		if err != nil {
			return nil, fmt.Errorf("dpfs server %s: %w", c.addr, err)
		}
		resp, err := c.attempt(ctx, req, scratch)
		if err == nil {
			c.breakerResult(probe, true)
			if len(resp.Delta) > 0 && c.onDelta != nil {
				// Piggybacked membership news rides every response,
				// including application errors — deliver before the
				// error split below.
				c.onDelta(resp.Delta)
			}
			if resp.Err != "" {
				// The server answered; its error is an application
				// outcome, not a transport failure — never retried.
				return nil, &ServerError{Addr: c.addr, Msg: resp.Err}
			}
			return resp, nil
		}
		c.breakerResult(probe, false)
		lastErr = err
		if ctx.Err() != nil || attempt >= c.retry.MaxRetries {
			if ctx.Err() == nil && attempt >= c.retry.MaxRetries {
				// The retry ladder ran dry (as opposed to the caller
				// giving up): that is a cluster-health signal.
				c.events.EmitTrace(obs.EventRetryExhausted, "client", req.TraceID, map[string]string{
					"server":   c.addr,
					"op":       req.Op.String(),
					"attempts": fmt.Sprint(attempt + 1),
					"err":      lastErr.Error(),
				})
			}
			return nil, lastErr
		}
	}
}

// attempt performs a single exchange: checkout (or dial), send,
// receive, return to pool. Any transport failure evicts the conn.
// With WireV2 the exchange rides the tagged-frame mux instead.
func (c *Client) attempt(ctx context.Context, req *wire.Request, scratch []byte) (*wire.Response, error) {
	if c.mux != nil {
		return c.mux.attempt(ctx, req, scratch)
	}
	conn, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()
	if t := c.retry.RequestTimeout; t > 0 {
		if d := time.Now().Add(t); !hasDeadline || d.Before(deadline) {
			deadline, hasDeadline = d, true
		}
	}
	if hasDeadline {
		_ = conn.SetDeadline(deadline)
	}
	if err := wire.WriteRequest(conn, req); err != nil {
		c.reg.Gauge(MetricClientConnsActive).Add(-1)
		c.evict(conn)
		return nil, fmt.Errorf("dpfs server %s: send: %w", c.addr, err)
	}
	resp, err := wire.ReadResponseInto(conn, scratch)
	if err != nil {
		c.reg.Gauge(MetricClientConnsActive).Add(-1)
		c.evict(conn)
		return nil, fmt.Errorf("dpfs server %s: receive: %w", c.addr, err)
	}
	// Clear the deadline before pooling so an idle connection never
	// sits armed with an expired deadline (conns only carry a deadline
	// while a request with one is in flight).
	if hasDeadline {
		_ = conn.SetDeadline(time.Time{})
	}
	c.put(conn)
	return resp, nil
}

// backoff sleeps the jittered exponential delay before retry number
// attempt (1-based), or returns early when ctx is done.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	max := c.retry.BackoffBase << uint(attempt-1)
	if max > c.retry.BackoffMax || max <= 0 {
		max = c.retry.BackoffMax
	}
	// Full jitter: uniform in (0, max]. rand's global source is
	// goroutine-safe; determinism here does not matter (the fault
	// schedule, not the backoff, is the reproducible part).
	d := time.Duration(rand.Int63n(int64(max))) + 1
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breakerAllow gates an attempt on the breaker. It returns probe=true
// when the attempt is the single half-open trial of an open breaker.
func (c *Client) breakerAllow() (probe bool, err error) {
	if c.retry.BreakerThreshold == 0 {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fails < c.retry.BreakerThreshold {
		return false, nil
	}
	if time.Now().Before(c.openUntil) || c.probing {
		return false, ErrUnhealthy
	}
	c.probing = true
	c.events.Emit(obs.EventBreakerHalfOpen, "client", map[string]string{"server": c.addr})
	return true, nil
}

// breakerResult records an attempt outcome.
func (c *Client) breakerResult(probe, ok bool) {
	if c.retry.BreakerThreshold == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if probe {
		c.probing = false
	}
	if ok {
		if c.fails >= c.retry.BreakerThreshold {
			c.events.Emit(obs.EventBreakerClose, "client", map[string]string{"server": c.addr})
		}
		c.fails = 0
		c.openUntil = time.Time{}
		return
	}
	c.fails++
	if probe || c.fails == c.retry.BreakerThreshold {
		// Opening (or re-opening after a failed probe): fail fast for
		// a cooldown instead of convoying every caller on timeouts.
		c.openUntil = time.Now().Add(c.retry.BreakerCooldown)
		c.reg.Counter(MetricServerUnhealthy).Inc()
		c.events.Emit(obs.EventBreakerOpen, "client", map[string]string{
			"server": c.addr,
			"fails":  fmt.Sprint(c.fails),
		})
	}
}

// Ping checks the server is reachable.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.Do(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

// get returns a live connection: a pooled one that passes the age cap
// and liveness probe, or a fresh dial.
func (c *Client) get(ctx context.Context) (net.Conn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("dpfs: client closed")
		}
		n := len(c.idle)
		if n == 0 {
			c.mu.Unlock()
			break
		}
		ic := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		c.reg.Gauge(MetricClientConnsIdle).Add(-1)
		idle := time.Since(ic.since)
		if c.retry.MaxIdleAge > 0 && idle > c.retry.MaxIdleAge {
			c.evict(ic.c)
			continue
		}
		if c.retry.ProbeIdle > 0 && idle >= c.retry.ProbeIdle && !probeAlive(ic.c) {
			c.evict(ic.c)
			continue
		}
		// Defensive: a pooled conn must never carry a stale read or
		// write deadline into the next exchange.
		_ = ic.c.SetDeadline(time.Time{})
		c.reg.Gauge(MetricClientConnsActive).Inc()
		return ic.c, nil
	}
	conn, err := c.dial(ctx, c.addr)
	if err != nil {
		return nil, fmt.Errorf("dpfs server %s: dial: %w", c.addr, err)
	}
	c.reg.Gauge(MetricClientConnsActive).Inc()
	return conn, nil
}

// probeAlive liveness-checks an idle connection with a one-byte read
// under a short deadline. No request is in flight, so a healthy conn
// has nothing to deliver and times out; readable data means a poisoned
// stream (a stray response fragment) and an immediate error means the
// peer closed it mid-idle.
func probeAlive(conn net.Conn) bool {
	if err := conn.SetReadDeadline(time.Now().Add(probeWindow)); err != nil {
		return false
	}
	var b [1]byte
	n, err := conn.Read(b[:])
	if n > 0 {
		return false
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		return false
	}
	return conn.SetReadDeadline(time.Time{}) == nil
}

// evict closes a connection that must not be reused.
func (c *Client) evict(conn net.Conn) {
	conn.Close()
	c.reg.Counter(MetricConnEvictions).Inc()
}

func (c *Client) put(conn net.Conn) {
	c.reg.Gauge(MetricClientConnsActive).Add(-1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.maxIdle {
		conn.Close()
		return
	}
	c.idle = append(c.idle, idleConn{c: conn, since: time.Now()})
	c.reg.Gauge(MetricClientConnsIdle).Inc()
}

// Close drops all pooled connections and shuts down the mux.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	dropped := len(c.idle)
	for _, ic := range c.idle {
		ic.c.Close()
	}
	c.idle = nil
	c.mu.Unlock()
	if dropped > 0 {
		c.reg.Gauge(MetricClientConnsIdle).Add(-int64(dropped))
	}
	if c.mux != nil {
		c.mux.Close()
	}
	return nil
}
