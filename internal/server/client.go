package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dpfs/internal/wire"
)

// Client is a pooled connection to one DPFS I/O server. Concurrent
// requests each use their own TCP connection (mirroring the paper's
// server spawning a handler per request); idle connections are reused.
type Client struct {
	addr string

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// maxIdleConns bounds pooled connections per server.
const maxIdleConns = 16

// NewClient creates a lazy client for the server at addr; no connection
// is made until the first request.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Addr returns the server address the client targets.
func (c *Client) Addr() string { return c.addr }

// Do performs one request/response exchange.
func (c *Client) Do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	conn, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteRequest(conn, req); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dpfs server %s: send: %w", c.addr, err)
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dpfs server %s: receive: %w", c.addr, err)
	}
	c.put(conn)
	if resp.Err != "" {
		return nil, fmt.Errorf("dpfs server %s: %s", c.addr, resp.Err)
	}
	return resp, nil
}

// Ping checks the server is reachable.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.Do(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

func (c *Client) get(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("dpfs: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("dpfs server %s: dial: %w", c.addr, err)
	}
	return conn, nil
}

func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= maxIdleConns {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// Close drops all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}
