package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpfs/internal/fault"
	"dpfs/internal/obs"
)

// breakerStorm opens a client's breaker with `drops` dropped conns,
// then hammers the half-open window from many goroutines until every
// one of them gets a successful request through. Run under -race: the
// interleaving of breakerAllow/breakerResult is the test. It returns
// the registry and the count of network-level failures seen during the
// storm: the open breaker lets only half-open probes touch the wire,
// so that count is exactly the drop budget left after the opening
// burst.
func breakerStorm(t *testing.T, seed int64, threshold, drops int) (*obs.Registry, int64) {
	t.Helper()
	s := newTestServer(t)
	inj := fault.New(seed, fault.Rule{Kind: fault.KindDrop, Nth: 1, Count: int64(drops)})
	reg := obs.NewRegistry()
	c := NewClientWith(s.Addr(), ClientConfig{
		Dial: inj.DialContext, Metrics: reg,
		Retry: RetryPolicy{MaxRetries: -1, BreakerThreshold: threshold,
			BreakerCooldown: 20 * time.Millisecond},
	})
	t.Cleanup(func() { c.Close() })
	ctx := context.Background()

	for i := 0; i < threshold; i++ {
		if err := c.Ping(ctx); err == nil {
			t.Fatalf("ping %d succeeded through a dropping link", i)
		}
	}
	if err := c.Ping(ctx); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("ping on an open breaker = %v, want ErrUnhealthy", err)
	}

	const goroutines = 16
	var netErrs atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(10 * time.Second)
			for {
				err := c.Ping(ctx)
				switch {
				case err == nil:
					return
				case !errors.Is(err, ErrUnhealthy):
					// A half-open probe reached the wire and lost: it
					// reports its own failure to its caller. Count it
					// and keep going.
					netErrs.Add(1)
				case time.Now().After(deadline):
					errs <- fmt.Errorf("breaker never closed: %w", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Steady state: the breaker is closed for everyone.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
	return reg, netErrs.Load()
}

// TestBreakerHalfOpenConcurrent: 16 goroutines race one half-open
// window whose single probe succeeds. The breaker must open exactly
// once — concurrent losers fail fast and must not re-open or trample
// the winning probe's close.
func TestBreakerHalfOpenConcurrent(t *testing.T) {
	const threshold = 3
	reg, netErrs := breakerStorm(t, 7, threshold, threshold)
	if got := reg.Counter(MetricServerUnhealthy).Value(); got != 1 {
		t.Fatalf("server_unhealthy = %d, want exactly 1 opening", got)
	}
	if netErrs != 0 {
		t.Fatalf("%d network failures during the storm, want 0 (budget was spent opening)", netErrs)
	}
}

// TestBreakerHalfOpenProbeFailsConcurrent: the first half-open probe
// still hits a drop, so the breaker re-opens once (second unhealthy
// mark) and the next window's probe heals it — all under the same
// 16-goroutine race.
func TestBreakerHalfOpenProbeFailsConcurrent(t *testing.T) {
	const threshold = 3
	reg, netErrs := breakerStorm(t, 8, threshold, threshold+1)
	if got := reg.Counter(MetricServerUnhealthy).Value(); got != 2 {
		t.Fatalf("server_unhealthy = %d, want 2 (opening + failed probe re-opening)", got)
	}
	if netErrs != 1 {
		t.Fatalf("%d network failures during the storm, want exactly 1 (the losing probe)", netErrs)
	}
}
