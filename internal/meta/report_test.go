package meta

import (
	"testing"

	"dpfs/internal/stripe"
)

func TestRenameFile(t *testing.T) {
	c := newCatalog(t)
	if err := c.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}
	fi := testFileInfo("/a/old")
	assign, _ := stripe.RoundRobin{}.Assign(fi.Geometry.NumBricks(), len(fi.Servers))
	if err := c.CreateFile(fi, assign); err != nil {
		t.Fatal(err)
	}

	servers, _, err := c.RenameFile("/a/old", "/b/new")
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != len(fi.Servers) || servers[0] != fi.Servers[0] {
		t.Fatalf("servers = %v", servers)
	}

	// Old path gone, new path present with identical geometry and
	// assignment.
	if _, err := c.Stat("/a/old"); err == nil {
		t.Fatal("old path still stats")
	}
	got, gotAssign, err := c.LookupFile("/b/new")
	if err != nil {
		t.Fatal(err)
	}
	if got.Geometry.NumBricks() != fi.Geometry.NumBricks() {
		t.Fatalf("geometry changed: %+v", got.Geometry)
	}
	for i := range assign {
		if gotAssign[i] != assign[i] {
			t.Fatalf("assignment changed at brick %d", i)
		}
	}
	// Directory listings updated on both sides.
	_, files, _ := c.ReadDir("/a")
	if len(files) != 0 {
		t.Fatalf("/a still lists %v", files)
	}
	_, files, _ = c.ReadDir("/b")
	if len(files) != 1 || files[0] != "new" {
		t.Fatalf("/b lists %v", files)
	}

	// Same-directory rename.
	if _, _, err := c.RenameFile("/b/new", "/b/renamed"); err != nil {
		t.Fatal(err)
	}
	_, files, _ = c.ReadDir("/b")
	if len(files) != 1 || files[0] != "renamed" {
		t.Fatalf("/b lists %v", files)
	}

	// Error cases.
	if _, _, err := c.RenameFile("/missing", "/b/x"); err == nil {
		t.Fatal("renaming a missing file should fail")
	}
	if _, _, err := c.RenameFile("/b/renamed", "/b/renamed"); err == nil {
		t.Fatal("self-rename should fail")
	}
	if _, _, err := c.RenameFile("/b/renamed", "/nodir/x"); err == nil {
		t.Fatal("rename into missing directory should fail")
	}
	fi2 := testFileInfo("/b/other")
	if err := c.CreateFile(fi2, assign); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RenameFile("/b/renamed", "/b/other"); err == nil {
		t.Fatal("rename onto existing file should fail")
	}
	// Failed renames must leave everything intact (transactional).
	if _, err := c.Stat("/b/renamed"); err != nil {
		t.Fatalf("failed rename damaged the source: %v", err)
	}
}

func TestUsageAndFilesOnServer(t *testing.T) {
	c := newCatalog(t)
	for _, s := range []ServerInfo{
		{Name: "fast", Capacity: 1000, Performance: 1, Addr: "x:1"},
		{Name: "slow", Capacity: 500, Performance: 3, Addr: "x:2"},
		{Name: "idle", Capacity: 100, Performance: 1, Addr: "x:3"},
	} {
		if err := c.RegisterServer(s); err != nil {
			t.Fatal(err)
		}
	}

	// File 1: 32 bricks greedy over fast/slow -> 24/8 split.
	fi := testFileInfo("/f1")
	fi.Geometry.Dims = []int64{1024, 512}
	fi.Geometry.Tile = []int64{128, 128} // 32 bricks
	fi.Servers = []string{"fast", "slow"}
	assign, err := stripe.Greedy{Perf: []int{1, 3}}.Assign(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFile(fi, assign); err != nil {
		t.Fatal(err)
	}
	// File 2: 8 bricks round-robin on fast only.
	fi2 := testFileInfo("/f2")
	fi2.Geometry.Dims = []int64{512, 512}
	fi2.Geometry.Tile = []int64{128, 256} // 8 bricks
	fi2.Servers = []string{"fast"}
	assign2, _ := stripe.RoundRobin{}.Assign(8, 1)
	if err := c.CreateFile(fi2, assign2); err != nil {
		t.Fatal(err)
	}

	usage, err := c.Usage()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ServerUsage{}
	for _, u := range usage {
		byName[u.Name] = u
	}
	if u := byName["fast"]; u.Files != 2 || u.Bricks != 24+8 {
		t.Fatalf("fast usage = %+v", u)
	}
	if u := byName["slow"]; u.Files != 1 || u.Bricks != 8 {
		t.Fatalf("slow usage = %+v", u)
	}
	if u := byName["idle"]; u.Files != 0 || u.Bricks != 0 {
		t.Fatalf("idle usage = %+v", u)
	}

	files, err := c.FilesOnServer("fast")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Path != "/f1" || files[1].Path != "/f2" {
		t.Fatalf("files on fast = %+v", files)
	}
	if files[0].Bricks != 24 || files[1].Bricks != 8 {
		t.Fatalf("brick counts = %+v", files)
	}
	files, err = c.FilesOnServer("idle")
	if err != nil || len(files) != 0 {
		t.Fatalf("files on idle = %v, %v", files, err)
	}
}
