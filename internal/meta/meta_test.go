package meta

import (
	"fmt"
	"strings"
	"testing"

	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/stripe"
)

func newCatalog(t *testing.T) *Catalog {
	t.Helper()
	db := metadb.Memory()
	t.Cleanup(func() { db.Close() })
	c := NewCatalog(db.Session())
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	return c
}

// newRemoteCatalog runs the catalog through the network stack, the way
// the paper's clients reach POSTGRES.
func newRemoteCatalog(t *testing.T) *Catalog {
	t.Helper()
	db := metadb.Memory()
	srv, err := mdbnet.Listen(db, "")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := mdbnet.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		db.Close()
	})
	c := NewCatalog(cli)
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	return c
}

func testFileInfo(path string) FileInfo {
	return FileInfo{
		Path:  path,
		Owner: "xhshen",
		Perm:  0o744,
		Size:  2097152,
		Geometry: stripe.Geometry{
			Level:    stripe.LevelMultidim,
			ElemSize: 8,
			Dims:     []int64{512, 512},
			Tile:     []int64{256, 256},
		},
		Placement: "greedy",
		Servers:   []string{"ccn0.mcs.anl.gov", "aruba.ece.nwu.edu", "ccn1.mcs.anl.gov", "moorea.ece.nwu.edu"},
	}
}

func TestInitIdempotent(t *testing.T) {
	c := newCatalog(t)
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
}

func TestServerRegistry(t *testing.T) {
	c := newCatalog(t)
	servers := []ServerInfo{
		{Name: "ccn0.mcs.anl.gov", Capacity: 500 << 20, Performance: 1, Addr: "127.0.0.1:7001"},
		{Name: "aruba.ece.nwu.edu", Capacity: 300 << 20, Performance: 3, Addr: "127.0.0.1:7002"},
	}
	for _, s := range servers {
		if err := c.RegisterServer(s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Servers()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("servers = %v", got)
	}
	if got[0].Name != "aruba.ece.nwu.edu" || got[0].Performance != 3 {
		t.Fatalf("server[0] = %+v", got[0])
	}

	// Re-register updates in place.
	servers[1].Performance = 2
	if err := c.RegisterServer(servers[1]); err != nil {
		t.Fatal(err)
	}
	one, err := c.Server("aruba.ece.nwu.edu")
	if err != nil {
		t.Fatal(err)
	}
	if one.Performance != 2 {
		t.Fatalf("update lost: %+v", one)
	}

	if err := c.RemoveServer("aruba.ece.nwu.edu"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveServer("aruba.ece.nwu.edu"); err == nil {
		t.Fatal("double remove should fail")
	}
	if _, err := c.Server("aruba.ece.nwu.edu"); err == nil {
		t.Fatal("removed server still present")
	}

	if err := c.RegisterServer(ServerInfo{Name: "bad", Performance: 0}); err == nil {
		t.Fatal("performance 0 should fail")
	}
	if err := c.RegisterServer(ServerInfo{Name: "a,b", Performance: 1}); err == nil {
		t.Fatal("comma in name should fail")
	}
}

func TestDirectories(t *testing.T) {
	c := newCatalog(t)
	if err := c.Mkdir("/home"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/home/xhshen"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/tmp"); err != nil {
		t.Fatal(err)
	}
	dirs, files, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dirs) != "[home tmp]" || len(files) != 0 {
		t.Fatalf("root = %v %v", dirs, files)
	}
	ok, err := c.IsDir("/home/xhshen")
	if err != nil || !ok {
		t.Fatalf("IsDir = %v %v", ok, err)
	}
	ok, _ = c.IsDir("/nope")
	if ok {
		t.Fatal("missing dir reported present")
	}

	// Errors.
	if err := c.Mkdir("/home"); err == nil {
		t.Fatal("duplicate mkdir should fail")
	}
	if err := c.Mkdir("/missing/sub"); err == nil {
		t.Fatal("mkdir without parent should fail")
	}
	if err := c.Mkdir("/"); err == nil {
		t.Fatal("mkdir / should fail")
	}
	if err := c.Rmdir("/home"); err == nil {
		t.Fatal("rmdir non-empty should fail")
	}
	if err := c.Rmdir("/"); err == nil {
		t.Fatal("rmdir / should fail")
	}
	if err := c.Rmdir("/home/xhshen"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/home"); err != nil {
		t.Fatal(err)
	}
	dirs, _, _ = c.ReadDir("/")
	if fmt.Sprint(dirs) != "[tmp]" {
		t.Fatalf("after rmdir: %v", dirs)
	}
	if _, _, err := c.ReadDir("/home"); err == nil {
		t.Fatal("removed dir still readable")
	}
}

// TestCatalogFigure10 mirrors the contents of Fig. 10: the greedy
// distribution of /home/xhshen/dpfs.test over four servers with
// bricklists 0,2,6,8,... / 4,10,16,22,28 / 1,3,7,9,... / 5,11,17,23,29
// stored and recovered through the SQL tables.
func TestCatalogFigure10(t *testing.T) {
	for _, remote := range []bool{false, true} {
		name := "embedded"
		if remote {
			name = "remote"
		}
		t.Run(name, func(t *testing.T) {
			var c *Catalog
			if remote {
				c = newRemoteCatalog(t)
			} else {
				c = newCatalog(t)
			}
			if err := c.Mkdir("/home"); err != nil {
				t.Fatal(err)
			}
			if err := c.Mkdir("/home/xhshen"); err != nil {
				t.Fatal(err)
			}
			fi := testFileInfo("/home/xhshen/dpfs.test")
			// 32 bricks placed by the greedy algorithm with perf
			// [1,2,1,2] reproduce Fig. 9/10.
			assign, err := stripe.Greedy{Perf: []int{1, 2, 1, 2}}.Assign(32, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Shrink the geometry so NumBricks()==32: 512/256 * 512/256
			// = 4 bricks; use tile 64x64 over 512x512 = 64... use dims
			// 1024x512 tile 128x128 = 8x4 = 32 bricks.
			fi.Geometry.Dims = []int64{1024, 512}
			fi.Geometry.Tile = []int64{128, 128}
			if fi.Geometry.NumBricks() != 32 {
				t.Fatalf("geometry has %d bricks", fi.Geometry.NumBricks())
			}
			if err := c.CreateFile(fi, assign); err != nil {
				t.Fatal(err)
			}

			got, gotAssign, err := c.LookupFile("/home/xhshen/dpfs.test")
			if err != nil {
				t.Fatal(err)
			}
			if got.Owner != "xhshen" || got.Perm != 0o744 || got.Size != 2097152 {
				t.Fatalf("attrs = %+v", got)
			}
			if got.Geometry.Level != stripe.LevelMultidim {
				t.Fatalf("level = %v", got.Geometry.Level)
			}
			if fmt.Sprint(got.Geometry.Dims) != "[1024 512]" || fmt.Sprint(got.Geometry.Tile) != "[128 128]" {
				t.Fatalf("geometry = %+v", got.Geometry)
			}
			for b := range assign {
				if assign[b] != gotAssign[b] {
					t.Fatalf("brick %d: assignment %d != %d", b, gotAssign[b], assign[b])
				}
			}
			lists := stripe.BrickLists(gotAssign, 4)
			if stripe.FormatBrickList(lists[0]) != "0,2,6,8,12,14,18,20,24,26,30" {
				t.Fatalf("server 0 bricklist = %v", lists[0])
			}
			if stripe.FormatBrickList(lists[1]) != "4,10,16,22,28" {
				t.Fatalf("server 1 bricklist = %v", lists[1])
			}

			// File shows up in its directory.
			_, files, err := c.ReadDir("/home/xhshen")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(files) != "[dpfs.test]" {
				t.Fatalf("files = %v", files)
			}
		})
	}
}

func TestCreateFileErrors(t *testing.T) {
	c := newCatalog(t)
	fi := testFileInfo("/f")
	assign, _ := stripe.RoundRobin{}.Assign(fi.Geometry.NumBricks(), len(fi.Servers))

	if err := c.CreateFile(fi, assign); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFile(fi, assign); err == nil {
		t.Fatal("duplicate create should fail")
	}
	bad := fi
	bad.Path = "/missing/f"
	if err := c.CreateFile(bad, assign); err == nil {
		t.Fatal("create in missing dir should fail")
	}
	bad = fi
	bad.Path = "relative"
	if err := c.CreateFile(bad, assign); err == nil {
		t.Fatal("relative path should fail")
	}
	bad = fi
	bad.Path = "/g"
	bad.Servers = nil
	if err := c.CreateFile(bad, assign); err == nil {
		t.Fatal("no servers should fail")
	}
	bad = fi
	bad.Path = "/g"
	bad.Geometry.Tile = nil
	if err := c.CreateFile(bad, assign); err == nil {
		t.Fatal("invalid geometry should fail")
	}

	// A failed create must leave no residue (transaction rollback).
	if _, err := c.Stat("/missing/f"); err == nil {
		t.Fatal("failed create left attr row")
	}
	// Creating a file over a directory name fails.
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	bad = fi
	bad.Path = "/d"
	if err := c.CreateFile(bad, assign); err == nil {
		t.Fatal("file over directory should fail")
	}
}

func TestRemoveFile(t *testing.T) {
	c := newCatalog(t)
	fi := testFileInfo("/f")
	assign, _ := stripe.RoundRobin{}.Assign(fi.Geometry.NumBricks(), len(fi.Servers))
	if err := c.CreateFile(fi, assign); err != nil {
		t.Fatal(err)
	}
	removed, err := c.RemoveFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed.Servers) != 4 || removed.Servers[0] != fi.Servers[0] {
		t.Fatalf("removed servers = %v", removed.Servers)
	}
	if _, err := c.Stat("/f"); err == nil {
		t.Fatal("removed file still stats")
	}
	if _, _, err := c.LookupFile("/f"); err == nil {
		t.Fatal("removed file still opens")
	}
	_, files, _ := c.ReadDir("/")
	if len(files) != 0 {
		t.Fatalf("directory still lists %v", files)
	}
	if _, err := c.RemoveFile("/f"); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestSetSize(t *testing.T) {
	c := newCatalog(t)
	fi := testFileInfo("/f")
	assign, _ := stripe.RoundRobin{}.Assign(fi.Geometry.NumBricks(), len(fi.Servers))
	if err := c.CreateFile(fi, assign); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSize("/f", 12345); err != nil {
		t.Fatal(err)
	}
	got, err := c.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 12345 {
		t.Fatalf("size = %d", got.Size)
	}
	if err := c.SetSize("/missing", 1); err == nil {
		t.Fatal("setsize on missing file should fail")
	}
}

func TestAllLevelsRoundtripThroughCatalog(t *testing.T) {
	c := newCatalog(t)
	geoms := []stripe.Geometry{
		{Level: stripe.LevelLinear, ElemSize: 1, Dims: []int64{1 << 20}, BrickBytes: 1 << 16},
		{Level: stripe.LevelMultidim, ElemSize: 8, Dims: []int64{256, 256}, Tile: []int64{64, 64}},
		{Level: stripe.LevelArray, ElemSize: 4, Dims: []int64{128, 128},
			Pattern: []stripe.Dist{stripe.DistBlock, stripe.DistStar}, Grid: []int64{4, 1}},
	}
	for i, g := range geoms {
		path := fmt.Sprintf("/file%d", i)
		fi := FileInfo{Path: path, Owner: "o", Perm: 0o644, Size: g.Size(), Geometry: g,
			Placement: "round-robin", Servers: []string{"s0", "s1"}}
		assign, err := stripe.RoundRobin{}.Assign(g.NumBricks(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CreateFile(fi, assign); err != nil {
			t.Fatal(err)
		}
		got, gotAssign, err := c.LookupFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Geometry.Level != g.Level || got.Geometry.Size() != g.Size() {
			t.Fatalf("file %d geometry mismatch: %+v", i, got.Geometry)
		}
		if len(gotAssign) != g.NumBricks() {
			t.Fatalf("file %d assignment length %d", i, len(gotAssign))
		}
		if got.Geometry.Level == stripe.LevelArray {
			if fmt.Sprint(got.Geometry.Pattern) != fmt.Sprint(g.Pattern) {
				t.Fatalf("pattern mismatch: %v", got.Geometry.Pattern)
			}
		}
	}
}

func TestCleanPath(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"/", "/", true},
		{"/a/b", "/a/b", true},
		{"/a//b/", "/a/b", true},
		{"/a/./b", "/a/b", true},
		{"/a/../b", "/b", true},
		{"/../..", "/", true},
		{"relative", "", false},
		{"", "", false},
		{"/a,b", "", false},
		{"/a'b", "", false},
	}
	for _, c := range cases {
		got, err := CleanPath(c.in)
		if (err == nil) != c.ok {
			t.Errorf("CleanPath(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("CleanPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	d, n := Split("/a/b/c")
	if d != "/a/b" || n != "c" {
		t.Errorf("Split = %q %q", d, n)
	}
	d, n = Split("/c")
	if d != "/" || n != "c" {
		t.Errorf("Split = %q %q", d, n)
	}
}

func TestDeepDirectoryTree(t *testing.T) {
	c := newCatalog(t)
	path := ""
	for i := 0; i < 8; i++ {
		path = path + fmt.Sprintf("/d%d", i)
		if err := c.Mkdir(path); err != nil {
			t.Fatal(err)
		}
	}
	// Remove bottom-up.
	for i := 7; i >= 0; i-- {
		if err := c.Rmdir(path); err != nil {
			t.Fatal(err)
		}
		path = path[:strings.LastIndexByte(path, '/')]
	}
	dirs, _, _ := c.ReadDir("/")
	if len(dirs) != 0 {
		t.Fatalf("tree not empty: %v", dirs)
	}
}
