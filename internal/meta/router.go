package meta

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// Router is the catalog surface the engine, repair runner and shell
// consume, abstracted so it can be served by one catalog or by N
// path-hash-routed catalog shards. *Catalog itself is a Router (the
// N=1 case, byte-for-byte today's behavior); ShardRouter fans the same
// operations out over several catalogs. Path-keyed operations go to
// the path's home shard, server-registry and health writes broadcast
// to every shard, and enumerations (Servers, Files, Usage, ReadDir,
// ...) are merged views across shards.
type Router interface {
	// SetTraceSpan forwards the trace parent to the underlying
	// connection(s); nil disables propagation.
	SetTraceSpan(*obs.Span)
	// Init creates the catalog tables on every shard (idempotent).
	Init() error
	// NextGeneration allocates a distribution generation from the
	// path's home shard. Generations are only compared between
	// distributions of the same path, so per-shard counters preserve
	// the ordering the I/O servers rely on.
	NextGeneration(path string) (int64, error)

	RegisterServer(s ServerInfo) error
	RemoveServer(name string) error
	Servers() ([]ServerInfo, error)
	Server(name string) (ServerInfo, error)
	ReportServerFailure(name string) error
	ReportServerOK(name string) error
	SetServerState(name, state string) error
	ServerHealth() ([]HealthInfo, error)

	Mkdir(path string) error
	Rmdir(path string) error
	ReadDir(path string) (dirs, files []string, err error)
	IsDir(path string) (bool, error)

	CreateFile(fi FileInfo, assign []int) error
	CreateReplicated(fi FileInfo, assign [][]int) error
	LookupFile(path string) (FileInfo, []int, error)
	LookupReplicated(path string) (FileInfo, *stripe.ReplicaSet, error)
	UpdateDistribution(path string, servers []string, lists [][]stripe.ReplicaEntry, gen int64) error
	Files() ([]string, error)
	Stat(path string) (FileInfo, error)
	RemoveFile(path string) (FileInfo, error)
	RenameFile(oldPath, newPath string) (servers []string, gen int64, err error)

	Usage() ([]ServerUsage, error)
	UsedBytes() (map[string]int64, error)
	FilesOnServer(server string) ([]FileOnServer, error)

	SetSize(path string, size int64) error
	SetPerm(path string, perm int) error
	SetOwner(path, owner string) error
}

var (
	_ Router = (*Catalog)(nil)
	_ Router = (*ShardRouter)(nil)
)

// ShardIndex maps a path to its home shard among n by FNV-1a hash of
// the cleaned path (so /a//b and /a/b agree). It is the routing
// function of ShardRouter, exported so tests and tools can predict
// where a path's rows live.
func ShardIndex(path string, n int) int {
	if n <= 1 {
		return 0
	}
	if clean, err := CleanPath(path); err == nil {
		path = clean
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(path))
	return int(h.Sum32() % uint32(n))
}

// ShardRouter routes catalog operations across N shards by path hash.
// Each shard holds the file rows (attr, distribution, generation) of
// the paths that hash to it; the server registry and health tables are
// written to every shard so any shard can answer placement queries
// over its own files. Directories exist on every shard (Mkdir
// broadcasts) with each shard listing only the files it homes, so
// ReadDir is a merge. Renames across shards are not supported yet —
// moving a file's rows between shards needs a cross-shard transaction
// this layer does not have.
type ShardRouter struct {
	shards []Router
}

// NewShardRouter builds a Router over the given shards in shard-index
// order. At least one shard is required; one shard reproduces a plain
// catalog exactly.
func NewShardRouter(shards ...Router) *ShardRouter {
	if len(shards) == 0 {
		panic("meta: NewShardRouter needs at least one shard")
	}
	return &ShardRouter{shards: shards}
}

// Shards returns the number of shards behind the router.
func (r *ShardRouter) Shards() int { return len(r.shards) }

// shard returns the home shard for a path.
func (r *ShardRouter) shard(path string) Router {
	return r.shards[ShardIndex(path, len(r.shards))]
}

// broadcast applies op to every shard in index order, returning the
// first error (later shards are still attempted so the shards drift as
// little as possible).
func (r *ShardRouter) broadcast(op func(Router) error) error {
	var first error
	for _, s := range r.shards {
		if err := op(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetTraceSpan forwards the trace parent to every shard.
func (r *ShardRouter) SetTraceSpan(sp *obs.Span) {
	for _, s := range r.shards {
		s.SetTraceSpan(sp)
	}
}

// Init creates the catalog tables on every shard.
func (r *ShardRouter) Init() error {
	for _, s := range r.shards {
		if err := s.Init(); err != nil {
			return err
		}
	}
	return nil
}

// NextGeneration allocates a generation from the path's home shard,
// keeping every generation ever issued for a path on one counter.
func (r *ShardRouter) NextGeneration(path string) (int64, error) {
	return r.shard(path).NextGeneration(path)
}

// RegisterServer records the server on every shard.
func (r *ShardRouter) RegisterServer(s ServerInfo) error {
	return r.broadcast(func(sh Router) error { return sh.RegisterServer(s) })
}

// RemoveServer drops the server from every shard.
func (r *ShardRouter) RemoveServer(name string) error {
	return r.broadcast(func(sh Router) error { return sh.RemoveServer(name) })
}

// Servers returns the merged server registry (first shard wins on
// conflicting rows, which only happens when a broadcast half-failed).
func (r *ShardRouter) Servers() ([]ServerInfo, error) {
	seen := make(map[string]bool)
	out := make([]ServerInfo, 0)
	for _, s := range r.shards {
		infos, err := s.Servers()
		if err != nil {
			return nil, err
		}
		for _, si := range infos {
			if !seen[si.Name] {
				seen[si.Name] = true
				out = append(out, si)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Server returns the first shard's registration of the named server.
func (r *ShardRouter) Server(name string) (ServerInfo, error) {
	var lastErr error
	for _, s := range r.shards {
		si, err := s.Server(name)
		if err == nil {
			return si, nil
		}
		lastErr = err
	}
	return ServerInfo{}, lastErr
}

// ReportServerFailure records the failure on every shard.
func (r *ShardRouter) ReportServerFailure(name string) error {
	return r.broadcast(func(sh Router) error { return sh.ReportServerFailure(name) })
}

// ReportServerOK resets the server to alive on every shard.
func (r *ShardRouter) ReportServerOK(name string) error {
	return r.broadcast(func(sh Router) error { return sh.ReportServerOK(name) })
}

// SetServerState pins the state on every shard.
func (r *ShardRouter) SetServerState(name, state string) error {
	return r.broadcast(func(sh Router) error { return sh.SetServerState(name, state) })
}

// healthRank orders states by severity for the merged health view.
func healthRank(state string) int {
	switch state {
	case StateDead:
		return 2
	case StateSuspect:
		return 1
	}
	return 0
}

// ServerHealth merges the shards' health rows by server name: the
// worst state wins and the failure count is the maximum reported.
func (r *ShardRouter) ServerHealth() ([]HealthInfo, error) {
	merged := make(map[string]HealthInfo)
	for _, s := range r.shards {
		rows, err := s.ServerHealth()
		if err != nil {
			return nil, err
		}
		for _, h := range rows {
			cur, ok := merged[h.Name]
			if !ok {
				merged[h.Name] = h
				continue
			}
			if healthRank(h.State) > healthRank(cur.State) {
				cur.State = h.State
			}
			if h.Fails > cur.Fails {
				cur.Fails = h.Fails
			}
			merged[h.Name] = cur
		}
	}
	out := make([]HealthInfo, 0, len(merged))
	for _, h := range merged {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir creates the directory on every shard (each shard resolves
// parents for the files it homes). A failure rolls the directory back
// off the shards that already created it.
func (r *ShardRouter) Mkdir(path string) error {
	for i, s := range r.shards {
		if err := s.Mkdir(path); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = r.shards[j].Rmdir(path)
			}
			return err
		}
	}
	return nil
}

// Rmdir removes the directory from every shard. It first verifies the
// directory is empty on all shards so a half-applied remove (possible
// if a shard fails mid-broadcast) cannot orphan files.
func (r *ShardRouter) Rmdir(path string) error {
	for _, s := range r.shards {
		subs, files, err := s.ReadDir(path)
		if err != nil {
			return err
		}
		if len(subs) > 0 || len(files) > 0 {
			return fmt.Errorf("meta: directory %s not empty", path)
		}
	}
	return r.broadcast(func(sh Router) error { return sh.Rmdir(path) })
}

// ReadDir merges the directory listing across shards: sub-directories
// exist everywhere (deduplicated), files live on their home shard.
func (r *ShardRouter) ReadDir(path string) (dirs, files []string, err error) {
	seenDir := make(map[string]bool)
	for _, s := range r.shards {
		ds, fs, err := s.ReadDir(path)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range ds {
			if !seenDir[d] {
				seenDir[d] = true
				dirs = append(dirs, d)
			}
		}
		files = append(files, fs...)
	}
	sort.Strings(dirs)
	sort.Strings(files)
	return dirs, files, nil
}

// IsDir asks the path's home shard (directories exist on all shards).
func (r *ShardRouter) IsDir(path string) (bool, error) {
	return r.shard(path).IsDir(path)
}

// CreateFile records the file on its home shard.
func (r *ShardRouter) CreateFile(fi FileInfo, assign []int) error {
	return r.shard(fi.Path).CreateFile(fi, assign)
}

// CreateReplicated records the file on its home shard.
func (r *ShardRouter) CreateReplicated(fi FileInfo, assign [][]int) error {
	return r.shard(fi.Path).CreateReplicated(fi, assign)
}

// LookupFile loads the file from its home shard.
func (r *ShardRouter) LookupFile(path string) (FileInfo, []int, error) {
	return r.shard(path).LookupFile(path)
}

// LookupReplicated loads the file from its home shard.
func (r *ShardRouter) LookupReplicated(path string) (FileInfo, *stripe.ReplicaSet, error) {
	return r.shard(path).LookupReplicated(path)
}

// UpdateDistribution replaces the file's distribution on its home
// shard.
func (r *ShardRouter) UpdateDistribution(path string, servers []string, lists [][]stripe.ReplicaEntry, gen int64) error {
	return r.shard(path).UpdateDistribution(path, servers, lists, gen)
}

// Files returns the sorted union of every shard's file list.
func (r *ShardRouter) Files() ([]string, error) {
	out := make([]string, 0)
	for _, s := range r.shards {
		fs, err := s.Files()
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sort.Strings(out)
	return out, nil
}

// Stat loads the file's attributes from its home shard.
func (r *ShardRouter) Stat(path string) (FileInfo, error) {
	return r.shard(path).Stat(path)
}

// RemoveFile deletes the file from its home shard.
func (r *ShardRouter) RemoveFile(path string) (FileInfo, error) {
	return r.shard(path).RemoveFile(path)
}

// ErrCrossShardRename reports a rename whose source and destination
// hash to different shards, which ShardRouter cannot perform (moving a
// file's rows between shards needs a cross-shard transaction this
// layer does not have). Match it with errors.Is(err,
// ErrCrossShardRename); the returned error also carries both paths and
// both shard indices for operators (errors.As with
// *CrossShardRenameError).
var ErrCrossShardRename = errors.New("meta: cross-shard rename not supported")

// CrossShardRenameError is the concrete error behind
// ErrCrossShardRename, naming the offending rename.
type CrossShardRenameError struct {
	OldPath, NewPath   string
	OldShard, NewShard int
}

func (e *CrossShardRenameError) Error() string {
	return fmt.Sprintf("meta: rename %s (shard %d) -> %s (shard %d): cross-shard rename not supported",
		e.OldPath, e.OldShard, e.NewPath, e.NewShard)
}

// Is makes errors.Is(err, ErrCrossShardRename) match.
func (e *CrossShardRenameError) Is(target error) bool { return target == ErrCrossShardRename }

// RenameFile moves the file when source and destination hash to the
// same shard; cross-shard renames fail with ErrCrossShardRename (they
// need a cross-shard transaction this layer does not have).
func (r *ShardRouter) RenameFile(oldPath, newPath string) (servers []string, gen int64, err error) {
	oi := ShardIndex(oldPath, len(r.shards))
	ni := ShardIndex(newPath, len(r.shards))
	if oi != ni {
		return nil, 0, &CrossShardRenameError{
			OldPath: oldPath, NewPath: newPath, OldShard: oi, NewShard: ni,
		}
	}
	return r.shards[oi].RenameFile(oldPath, newPath)
}

// Usage merges per-server usage across shards: registration fields
// come from the first shard reporting the server, file and brick
// counts are summed.
func (r *ShardRouter) Usage() ([]ServerUsage, error) {
	merged := make(map[string]ServerUsage)
	var order []string
	for _, s := range r.shards {
		rows, err := s.Usage()
		if err != nil {
			return nil, err
		}
		for _, u := range rows {
			cur, ok := merged[u.Name]
			if !ok {
				merged[u.Name] = u
				order = append(order, u.Name)
				continue
			}
			cur.Files += u.Files
			cur.Bricks += u.Bricks
			merged[u.Name] = cur
		}
	}
	sort.Strings(order)
	out := make([]ServerUsage, 0, len(order))
	for _, name := range order {
		out = append(out, merged[name])
	}
	return out, nil
}

// UsedBytes sums the per-server accounted bytes across shards.
func (r *ShardRouter) UsedBytes() (map[string]int64, error) {
	out := make(map[string]int64)
	for _, s := range r.shards {
		m, err := s.UsedBytes()
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			out[k] += v
		}
	}
	return out, nil
}

// FilesOnServer merges each shard's report for the server, sorted by
// path.
func (r *ShardRouter) FilesOnServer(server string) ([]FileOnServer, error) {
	out := make([]FileOnServer, 0)
	for _, s := range r.shards {
		rows, err := s.FilesOnServer(server)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// SetSize updates the size on the file's home shard.
func (r *ShardRouter) SetSize(path string, size int64) error {
	return r.shard(path).SetSize(path, size)
}

// SetPerm updates the permission on the file's home shard.
func (r *ShardRouter) SetPerm(path string, perm int) error {
	return r.shard(path).SetPerm(path, perm)
}

// SetOwner updates the owner on the file's home shard.
func (r *ShardRouter) SetOwner(path, owner string) error {
	return r.shard(path).SetOwner(path, owner)
}
