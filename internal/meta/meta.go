// Package meta implements the DPFS meta-data catalog of Section 5: the
// four relational tables of Fig. 10 (DPFS-SERVER,
// DPFS-FILE-DISTRIBUTION, DPFS-DIRECTORY, DPFS-FILE-ATTR) kept in a SQL
// database and manipulated through plain SQL statements inside
// transactions. The database can be embedded (a *metadb.Session) or
// remote (an *mdbnet.Client), exactly as the paper runs POSTGRES on a
// separate machine.
package meta

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dpfs/internal/metadb"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// Execer runs one SQL statement; *metadb.Session and *mdbnet.Client
// both satisfy it. Statements issued between BEGIN and COMMIT must see
// connection/session-scoped transaction semantics.
type Execer interface {
	Exec(sql string) (*metadb.Result, error)
}

// SpanSetter is the optional interface of Execers that can attach
// distributed-trace context to their statements (*mdbnet.Client does;
// the embedded *metadb.Session does not need to — it is in-process).
type SpanSetter interface {
	// SetTraceSpan sets the parent span for subsequent statements; nil
	// disables propagation.
	SetTraceSpan(*obs.Span)
}

// SetTraceSpan forwards the trace parent to the underlying connection
// when it supports trace propagation, and is a no-op otherwise.
// Best-effort and last-setter-wins, like the connection itself.
func (c *Catalog) SetTraceSpan(sp *obs.Span) {
	if ss, ok := c.db.(SpanSetter); ok {
		ss.SetTraceSpan(sp)
	}
}

// ServerInfo is one row of DPFS-SERVER.
type ServerInfo struct {
	Name string
	// Capacity is the advertised storage capacity in bytes.
	Capacity int64
	// Performance is the normalized per-brick access time (fastest
	// server = 1; a server 3x slower = 3). The greedy striping
	// algorithm consumes this.
	Performance int
	// Addr is the network address of the DPFS server process.
	Addr string
}

// FileInfo is a DPFS file's complete meta data: the DPFS-FILE-ATTR row
// plus the server list of its distribution.
type FileInfo struct {
	Path     string
	Owner    string
	Perm     int
	Size     int64
	Geometry stripe.Geometry
	// Placement names the striping algorithm used at creation.
	Placement string
	// Servers holds, in distribution order, the names of the servers
	// across which the file is striped; the brick→server assignment
	// indexes into it.
	Servers []string
	// Generation is the distribution generation stamped into the
	// file's DPFS-FILE-DISTRIBUTION rows at creation, allocated from
	// the catalog-wide dpfs_generation counter. I/O servers key
	// subfiles by (path, generation), so a client whose cached
	// distribution predates a remove+recreate of the same path is
	// detected (stale-generation error) instead of being served the
	// wrong file's bricks. Zero means ungenerationed (legacy rows and
	// direct catalog tests).
	Generation int64
	// Replicas is the file's replication factor R: every brick is
	// stored on R distinct servers. 1 (or 0, normalized to 1) is the
	// unreplicated layout.
	Replicas int
}

// Catalog performs DPFS catalog operations over a SQL connection. It
// is safe for concurrent use; operations that touch multiple tables
// run inside a transaction.
type Catalog struct {
	mu sync.Mutex
	db Execer
}

// NewCatalog wraps a SQL connection.
func NewCatalog(db Execer) *Catalog { return &Catalog{db: db} }

// Init creates the four DPFS tables (idempotent) and the root
// directory.
func (c *Catalog) Init() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	stmts := []string{
		`CREATE TABLE IF NOT EXISTS dpfs_server (
			server_name TEXT PRIMARY KEY,
			capacity INT NOT NULL,
			performance INT NOT NULL,
			addr TEXT NOT NULL)`,
		`CREATE TABLE IF NOT EXISTS dpfs_file_distribution (
			server TEXT NOT NULL,
			filename TEXT NOT NULL,
			srv_index INT NOT NULL,
			brick_count INT NOT NULL,
			bricklist TEXT NOT NULL,
			gen INT NOT NULL)`,
		`CREATE TABLE IF NOT EXISTS dpfs_generation (
			id INT PRIMARY KEY,
			next INT NOT NULL)`,
		`CREATE INDEX IF NOT EXISTS dist_by_file ON dpfs_file_distribution (filename)`,
		`CREATE INDEX IF NOT EXISTS dist_by_server ON dpfs_file_distribution (server)`,
		`CREATE TABLE IF NOT EXISTS dpfs_directory (
			main_dir TEXT PRIMARY KEY,
			sub_dirs TEXT NOT NULL,
			files TEXT NOT NULL)`,
		`CREATE TABLE IF NOT EXISTS dpfs_file_attr (
			filename TEXT PRIMARY KEY,
			owner TEXT NOT NULL,
			permission INT NOT NULL,
			size INT NOT NULL,
			filelevel TEXT NOT NULL,
			elem_size INT NOT NULL,
			dims TEXT NOT NULL,
			brick_bytes INT NOT NULL,
			tile TEXT NOT NULL,
			pattern TEXT NOT NULL,
			grid TEXT NOT NULL,
			placement TEXT NOT NULL,
			slot_bytes INT NOT NULL,
			replicas INT NOT NULL)`,
		`CREATE TABLE IF NOT EXISTS dpfs_server_health (
			server_name TEXT PRIMARY KEY,
			state TEXT NOT NULL,
			fails INT NOT NULL)`,
	}
	for _, s := range stmts {
		if _, err := c.db.Exec(s); err != nil {
			return fmt.Errorf("meta: init: %w", err)
		}
	}
	// Ensure the root directory row exists.
	res, err := c.db.Exec(`SELECT main_dir FROM dpfs_directory WHERE main_dir = '/'`)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		_, err = c.db.Exec(`INSERT INTO dpfs_directory VALUES ('/', '', '')`)
		if err != nil && !strings.Contains(err.Error(), "duplicate") {
			return err
		}
	}
	// Seed the generation counter.
	res, err = c.db.Exec(`SELECT next FROM dpfs_generation WHERE id = 0`)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		_, err = c.db.Exec(`INSERT INTO dpfs_generation VALUES (0, 0)`)
		if err != nil && !strings.Contains(err.Error(), "duplicate") {
			return err
		}
	}
	return nil
}

// NextGeneration allocates a fresh distribution generation from the
// catalog-wide counter. The UPDATE runs first so the transaction takes
// its exclusive lock immediately (no shared→exclusive upgrade under
// strict 2PL); concurrent allocators serialize on it and each sees a
// distinct value. Generations only grow, which is what lets the I/O
// servers order any two distributions of the same path.
//
// The path argument exists for Router: a ShardRouter allocates from
// the path's home shard so every generation ever issued for a path
// comes from one counter. A single catalog has one catalog-wide
// counter and ignores it.
func (c *Catalog) NextGeneration(path string) (int64, error) {
	_ = path // one counter per catalog; routing uses the path upstream
	c.mu.Lock()
	defer c.mu.Unlock()
	var gen int64
	err := c.inTx(func() error {
		if _, err := c.db.Exec(`UPDATE dpfs_generation SET next = next + 1 WHERE id = 0`); err != nil {
			return err
		}
		res, err := c.db.Exec(`SELECT next FROM dpfs_generation WHERE id = 0`)
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return errors.New("meta: generation counter missing (Init not run?)")
		}
		gen = res.Rows[0][0].Int
		return nil
	})
	return gen, err
}

// --- server registry --------------------------------------------------

// RegisterServer adds or updates a DPFS-SERVER row.
func (c *Catalog) RegisterServer(s ServerInfo) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := validName(s.Name); err != nil {
		return err
	}
	if s.Performance < 1 {
		return fmt.Errorf("meta: server %q performance must be >= 1", s.Name)
	}
	res, err := c.db.Exec(fmt.Sprintf(
		`UPDATE dpfs_server SET capacity = %d, performance = %d, addr = %s WHERE server_name = %s`,
		s.Capacity, s.Performance, quote(s.Addr), quote(s.Name)))
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		_, err = c.db.Exec(fmt.Sprintf(`INSERT INTO dpfs_server VALUES (%s, %d, %d, %s)`,
			quote(s.Name), s.Capacity, s.Performance, quote(s.Addr)))
	}
	return err
}

// RemoveServer drops a server from the registry. Files striped over it
// keep their distribution rows; removing a server that still holds
// files is an administrative error the caller must avoid.
func (c *Catalog) RemoveServer(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.db.Exec(fmt.Sprintf(`DELETE FROM dpfs_server WHERE server_name = %s`, quote(name)))
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return fmt.Errorf("meta: no such server %q", name)
	}
	return nil
}

// Servers lists registered servers ordered by name.
func (c *Catalog) Servers() ([]ServerInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serversLocked()
}

func (c *Catalog) serversLocked() ([]ServerInfo, error) {
	res, err := c.db.Exec(`SELECT server_name, capacity, performance, addr FROM dpfs_server ORDER BY server_name`)
	if err != nil {
		return nil, err
	}
	out := make([]ServerInfo, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, ServerInfo{
			Name:        r[0].Str,
			Capacity:    r[1].Int,
			Performance: int(r[2].Int),
			Addr:        r[3].Str,
		})
	}
	return out, nil
}

// Server returns one server's registration.
func (c *Catalog) Server(name string) (ServerInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.db.Exec(fmt.Sprintf(
		`SELECT server_name, capacity, performance, addr FROM dpfs_server WHERE server_name = %s`, quote(name)))
	if err != nil {
		return ServerInfo{}, err
	}
	if len(res.Rows) == 0 {
		return ServerInfo{}, fmt.Errorf("meta: no such server %q", name)
	}
	r := res.Rows[0]
	return ServerInfo{Name: r[0].Str, Capacity: r[1].Int, Performance: int(r[2].Int), Addr: r[3].Str}, nil
}

// --- server health -----------------------------------------------------

// Server health states tracked in dpfs_server_health. Clients report
// transport failures (alive → suspect); the repair probe loop settles
// suspects into alive or dead by actually dialing them.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// HealthInfo is one row of DPFS-SERVER-HEALTH.
type HealthInfo struct {
	Name  string
	State string
	// Fails counts consecutive reported transport failures since the
	// last success.
	Fails int64
}

// ReportServerFailure records a client-observed transport failure
// against a server: its consecutive-failure count grows and an alive
// server becomes suspect. Only a probe (SetServerState) declares death;
// a burst of client reports alone cannot, since the fault may be on the
// client's side of the network.
func (c *Catalog) ReportServerFailure(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inTx(func() error {
		res, err := c.db.Exec(fmt.Sprintf(
			`SELECT state, fails FROM dpfs_server_health WHERE server_name = %s`, quote(name)))
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			_, err = c.db.Exec(fmt.Sprintf(`INSERT INTO dpfs_server_health VALUES (%s, %s, 1)`,
				quote(name), quote(StateSuspect)))
			return err
		}
		state := res.Rows[0][0].Str
		if state == StateAlive {
			state = StateSuspect
		}
		_, err = c.db.Exec(fmt.Sprintf(
			`UPDATE dpfs_server_health SET state = %s, fails = %d WHERE server_name = %s`,
			quote(state), res.Rows[0][1].Int+1, quote(name)))
		return err
	})
}

// ReportServerOK records a successful exchange with a server, resetting
// it to alive with zero consecutive failures.
func (c *Catalog) ReportServerOK(name string) error {
	return c.SetServerState(name, StateAlive)
}

// SetServerState pins a server's health state (the probe loop's
// verdict). Alive resets the failure count.
func (c *Catalog) SetServerState(name, state string) error {
	switch state {
	case StateAlive, StateSuspect, StateDead:
	default:
		return fmt.Errorf("meta: unknown server state %q", state)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inTx(func() error {
		fails := ""
		if state == StateAlive {
			fails = ", fails = 0"
		}
		res, err := c.db.Exec(fmt.Sprintf(
			`UPDATE dpfs_server_health SET state = %s%s WHERE server_name = %s`,
			quote(state), fails, quote(name)))
		if err != nil {
			return err
		}
		if res.RowsAffected == 0 {
			_, err = c.db.Exec(fmt.Sprintf(`INSERT INTO dpfs_server_health VALUES (%s, %s, 0)`,
				quote(name), quote(state)))
		}
		return err
	})
}

// ServerHealth lists the tracked health rows ordered by server name.
// Servers never reported on have no row and are presumed alive.
func (c *Catalog) ServerHealth() ([]HealthInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.db.Exec(`SELECT server_name, state, fails FROM dpfs_server_health ORDER BY server_name`)
	if err != nil {
		return nil, err
	}
	out := make([]HealthInfo, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, HealthInfo{Name: r[0].Str, State: r[1].Str, Fails: r[2].Int})
	}
	return out, nil
}

// --- directories -------------------------------------------------------

// Mkdir creates a directory; the parent must exist.
func (c *Catalog) Mkdir(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	if path == "/" {
		return errors.New("meta: root directory already exists")
	}
	parent, name := Split(path)
	if err := validName(name); err != nil {
		return err
	}
	return c.inTx(func() error {
		subs, files, err := c.readDirLocked(parent)
		if err != nil {
			return err
		}
		if contains(subs, name) || contains(files, name) {
			return fmt.Errorf("meta: %s already exists", path)
		}
		if _, err := c.db.Exec(fmt.Sprintf(`INSERT INTO dpfs_directory VALUES (%s, '', '')`, quote(path))); err != nil {
			return err
		}
		subs = append(subs, name)
		sort.Strings(subs)
		return c.writeDirList(parent, "sub_dirs", subs)
	})
}

// Rmdir removes an empty directory.
func (c *Catalog) Rmdir(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	if path == "/" {
		return errors.New("meta: cannot remove the root directory")
	}
	parent, name := Split(path)
	return c.inTx(func() error {
		subs, files, err := c.readDirLocked(path)
		if err != nil {
			return err
		}
		if len(subs) > 0 || len(files) > 0 {
			return fmt.Errorf("meta: directory %s not empty", path)
		}
		if _, err := c.db.Exec(fmt.Sprintf(`DELETE FROM dpfs_directory WHERE main_dir = %s`, quote(path))); err != nil {
			return err
		}
		psubs, _, err := c.readDirLocked(parent)
		if err != nil {
			return err
		}
		return c.writeDirList(parent, "sub_dirs", remove(psubs, name))
	})
}

// ReadDir lists a directory's sub-directories and files, both sorted.
func (c *Catalog) ReadDir(path string) (dirs, files []string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err = CleanPath(path)
	if err != nil {
		return nil, nil, err
	}
	return c.readDirLocked(path)
}

// IsDir reports whether path names an existing directory.
func (c *Catalog) IsDir(path string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return false, err
	}
	res, err := c.db.Exec(fmt.Sprintf(`SELECT main_dir FROM dpfs_directory WHERE main_dir = %s`, quote(path)))
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

func (c *Catalog) readDirLocked(path string) (subs, files []string, err error) {
	res, err := c.db.Exec(fmt.Sprintf(
		`SELECT sub_dirs, files FROM dpfs_directory WHERE main_dir = %s`, quote(path)))
	if err != nil {
		return nil, nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil, fmt.Errorf("meta: no such directory %s", path)
	}
	return splitList(res.Rows[0][0].Str), splitList(res.Rows[0][1].Str), nil
}

func (c *Catalog) writeDirList(path, col string, list []string) error {
	_, err := c.db.Exec(fmt.Sprintf(`UPDATE dpfs_directory SET %s = %s WHERE main_dir = %s`,
		col, quote(joinList(list)), quote(path)))
	return err
}

// --- files -------------------------------------------------------------

// CreateFile atomically records a new unreplicated file: its
// DPFS-FILE-ATTR row, one DPFS-FILE-DISTRIBUTION row per server, and
// the parent directory update. assign maps brick id to an index into
// fi.Servers.
func (c *Catalog) CreateFile(fi FileInfo, assign []int) error {
	rep := make([][]int, len(assign))
	for b, s := range assign {
		rep[b] = []int{s}
	}
	fi.Replicas = 1
	return c.CreateReplicated(fi, rep)
}

// CreateReplicated atomically records a new file whose bricks carry
// fi.Replicas replicas each; assign maps [brick][rank] to an index into
// fi.Servers. CreateFile is the replicas == 1 special case.
func (c *Catalog) CreateReplicated(fi FileInfo, assign [][]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(fi.Path)
	if err != nil {
		return err
	}
	fi.Path = path
	parent, name := Split(path)
	if err := validName(name); err != nil {
		return err
	}
	if len(fi.Servers) == 0 {
		return errors.New("meta: file needs at least one server")
	}
	if err := fi.Geometry.Validate(); err != nil {
		return err
	}
	if fi.Replicas < 1 {
		fi.Replicas = 1
	}
	for b, set := range assign {
		if len(set) != fi.Replicas {
			return fmt.Errorf("meta: brick %d has %d replicas, want %d", b, len(set), fi.Replicas)
		}
	}
	return c.inTx(func() error {
		subs, files, err := c.readDirLocked(parent)
		if err != nil {
			return err
		}
		if contains(subs, name) || contains(files, name) {
			return fmt.Errorf("meta: %s already exists", path)
		}
		g := &fi.Geometry
		if _, err := c.db.Exec(fmt.Sprintf(
			`INSERT INTO dpfs_file_attr VALUES (%s, %s, %d, %d, %s, %d, %s, %d, %s, %s, %s, %s, %d, %d)`,
			quote(path), quote(fi.Owner), fi.Perm, fi.Size, quote(g.Level.String()),
			g.ElemSize, quote(joinInts(g.Dims)), g.BrickBytes, quote(joinInts(g.Tile)),
			quote(joinPattern(g.Pattern)), quote(joinInts(g.Grid)), quote(fi.Placement),
			g.SlotBytes(), fi.Replicas)); err != nil {
			return err
		}
		lists := stripe.ReplicaLists(assign, len(fi.Servers))
		for si, list := range lists {
			if _, err := c.db.Exec(fmt.Sprintf(
				`INSERT INTO dpfs_file_distribution VALUES (%s, %s, %d, %d, %s, %d)`,
				quote(fi.Servers[si]), quote(path), si, len(list),
				quote(stripe.FormatReplicaList(list)), fi.Generation)); err != nil {
				return err
			}
		}
		files = append(files, name)
		sort.Strings(files)
		return c.writeDirList(parent, "files", files)
	})
}

// LookupFile loads a file's meta data and reconstructs the brick →
// server assignment of replica rank 0 (the preferred copies) from the
// stored brick lists. Replica-aware callers use LookupReplicated.
func (c *Catalog) LookupFile(path string) (FileInfo, []int, error) {
	fi, rs, err := c.LookupReplicated(path)
	if err != nil {
		return FileInfo{}, nil, err
	}
	return fi, rs.Primary(), nil
}

// LookupReplicated loads a file's meta data and reconstructs the full
// replica layout from the stored brick lists.
func (c *Catalog) LookupReplicated(path string) (FileInfo, *stripe.ReplicaSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return FileInfo{}, nil, err
	}
	fi, err := c.statLocked(path)
	if err != nil {
		return FileInfo{}, nil, err
	}
	res, err := c.db.Exec(fmt.Sprintf(
		`SELECT server, srv_index, bricklist, gen FROM dpfs_file_distribution WHERE filename = %s ORDER BY srv_index`,
		quote(path)))
	if err != nil {
		return FileInfo{}, nil, err
	}
	if len(res.Rows) == 0 {
		return FileInfo{}, nil, fmt.Errorf("meta: file %s has no distribution rows", path)
	}
	lists := make([][]stripe.ReplicaEntry, len(res.Rows))
	fi.Servers = make([]string, len(res.Rows))
	for _, r := range res.Rows {
		si := int(r[1].Int)
		if si < 0 || si >= len(res.Rows) {
			return FileInfo{}, nil, fmt.Errorf("meta: file %s has corrupt srv_index %d", path, si)
		}
		fi.Servers[si] = r[0].Str
		list, err := stripe.ParseReplicaList(r[2].Str)
		if err != nil {
			return FileInfo{}, nil, err
		}
		lists[si] = list
		fi.Generation = r[3].Int
	}
	rs, err := stripe.ReplicaSetFromLists(lists, fi.Geometry.NumBricks(), fi.Replicas)
	if err != nil {
		return FileInfo{}, nil, fmt.Errorf("meta: file %s: %w", path, err)
	}
	return fi, rs, nil
}

// UpdateDistribution atomically replaces a file's distribution rows
// with a new replica layout under a new generation — the repair path's
// commit point. servers and lists are aligned by srv_index; gen must
// come from NextGeneration so stale subfiles order below the new ones.
func (c *Catalog) UpdateDistribution(path string, servers []string, lists [][]stripe.ReplicaEntry, gen int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	if len(servers) != len(lists) {
		return fmt.Errorf("meta: %d servers for %d brick lists", len(servers), len(lists))
	}
	return c.inTx(func() error {
		if _, err := c.statLocked(path); err != nil {
			return err
		}
		if _, err := c.db.Exec(fmt.Sprintf(
			`DELETE FROM dpfs_file_distribution WHERE filename = %s`, quote(path))); err != nil {
			return err
		}
		for si, list := range lists {
			if _, err := c.db.Exec(fmt.Sprintf(
				`INSERT INTO dpfs_file_distribution VALUES (%s, %s, %d, %d, %s, %d)`,
				quote(servers[si]), quote(path), si, len(list),
				quote(stripe.FormatReplicaList(list)), gen)); err != nil {
				return err
			}
		}
		return nil
	})
}

// Files lists every file path in the catalog, sorted — the enumeration
// repair sweeps.
func (c *Catalog) Files() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.db.Exec(`SELECT filename FROM dpfs_file_attr ORDER BY filename`)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].Str)
	}
	return out, nil
}

// Stat returns a file's attributes without its distribution.
func (c *Catalog) Stat(path string) (FileInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	return c.statLocked(path)
}

func (c *Catalog) statLocked(path string) (FileInfo, error) {
	res, err := c.db.Exec(fmt.Sprintf(
		`SELECT owner, permission, size, filelevel, elem_size, dims, brick_bytes, tile, pattern, grid, placement, replicas
		 FROM dpfs_file_attr WHERE filename = %s`, quote(path)))
	if err != nil {
		return FileInfo{}, err
	}
	if len(res.Rows) == 0 {
		return FileInfo{}, fmt.Errorf("meta: no such file %s", path)
	}
	r := res.Rows[0]
	level, err := stripe.ParseLevel(r[3].Str)
	if err != nil {
		return FileInfo{}, err
	}
	dims, err := splitInts(r[5].Str)
	if err != nil {
		return FileInfo{}, err
	}
	tile, err := splitInts(r[7].Str)
	if err != nil {
		return FileInfo{}, err
	}
	pattern, err := splitPattern(r[8].Str)
	if err != nil {
		return FileInfo{}, err
	}
	grid, err := splitInts(r[9].Str)
	if err != nil {
		return FileInfo{}, err
	}
	replicas := int(r[11].Int)
	if replicas < 1 {
		replicas = 1
	}
	return FileInfo{
		Path:  path,
		Owner: r[0].Str,
		Perm:  int(r[1].Int),
		Size:  r[2].Int,
		Geometry: stripe.Geometry{
			Level:      level,
			ElemSize:   r[4].Int,
			Dims:       dims,
			BrickBytes: r[6].Int,
			Tile:       tile,
			Pattern:    pattern,
			Grid:       grid,
		},
		Placement: r[10].Str,
		Replicas:  replicas,
	}, nil
}

// RemoveFile atomically deletes a file's attr row, distribution rows
// and directory entry, returning its former distribution so the caller
// can delete the subfiles on the I/O servers.
func (c *Catalog) RemoveFile(path string) (FileInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	parent, name := Split(path)
	var fi FileInfo
	err = c.inTx(func() error {
		fi, err = c.statLocked(path)
		if err != nil {
			return err
		}
		res, err := c.db.Exec(fmt.Sprintf(
			`SELECT server, gen FROM dpfs_file_distribution WHERE filename = %s ORDER BY srv_index`, quote(path)))
		if err != nil {
			return err
		}
		for _, r := range res.Rows {
			fi.Servers = append(fi.Servers, r[0].Str)
			fi.Generation = r[1].Int
		}
		if _, err := c.db.Exec(fmt.Sprintf(`DELETE FROM dpfs_file_attr WHERE filename = %s`, quote(path))); err != nil {
			return err
		}
		if _, err := c.db.Exec(fmt.Sprintf(`DELETE FROM dpfs_file_distribution WHERE filename = %s`, quote(path))); err != nil {
			return err
		}
		_, files, err := c.readDirLocked(parent)
		if err != nil {
			return err
		}
		return c.writeDirList(parent, "files", remove(files, name))
	})
	return fi, err
}

// RenameFile atomically moves a file's catalog records to a new path
// (attr row, distribution rows, and both directory entries) and
// returns the server list and distribution generation so the caller
// can rename the subfiles. The destination's parent directory must
// exist and the destination must not.
func (c *Catalog) RenameFile(oldPath, newPath string) (servers []string, gen int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldPath, err = CleanPath(oldPath)
	if err != nil {
		return nil, 0, err
	}
	newPath, err = CleanPath(newPath)
	if err != nil {
		return nil, 0, err
	}
	if oldPath == newPath {
		return nil, 0, fmt.Errorf("meta: rename %s onto itself", oldPath)
	}
	oldParent, oldName := Split(oldPath)
	newParent, newName := Split(newPath)
	if err := validName(newName); err != nil {
		return nil, 0, err
	}
	err = c.inTx(func() error {
		if _, err := c.statLocked(oldPath); err != nil {
			return err
		}
		nsubs, nfiles, err := c.readDirLocked(newParent)
		if err != nil {
			return err
		}
		if contains(nsubs, newName) || contains(nfiles, newName) {
			return fmt.Errorf("meta: %s already exists", newPath)
		}
		res, err := c.db.Exec(fmt.Sprintf(
			`SELECT server, gen FROM dpfs_file_distribution WHERE filename = %s ORDER BY srv_index`, quote(oldPath)))
		if err != nil {
			return err
		}
		for _, r := range res.Rows {
			servers = append(servers, r[0].Str)
			gen = r[1].Int
		}
		if _, err := c.db.Exec(fmt.Sprintf(
			`UPDATE dpfs_file_attr SET filename = %s WHERE filename = %s`,
			quote(newPath), quote(oldPath))); err != nil {
			return err
		}
		if _, err := c.db.Exec(fmt.Sprintf(
			`UPDATE dpfs_file_distribution SET filename = %s WHERE filename = %s`,
			quote(newPath), quote(oldPath))); err != nil {
			return err
		}
		osubs, ofiles, err := c.readDirLocked(oldParent)
		if err != nil {
			return err
		}
		_ = osubs
		if err := c.writeDirList(oldParent, "files", remove(ofiles, oldName)); err != nil {
			return err
		}
		// Re-read in case old and new parents are the same directory.
		_, nfiles, err = c.readDirLocked(newParent)
		if err != nil {
			return err
		}
		nfiles = append(nfiles, newName)
		sort.Strings(nfiles)
		return c.writeDirList(newParent, "files", nfiles)
	})
	if err != nil {
		return nil, 0, err
	}
	return servers, gen, nil
}

// ServerUsage is one row of the catalog's per-server load report.
type ServerUsage struct {
	Name        string
	Capacity    int64
	Performance int
	Files       int64 // files with at least one brick on the server
	Bricks      int64 // total bricks the server holds
}

// Usage aggregates DPFS-FILE-DISTRIBUTION per server (GROUP BY over
// the catalog) and merges in the DPFS-SERVER registrations; servers
// holding no files report zeros.
func (c *Catalog) Usage() ([]ServerUsage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	servers, err := c.serversLocked()
	if err != nil {
		return nil, err
	}
	res, err := c.db.Exec(`SELECT server, COUNT(*), SUM(brick_count)
		FROM dpfs_file_distribution GROUP BY server`)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*ServerUsage, len(servers))
	out := make([]ServerUsage, len(servers))
	for i, s := range servers {
		out[i] = ServerUsage{Name: s.Name, Capacity: s.Capacity, Performance: s.Performance}
		byName[s.Name] = &out[i]
	}
	for _, r := range res.Rows {
		if u, ok := byName[r[0].Str]; ok {
			u.Files = r[1].Int
			u.Bricks = r[2].Int
		}
	}
	return out, nil
}

// UsedBytes reports, per server, the bytes of subfile storage the
// catalog accounts for (bricks held x the owning file's slot size),
// computed with a join of DPFS-FILE-DISTRIBUTION and DPFS-FILE-ATTR
// grouped by server. The create path uses it to enforce DPFS-SERVER
// capacity.
func (c *Catalog) UsedBytes() (map[string]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usedBytesLocked()
}

func (c *Catalog) usedBytesLocked() (map[string]int64, error) {
	res, err := c.db.Exec(`SELECT d.server, SUM(d.brick_count * a.slot_bytes)
		FROM dpfs_file_distribution d
		JOIN dpfs_file_attr a ON d.filename = a.filename
		GROUP BY d.server`)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].Str] = r[1].Int
	}
	return out, nil
}

// FileOnServer is one row of FilesOnServer.
type FileOnServer struct {
	Path   string
	Size   int64
	Bricks int64
}

// FilesOnServer reports, via a join of DPFS-FILE-DISTRIBUTION with
// DPFS-FILE-ATTR, every file holding bricks on the named server — the
// query an administrator runs before retiring a storage machine.
func (c *Catalog) FilesOnServer(server string) ([]FileOnServer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.db.Exec(fmt.Sprintf(
		`SELECT d.filename, a.size, d.brick_count
		 FROM dpfs_file_distribution d
		 JOIN dpfs_file_attr a ON d.filename = a.filename
		 WHERE d.server = %s ORDER BY d.filename`, quote(server)))
	if err != nil {
		return nil, err
	}
	out := make([]FileOnServer, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, FileOnServer{Path: r[0].Str, Size: r[1].Int, Bricks: r[2].Int})
	}
	return out, nil
}

// SetSize updates DPFS-FILE-ATTR.size after writes extend a file.
func (c *Catalog) SetSize(path string, size int64) error {
	return c.setAttr(path, fmt.Sprintf("size = %d", size))
}

// SetPerm updates DPFS-FILE-ATTR.permission (chmod).
func (c *Catalog) SetPerm(path string, perm int) error {
	if perm < 0 || perm > 0o7777 {
		return fmt.Errorf("meta: invalid permission %o", perm)
	}
	return c.setAttr(path, fmt.Sprintf("permission = %d", perm))
}

// SetOwner updates DPFS-FILE-ATTR.owner (chown).
func (c *Catalog) SetOwner(path, owner string) error {
	if err := validName(owner); err != nil {
		return err
	}
	return c.setAttr(path, "owner = "+quote(owner))
}

func (c *Catalog) setAttr(path, set string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	res, err := c.db.Exec(fmt.Sprintf(`UPDATE dpfs_file_attr SET %s WHERE filename = %s`, set, quote(path)))
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return fmt.Errorf("meta: no such file %s", path)
	}
	return nil
}

// inTx runs fn inside BEGIN/COMMIT, rolling back on error.
func (c *Catalog) inTx(fn func() error) error {
	if _, err := c.db.Exec(`BEGIN`); err != nil {
		return err
	}
	if err := fn(); err != nil {
		_, _ = c.db.Exec(`ROLLBACK`)
		return err
	}
	_, err := c.db.Exec(`COMMIT`)
	return err
}

// --- helpers -----------------------------------------------------------

// CleanPath validates and canonicalizes an absolute DPFS path.
func CleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", fmt.Errorf("meta: path %q must be absolute", p)
	}
	parts := strings.Split(p, "/")
	var stack []string
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			if err := validName(part); err != nil {
				return "", err
			}
			stack = append(stack, part)
		}
	}
	return "/" + strings.Join(stack, "/"), nil
}

// Split returns the parent directory and base name of a cleaned path.
func Split(p string) (dir, name string) {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/", p[i+1:]
	}
	return p[:i], p[i+1:]
}

func validName(name string) error {
	if name == "" {
		return errors.New("meta: empty name")
	}
	if strings.ContainsAny(name, ",/'\n") {
		return fmt.Errorf("meta: name %q contains a reserved character", name)
	}
	return nil
}

func quote(s string) string { return metadb.S(s).String() }

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func joinList(l []string) string { return strings.Join(l, ",") }

func joinInts(xs []int64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatInt(x, 10)
	}
	return strings.Join(parts, ",")
}

func splitInts(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("meta: bad integer list %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func joinPattern(p []stripe.Dist) string {
	parts := make([]string, len(p))
	for i, d := range p {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

func splitPattern(s string) ([]stripe.Dist, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]stripe.Dist, len(parts))
	for i, p := range parts {
		switch p {
		case "BLOCK":
			out[i] = stripe.DistBlock
		case "*":
			out[i] = stripe.DistStar
		default:
			return nil, fmt.Errorf("meta: bad pattern element %q", p)
		}
	}
	return out, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func remove(list []string, s string) []string {
	out := list[:0]
	for _, x := range list {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}
