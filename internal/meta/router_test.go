package meta

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
)

func TestShardIndexDeterministic(t *testing.T) {
	if got := ShardIndex("/a/b.dat", 1); got != 0 {
		t.Fatalf("n=1 must route to 0, got %d", got)
	}
	if got := ShardIndex("/a/b.dat", 0); got != 0 {
		t.Fatalf("n=0 must route to 0, got %d", got)
	}
	// Path cleaning happens before hashing: spellings of the same path
	// agree on a home shard.
	for n := 2; n <= 5; n++ {
		a := ShardIndex("/a/b.dat", n)
		for _, alias := range []string{"/a//b.dat", "/a/./b.dat", "/a/c/../b.dat"} {
			if got := ShardIndex(alias, n); got != a {
				t.Fatalf("ShardIndex(%q, %d) = %d, want %d (same as /a/b.dat)", alias, n, got, a)
			}
		}
	}
	// The hash must actually spread paths: with 2 shards and a few
	// hundred paths, both shards must be hit.
	hit := make(map[int]int)
	for i := 0; i < 256; i++ {
		hit[ShardIndex(fmt.Sprintf("/spread/f%d.dat", i), 2)]++
	}
	if hit[0] == 0 || hit[1] == 0 {
		t.Fatalf("paths did not spread over 2 shards: %v", hit)
	}
}

// routerOp is one randomized catalog operation: it runs against a
// Router and returns a comparable result (any shape) plus the error.
type routerOp struct {
	name string
	run  func(r Router) (any, error)
}

// genRouterOp draws one operation from a small path/server vocabulary.
// The pool mixes valid and invalid paths so error paths are exercised
// too.
func genRouterOp(rng *rand.Rand) routerOp {
	dirs := []string{"/d1", "/d2", "/d1/sub", "/missing"}
	files := []string{"/a.dat", "/b.dat", "/d1/c.dat", "/d1/sub/d.dat", "/d2/e.dat", "/missing/f.dat"}
	servers := []string{"io0", "io1", "io2"}
	states := []string{StateAlive, StateSuspect, StateDead}
	dir := func() string { return dirs[rng.Intn(len(dirs))] }
	file := func() string { return files[rng.Intn(len(files))] }
	srv := func() string { return servers[rng.Intn(len(servers))] }

	ops := []func() routerOp{
		func() routerOp {
			p := dir()
			return routerOp{"mkdir " + p, func(r Router) (any, error) { return nil, r.Mkdir(p) }}
		},
		func() routerOp {
			p := dir()
			return routerOp{"rmdir " + p, func(r Router) (any, error) { return nil, r.Rmdir(p) }}
		},
		func() routerOp {
			p := dir()
			return routerOp{"readdir " + p, func(r Router) (any, error) {
				ds, fs, err := r.ReadDir(p)
				return [2][]string{ds, fs}, err
			}}
		},
		func() routerOp {
			p := dir()
			return routerOp{"isdir " + p, func(r Router) (any, error) { return r.IsDir(p) }}
		},
		func() routerOp {
			p := file()
			fi := testFileInfo(p)
			fi.Servers = []string{"io0", "io1"}
			assign := [][]int{{0, 1}, {1, 0}, {0}, {1}}
			return routerOp{"create " + p, func(r Router) (any, error) {
				return nil, r.CreateReplicated(fi, assign)
			}}
		},
		func() routerOp {
			p := file()
			return routerOp{"lookup " + p, func(r Router) (any, error) {
				fi, rs, err := r.LookupReplicated(p)
				return []any{fi, rs}, err
			}}
		},
		func() routerOp {
			p := file()
			return routerOp{"stat " + p, func(r Router) (any, error) { return r.Stat(p) }}
		},
		func() routerOp {
			return routerOp{"files", func(r Router) (any, error) { return r.Files() }}
		},
		func() routerOp {
			p := file()
			return routerOp{"remove " + p, func(r Router) (any, error) { return r.RemoveFile(p) }}
		},
		func() routerOp {
			o, n := file(), file()
			return routerOp{fmt.Sprintf("rename %s %s", o, n), func(r Router) (any, error) {
				srvs, gen, err := r.RenameFile(o, n)
				return []any{srvs, gen}, err
			}}
		},
		func() routerOp {
			p := file()
			return routerOp{"nextgen " + p, func(r Router) (any, error) { return r.NextGeneration(p) }}
		},
		func() routerOp {
			p, sz := file(), rng.Int63n(1<<20)
			return routerOp{"setsize " + p, func(r Router) (any, error) { return nil, r.SetSize(p, sz) }}
		},
		func() routerOp {
			p, perm := file(), rng.Intn(0o1000)
			return routerOp{"setperm " + p, func(r Router) (any, error) { return nil, r.SetPerm(p, perm) }}
		},
		func() routerOp {
			p := file()
			return routerOp{"setowner " + p, func(r Router) (any, error) { return nil, r.SetOwner(p, "u2") }}
		},
		func() routerOp {
			s := srv()
			si := ServerInfo{Name: s, Capacity: 1 << 30, Performance: 1 + rng.Intn(3), Addr: s + ":1"}
			return routerOp{"register " + s, func(r Router) (any, error) { return nil, r.RegisterServer(si) }}
		},
		func() routerOp {
			s := srv()
			return routerOp{"rmserver " + s, func(r Router) (any, error) { return nil, r.RemoveServer(s) }}
		},
		func() routerOp {
			return routerOp{"servers", func(r Router) (any, error) { return r.Servers() }}
		},
		func() routerOp {
			s := srv()
			return routerOp{"failure " + s, func(r Router) (any, error) { return nil, r.ReportServerFailure(s) }}
		},
		func() routerOp {
			s := srv()
			return routerOp{"ok " + s, func(r Router) (any, error) { return nil, r.ReportServerOK(s) }}
		},
		func() routerOp {
			s, st := srv(), states[rng.Intn(len(states))]
			return routerOp{"setstate " + s, func(r Router) (any, error) { return nil, r.SetServerState(s, st) }}
		},
		func() routerOp {
			return routerOp{"health", func(r Router) (any, error) { return r.ServerHealth() }}
		},
		func() routerOp {
			return routerOp{"usage", func(r Router) (any, error) { return r.Usage() }}
		},
		func() routerOp {
			return routerOp{"usedbytes", func(r Router) (any, error) { return r.UsedBytes() }}
		},
		func() routerOp {
			s := srv()
			return routerOp{"filesonserver " + s, func(r Router) (any, error) { return r.FilesOnServer(s) }}
		},
	}
	return ops[rng.Intn(len(ops))]()
}

// TestRouterSingleShardEquivalence is the quickcheck satellite: a
// ShardRouter over one catalog must behave exactly like the bare
// catalog for every engine-visible operation — same results, same
// errors — across 500 seeded random operation sequences.
func TestRouterSingleShardEquivalence(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))

		dbA, dbB := metadb.Memory(), metadb.Memory()
		direct := NewCatalog(dbA.Session())
		routed := NewShardRouter(NewCatalog(dbB.Session()))
		if err := direct.Init(); err != nil {
			t.Fatal(err)
		}
		if err := routed.Init(); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 30; i++ {
			op := genRouterOp(rng)
			wantRes, wantErr := op.run(direct)
			gotRes, gotErr := op.run(routed)
			if errString(wantErr) != errString(gotErr) {
				t.Fatalf("seed %d op %d %s: direct err %v, routed err %v", seed, i, op.name, wantErr, gotErr)
			}
			if !reflect.DeepEqual(wantRes, gotRes) {
				t.Fatalf("seed %d op %d %s:\ndirect %#v\nrouted %#v", seed, i, op.name, wantRes, gotRes)
			}
		}
		dbA.Close()
		dbB.Close()
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// shardFixture is a network-served catalog shard whose server can be
// killed and revived on the same address.
type shardFixture struct {
	db   *metadb.DB
	srv  *mdbnet.Server
	addr string
}

func startShard(t *testing.T) *shardFixture {
	t.Helper()
	db := metadb.Memory()
	srv, err := mdbnet.Listen(db, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return &shardFixture{db: db, srv: srv, addr: srv.Addr()}
}

// TestRouterShardFailureIsolation hammers a 2-shard router while shard
// 1's server is killed and restarted: operations on paths homed on
// shard 0 must never see an error, proving a shard failure stays
// contained to the paths it homes. Run under -race this also shakes
// out data races between the redialing client and concurrent users.
func TestRouterShardFailureIsolation(t *testing.T) {
	sh0, sh1 := startShard(t), startShard(t)

	dialShard := func(f *shardFixture) *Catalog {
		cli, err := mdbnet.Dial(f.addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		return NewCatalog(cli)
	}
	router := NewShardRouter(dialShard(sh0), dialShard(sh1))
	if err := router.Init(); err != nil {
		t.Fatal(err)
	}

	// Find paths homed on each shard.
	var p0, p1 string
	for i := 0; p0 == "" || p1 == ""; i++ {
		p := fmt.Sprintf("/iso-f%d.dat", i)
		if ShardIndex(p, 2) == 0 {
			if p0 == "" {
				p0 = p
			}
		} else if p1 == "" {
			p1 = p
		}
	}

	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	errCh := make(chan error, 1)
	// Shard-0 hammer: must never fail, whatever happens to shard 1.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := router.NextGeneration(p0); err != nil {
				select {
				case errCh <- fmt.Errorf("iter %d: shard-0 op failed during shard-1 outage: %w", i, err):
				default:
				}
				return
			}
		}
	}()
	// Shard-1 hammer: errors are expected mid-outage; just keep the
	// failure path hot so the redial logic runs concurrently.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_, _ = router.NextGeneration(p1)
		}
	}()

	if err := sh1.srv.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let hammers run against the dead shard
	srv, err := mdbnet.Listen(sh1.db, sh1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer sh0.srv.Close()

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// After the restart the lazily-redialing client must reach shard 1
	// again (retry: the first call after restart can still consume a
	// conn broken mid-outage).
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = router.NextGeneration(p1); lastErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("shard 1 never recovered after restart: %v", lastErr)
	}
}

// TestCrossShardRenameTypedError pins the cross-shard rename failure
// mode: the error must match ErrCrossShardRename via errors.Is and
// name both paths and both shard indices so operators can see which
// shards disagree.
func TestCrossShardRenameTypedError(t *testing.T) {
	shards := make([]Router, 2)
	for i := range shards {
		db := metadb.Memory()
		t.Cleanup(func() { db.Close() })
		c := NewCatalog(db.Session())
		if err := c.Init(); err != nil {
			t.Fatal(err)
		}
		shards[i] = c
	}
	router := NewShardRouter(shards...)

	// Find a pair of paths homed on different shards.
	oldPath := "/cross/a0.dat"
	var newPath string
	for i := 0; i < 256; i++ {
		p := fmt.Sprintf("/cross/b%d.dat", i)
		if ShardIndex(p, 2) != ShardIndex(oldPath, 2) {
			newPath = p
			break
		}
	}
	if newPath == "" {
		t.Fatal("no cross-shard path pair found")
	}

	_, _, err := router.RenameFile(oldPath, newPath)
	if err == nil {
		t.Fatal("cross-shard rename succeeded")
	}
	if !errors.Is(err, ErrCrossShardRename) {
		t.Fatalf("error %v does not match ErrCrossShardRename", err)
	}
	var cerr *CrossShardRenameError
	if !errors.As(err, &cerr) {
		t.Fatalf("error %T is not *CrossShardRenameError", err)
	}
	if cerr.OldPath != oldPath || cerr.NewPath != newPath {
		t.Fatalf("error names paths %q -> %q, want %q -> %q", cerr.OldPath, cerr.NewPath, oldPath, newPath)
	}
	if cerr.OldShard == cerr.NewShard {
		t.Fatalf("error reports equal shards %d -> %d", cerr.OldShard, cerr.NewShard)
	}
	for _, want := range []string{oldPath, newPath, fmt.Sprintf("shard %d", cerr.OldShard), fmt.Sprintf("shard %d", cerr.NewShard)} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error text %q missing %q", err, want)
		}
	}

	// Same-shard renames must be unaffected by the guard (the catalog
	// itself then reports the missing file).
	samePath := ""
	for i := 0; i < 256; i++ {
		p := fmt.Sprintf("/cross/c%d.dat", i)
		if ShardIndex(p, 2) == ShardIndex(oldPath, 2) {
			samePath = p
			break
		}
	}
	if _, _, err := router.RenameFile(oldPath, samePath); errors.Is(err, ErrCrossShardRename) {
		t.Fatalf("same-shard rename reported as cross-shard: %v", err)
	}
}
