package meta

import (
	"sync"
	"testing"

	"dpfs/internal/stripe"
)

func TestNextGenerationMonotonic(t *testing.T) {
	c := newCatalog(t)
	var prev int64
	for i := 0; i < 5; i++ {
		gen, err := c.NextGeneration("/f")
		if err != nil {
			t.Fatal(err)
		}
		if gen <= prev {
			t.Fatalf("generation %d after %d: not strictly increasing", gen, prev)
		}
		prev = gen
	}
}

func TestNextGenerationConcurrent(t *testing.T) {
	c := newCatalog(t)
	const n = 16
	gens := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.NextGeneration("/f")
			if err != nil {
				t.Error(err)
				return
			}
			gens[i] = g
		}(i)
	}
	wg.Wait()
	seen := make(map[int64]bool, n)
	for _, g := range gens {
		if g == 0 || seen[g] {
			t.Fatalf("generations not unique: %v", gens)
		}
		seen[g] = true
	}
}

// TestGenerationRoundtrip checks the generation survives the catalog:
// stamped at create, read back by lookup, reported by remove and
// rename.
func TestGenerationRoundtrip(t *testing.T) {
	c := newCatalog(t)
	fi := testFileInfo("/f")
	gen, err := c.NextGeneration("/f")
	if err != nil {
		t.Fatal(err)
	}
	fi.Generation = gen
	assign, _ := stripe.RoundRobin{}.Assign(fi.Geometry.NumBricks(), len(fi.Servers))
	if err := c.CreateFile(fi, assign); err != nil {
		t.Fatal(err)
	}

	got, _, err := c.LookupFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != gen {
		t.Fatalf("LookupFile generation = %d, want %d", got.Generation, gen)
	}

	_, rgen, err := c.RenameFile("/f", "/g")
	if err != nil {
		t.Fatal(err)
	}
	if rgen != gen {
		t.Fatalf("RenameFile generation = %d, want %d", rgen, gen)
	}

	removed, err := c.RemoveFile("/g")
	if err != nil {
		t.Fatal(err)
	}
	if removed.Generation != gen {
		t.Fatalf("RemoveFile generation = %d, want %d", removed.Generation, gen)
	}

	// A recreate of the same path gets a strictly newer generation.
	gen2, err := c.NextGeneration("/f")
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen {
		t.Fatalf("recreate generation %d not newer than %d", gen2, gen)
	}
}
