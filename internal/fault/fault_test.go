package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("drop:prob=0.02; delay:prob=0.05,ms=3 ;partial:nth=17,count=4,server=io1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	if rules[0].Kind != KindDrop || rules[0].Prob != 0.02 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Kind != KindDelay || rules[1].Delay != 3*time.Millisecond {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Kind != KindPartial || rules[2].Nth != 17 || rules[2].Count != 4 || rules[2].Label != "io1" {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{
		"explode:prob=0.1",    // unknown kind
		"drop:frequency=2",    // unknown option
		"drop:prob=1.5",       // out of range
		"drop:nth=0",          // nth < 1
		"drop",                // no trigger
		"drop:prob",           // not key=value
		"delay:ms=5",          // no trigger
		"readerr:nth=banana",  // unparsable int
		"writeerr:prob=maybe", // unparsable float
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

// pipeConn returns a wrapped client end and the raw server end of an
// in-memory duplex connection.
func pipeConn(t *testing.T, in *Injector, label string) (net.Conn, net.Conn) {
	t.Helper()
	cli, srv := net.Pipe()
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return in.Conn(cli, label), srv
}

// echoServer copies everything it reads back to the writer.
func echoServer(c net.Conn) {
	go func() { _, _ = io.Copy(c, c) }()
}

func TestNthWriteFault(t *testing.T) {
	in := New(1, Rule{Kind: KindWriteErr, Nth: 3})
	cli, srv := pipeConn(t, in, "s")
	echoServer(srv)
	buf := make([]byte, 1)
	// Ops alternate write, read, write, ... so the 3rd op is a write.
	if _, err := cli.Write([]byte{1}); err != nil {
		t.Fatalf("op 1 (write): %v", err)
	}
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatalf("op 2 (read): %v", err)
	}
	_, err := cli.Write([]byte{2})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindWriteErr {
		t.Fatalf("op 3 (write) err = %v, want injected writeerr", err)
	}
	// The conn survives a readerr/writeerr-style fault.
	if _, err := cli.Write([]byte{3}); err != nil {
		t.Fatalf("op 4 (write): %v", err)
	}
	if got := in.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1", got)
	}
	if got := in.Counts()["writeerr"]; got != 1 {
		t.Fatalf("Counts[writeerr] = %d, want 1", got)
	}
}

func TestDropClosesConn(t *testing.T) {
	in := New(1, Rule{Kind: KindDrop, Nth: 1})
	cli, _ := pipeConn(t, in, "s")
	_, err := cli.Write([]byte{1})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindDrop {
		t.Fatalf("err = %v, want injected drop", err)
	}
	// Underlying conn is closed: the next op fails organically.
	if _, err := cli.Write([]byte{2}); err == nil {
		t.Fatal("write on dropped conn succeeded")
	}
}

func TestPartialWriteDeliversPrefix(t *testing.T) {
	in := New(1, Rule{Kind: KindPartial, Nth: 1})
	cli, srv := pipeConn(t, in, "s")
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(srv)
		got <- b
	}()
	payload := []byte("0123456789")
	n, err := cli.Write(payload)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindPartial {
		t.Fatalf("err = %v, want injected partial", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("n = %d, want %d", n, len(payload)/2)
	}
	if b := <-got; string(b) != "01234" {
		t.Fatalf("server saw %q, want the prefix %q", b, "01234")
	}
}

func TestCountCapAndLabelMatch(t *testing.T) {
	in := New(1,
		Rule{Kind: KindWriteErr, Nth: 1, Count: 2, Label: "bad"},
	)
	good, gsrv := pipeConn(t, in, "good")
	echoServer(gsrv)
	bad, bsrv := pipeConn(t, in, "bad")
	echoServer(bsrv)

	// The rule never touches the other label.
	if _, err := good.Write([]byte{1}); err != nil {
		t.Fatalf("unlabeled conn faulted: %v", err)
	}
	// Two firings, then the cap stops it.
	for i := 0; i < 2; i++ {
		if _, err := bad.Write([]byte{1}); err == nil {
			t.Fatalf("firing %d: no fault", i+1)
		}
	}
	if _, err := bad.Write([]byte{1}); err != nil {
		t.Fatalf("after cap: %v", err)
	}
	if got := in.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
}

func TestDelayStallsThenSucceeds(t *testing.T) {
	in := New(1, Rule{Kind: KindDelay, Nth: 1, Delay: 30 * time.Millisecond})
	cli, srv := pipeConn(t, in, "s")
	echoServer(srv)
	start := time.Now()
	if _, err := cli.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 30ms stall", d)
	}
}

// TestSeededDeterminism drives the same single-goroutine op sequence
// against two injectors with the same seed and asserts identical fault
// schedules, and a different schedule for a different seed.
func TestSeededDeterminism(t *testing.T) {
	schedule := func(seed int64) []int {
		in := New(seed, Rule{Kind: KindWriteErr, Prob: 0.3})
		cli, srv := net.Pipe()
		defer cli.Close()
		defer srv.Close()
		go func() { _, _ = io.Copy(io.Discard, srv) }() // drain; net.Pipe is unbuffered
		c := in.Conn(cli, "s")
		var fired []int
		for i := 0; i < 64; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := schedule(42), schedule(42)
	if len(a) == 0 {
		t.Fatal("no faults fired at prob 0.3 over 64 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	c := schedule(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced the same schedule %v", a)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	in := New(1, Rule{Kind: KindReadErr, Nth: 1})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := in.Listener(base, "srv")
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sc := <-accepted
	defer sc.Close()
	var b [1]byte
	_, rerr := sc.Read(b[:])
	var fe *Error
	if !errors.As(rerr, &fe) || fe.Kind != KindReadErr {
		t.Fatalf("server-side read err = %v, want injected readerr", rerr)
	}
}

func TestNoRulesIsTransparent(t *testing.T) {
	in := New(7)
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	if c := in.Conn(cli, "s"); c != cli {
		t.Fatal("rule-free injector wrapped the conn")
	}
	var nilIn *Injector
	if c := nilIn.Conn(cli, "s"); c != cli {
		t.Fatal("nil injector wrapped the conn")
	}
	if l := nilIn.Listener(nil, "s"); l != nil {
		t.Fatal("nil injector wrapped the listener")
	}
}

func TestLabelRegistration(t *testing.T) {
	in := New(1, Rule{Kind: KindDrop, Nth: 1})
	in.SetLabel("127.0.0.1:9999", "io3")
	if got := in.labelFor("127.0.0.1:9999"); got != "io3" {
		t.Fatalf("labelFor = %q, want io3", got)
	}
	if got := in.labelFor("127.0.0.1:1"); got != "127.0.0.1:1" {
		t.Fatalf("unregistered labelFor = %q, want the addr", got)
	}
}
