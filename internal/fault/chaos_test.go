// Chaos tests: the full client/server stack runs under a seeded fault
// schedule — connection drops, latency spikes, torn frames — and must
// produce byte-identical results to a fault-free run. This is the
// harness the paper's setting demands: DPFS aggregates idle
// workstation storage, where flaky links are the common case, and the
// client's retry/eviction machinery has to make that invisible.
package fault_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/collective"
	"dpfs/internal/core"
	"dpfs/internal/fault"
	"dpfs/internal/meta"
	"dpfs/internal/metarepl"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
)

const (
	chaosN    = 256 // array edge (bytes; elemSize 1)
	chaosTile = 64  // multidim tile edge -> 16 bricks
)

// chaosRetry absorbs the storm: with drop prob 0.02 and 8 retries the
// chance of one request exhausting its budget is ~2e-14.
func chaosRetry() server.RetryPolicy {
	return server.RetryPolicy{
		MaxRetries:     8,
		RequestTimeout: 5 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

// chaosRules is the standard storm: probabilistic drops and latency
// spikes everywhere, plus deterministic nth-op faults that guarantee
// the schedule fires (and with it, client retries) on every run. The
// nth values must exceed the conn ops of any single exchange (a
// combined request is a handful of vectored writes plus the response
// reads): a retry runs on a fresh conn whose op counter restarts, so
// an nth within one exchange's span would re-fire identically on
// every attempt and no retry budget could ever escape it.
func chaosRules() []fault.Rule {
	return []fault.Rule{
		{Kind: fault.KindPartial, Nth: 17},
		{Kind: fault.KindDrop, Nth: 29},
		{Kind: fault.KindDrop, Prob: 0.02},
		{Kind: fault.KindDelay, Prob: 0.05, Delay: 2 * time.Millisecond},
	}
}

// startChaosCluster launches io unshaped servers and registers their
// catalog names with the injector, so per-server rules can match.
func startChaosCluster(t *testing.T, io int, inj *fault.Injector) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(io), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for i, srv := range c.IOServers {
		inj.SetLabel(srv.Addr(), c.Specs[i].Name)
	}
	return c
}

// colSection is rank r's (*, BLOCK) slice of the chaosN x chaosN array.
func colSection(np, rank int) stripe.Section {
	w := int64(chaosN) / int64(np)
	return stripe.NewSection([]int64{0, int64(rank) * w}, []int64{chaosN, w})
}

// rankBytes is the deterministic payload rank r contributes.
func rankBytes(rank, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rank*31 + i)
	}
	return buf
}

// runChaosWorkload writes the array under faults (np ranks, column
// sections, concurrently), reads it back under the same fault schedule,
// and asserts both phases are byte-identical to the fault-free truth.
// It returns the engines' shared registry for counter assertions.
func runChaosWorkload(t *testing.T, c *cluster.Cluster, inj *fault.Injector, np int, parallel, cached, wireV2 bool) *obs.Registry {
	t.Helper()
	ctx := context.Background()
	reg := obs.NewRegistry()
	opts := core.Options{
		Combine: true, Stagger: true, ParallelDispatch: parallel,
		Dial: inj.DialContext, Retry: chaosRetry(), WireV2: wireV2,
	}
	if cached {
		// The client caches must be invisible under the storm: fills
		// race retries, write invalidations race prefetches, and the
		// byte-equality assertions below must hold unchanged.
		opts.CacheBytes = 64 << 20
		opts.MetaTTL = time.Minute
		opts.Readahead = 2
	}

	path := fmt.Sprintf("/chaos-%v.dat", parallel)
	fs0, err := c.NewFS(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs0.SetMetrics(reg)
	f0, err := fs0.Create(path, 1, []int64{chaosN, chaosN}, core.Hint{
		Level: stripe.LevelMultidim, Tile: []int64{chaosTile, chaosTile},
	})
	if err != nil {
		t.Fatal(err)
	}
	f0.Close()
	fs0.Close()

	// Faulty write phase: every rank through its own engine, at once,
	// in row chunks. Chunking keeps each rank's pooled connection busy
	// across many exchanges, so its op counter walks through the
	// deterministic nth-fault schedule.
	const chunks = 8
	chunkRows := int64(chaosN) / chunks
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fs, err := c.NewFS(rank, opts)
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			fs.SetMetrics(reg)
			f, err := fs.Open(path)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			sec := colSection(np, rank)
			data := rankBytes(rank, int(sec.Bytes(1)))
			rowBytes := sec.Count[1]
			for i := int64(0); i < chunks; i++ {
				sub := stripe.NewSection(
					[]int64{i * chunkRows, sec.Start[1]},
					[]int64{chunkRows, sec.Count[1]})
				chunk := data[i*chunkRows*rowBytes : (i+1)*chunkRows*rowBytes]
				if err := f.WriteSection(ctx, sub, chunk); err != nil {
					errs <- fmt.Errorf("rank %d write chunk %d: %w", rank, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Faulty read phase: fresh engines, same schedule still running,
	// chunked the same way.
	for p := 0; p < np; p++ {
		fs, err := c.NewFS(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		fs.SetMetrics(reg)
		f, err := fs.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sec := colSection(np, p)
		want := rankBytes(p, int(sec.Bytes(1)))
		rowBytes := sec.Count[1]
		for i := int64(0); i < chunks; i++ {
			sub := stripe.NewSection(
				[]int64{i * chunkRows, sec.Start[1]},
				[]int64{chunkRows, sec.Count[1]})
			got := make([]byte, chunkRows*rowBytes)
			if err := f.ReadSection(ctx, sub, got); err != nil {
				t.Fatalf("rank %d faulty read chunk %d: %v", p, i, err)
			}
			if !bytes.Equal(got, want[i*chunkRows*rowBytes:(i+1)*chunkRows*rowBytes]) {
				t.Fatalf("rank %d chunk %d: faulty read diverges from fault-free truth", p, i)
			}
		}
		f.Close()
		fs.Close()
	}

	// Fault-free read pass: what landed on the servers must match too
	// (no torn frame half-applied, no retry double-applied).
	cleanFS, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanFS.Close()
	f, err := cleanFS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for p := 0; p < np; p++ {
		sec := colSection(np, p)
		got := make([]byte, sec.Bytes(1))
		if err := f.ReadSection(ctx, sec, got); err != nil {
			t.Fatal(err)
		}
		if want := rankBytes(p, len(got)); !bytes.Equal(got, want) {
			t.Fatalf("rank %d: stored bytes diverge from fault-free truth", p)
		}
	}
	return reg
}

// TestChaosSequential runs the storm against the paper's sequential
// per-server dispatch.
func TestChaosSequential(t *testing.T) {
	inj := fault.New(1, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	reg := runChaosWorkload(t, c, inj, 4, false, false, false)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	if got := reg.Counter(server.MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0 under the storm")
	}
	if got := reg.Counter(server.MetricConnEvictions).Value(); got == 0 {
		t.Fatal("conn_evictions = 0, want > 0 (drops poison pooled conns)")
	}
	t.Logf("faults injected: %v; retries=%d evictions=%d", inj.Counts(),
		reg.Counter(server.MetricClientRetries).Value(),
		reg.Counter(server.MetricConnEvictions).Value())
}

// TestChaosParallelDispatch runs the same storm with each access's
// per-server exchanges in flight concurrently.
func TestChaosParallelDispatch(t *testing.T) {
	inj := fault.New(2, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	reg := runChaosWorkload(t, c, inj, 4, true, false, false)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	if got := reg.Counter(server.MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0 under the storm")
	}
}

// TestChaosCached runs the storm with the client caches on (data
// cache, metadata cache, readahead): served-from-cache reads, poisoned
// fills and prefetch traffic must leave every byte-equality assertion
// of the workload intact.
func TestChaosCached(t *testing.T) {
	inj := fault.New(5, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	reg := runChaosWorkload(t, c, inj, 4, true, true, false)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	if got := reg.Counter(server.MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0 under the storm")
	}
}

// TestChaosWireV2 runs the storm over the tagged-frame transport:
// dropped and delayed muxed conns fail every tag in flight on them,
// the retry ladder re-issues those requests on fresh conns, and the
// workload's byte-equality assertions must hold exactly as under v1.
// A conn fault here is strictly worse than in v1 — one kill can fail
// many multiplexed requests at once — which is exactly why it rides
// the same schedule.
func TestChaosWireV2(t *testing.T) {
	inj := fault.New(1, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	reg := runChaosWorkload(t, c, inj, 4, true, false, true)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	// Every dropped conn is a mux eviction. Retries only accrue when a
	// drop lands while tags are in flight (an idle mux conn dies
	// unnoticed), so unlike the v1 tests they are logged, not asserted.
	if got := reg.Counter(server.MetricConnEvictions).Value(); got == 0 {
		t.Fatal("conn_evictions = 0, want > 0 (a dropped muxed conn must be noticed)")
	}
	t.Logf("faults injected: %v; retries=%d evictions=%d", inj.Counts(),
		reg.Counter(server.MetricClientRetries).Value(),
		reg.Counter(server.MetricConnEvictions).Value())
}

// TestChaosReplicaWireV2 is the replica-failover storm (R=2, one
// server killed mid-workload) on the tagged-frame transport.
func TestChaosReplicaWireV2(t *testing.T) {
	inj := fault.New(8, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	reg := runReplicaChaosWorkload(t, c, inj, 4, true, false, true)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	if got := reg.Counter(core.MetricFailovers).Value(); got == 0 {
		t.Fatal("client_failovers = 0, want > 0 with a dead preferred replica")
	}
}

// runReplicaChaosWorkload drives an R=2 file through the storm plus a
// mid-workload server kill: one healthy write/read round, then one of
// the io servers dies and a second round runs degraded — writes land
// on one replica short, reads fail over to the surviving copy — with
// every byte still checked against the fault-free truth.
func runReplicaChaosWorkload(t *testing.T, c *cluster.Cluster, inj *fault.Injector, np int, parallel, cached, wireV2 bool) *obs.Registry {
	t.Helper()
	ctx := context.Background()
	reg := obs.NewRegistry()
	opts := core.Options{
		Combine: true, Stagger: true, ParallelDispatch: parallel,
		Dial: inj.DialContext, Retry: chaosRetry(), WireV2: wireV2,
	}
	if cached {
		opts.CacheBytes = 64 << 20
		opts.MetaTTL = time.Minute
		opts.Readahead = 2
	}

	const path = "/chaos-replica.dat"
	fs0, err := c.NewFS(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs0.SetMetrics(reg)
	f0, err := fs0.Create(path, 1, []int64{chaosN, chaosN}, core.Hint{
		Level: stripe.LevelMultidim, Tile: []int64{chaosTile, chaosTile},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f0.Close()
	fs0.Close()

	roundData := func(rank, round, n int) []byte {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rank*31 + i + round*101)
		}
		return buf
	}

	const chunks = 8
	chunkRows := int64(chaosN) / chunks
	writePhase := func(round int) {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for p := 0; p < np; p++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				fs, err := c.NewFS(rank, opts)
				if err != nil {
					errs <- err
					return
				}
				defer fs.Close()
				fs.SetMetrics(reg)
				f, err := fs.Open(path)
				if err != nil {
					errs <- err
					return
				}
				defer f.Close()
				sec := colSection(np, rank)
				data := roundData(rank, round, int(sec.Bytes(1)))
				rowBytes := sec.Count[1]
				for i := int64(0); i < chunks; i++ {
					sub := stripe.NewSection(
						[]int64{i * chunkRows, sec.Start[1]},
						[]int64{chunkRows, sec.Count[1]})
					chunk := data[i*chunkRows*rowBytes : (i+1)*chunkRows*rowBytes]
					if err := f.WriteSection(ctx, sub, chunk); err != nil {
						errs <- fmt.Errorf("rank %d round %d write chunk %d: %w", rank, round, i, err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	readPhase := func(round int) {
		for p := 0; p < np; p++ {
			fs, err := c.NewFS(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			fs.SetMetrics(reg)
			f, err := fs.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sec := colSection(np, p)
			want := roundData(p, round, int(sec.Bytes(1)))
			got := make([]byte, sec.Bytes(1))
			if err := f.ReadSection(ctx, sec, got); err != nil {
				t.Fatalf("rank %d round %d faulty read: %v", p, round, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rank %d round %d: faulty read diverges from fault-free truth", p, round)
			}
			f.Close()
			fs.Close()
		}
	}

	writePhase(0)
	readPhase(0)
	// Kill one server mid-workload: the second round runs degraded.
	if err := c.IOServers[len(c.IOServers)-1].Close(); err != nil {
		t.Fatal(err)
	}
	writePhase(1)
	readPhase(1)

	// Fault-free verification with the server still dead: a clean
	// client (no storm) reads the final bytes through failover alone.
	cleanFS, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanFS.Close()
	f, err := cleanFS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for p := 0; p < np; p++ {
		sec := colSection(np, p)
		got := make([]byte, sec.Bytes(1))
		if err := f.ReadSection(ctx, sec, got); err != nil {
			t.Fatal(err)
		}
		if want := roundData(p, 1, len(got)); !bytes.Equal(got, want) {
			t.Fatalf("rank %d: stored bytes diverge from fault-free truth", p)
		}
	}
	return reg
}

// TestChaosReplicaFailover runs the replica-failover mode once under
// the standard storm: R=2, one of four servers killed mid-workload,
// byte-identical results, and the failover/degraded-write machinery
// demonstrably doing the absorbing.
func TestChaosReplicaFailover(t *testing.T) {
	inj := fault.New(6, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	reg := runReplicaChaosWorkload(t, c, inj, 4, true, false, false)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	if got := reg.Counter(core.MetricFailovers).Value(); got == 0 {
		t.Fatal("client_failovers = 0, want > 0 with a dead preferred replica")
	}
	if got := reg.Counter(core.MetricDegradedWrites).Value(); got == 0 {
		t.Fatal("client_degraded_writes = 0, want > 0 with a dead replica target")
	}
	t.Logf("faults=%v failovers=%d degraded=%d", inj.Counts(),
		reg.Counter(core.MetricFailovers).Value(),
		reg.Counter(core.MetricDegradedWrites).Value())
}

// TestChaosPerServerRule confines the storm to one server by catalog
// name and asserts the label routing held: only conns to that server
// see faults.
func TestChaosPerServerRule(t *testing.T) {
	inj := fault.New(3,
		fault.Rule{Kind: fault.KindDrop, Nth: 19, Label: "io1"},
		fault.Rule{Kind: fault.KindDelay, Prob: 0.2, Delay: time.Millisecond, Label: "io1"},
	)
	c := startChaosCluster(t, 4, inj)
	reg := runChaosWorkload(t, c, inj, 4, false, false, false)
	if inj.Total() == 0 {
		t.Fatal("the per-server schedule never fired")
	}
	if got := reg.Counter(server.MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0 (io1 drops every 7th op)")
	}
}

// TestChaosCollective drives the two-phase collective I/O path (one
// aggregator per server region, ranks exchange through shared memory)
// through the same storm.
func TestChaosCollective(t *testing.T) {
	const np = 4
	inj := fault.New(4, chaosRules()...)
	c := startChaosCluster(t, 4, inj)
	ctx := context.Background()
	opts := core.Options{
		Combine: true, Stagger: true,
		Dial: inj.DialContext, Retry: chaosRetry(),
	}

	fs0, err := c.NewFS(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := fs0.Create("/chaos-coll.dat", 1, []int64{chaosN, chaosN}, core.Hint{
		Level: stripe.LevelMultidim, Tile: []int64{chaosTile, chaosTile},
	})
	if err != nil {
		t.Fatal(err)
	}
	f0.Close()
	fs0.Close()

	g, err := collective.NewGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	run := func(write bool) {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for p := 0; p < np; p++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				fs, err := c.NewFS(rank, opts)
				if err != nil {
					errs <- err
					return
				}
				defer fs.Close()
				f, err := fs.Open("/chaos-coll.dat")
				if err != nil {
					errs <- err
					return
				}
				defer f.Close()
				sec := colSection(np, rank)
				if write {
					err = g.WriteAll(ctx, rank, f, sec, rankBytes(rank, int(sec.Bytes(1))))
				} else {
					got := make([]byte, sec.Bytes(1))
					if err = g.ReadAll(ctx, rank, f, sec, got); err == nil {
						if want := rankBytes(rank, len(got)); !bytes.Equal(got, want) {
							err = fmt.Errorf("rank %d: collective read diverges", rank)
						}
					}
				}
				if err != nil {
					errs <- fmt.Errorf("rank %d: %w", rank, err)
				}
			}(p)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	run(true)
	run(false)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
}

// metaChaosRules is the storm for catalog connections: latency spikes
// only. The mdbnet transport deliberately never replays a statement on
// a fresh connection (a COMMIT whose ack was lost must not apply
// twice), so drops and torn frames surface as hard errors to the
// engine — a different failure class the shard-restart tests cover.
// Delays exercise the same conns, framing and routing under load
// without changing op outcomes.
func metaChaosRules() []fault.Rule {
	return []fault.Rule{
		{Kind: fault.KindDelay, Prob: 0.2, Delay: 2 * time.Millisecond},
		{Kind: fault.KindDelay, Nth: 13, Delay: 5 * time.Millisecond},
	}
}

// startMetaShardChaosCluster is startChaosCluster with the catalog
// split over two path-hash-routed shards.
func startMetaShardChaosCluster(t *testing.T, io int, inj *fault.Injector) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{
		Servers: cluster.Uniform(io), Dir: t.TempDir(), MetaShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for i, srv := range c.IOServers {
		inj.SetLabel(srv.Addr(), c.Specs[i].Name)
	}
	return c
}

// runMetaShardChaosWorkload drives per-rank files through a 2-shard
// catalog with fault storms on BOTH conn kinds: the standard storm on
// the I/O conns (drops, delays, torn frames — absorbed by the retry
// ladder) and the delay storm on the catalog conns. Every rank
// creates its own files so the create/open traffic itself is routed
// across shards, and the final audit checks bytes and routing.
func runMetaShardChaosWorkload(t *testing.T, c *cluster.Cluster, inj, metaInj *fault.Injector, np int) *obs.Registry {
	t.Helper()
	ctx := context.Background()
	reg := obs.NewRegistry()
	metaDial := func(addr string) (net.Conn, error) {
		return metaInj.DialContext(ctx, addr)
	}
	opts := core.Options{
		Combine: true, Stagger: true,
		Dial: inj.DialContext, Retry: chaosRetry(),
	}

	const chunks = 8
	perRank := int64(chaosN * chaosN / np)
	chunkBytes := perRank / chunks
	path := func(rank int) string { return fmt.Sprintf("/chaos-meta-r%d.dat", rank) }
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fs, err := c.NewFSMetaDial(rank, opts, metaDial)
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			fs.SetMetrics(reg)
			f, err := fs.Create(path(rank), 1, []int64{perRank},
				core.Hint{Level: stripe.LevelLinear, BrickBytes: chunkBytes})
			if err != nil {
				errs <- fmt.Errorf("rank %d create: %w", rank, err)
				return
			}
			defer f.Close()
			data := rankBytes(rank, int(perRank))
			for i := int64(0); i < chunks; i++ {
				sub := stripe.NewSection([]int64{i * chunkBytes}, []int64{chunkBytes})
				if err := f.WriteSection(ctx, sub, data[i*chunkBytes:(i+1)*chunkBytes]); err != nil {
					errs <- fmt.Errorf("rank %d write chunk %d: %w", rank, i, err)
					return
				}
			}
			// Faulty read-back through a reopened handle (fresh
			// lookups through the delayed catalog conns).
			f2, err := fs.Open(path(rank))
			if err != nil {
				errs <- fmt.Errorf("rank %d reopen: %w", rank, err)
				return
			}
			defer f2.Close()
			got := make([]byte, perRank)
			if err := f2.ReadSection(ctx, stripe.NewSection([]int64{0}, []int64{perRank}), got); err != nil {
				errs <- fmt.Errorf("rank %d read: %w", rank, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("rank %d: faulty read diverges from fault-free truth", rank)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Fault-free audit: stored bytes and shard routing.
	cleanFS, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanFS.Close()
	for p := 0; p < np; p++ {
		f, err := cleanFS.Open(path(p))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, perRank)
		err = f.ReadSection(ctx, stripe.NewSection([]int64{0}, []int64{perRank}), got)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rankBytes(p, int(perRank))) {
			t.Fatalf("rank %d: stored bytes diverge from fault-free truth", p)
		}
	}
	for s, db := range c.DBs {
		files, err := meta.NewCatalog(db.Session()).Files()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range files {
			if home := meta.ShardIndex(p, len(c.DBs)); home != s {
				t.Fatalf("%s: misrouted onto shard %d (home %d)", p, s, home)
			}
		}
	}
	return reg
}

// TestChaosMetaShard runs the metashard mode once: 2 catalog shards,
// delay storm on catalog conns, standard storm on I/O conns.
func TestChaosMetaShard(t *testing.T) {
	inj := fault.New(9, chaosRules()...)
	metaInj := fault.New(10, metaChaosRules()...)
	c := startMetaShardChaosCluster(t, 4, inj)
	reg := runMetaShardChaosWorkload(t, c, inj, metaInj, 4)
	if inj.Total() == 0 {
		t.Fatal("the I/O fault schedule never fired")
	}
	if metaInj.Total() == 0 {
		t.Fatal("the catalog fault schedule never fired")
	}
	if got := reg.Counter(server.MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0 under the storm")
	}
	t.Logf("io faults=%v meta faults=%v retries=%d", inj.Counts(), metaInj.Counts(),
		reg.Counter(server.MetricClientRetries).Value())
}

// startMetaReplChaosCluster is startChaosCluster with the catalog run
// as one 3-way replica group with fast failover timeouts.
func startMetaReplChaosCluster(t *testing.T, io int, inj *fault.Injector) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{
		Servers: cluster.Uniform(io), Dir: t.TempDir(),
		MetaReplicas:        3,
		MetaHeartbeat:       10 * time.Millisecond,
		MetaElectionTimeout: 80 * time.Millisecond,
		MetaEvents:          obs.NewEventLog(128),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for i, srv := range c.IOServers {
		inj.SetLabel(srv.Addr(), c.Specs[i].Name)
	}
	return c
}

// runMetaReplChaosWorkload drives per-rank files through a replicated
// catalog with the standard storm on the I/O conns, the delay storm on
// the catalog conns, and the shard's primary killed mid-workload. A
// failover aborts in-flight catalog transactions (the group client
// surfaces mdbnet.ErrNotPrimary), so the catalog ops are retried at
// the workload level with lost-ack tolerance, exactly as a real
// MPI-IO launcher would. The audit then checks bytes fault-free and
// that a promotion actually happened.
func runMetaReplChaosWorkload(t *testing.T, c *cluster.Cluster, inj, metaInj *fault.Injector, np int) *obs.Registry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	reg := obs.NewRegistry()
	metaDial := func(addr string) (net.Conn, error) {
		return metaInj.DialContext(ctx, addr)
	}
	opts := core.Options{
		Combine: true, Stagger: true,
		Dial: inj.DialContext, Retry: chaosRetry(),
	}
	retry := func(what string, op func() error) error {
		var err error
		for attempt := 0; attempt < 2000; attempt++ {
			if err = op(); err == nil {
				return nil
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("%s: gave up: %w", what, err)
			case <-time.After(2 * time.Millisecond):
			}
		}
		return fmt.Errorf("%s: still failing after 2000 attempts: %w", what, err)
	}

	const chunks = 8
	perRank := int64(chaosN * chaosN / np)
	chunkBytes := perRank / chunks
	path := func(rank int) string { return fmt.Sprintf("/chaos-repl-r%d.dat", rank) }
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fs, err := c.NewFSMetaDial(rank, opts, metaDial)
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			fs.SetMetrics(reg)
			// Create with lost-ack tolerance: a commit the old primary
			// acknowledged before dying must not be recreated.
			err = retry(fmt.Sprintf("rank %d create", rank), func() error {
				f, err := fs.Create(path(rank), 1, []int64{perRank},
					core.Hint{Level: stripe.LevelLinear, BrickBytes: chunkBytes})
				if err != nil {
					if f2, err2 := fs.Open(path(rank)); err2 == nil {
						f2.Close()
						return nil
					}
					return err
				}
				return f.Close()
			})
			if err != nil {
				errs <- err
				return
			}
			data := rankBytes(rank, int(perRank))
			for i := int64(0); i < chunks; i++ {
				sub := stripe.NewSection([]int64{i * chunkBytes}, []int64{chunkBytes})
				err := retry(fmt.Sprintf("rank %d chunk %d", rank, i), func() error {
					f, err := fs.Open(path(rank))
					if err != nil {
						return err
					}
					defer f.Close()
					return f.WriteSection(ctx, sub, data[i*chunkBytes:(i+1)*chunkBytes])
				})
				if err != nil {
					errs <- err
					return
				}
			}
			err = retry(fmt.Sprintf("rank %d read", rank), func() error {
				f, err := fs.Open(path(rank))
				if err != nil {
					return err
				}
				defer f.Close()
				got := make([]byte, perRank)
				if err := f.ReadSection(ctx, stripe.NewSection([]int64{0}, []int64{perRank}), got); err != nil {
					return err
				}
				if !bytes.Equal(got, data) {
					return fmt.Errorf("rank %d: faulty read diverges from fault-free truth", rank)
				}
				return nil
			})
			if err != nil {
				errs <- err
			}
		}(p)
	}

	// Kill the primary mid-workload; the survivors elect and the group
	// clients chase the new primary by redirect. The dead replica comes
	// back as a follower while the workload is still running.
	time.Sleep(20 * time.Millisecond)
	primary := -1
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if primary = c.MetaPrimary(0); primary >= 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if primary < 0 {
		t.Fatal("no primary to kill")
	}
	if err := c.KillMetaReplica(0, primary); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		if cur := c.MetaPrimary(0); cur >= 0 && cur != primary {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no new primary elected after the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.RestartMetaReplica(0, primary); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Fault-free audit of the stored bytes.
	cleanFS, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanFS.Close()
	for p := 0; p < np; p++ {
		f, err := cleanFS.Open(path(p))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, perRank)
		err = f.ReadSection(ctx, stripe.NewSection([]int64{0}, []int64{perRank}), got)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rankBytes(p, int(perRank))) {
			t.Fatalf("rank %d: stored bytes diverge from fault-free truth", p)
		}
	}
	promotions := int64(0)
	for _, rep := range c.Replicas[0] {
		if rep != nil {
			promotions += rep.Metrics().Counter(metarepl.MetricPromotions).Value()
		}
	}
	if promotions == 0 {
		t.Fatal("metarepl_promotions_total = 0 after a primary kill")
	}
	return reg
}

// TestChaosMetaRepl runs the metarepl mode once: a 3-way replicated
// catalog, its primary killed mid-workload, the delay storm on catalog
// conns and the standard storm on I/O conns.
func TestChaosMetaRepl(t *testing.T) {
	inj := fault.New(11, chaosRules()...)
	metaInj := fault.New(12, metaChaosRules()...)
	c := startMetaReplChaosCluster(t, 4, inj)
	reg := runMetaReplChaosWorkload(t, c, inj, metaInj, 4)
	if inj.Total() == 0 {
		t.Fatal("the I/O fault schedule never fired")
	}
	if metaInj.Total() == 0 {
		t.Fatal("the catalog fault schedule never fired")
	}
	if got := reg.Counter(server.MetricClientRetries).Value(); got == 0 {
		t.Fatal("client_retries = 0, want > 0 under the storm")
	}
	t.Logf("io faults=%v meta faults=%v retries=%d", inj.Counts(), metaInj.Counts(),
		reg.Counter(server.MetricClientRetries).Value())
}

// TestChaosSweep re-runs the sequential workload across many seeds.
// Gated on DPFS_CHAOS_SWEEP (a seed count) because each seed is a full
// cluster launch; `make chaos` runs it at 25.
func TestChaosSweep(t *testing.T) {
	nStr := os.Getenv("DPFS_CHAOS_SWEEP")
	if nStr == "" {
		t.Skip("set DPFS_CHAOS_SWEEP=<seeds> to sweep")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		t.Fatalf("DPFS_CHAOS_SWEEP=%q: %v", nStr, err)
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := fault.New(seed, chaosRules()...)
			c := startChaosCluster(t, 4, inj)
			runChaosWorkload(t, c, inj, 4, seed%2 == 0, seed%3 != 0, seed%2 == 1)
		})
		t.Run(fmt.Sprintf("seed%d-replica", seed), func(t *testing.T) {
			inj := fault.New(seed+1000, chaosRules()...)
			c := startChaosCluster(t, 4, inj)
			runReplicaChaosWorkload(t, c, inj, 4, seed%2 == 0, seed%3 == 0, seed%2 == 1)
		})
		t.Run(fmt.Sprintf("seed%d-metashard", seed), func(t *testing.T) {
			inj := fault.New(seed+2000, chaosRules()...)
			metaInj := fault.New(seed+3000, metaChaosRules()...)
			c := startMetaShardChaosCluster(t, 4, inj)
			runMetaShardChaosWorkload(t, c, inj, metaInj, 4)
		})
		t.Run(fmt.Sprintf("seed%d-metarepl", seed), func(t *testing.T) {
			inj := fault.New(seed+4000, chaosRules()...)
			metaInj := fault.New(seed+5000, metaChaosRules()...)
			c := startMetaReplChaosCluster(t, 4, inj)
			runMetaReplChaosWorkload(t, c, inj, metaInj, 4)
		})
		t.Run(fmt.Sprintf("seed%d-gossip", seed), func(t *testing.T) {
			inj := fault.New(seed+6000, chaosRules()...)
			c := startGossipChaosCluster(t, 4, inj, seed+7000, obs.NewEventLog(256))
			runGossipChaosWorkload(t, c, inj, 4, seed%2 == 0, seed%3 == 0, seed%2 == 1)
		})
	}
}
