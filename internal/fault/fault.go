// Package fault is a deterministic, seedable fault injector for the
// DPFS transport. DPFS aggregates idle workstation storage (Section 1
// of the paper), a substrate where servers stall, connections drop and
// links flake as a matter of course; this package makes those failures
// reproducible so the client's recovery machinery (retries, breakers,
// pooled-connection eviction — see internal/server) can be tested
// against a scheduled storm instead of waiting for a real one.
//
// An Injector holds an ordered rule list and a seeded PRNG. Wrapping a
// net.Conn (via Conn, DialContext or Listener) routes every Read and
// Write through the rules; a firing rule injects one of:
//
//   - drop: the connection is closed mid-operation,
//   - readerr / writeerr: the operation fails without closing,
//   - delay: the operation stalls (a latency spike), then proceeds,
//   - partial: a Write delivers only a prefix, then the conn closes.
//
// Rules select their victims by nth-operation (fires every Nth conn
// op, deterministic regardless of scheduling), by probability (seeded,
// reproducible for a fixed interleaving), and/or by per-server label;
// a Count cap bounds total firings. The textual Spec form behind the
// -fault-spec flags is
//
//	rule        := kind ":" opt ("," opt)*
//	spec        := rule (";" rule)*
//	kind        := "drop" | "readerr" | "writeerr" | "delay" | "partial"
//	opt         := "nth=" N | "prob=" F | "count=" N | "ms=" N |
//	               "server=" LABEL
//
// e.g. "drop:prob=0.02;delay:prob=0.05,ms=3;partial:nth=17".
package fault

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// KindDrop closes the connection mid-operation.
	KindDrop Kind = iota
	// KindReadErr fails a Read without closing the connection.
	KindReadErr
	// KindWriteErr fails a Write without closing the connection.
	KindWriteErr
	// KindDelay stalls an operation, then lets it proceed (a latency
	// spike).
	KindDelay
	// KindPartial delivers only a prefix of a Write, then closes the
	// connection (a torn frame on the wire).
	KindPartial
)

// String names the kind as it appears in specs and stats.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindReadErr:
		return "readerr"
	case KindWriteErr:
		return "writeerr"
	case KindDelay:
		return "delay"
	case KindPartial:
		return "partial"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule schedules one fault kind. At least one of Nth and Prob must be
// set for the rule to ever fire.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind
	// Label restricts the rule to connections carrying this label
	// (the server name registered via SetLabel, or the dialed address);
	// empty matches every connection.
	Label string
	// Nth fires the rule on every Nth matching operation of a
	// connection (1-based; ops are counted per conn, so the schedule is
	// deterministic regardless of goroutine interleaving).
	Nth int64
	// Prob fires the rule with this per-operation probability, drawn
	// from the injector's seeded PRNG.
	Prob float64
	// Count caps total firings of this rule across all connections
	// (0 = unlimited).
	Count int64
	// Delay is the stall of a KindDelay rule.
	Delay time.Duration
}

// matchesOp reports whether the rule applies to the given direction.
// Drops and delays hit both directions; read/write faults only theirs.
func (r *Rule) matchesOp(write bool) bool {
	switch r.Kind {
	case KindReadErr:
		return !write
	case KindWriteErr, KindPartial:
		return write
	}
	return true
}

// Error is the error type of injected failures, so tests (and curious
// callers) can tell scheduled chaos from organic trouble.
type Error struct {
	Kind  Kind
	Label string
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s (%s)", e.Kind, e.Label)
}

// Injector applies a rule list to wrapped connections. All methods are
// safe for concurrent use; the PRNG and firing counters are shared
// under one lock, keeping probability draws reproducible for a fixed
// operation interleaving.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	fired  []int64           // per-rule firing counts
	labels map[string]string // addr -> label
}

// New builds an injector with the given seed and rules.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		rules:  append([]Rule(nil), rules...),
		fired:  make([]int64, len(rules)),
		labels: make(map[string]string),
	}
}

// Parse builds an injector from the textual spec form (see the package
// comment for the grammar). An empty spec yields an injector with no
// rules, which injects nothing.
func Parse(spec string, seed int64) (*Injector, error) {
	rules, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...), nil
}

// ParseSpec parses the rule list of a -fault-spec flag.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, opts, _ := strings.Cut(part, ":")
		var r Rule
		switch strings.TrimSpace(kindStr) {
		case "drop":
			r.Kind = KindDrop
		case "readerr":
			r.Kind = KindReadErr
		case "writeerr":
			r.Kind = KindWriteErr
		case "delay":
			r.Kind = KindDelay
		case "partial":
			r.Kind = KindPartial
		default:
			return nil, fmt.Errorf("fault: unknown kind %q in rule %q", kindStr, part)
		}
		for _, opt := range strings.Split(opts, ",") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("fault: option %q of rule %q is not key=value", opt, part)
			}
			var err error
			switch key {
			case "nth":
				r.Nth, err = strconv.ParseInt(val, 10, 64)
				if err == nil && r.Nth < 1 {
					err = fmt.Errorf("nth must be >= 1")
				}
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = fmt.Errorf("prob must be in [0,1]")
				}
			case "count":
				r.Count, err = strconv.ParseInt(val, 10, 64)
			case "ms":
				var ms int64
				ms, err = strconv.ParseInt(val, 10, 64)
				r.Delay = time.Duration(ms) * time.Millisecond
			case "server", "label":
				r.Label = val
			default:
				return nil, fmt.Errorf("fault: unknown option %q in rule %q", key, part)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: option %q of rule %q: %v", opt, part, err)
			}
		}
		if r.Nth == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("fault: rule %q needs nth= or prob= to ever fire", part)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// SetLabel names the server behind addr, so per-server rules can match
// by catalog name instead of the ephemeral address.
func (in *Injector) SetLabel(addr, label string) {
	in.mu.Lock()
	in.labels[addr] = label
	in.mu.Unlock()
}

// labelFor resolves an address to its registered label (or itself).
func (in *Injector) labelFor(addr string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if l, ok := in.labels[addr]; ok {
		return l
	}
	return addr
}

// Counts returns per-kind firing totals (for tests and reports).
func (in *Injector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64)
	for i, r := range in.rules {
		out[r.Kind.String()] += in.fired[i]
	}
	return out
}

// Total returns the number of faults injected so far.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, f := range in.fired {
		n += f
	}
	return n
}

// firing is one decided injection.
type firing struct {
	kind  Kind
	delay time.Duration
}

// decide runs the rule list for one conn operation. ops is the conn's
// 1-based operation sequence number. The first firing rule wins.
func (in *Injector) decide(label string, ops int64, write bool) *firing {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matchesOp(write) {
			continue
		}
		if r.Label != "" && r.Label != label {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		hit := r.Nth > 0 && ops%r.Nth == 0
		if !hit && r.Prob > 0 && in.rng.Float64() < r.Prob {
			hit = true
		}
		if !hit {
			continue
		}
		in.fired[i]++
		return &firing{kind: r.Kind, delay: r.Delay}
	}
	return nil
}

// Conn wraps c so its Reads and Writes run the injector's rules,
// labeled for per-server matching. An injector with no rules returns c
// unchanged.
func (in *Injector) Conn(c net.Conn, label string) net.Conn {
	if in == nil || len(in.rules) == 0 {
		return c
	}
	return &conn{Conn: c, in: in, label: label}
}

// DialContext dials addr over TCP and wraps the connection, labeling
// it with the server's registered name (SetLabel) or the address. Its
// signature matches the client engine's dial hook
// (core.Options.Dial / server.ClientConfig.Dial).
func (in *Injector) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return in.Conn(c, in.labelFor(addr)), nil
}

// Listener wraps l so every accepted connection carries the label and
// runs the injector's rules — the server-side mirror of DialContext,
// behind dpfs-server's -fault-spec flag.
func (in *Injector) Listener(l net.Listener, label string) net.Listener {
	if in == nil {
		return l
	}
	return &listener{Listener: l, in: in, label: label}
}

type listener struct {
	net.Listener
	in    *Injector
	label string
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c, l.label), nil
}

// conn is a net.Conn with scheduled faults.
type conn struct {
	net.Conn
	in    *Injector
	label string

	mu  sync.Mutex
	ops int64
}

// nextOp advances the conn's operation counter.
func (c *conn) nextOp() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	return c.ops
}

func (c *conn) Read(p []byte) (int, error) {
	f := c.in.decide(c.label, c.nextOp(), false)
	if f != nil {
		switch f.kind {
		case KindDrop:
			c.Conn.Close()
			return 0, &Error{Kind: KindDrop, Label: c.label}
		case KindReadErr:
			return 0, &Error{Kind: KindReadErr, Label: c.label}
		case KindDelay:
			time.Sleep(f.delay)
		}
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	f := c.in.decide(c.label, c.nextOp(), true)
	if f != nil {
		switch f.kind {
		case KindDrop:
			c.Conn.Close()
			return 0, &Error{Kind: KindDrop, Label: c.label}
		case KindWriteErr:
			return 0, &Error{Kind: KindWriteErr, Label: c.label}
		case KindDelay:
			time.Sleep(f.delay)
		case KindPartial:
			n := len(p) / 2
			if n > 0 {
				var werr error
				n, werr = c.Conn.Write(p[:n])
				if werr != nil {
					c.Conn.Close()
					return n, werr
				}
			}
			c.Conn.Close()
			return n, &Error{Kind: KindPartial, Label: c.label}
		}
	}
	return c.Conn.Write(p)
}
