// Gossip chaos: the health plane (DESIGN.md §14) rides the same
// seeded storm as the data path. The gossip exchanges themselves dial
// through the injector — dropped pushes turn into spurious suspicions
// that refutation must clear — while a mid-workload crash has to be
// detected by the mesh alone, and the kill-meta sim takes the
// metadata service away at the worst moment to prove the repair
// prober keeps assessing liveness from the gossip snapshot.
package fault_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/fault"
	"dpfs/internal/gossip"
	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/repair"
	"dpfs/internal/stripe"
)

// startGossipChaosCluster launches io unshaped servers with a gossip
// node inside each one. Gossip exchanges dial through the injector, so
// the membership traffic suffers the same storm as the data traffic.
func startGossipChaosCluster(t *testing.T, io int, inj *fault.Injector, gossipSeed int64, events *obs.EventLog) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{
		Servers: cluster.Uniform(io), Dir: t.TempDir(),
		Gossip:         true,
		GossipInterval: 20 * time.Millisecond,
		GossipSeed:     gossipSeed,
		GossipDial:     inj.DialContext,
		GossipEvents:   events,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for i, srv := range c.IOServers {
		inj.SetLabel(srv.Addr(), c.Specs[i].Name)
	}
	return c
}

// waitGossip polls cond until it holds or the deadline passes.
func waitGossip(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runGossipChaosWorkload is the replica-failover workload on a
// gossip-enabled cluster with a true crash: KillServer stops the
// victim's gossip node along with its listener, so the surviving mesh
// must detect the silence on its own (no central probe involved)
// before the degraded round runs. Every byte is still checked against
// the fault-free truth, and the returned registry carries the clients'
// piggybacked-delta counters.
func runGossipChaosWorkload(t *testing.T, c *cluster.Cluster, inj *fault.Injector, np int, parallel, cached, wireV2 bool) *obs.Registry {
	t.Helper()
	ctx := context.Background()
	reg := obs.NewRegistry()
	opts := core.Options{
		Combine: true, Stagger: true, ParallelDispatch: parallel,
		Dial: inj.DialContext, Retry: chaosRetry(), WireV2: wireV2,
	}
	if cached {
		opts.CacheBytes = 64 << 20
		opts.MetaTTL = time.Minute
		opts.Readahead = 2
	}

	const path = "/chaos-gossip.dat"
	fs0, err := c.NewFS(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs0.SetMetrics(reg)
	f0, err := fs0.Create(path, 1, []int64{chaosN, chaosN}, core.Hint{
		Level: stripe.LevelMultidim, Tile: []int64{chaosTile, chaosTile},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f0.Close()
	fs0.Close()

	roundData := func(rank, round, n int) []byte {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rank*31 + i + round*101)
		}
		return buf
	}

	const chunks = 8
	chunkRows := int64(chaosN) / chunks
	writePhase := func(round int) {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for p := 0; p < np; p++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				fs, err := c.NewFS(rank, opts)
				if err != nil {
					errs <- err
					return
				}
				defer fs.Close()
				fs.SetMetrics(reg)
				f, err := fs.Open(path)
				if err != nil {
					errs <- err
					return
				}
				defer f.Close()
				sec := colSection(np, rank)
				data := roundData(rank, round, int(sec.Bytes(1)))
				rowBytes := sec.Count[1]
				for i := int64(0); i < chunks; i++ {
					sub := stripe.NewSection(
						[]int64{i * chunkRows, sec.Start[1]},
						[]int64{chunkRows, sec.Count[1]})
					chunk := data[i*chunkRows*rowBytes : (i+1)*chunkRows*rowBytes]
					if err := f.WriteSection(ctx, sub, chunk); err != nil {
						errs <- fmt.Errorf("rank %d round %d write chunk %d: %w", rank, round, i, err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	readPhase := func(round int) {
		for p := 0; p < np; p++ {
			fs, err := c.NewFS(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			fs.SetMetrics(reg)
			f, err := fs.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sec := colSection(np, p)
			want := roundData(p, round, int(sec.Bytes(1)))
			got := make([]byte, sec.Bytes(1))
			if err := f.ReadSection(ctx, sec, got); err != nil {
				t.Fatalf("rank %d round %d faulty read: %v", p, round, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rank %d round %d: faulty read diverges from fault-free truth", p, round)
			}
			f.Close()
			fs.Close()
		}
	}

	writePhase(0)
	readPhase(0)

	// Crash the last server: its gossip node stops announcing with the
	// listener, and the surviving mesh must converge on the suspicion
	// (the dead node can never refute) before the degraded round.
	victim := len(c.IOServers) - 1
	deadAddr := c.IOServers[victim].Addr()
	if err := c.KillServer(victim); err != nil {
		t.Fatal(err)
	}
	waitGossip(t, 30*time.Second, func() bool {
		rec, ok := c.GossipNodes[0].Lookup(deadAddr)
		return ok && (rec.State == gossip.StateSuspect || rec.State == gossip.StateDead)
	}, "the surviving mesh to suspect the killed server")

	writePhase(1)
	readPhase(1)

	// Fault-free verification with the server still dead.
	cleanFS, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanFS.Close()
	f, err := cleanFS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for p := 0; p < np; p++ {
		sec := colSection(np, p)
		got := make([]byte, sec.Bytes(1))
		if err := f.ReadSection(ctx, sec, got); err != nil {
			t.Fatal(err)
		}
		if want := roundData(p, 1, len(got)); !bytes.Equal(got, want) {
			t.Fatalf("rank %d: stored bytes diverge from fault-free truth", p)
		}
	}
	return reg
}

// TestChaosGossip runs the gossip mode once under the standard storm:
// gossip exchanges and data traffic share the fault schedule, a server
// crashes mid-workload, the surviving mesh detects it, and the clients
// demonstrably consumed piggybacked health deltas along the way.
func TestChaosGossip(t *testing.T) {
	inj := fault.New(13, chaosRules()...)
	events := obs.NewEventLog(512)
	c := startGossipChaosCluster(t, 4, inj, 13, events)
	reg := runGossipChaosWorkload(t, c, inj, 4, true, false, false)
	if inj.Total() == 0 {
		t.Fatal("the fault schedule never fired")
	}
	if got := reg.Counter(core.MetricDeltasApplied).Value(); got == 0 {
		t.Fatal("gossip_deltas_applied = 0, want > 0 (every fresh conn's first response carries the table)")
	}
	if got := reg.Counter(core.MetricFailovers).Value(); got == 0 {
		t.Fatal("client_failovers = 0, want > 0 with a dead preferred replica")
	}
	if got := events.ByType(obs.EventGossipSuspect); len(got) == 0 {
		t.Fatal("no gossip_suspect event after a server crash")
	}
	t.Logf("faults=%v deltas_applied=%d failovers=%d suspect_events=%d", inj.Counts(),
		reg.Counter(core.MetricDeltasApplied).Value(),
		reg.Counter(core.MetricFailovers).Value(),
		len(events.ByType(obs.EventGossipSuspect)))
}

// TestGossipKillMetaMidStorm is the ISSUE 10 acceptance sim: with the
// storm running, the metadata service goes away and THEN a server is
// killed. The surviving mesh must detect the crash on its own
// (suspect with two distinct observers), the repair prober must keep
// planning from the gossip snapshot (meta_unreachable fallback,
// offline plan naming exactly the dead server), and once the catalog
// returns, the two-witness rule must bury the crashed server while
// refusing to bury one that only the prober cannot reach.
func TestGossipKillMetaMidStorm(t *testing.T) {
	const np = 4
	inj := fault.New(14, chaosRules()...)
	events := obs.NewEventLog(1024)
	c := startGossipChaosCluster(t, 4, inj, 14, events)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	reg := obs.NewRegistry()
	opts := core.Options{Combine: true, Stagger: true, Dial: inj.DialContext, Retry: chaosRetry()}
	addrs := make([]string, len(c.IOServers))
	for i, srv := range c.IOServers {
		addrs[i] = srv.Addr()
	}

	// An R=2 file written under the storm while everything is healthy.
	const path = "/chaos-gossip-meta.dat"
	fs0, err := c.NewFS(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs0.SetMetrics(reg)
	f0, err := fs0.Create(path, 1, []int64{chaosN, chaosN}, core.Hint{
		Level: stripe.LevelMultidim, Tile: []int64{chaosTile, chaosTile},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < np; p++ {
		sec := colSection(np, p)
		if err := f0.WriteSection(ctx, sec, rankBytes(p, int(sec.Bytes(1)))); err != nil {
			t.Fatalf("rank %d write: %v", p, err)
		}
	}
	f0.Close()
	fs0.Close()

	// The prober's catalog connection is opened while the metadata
	// service is still up — the outage below severs it.
	cat, err := c.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	r := repair.New(cat, repair.Options{
		Gossip: c.GossipNodes[0], Witnesses: 2,
		Metrics: reg, Events: events,
		PingTimeout: time.Second,
	})
	defer r.Close()

	// Meta outage first, server crash second: the crash happens while
	// nothing central can observe it.
	if err := c.StopMetaShard(0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillServer(3); err != nil {
		t.Fatal(err)
	}

	// The mesh alone must converge on the suspicion, with at least two
	// distinct observers (the corroboration the two-witness rule needs).
	waitGossip(t, 30*time.Second, func() bool {
		rec, ok := c.GossipNodes[0].Lookup(addrs[3])
		return ok && rec.State == gossip.StateSuspect && len(rec.Observers) >= 2
	}, "two distinct gossip observers to suspect the killed server")

	// Probe answers from the gossip snapshot while the catalog is
	// unreachable. Transient storm-born suspicions of live servers are
	// refuted within rounds, so poll until the map names exactly io3.
	waitGossip(t, 30*time.Second, func() bool {
		alive, err := r.Probe(ctx)
		if err != nil {
			return false
		}
		return alive["io0"] && alive["io1"] && alive["io2"] && !alive["io3"]
	}, "the gossip-fallback probe to name io3 down and the rest up")
	if got := events.ByType(obs.EventMetaUnreachable); len(got) == 0 {
		t.Fatal("no meta_unreachable event from the fallback probe")
	}

	// The offline plan pings directly and cross-checks gossip: only the
	// server failing BOTH witnesses counts as down, so a live server the
	// mesh momentarily suspects is not planned into a repair.
	rep, err := r.PlanOffline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"io0", "io1", "io2"} {
		if !rep.Alive[name] {
			t.Fatalf("offline plan buried live server %s: %v", name, rep.Alive)
		}
	}
	if rep.Alive["io3"] {
		t.Fatalf("offline plan missed the killed server: %v", rep.Alive)
	}

	// The catalog returns; now a prober partitioned from io1 (every one
	// of its dials to io1 dropped) probes repeatedly. io1 must be held
	// at suspect — gossip says alive, so the dead escalation is withheld
	// — while io3, probe-failed AND gossip-corroborated, is buried and
	// the verdict injected back into the mesh.
	if err := c.RestartMetaShard(0); err != nil {
		t.Fatal(err)
	}
	probeInj := fault.New(15, fault.Rule{Kind: fault.KindDrop, Prob: 1, Label: "io1"})
	for i := range addrs {
		probeInj.SetLabel(addrs[i], c.Specs[i].Name)
	}
	cat2, err := c.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	r2 := repair.New(cat2, repair.Options{
		Dial:   probeInj.DialContext,
		Gossip: c.GossipNodes[0], Witnesses: 2,
		Metrics: reg2, Events: events,
		PingTimeout: 500 * time.Millisecond,
	})
	defer r2.Close()
	for i := 0; i < 3; i++ {
		if _, err := r2.Probe(ctx); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if got := reg2.Counter(repair.MetricDeadHolds).Value(); got == 0 {
		t.Fatal("repair_dead_holds = 0, want > 0 (io1 is only partitioned from the prober)")
	}
	health, err := cat2.ServerHealth()
	if err != nil {
		t.Fatal(err)
	}
	states := make(map[string]string, len(health))
	for _, h := range health {
		states[h.Name] = h.State
	}
	if states["io1"] != meta.StateSuspect {
		t.Fatalf("io1 state = %q, want suspect (held by the two-witness rule)", states["io1"])
	}
	if states["io3"] != meta.StateDead {
		t.Fatalf("io3 state = %q, want dead (probe-failed and gossip-corroborated)", states["io3"])
	}
	if rec, ok := c.GossipNodes[0].Lookup(addrs[3]); !ok || rec.State != gossip.StateDead {
		t.Fatalf("confirmed death was not injected back into the mesh: %+v", rec)
	}

	// The injected verdict reaches clients as a piggybacked delta: a
	// fresh engine's first response carries the table, dead hint
	// included.
	hintFS, err := c.NewFS(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	hintFS.SetMetrics(reg)
	hf, err := hintFS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sec0 := colSection(np, 0)
	if err := hf.ReadSection(ctx, sec0, make([]byte, sec0.Bytes(1))); err != nil {
		t.Fatal(err)
	}
	hf.Close()
	hints := hintFS.DeadHints()
	hintFS.Close()
	if len(hints) != 1 || hints[0] != "io3" {
		t.Fatalf("client dead hints = %v, want [io3]", hints)
	}

	// A clean repair run rebuilds the lost replicas (the two-witness
	// state survives: io1 pings fine and returns to alive, io3 stays
	// dead), and the file reads back byte-identical without the dead
	// server.
	report, err := c.Repair(ctx, repair.Options{Metrics: reg2, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if report.Repaired == 0 {
		t.Fatalf("repair rebuilt nothing: %+v", report)
	}
	if !report.Alive["io1"] || report.Alive["io3"] {
		t.Fatalf("repair-run liveness = %v, want io1 up and io3 down", report.Alive)
	}
	cleanFS, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanFS.Close()
	f, err := cleanFS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for p := 0; p < np; p++ {
		sec := colSection(np, p)
		got := make([]byte, sec.Bytes(1))
		if err := f.ReadSection(ctx, sec, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rankBytes(p, len(got))) {
			t.Fatalf("rank %d: repaired bytes diverge from fault-free truth", p)
		}
	}
	t.Logf("dead_holds=%d repaired=%d suspect_events=%d", reg2.Counter(repair.MetricDeadHolds).Value(),
		report.Repaired, len(events.ByType(obs.EventGossipSuspect)))
}
