// Package collective implements two-phase collective I/O on top of the
// DPFS client engine: the paper's stated future direction of using
// DPFS "as a low level system to service a high level interface such
// as MPI-I/O" (Section 10), following the collective-I/O design of
// ROMIO (Thakur, Gropp, Lusk — cited as [25] in the paper).
//
// In independent I/O, every compute process ships its own (possibly
// tiny, interleaved) section to the servers. In collective I/O all NP
// processes of a Group enter the operation together; the union of
// their requests is reorganized by brick (phase 1, the shuffle), and
// brick-aligned combined requests are issued by aggregator processes
// (phase 2), one aggregator per server stripe. Interleaved patterns
// that would generate many fragmented requests collapse into a few
// whole-brick transfers.
//
// Group models an MPI communicator for in-process compute ranks
// (goroutines); the shuffle phase moves bytes through shared memory,
// standing in for the MPI alltoall a multi-node implementation would
// use.
package collective

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dpfs/internal/core"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// Collective metric names. The fan-in histograms record, per collective
// call, how much work the shuffle phase folded together: contributing
// ranks, merged bricks, pre-merge segments, and aggregators used.
const (
	MetricCalls       = "collective_calls_total"
	MetricStagedBytes = "collective_staged_bytes_total"
	MetricFaninRanks  = "collective_fanin_ranks"
	MetricFaninBricks = "collective_fanin_bricks"
	MetricFaninSegs   = "collective_fanin_segments"
	MetricAggregators = "collective_aggregators"
)

// Group coordinates NP ranks' collective operations. Create one per
// logical communicator; every rank must call each collective exactly
// once and in the same order, like MPI collectives.
type Group struct {
	np  int
	reg *obs.Registry

	mu    sync.Mutex
	calls map[string]*call // op signature -> in-flight call
	seq   int
}

// NewGroup builds a communicator of np ranks.
func NewGroup(np int) (*Group, error) {
	if np <= 0 {
		return nil, errors.New("collective: group size must be positive")
	}
	return &Group{np: np, reg: obs.NewRegistry(), calls: make(map[string]*call)}, nil
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.np }

// Metrics returns the group's collective fan-in metrics.
func (g *Group) Metrics() *obs.Registry { return g.reg }

// contrib is one rank's part of a collective operation.
type contrib struct {
	rank int
	file *core.File
	sec  stripe.Section
	buf  []byte
}

// call is one in-flight collective operation.
type call struct {
	write    bool
	path     string
	contribs []contrib
	done     chan struct{}
	err      error
}

// WriteAll performs a collective write: rank contributes data for the
// file region sec and blocks until the whole group's operation
// completes. All ranks must pass handles to the same file path.
func (g *Group) WriteAll(ctx context.Context, rank int, f *core.File, sec stripe.Section, data []byte) error {
	return g.collective(ctx, rank, f, sec, data, true)
}

// ReadAll performs a collective read into buf.
func (g *Group) ReadAll(ctx context.Context, rank int, f *core.File, sec stripe.Section, buf []byte) error {
	return g.collective(ctx, rank, f, sec, buf, false)
}

func (g *Group) collective(ctx context.Context, rank int, f *core.File, sec stripe.Section, buf []byte, write bool) error {
	if rank < 0 || rank >= g.np {
		return fmt.Errorf("collective: rank %d out of range [0,%d)", rank, g.np)
	}
	if f == nil {
		return errors.New("collective: nil file")
	}
	if want := sec.Bytes(f.Geometry().ElemSize); int64(len(buf)) != want {
		return fmt.Errorf("collective: rank %d: section %v needs %d bytes, buffer has %d", rank, sec, want, len(buf))
	}

	op := "R"
	if write {
		op = "W"
	}
	key := op + ":" + f.Info().Path

	g.mu.Lock()
	c, ok := g.calls[key]
	if !ok {
		c = &call{write: write, path: f.Info().Path, done: make(chan struct{})}
		g.calls[key] = c
	}
	c.contribs = append(c.contribs, contrib{rank: rank, file: f, sec: sec, buf: buf})
	last := len(c.contribs) == g.np
	if last {
		delete(g.calls, key) // next collective on this key starts fresh
	}
	g.mu.Unlock()

	if last {
		c.err = g.execute(ctx, c)
		close(c.done)
	} else {
		select {
		case <-c.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return c.err
}

// brickWork is the merged access to one brick across all ranks.
type brickWork struct {
	brick int
	// segs are the rank contributions: where in the brick, and where
	// in which rank's buffer.
	segs []rankSeg
}

type rankSeg struct {
	brickOff int64
	len      int64
	buf      []byte // the contributing rank's buffer
	memOff   int64
}

// execute runs both phases with the last-arriving rank as coordinator:
// merge all sections by brick, stage each brick contiguously, and let
// one aggregator rank per server issue the combined brick-aligned
// requests.
func (g *Group) execute(ctx context.Context, c *call) error {
	// Deterministic order regardless of arrival order.
	sort.Slice(c.contribs, func(i, j int) bool { return c.contribs[i].rank < c.contribs[j].rank })
	geo := c.contribs[0].file.Geometry()
	for _, ct := range c.contribs {
		if ct.file.Info().Path != c.path {
			return fmt.Errorf("collective: rank %d passed file %s, group is operating on %s",
				ct.rank, ct.file.Info().Path, c.path)
		}
	}

	// Phase 1: merge every rank's plan by brick.
	byBrick := make(map[int]*brickWork)
	for _, ct := range c.contribs {
		plan, err := geo.PlanSection(ct.sec)
		if err != nil {
			return err
		}
		for _, bio := range plan {
			w, ok := byBrick[bio.Brick]
			if !ok {
				w = &brickWork{brick: bio.Brick}
				byBrick[bio.Brick] = w
			}
			for _, seg := range bio.Segs {
				w.segs = append(w.segs, rankSeg{
					brickOff: seg.BrickOff, len: seg.Len, buf: ct.buf, memOff: seg.MemOff,
				})
			}
		}
	}
	bricks := make([]*brickWork, 0, len(byBrick))
	for _, w := range byBrick {
		bricks = append(bricks, w)
	}
	sort.Slice(bricks, func(i, j int) bool { return bricks[i].brick < bricks[j].brick })

	// Stage each brick contiguously: one shared buffer, per-brick
	// bases; covered intervals become plan segments with MemOff equal
	// to base+BrickOff.
	var total int64
	base := make(map[int]int64, len(bricks))
	for _, w := range bricks {
		base[w.brick] = total
		total += geo.BrickBytesOf(w.brick)
	}
	staging := make([]byte, total)

	plan := make([]stripe.BrickIO, 0, len(bricks))
	for _, w := range bricks {
		b := base[w.brick]
		if c.write {
			for _, rs := range w.segs {
				copy(staging[b+rs.brickOff:b+rs.brickOff+rs.len], rs.buf[rs.memOff:rs.memOff+rs.len])
			}
		}
		plan = append(plan, stripe.BrickIO{
			Brick: w.brick,
			Segs:  coveredRuns(w.segs, b),
		})
	}

	// Phase 2: partition bricks among aggregator ranks by server and
	// issue in parallel, each aggregator through its own file handle
	// (its own connections), mirroring ROMIO's aggregator processes.
	assign := fileAssign(c.contribs[0].file, plan)
	perAgg := make(map[int][]stripe.BrickIO)
	for i, bio := range plan {
		agg := assign[i] % g.np
		perAgg[agg] = append(perAgg[agg], bio)
	}

	var segs int64
	for _, w := range bricks {
		segs += int64(len(w.segs))
	}
	g.reg.Counter(MetricCalls).Inc()
	g.reg.Counter(MetricStagedBytes).Add(total)
	g.reg.Histogram(MetricFaninRanks).Record(int64(len(c.contribs)))
	g.reg.Histogram(MetricFaninBricks).Record(int64(len(bricks)))
	g.reg.Histogram(MetricFaninSegs).Record(segs)
	g.reg.Histogram(MetricAggregators).Record(int64(len(perAgg)))

	var wg sync.WaitGroup
	errs := make(chan error, len(perAgg))
	for agg, subPlan := range perAgg {
		wg.Add(1)
		go func(agg int, subPlan []stripe.BrickIO) {
			defer wg.Done()
			f := c.contribs[agg].file
			if err := f.ExecutePlan(ctx, subPlan, staging, c.write); err != nil {
				errs <- err
			}
		}(agg, subPlan)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Scatter read data back to every rank's buffer.
	if !c.write {
		for _, w := range bricks {
			b := base[w.brick]
			for _, rs := range w.segs {
				copy(rs.buf[rs.memOff:rs.memOff+rs.len], staging[b+rs.brickOff:b+rs.brickOff+rs.len])
			}
		}
	}
	return nil
}

// coveredRuns merges the per-rank segments of one brick into maximal
// disjoint (BrickOff, Len) runs, with MemOff pointing into the shared
// staging buffer. Overlapping writes resolve to the staging copy order
// (rank order), like overlapping independent writes would.
func coveredRuns(segs []rankSeg, stagingBase int64) []stripe.Segment {
	if len(segs) == 0 {
		return nil
	}
	ivs := make([][2]int64, len(segs))
	for i, rs := range segs {
		ivs[i] = [2]int64{rs.brickOff, rs.brickOff + rs.len}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	var out []stripe.Segment
	cur := ivs[0]
	flush := func() {
		out = append(out, stripe.Segment{
			BrickOff: cur[0], MemOff: stagingBase + cur[0], Len: cur[1] - cur[0],
		})
	}
	for _, iv := range ivs[1:] {
		if iv[0] <= cur[1] {
			if iv[1] > cur[1] {
				cur[1] = iv[1]
			}
			continue
		}
		flush()
		cur = iv
	}
	flush()
	return out
}

// fileAssign maps each plan entry to its server index using the file's
// brick assignment.
func fileAssign(f *core.File, plan []stripe.BrickIO) []int {
	assign := f.Assignment()
	out := make([]int, len(plan))
	for i, bio := range plan {
		out[i] = assign[bio.Brick]
	}
	return out
}
