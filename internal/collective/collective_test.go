package collective

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

func startCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(n), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// openRankFiles creates the file and opens one handle per rank.
func openRankFiles(t *testing.T, c *cluster.Cluster, np int, path string, hint core.Hint, dims []int64) []*core.File {
	t.Helper()
	admin, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	f, err := admin.Create(path, 8, dims, hint)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	files := make([]*core.File, np)
	for r := 0; r < np; r++ {
		fs, err := c.NewFS(r, core.Options{Combine: true, Stagger: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fs.Close() })
		files[r], err = fs.Open(path)
		if err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// TestCollectiveWriteReadRoundtrip: NP ranks collectively write
// interleaved row slices ((CYCLIC, *)-style, the worst case for
// independent I/O), then collectively read them back.
func TestCollectiveWriteReadRoundtrip(t *testing.T) {
	const np = 4
	const n = 64
	c := startCluster(t, 4)
	ctx := ctxT(t)
	files := openRankFiles(t, c, np, "/coll", core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}}, []int64{n, n})

	g, err := NewGroup(np)
	if err != nil {
		t.Fatal(err)
	}

	// Rank r writes rows r, r+np, r+2np, ... one collective call per
	// row round; every rank's data byte is its rank+round marker.
	write := func(round int) {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				row := int64(round*np + rank)
				sec := stripe.NewSection([]int64{row, 0}, []int64{1, n})
				data := bytes.Repeat([]byte{byte(row)}, n*8)
				errs <- g.WriteAll(ctx, rank, files[rank], sec, data)
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < n/np; round++ {
		write(round)
	}

	// Independent verification read of the full array.
	full := stripe.FullSection([]int64{n, n})
	buf := make([]byte, full.Bytes(8))
	if err := files[0].ReadSection(ctx, full, buf); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		for i := 0; i < n*8; i++ {
			if buf[row*n*8+i] != byte(row) {
				t.Fatalf("row %d byte %d = %d, want %d", row, i, buf[row*n*8+i], row)
			}
		}
	}

	// Collective read: each rank reads a different interleaved stripe
	// and must see the written markers.
	var wg sync.WaitGroup
	errs := make(chan error, np)
	got := make([][]byte, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			row := int64(rank * np) // some row written by round 0..n
			sec := stripe.NewSection([]int64{row, 0}, []int64{1, n})
			got[rank] = make([]byte, n*8)
			errs <- g.ReadAll(ctx, rank, files[rank], sec, got[rank])
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < np; r++ {
		want := bytes.Repeat([]byte{byte(r * np)}, n*8)
		if !bytes.Equal(got[r], want) {
			t.Fatalf("rank %d collective read mismatch", r)
		}
	}
}

// TestCollectiveReducesRequests: an interleaved (CYCLIC) row pattern
// needs far fewer server requests collectively than independently.
func TestCollectiveReducesRequests(t *testing.T) {
	const np = 4
	const n = 64
	c := startCluster(t, 4)
	ctx := ctxT(t)
	files := openRankFiles(t, c, np, "/reqs", core.Hint{Level: stripe.LevelMultidim, Tile: []int64{16, 16}}, []int64{n, n})

	secFor := func(rank, round int) stripe.Section {
		return stripe.NewSection([]int64{int64(round*np + rank), 0}, []int64{1, n})
	}

	// Independent: each rank writes its interleaved rows directly.
	core.ResetStats()
	for round := 0; round < 4; round++ {
		for r := 0; r < np; r++ {
			sec := secFor(r, round)
			if err := files[r].WriteSection(ctx, sec, make([]byte, n*8)); err != nil {
				t.Fatal(err)
			}
		}
	}
	independent := core.ReadStats().Requests

	// Collective: same traffic through the group.
	g, _ := NewGroup(np)
	core.ResetStats()
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(rank, round int) {
				defer wg.Done()
				errs <- g.WriteAll(ctx, rank, files[rank], secFor(rank, round), make([]byte, n*8))
			}(r, round)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	collective := core.ReadStats().Requests

	if collective >= independent {
		t.Fatalf("collective used %d requests, independent %d; collective should be fewer", collective, independent)
	}
}

// TestCollectiveOverlappingWrites: overlapping regions resolve without
// corruption (some writer wins per byte).
func TestCollectiveOverlappingWrites(t *testing.T) {
	const np = 2
	c := startCluster(t, 2)
	ctx := ctxT(t)
	files := openRankFiles(t, c, np, "/olap", core.Hint{Level: stripe.LevelMultidim, Tile: []int64{4, 4}}, []int64{8, 8})

	g, _ := NewGroup(np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// Both ranks write the same full array.
			sec := stripe.FullSection([]int64{8, 8})
			data := bytes.Repeat([]byte{byte(rank + 1)}, 8*8*8)
			if err := g.WriteAll(ctx, rank, files[rank], sec, data); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()

	buf := make([]byte, 8*8*8)
	if err := files[0].ReadSection(ctx, stripe.FullSection([]int64{8, 8}), buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 1 && b != 2 {
			t.Fatalf("byte %d = %d, want 1 or 2", i, b)
		}
	}
}

// TestGroupErrors covers argument validation.
func TestGroupErrors(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Fatal("zero-size group accepted")
	}
	c := startCluster(t, 2)
	ctx := ctxT(t)
	files := openRankFiles(t, c, 1, "/e", core.Hint{Level: stripe.LevelMultidim, Tile: []int64{4, 4}}, []int64{8, 8})
	g, _ := NewGroup(1)

	sec := stripe.FullSection([]int64{8, 8})
	if err := g.WriteAll(ctx, 5, files[0], sec, make([]byte, 8*8*8)); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := g.WriteAll(ctx, 0, nil, sec, nil); err == nil {
		t.Fatal("nil file accepted")
	}
	if err := g.WriteAll(ctx, 0, files[0], sec, make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
	// Single-rank group degenerates to independent I/O.
	if err := g.WriteAll(ctx, 0, files[0], sec, make([]byte, 8*8*8)); err != nil {
		t.Fatal(err)
	}
}

// TestGroupContextCancel: a rank waiting on a collective that never
// completes unblocks on context cancellation.
func TestGroupContextCancel(t *testing.T) {
	c := startCluster(t, 2)
	files := openRankFiles(t, c, 2, "/cancel", core.Hint{Level: stripe.LevelMultidim, Tile: []int64{4, 4}}, []int64{8, 8})
	g, _ := NewGroup(2)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sec := stripe.FullSection([]int64{8, 8})
	// Only rank 0 enters; rank 1 never arrives.
	err := g.WriteAll(ctx, 0, files[0], sec, make([]byte, 8*8*8))
	if err == nil {
		t.Fatal("expected context error")
	}
}

// TestCollectiveArrayLevel works on array-level (chunked) files too.
func TestCollectiveArrayLevel(t *testing.T) {
	const np = 4
	c := startCluster(t, 4)
	ctx := ctxT(t)
	hint := core.Hint{Level: stripe.LevelArray,
		Pattern: []stripe.Dist{stripe.DistBlock, stripe.DistStar}, Grid: []int64{np, 1}}
	files := openRankFiles(t, c, np, "/arr", hint, []int64{32, 32})

	g, _ := NewGroup(np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sec := stripe.NewSection([]int64{int64(rank) * 8, 0}, []int64{8, 32})
			data := bytes.Repeat([]byte{byte(rank + 10)}, 8*32*8)
			if err := g.WriteAll(ctx, rank, files[rank], sec, data); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()

	buf := make([]byte, 8*32*8)
	for r := 0; r < np; r++ {
		sec := stripe.NewSection([]int64{int64(r) * 8, 0}, []int64{8, 32})
		if err := files[0].ReadSection(ctx, sec, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			if b != byte(r+10) {
				t.Fatalf("rank %d chunk byte %d = %d", r, i, b)
			}
		}
	}
}
