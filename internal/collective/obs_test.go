package collective

import (
	"sync"
	"testing"

	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

func TestCollectiveFaninMetrics(t *testing.T) {
	const np = 4
	c := startCluster(t, 4)
	ctx := ctxT(t)
	dims := []int64{64, 64}
	hint := core.Hint{Level: stripe.LevelMultidim, Tile: []int64{16, 16}}
	files := openRankFiles(t, c, np, "/fanin.dat", hint, dims)

	g, err := NewGroup(np)
	if err != nil {
		t.Fatal(err)
	}

	// Every rank writes one (BLOCK, *) row slab: 16 rows of 64 elems.
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sec := stripe.NewSection([]int64{int64(r) * 16, 0}, []int64{16, 64})
			buf := make([]byte, sec.Bytes(8))
			if err := g.WriteAll(ctx, r, files[r], sec, buf); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()

	s := g.Metrics().Snapshot()
	if got := s.Counters[MetricCalls]; got != 1 {
		t.Fatalf("collective_calls_total = %d, want 1", got)
	}
	// The whole 64x64 float64 array was staged: 32 KiB.
	if got := s.Counters[MetricStagedBytes]; got != 64*64*8 {
		t.Fatalf("collective_staged_bytes_total = %d, want %d", got, 64*64*8)
	}
	if got := s.Histograms[MetricFaninRanks]; got.Count != 1 || got.Max != np {
		t.Fatalf("fanin_ranks = %+v, want one sample of %d", got, np)
	}
	// 4x4 tile grid = 16 bricks, each a whole (16,64) slab covers 4.
	if got := s.Histograms[MetricFaninBricks]; got.Count != 1 || got.Max != 16 {
		t.Fatalf("fanin_bricks = %+v, want one sample of 16", got)
	}
	if got := s.Histograms[MetricFaninSegs]; got.Count != 1 || got.Max == 0 {
		t.Fatalf("fanin_segments = %+v", got)
	}
	if got := s.Histograms[MetricAggregators]; got.Count != 1 || got.Max == 0 || got.Max > np {
		t.Fatalf("aggregators = %+v", got)
	}
}
