package collective

import (
	"bytes"
	"sync"
	"testing"

	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

// TestCollectiveParallelDispatch runs the two-phase collective path on
// rank engines that dispatch their shipping phase in parallel: the
// interleaved-row exchange must still produce the exact array.
func TestCollectiveParallelDispatch(t *testing.T) {
	const np = 4
	const n = 32
	c := startCluster(t, 4)
	ctx := ctxT(t)

	admin, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	f0, err := admin.Create("/coll-par", 8, []int64{n, n},
		core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	f0.Close()

	files := make([]*core.File, np)
	for r := 0; r < np; r++ {
		fs, err := c.NewFS(r, core.Options{Combine: true, Stagger: true, ParallelDispatch: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fs.Close() })
		files[r], err = fs.Open("/coll-par")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func(f *core.File) func() { return func() { f.Close() } }(files[r]))
	}

	g, err := NewGroup(np)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < n/np; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				row := int64(round*np + rank)
				sec := stripe.NewSection([]int64{row, 0}, []int64{1, n})
				errs <- g.WriteAll(ctx, rank, files[rank], sec, bytes.Repeat([]byte{byte(row)}, n*8))
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	full := stripe.FullSection([]int64{n, n})
	buf := make([]byte, full.Bytes(8))
	if err := files[0].ReadSection(ctx, full, buf); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		for i := 0; i < n*8; i++ {
			if buf[row*n*8+i] != byte(row) {
				t.Fatalf("row %d byte %d = %d, want %d", row, i, buf[row*n*8+i], row)
			}
		}
	}
}
