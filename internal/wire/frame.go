// Wire protocol v2: tagged frames. Where v1 is strict one-exchange-
// per-connection request/response, v2 multiplexes many outstanding
// requests over one connection by prefixing every message with a small
// frame header carrying (kind, flags, tag, length). A request is a REQ
// frame (metadata: trace context, op, path, generation, extents,
// payload length) followed by its payload as contiguous DATA frames; a
// response is any number of DATA frames followed by a RESP frame that
// closes the tag (the trailer position lets the server stream brick
// bytes as subfile I/O completes and still report an error discovered
// mid-stream). Cancellation is a CANCEL frame naming the tag — the
// connection survives, unlike v1's conn-kill. Trace context rides in
// fixed frame fields (the flags byte and the first 16 bytes of the REQ
// body) instead of v1's best-effort payload trailer.
//
// Both versions share one port: a server sniffs the first byte of a
// connection (v1 magic 0xD9 vs v2 magic 0xDA) and speaks whichever
// protocol the client opened with. See DESIGN.md "Wire protocol v2".
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

const (
	// Magic2 is the first byte of every v2 frame. It differs from the
	// v1 magic so a server can version-sniff a connection's first byte.
	Magic2   = 0xDA
	version2 = 2
	// FrameHeaderLen is the fixed size of a v2 frame header: magic,
	// version, kind, flags, u32 tag, u32 body length.
	FrameHeaderLen = 12
)

// StreamChunk caps the body of one DATA frame a sender emits. Large
// payloads split into several frames, so a receiver never needs more
// than this much contiguous buffer per frame and a streaming server
// can interleave other tags' frames between chunks.
const StreamChunk = 256 << 10

// FrameKind enumerates the v2 frame types.
type FrameKind uint8

const (
	// FrameReq opens a tag: the body is request metadata, and
	// PayloadLen bytes of DATA frames for the same tag follow
	// contiguously.
	FrameReq FrameKind = 1
	// FrameResp closes a tag: the body is response metadata (error,
	// scalar, trace, total data length). Any DATA frames for the tag
	// precede it.
	FrameResp FrameKind = 2
	// FrameData carries a payload chunk for a tag.
	FrameData FrameKind = 3
	// FrameCancel abandons a tag. It has no body; a receiver that does
	// not know the tag ignores it.
	FrameCancel FrameKind = 4
)

// FlagSampled on a REQ frame marks the carried trace context sampled.
const FlagSampled = 0x01

// FrameHeader is the decoded v2 frame header.
type FrameHeader struct {
	Kind  FrameKind
	Flags uint8
	Tag   uint32
	Len   uint32
}

// putFrameHeader encodes h into b (len(b) >= FrameHeaderLen).
func putFrameHeader(b []byte, h FrameHeader) {
	b[0] = Magic2
	b[1] = version2
	b[2] = byte(h.Kind)
	b[3] = h.Flags
	binary.LittleEndian.PutUint32(b[4:8], h.Tag)
	binary.LittleEndian.PutUint32(b[8:12], h.Len)
}

// AppendFrameHeader appends an encoded frame header to dst.
func AppendFrameHeader(dst []byte, h FrameHeader) []byte {
	var b [FrameHeaderLen]byte
	putFrameHeader(b[:], h)
	return append(dst, b[:]...)
}

// WriteFrameHeader writes one encoded frame header.
func WriteFrameHeader(w io.Writer, h FrameHeader) error {
	var b [FrameHeaderLen]byte
	putFrameHeader(b[:], h)
	_, err := w.Write(b[:])
	return err
}

// ReadFrameHeader reads and validates one v2 frame header. A header
// whose magic, version or length is wrong is a framing error: the
// stream has lost sync (or the peer speaks another protocol) and the
// connection cannot be recovered. Unknown kinds are NOT rejected here —
// receivers skip them for forward compatibility.
func ReadFrameHeader(r io.Reader) (FrameHeader, error) {
	var b [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return FrameHeader{}, err
	}
	if b[0] != Magic2 || b[1] != version2 {
		return FrameHeader{}, fmt.Errorf("wire: bad v2 magic %#x version %d", b[0], b[1])
	}
	h := FrameHeader{
		Kind:  FrameKind(b[2]),
		Flags: b[3],
		Tag:   binary.LittleEndian.Uint32(b[4:8]),
		Len:   binary.LittleEndian.Uint32(b[8:12]),
	}
	if h.Len > MaxMessage {
		return FrameHeader{}, fmt.Errorf("wire: v2 frame of %d bytes exceeds limit", h.Len)
	}
	return h, nil
}

// DiscardFrameBody consumes and drops the body of a frame whose header
// was just read — how receivers skip unknown kinds and frames for
// unknown tags without losing stream sync.
func DiscardFrameBody(r io.Reader, h FrameHeader) error {
	if h.Len == 0 {
		return nil
	}
	_, err := io.CopyN(io.Discard, r, int64(h.Len))
	return err
}

// encodeRequestMetaV2 builds the REQ frame (header + metadata body) for
// req under tag. Body layout: u64 trace ID, u64 parent span ID, u8 op,
// u8 reserved, u16 path length, path, u64 generation, u32 extent count,
// 16 bytes per extent, u32 payload length. The sampled bit travels in
// the frame header's flags.
func encodeRequestMetaV2(tag uint32, req *Request) ([]byte, error) {
	if len(req.Path) > 0xFFFF {
		return nil, errors.New("wire: path too long")
	}
	dlen := req.PayloadLen()
	n := 8 + 8 + 1 + 1 + 2 + len(req.Path) + 8 + 4 + 16*len(req.Extents) + 4
	buf := make([]byte, FrameHeaderLen, FrameHeaderLen+n)
	var flags uint8
	if req.Sampled {
		flags |= FlagSampled
	}
	putFrameHeader(buf, FrameHeader{Kind: FrameReq, Flags: flags, Tag: tag, Len: uint32(n)})

	var tmp [16]byte
	binary.LittleEndian.PutUint64(tmp[:8], req.TraceID)
	binary.LittleEndian.PutUint64(tmp[8:16], req.SpanID)
	buf = append(buf, tmp[:16]...)
	buf = append(buf, byte(req.Op), 0)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(req.Path)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, req.Path...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(req.Gen))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(req.Extents)))
	buf = append(buf, tmp[:4]...)
	for _, e := range req.Extents {
		binary.LittleEndian.PutUint64(tmp[:8], uint64(e.Off))
		binary.LittleEndian.PutUint64(tmp[8:16], uint64(e.Len))
		buf = append(buf, tmp[:16]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(dlen))
	buf = append(buf, tmp[:4]...)
	return buf, nil
}

// appendDataFrames splits the payload slices into DATA frames of at
// most StreamChunk bytes each and appends (header, chunk pieces...) to
// bufs. Segment slices are referenced, never copied: the scatter
// payload reaches the socket through one vectored write, exactly like
// the v1 zero-copy path.
func appendDataFrames(bufs net.Buffers, tag uint32, segs [][]byte) net.Buffers {
	var pending [][]byte
	var pendingLen int
	flush := func() net.Buffers {
		if pendingLen == 0 {
			return bufs
		}
		hdr := make([]byte, FrameHeaderLen)
		putFrameHeader(hdr, FrameHeader{Kind: FrameData, Tag: tag, Len: uint32(pendingLen)})
		bufs = append(bufs, hdr)
		bufs = append(bufs, pending...)
		pending, pendingLen = nil, 0
		return bufs
	}
	for _, s := range segs {
		for len(s) > 0 {
			room := StreamChunk - pendingLen
			take := len(s)
			if take > room {
				take = room
			}
			pending = append(pending, s[:take])
			pendingLen += take
			s = s[take:]
			if pendingLen == StreamChunk {
				bufs = flush()
			}
		}
	}
	return flush()
}

// WriteRequestV2 frames and sends a request under tag: one REQ frame
// followed by the payload as contiguous DATA frames, flushed in a
// single vectored write.
func WriteRequestV2(w io.Writer, tag uint32, req *Request) error {
	meta, err := encodeRequestMetaV2(tag, req)
	if err != nil {
		return err
	}
	bufs := net.Buffers{meta}
	if req.Segments != nil {
		bufs = appendDataFrames(bufs, tag, req.Segments)
	} else if len(req.Data) > 0 {
		bufs = appendDataFrames(bufs, tag, [][]byte{req.Data})
	}
	_, err = bufs.WriteTo(w)
	return err
}

// ReadRequestV2 decodes a request whose REQ frame header h was just
// read from r, then consumes its payload from the contiguous DATA
// frames that follow. alloc, when non-nil, supplies the payload buffer
// (servers pass their pooled-buffer getter); the returned request's
// Data aliases it.
func ReadRequestV2(r io.Reader, h FrameHeader, alloc func(int64) []byte) (*Request, error) {
	if h.Kind != FrameReq {
		return nil, fmt.Errorf("wire: frame kind %d is not a request", h.Kind)
	}
	body := make([]byte, h.Len)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	req := &Request{}
	p := 0
	get := func(k int) ([]byte, error) {
		if p+k > len(body) {
			return nil, errors.New("wire: truncated v2 request")
		}
		b := body[p : p+k]
		p += k
		return b, nil
	}
	b, err := get(16)
	if err != nil {
		return nil, err
	}
	req.TraceID = binary.LittleEndian.Uint64(b[:8])
	req.SpanID = binary.LittleEndian.Uint64(b[8:16])
	if req.TraceID != 0 {
		req.Sampled = h.Flags&FlagSampled != 0
	} else {
		req.SpanID = 0
	}
	b, err = get(2)
	if err != nil {
		return nil, err
	}
	req.Op = Op(b[0])
	b, err = get(2)
	if err != nil {
		return nil, err
	}
	plen := int(binary.LittleEndian.Uint16(b))
	b, err = get(plen)
	if err != nil {
		return nil, err
	}
	req.Path = string(b)
	b, err = get(8)
	if err != nil {
		return nil, err
	}
	req.Gen = int64(binary.LittleEndian.Uint64(b))
	b, err = get(4)
	if err != nil {
		return nil, err
	}
	ne := int(binary.LittleEndian.Uint32(b))
	if ne > 1<<24 {
		return nil, fmt.Errorf("wire: %d extents exceeds limit", ne)
	}
	req.Extents = make([]Extent, ne)
	for i := 0; i < ne; i++ {
		b, err = get(16)
		if err != nil {
			return nil, err
		}
		req.Extents[i].Off = int64(binary.LittleEndian.Uint64(b[:8]))
		req.Extents[i].Len = int64(binary.LittleEndian.Uint64(b[8:16]))
	}
	b, err = get(4)
	if err != nil {
		return nil, err
	}
	dlen := int64(binary.LittleEndian.Uint32(b))
	if dlen > MaxMessage {
		return nil, fmt.Errorf("wire: v2 payload of %d bytes exceeds limit", dlen)
	}
	if p != len(body) {
		return nil, errors.New("wire: trailing bytes in v2 request metadata")
	}
	if dlen == 0 {
		return req, nil
	}
	var buf []byte
	if alloc != nil {
		buf = alloc(dlen)
	} else {
		buf = make([]byte, dlen)
	}
	pos := int64(0)
	for pos < dlen {
		dh, err := ReadFrameHeader(r)
		if err != nil {
			return nil, err
		}
		if dh.Kind != FrameData || dh.Tag != h.Tag {
			return nil, fmt.Errorf("wire: expected DATA frame for tag %d, got kind %d tag %d", h.Tag, dh.Kind, dh.Tag)
		}
		if dh.Len == 0 || int64(dh.Len) > dlen-pos {
			return nil, fmt.Errorf("wire: DATA frame of %d bytes overruns %d-byte payload", dh.Len, dlen)
		}
		if _, err := io.ReadFull(r, buf[pos:pos+int64(dh.Len)]); err != nil {
			return nil, err
		}
		pos += int64(dh.Len)
	}
	req.Data = buf
	return req, nil
}

// EncodeResponseMetaV2 builds the body of a RESP frame: u16 error
// length, error, u64 scalar, u32 total data length (the sum of the
// DATA frames that preceded this RESP), u32 trace length, trace
// bytes, then optionally u32 delta length and the gossip-delta bytes
// (the section is omitted entirely when there is no delta, keeping
// the original encoding byte-identical).
func EncodeResponseMetaV2(resp *Response, dataLen int64) []byte {
	errStr := resp.Err
	if len(errStr) > 0xFFFF {
		errStr = errStr[:0xFFFF]
	}
	n := 2 + len(errStr) + 8 + 4 + 4 + len(resp.Trace) + 4 + len(resp.Delta)
	buf := make([]byte, 0, n)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(errStr)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, errStr...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(resp.N))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(dataLen))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(resp.Trace)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, resp.Trace...)
	if len(resp.Delta) > 0 {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(resp.Delta)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, resp.Delta...)
	}
	return buf
}

// DecodeResponseMetaV2 parses a RESP frame body. dataLen is the total
// payload the sender streamed as DATA frames before the RESP; callers
// compare it against what they accumulated (unless Err is set — an
// error reported mid-stream abandons whatever data preceded it).
func DecodeResponseMetaV2(body []byte) (resp *Response, dataLen int64, err error) {
	resp = &Response{}
	p := 0
	get := func(k int) ([]byte, error) {
		if p+k > len(body) {
			return nil, errors.New("wire: truncated v2 response")
		}
		b := body[p : p+k]
		p += k
		return b, nil
	}
	b, err := get(2)
	if err != nil {
		return nil, 0, err
	}
	elen := int(binary.LittleEndian.Uint16(b))
	b, err = get(elen)
	if err != nil {
		return nil, 0, err
	}
	resp.Err = string(b)
	b, err = get(8)
	if err != nil {
		return nil, 0, err
	}
	resp.N = int64(binary.LittleEndian.Uint64(b))
	b, err = get(4)
	if err != nil {
		return nil, 0, err
	}
	dataLen = int64(binary.LittleEndian.Uint32(b))
	b, err = get(4)
	if err != nil {
		return nil, 0, err
	}
	tlen := int(binary.LittleEndian.Uint32(b))
	b, err = get(tlen)
	if err != nil {
		return nil, 0, err
	}
	if tlen > 0 {
		resp.Trace = b
	}
	// Optional delta section: u32 length + bytes, present only when it
	// fits the remaining body exactly. Any other remainder is ignored
	// for forward compatibility — the delta, like the trace, is
	// best-effort and must never fail the response that carries it.
	if rest := len(body) - p; rest >= 4 {
		dlen := int(binary.LittleEndian.Uint32(body[p : p+4]))
		if dlen > 0 && 4+dlen == rest {
			resp.Delta = body[p+4:]
		}
	}
	return resp, dataLen, nil
}

// WriteDataFrame sends one DATA frame for tag with a vectored write
// (the chunk is referenced, not copied). Callers chunk at StreamChunk;
// an empty chunk writes nothing.
func WriteDataFrame(w io.Writer, tag uint32, chunk []byte) error {
	if len(chunk) == 0 {
		return nil
	}
	hdr := make([]byte, FrameHeaderLen)
	putFrameHeader(hdr, FrameHeader{Kind: FrameData, Tag: tag, Len: uint32(len(chunk))})
	bufs := net.Buffers{hdr, chunk}
	_, err := bufs.WriteTo(w)
	return err
}

// WriteResponseV2 frames and sends a response under tag: resp.Data (if
// any) as DATA frames, then the RESP frame whose data length covers
// both streamed (bytes the caller already emitted as DATA frames) and
// resp.Data.
func WriteResponseV2(w io.Writer, tag uint32, resp *Response, streamed int64) error {
	bufs := net.Buffers{}
	if len(resp.Data) > 0 {
		bufs = appendDataFrames(bufs, tag, [][]byte{resp.Data})
	}
	body := EncodeResponseMetaV2(resp, streamed+int64(len(resp.Data)))
	hdr := make([]byte, FrameHeaderLen)
	putFrameHeader(hdr, FrameHeader{Kind: FrameResp, Tag: tag, Len: uint32(len(body))})
	bufs = append(bufs, hdr, body)
	_, err := bufs.WriteTo(w)
	return err
}

// WriteCancelFrame sends a CANCEL frame for tag.
func WriteCancelFrame(w io.Writer, tag uint32) error {
	return WriteFrameHeader(w, FrameHeader{Kind: FrameCancel, Tag: tag})
}

// ReadResponseV2Into reads DATA frames and the closing RESP frame for
// tag from a connection carrying exactly one exchange (pull paths and
// tests; the client mux demultiplexes interleaved tags itself). Data
// accumulates into scratch when it fits, like ReadResponseInto.
// Unknown frame kinds are skipped; a frame for a different tag is a
// protocol error here, since nothing else can be in flight.
func ReadResponseV2Into(r io.Reader, tag uint32, scratch []byte) (*Response, error) {
	var data []byte
	if scratch != nil {
		data = scratch[:0]
	}
	for {
		h, err := ReadFrameHeader(r)
		if err != nil {
			return nil, err
		}
		switch h.Kind {
		case FrameData:
			if h.Tag != tag {
				return nil, fmt.Errorf("wire: DATA for unexpected tag %d", h.Tag)
			}
			data, err = readInto(r, data, int(h.Len))
			if err != nil {
				return nil, err
			}
		case FrameResp:
			if h.Tag != tag {
				return nil, fmt.Errorf("wire: RESP for unexpected tag %d", h.Tag)
			}
			body := make([]byte, h.Len)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, err
			}
			resp, dataLen, err := DecodeResponseMetaV2(body)
			if err != nil {
				return nil, err
			}
			if resp.Err != "" {
				return resp, nil
			}
			if dataLen != int64(len(data)) {
				return nil, fmt.Errorf("wire: response announced %d data bytes, received %d", dataLen, len(data))
			}
			if len(data) > 0 {
				resp.Data = data
			}
			return resp, nil
		default:
			// Unknown kinds (and stray CANCELs) are skipped for forward
			// compatibility — they must never fail the in-flight exchange.
			if err := DiscardFrameBody(r, h); err != nil {
				return nil, err
			}
		}
	}
}

// readInto appends n bytes from r to data, growing it as needed while
// reusing its backing array (the scratch buffer) when capacity allows.
func readInto(r io.Reader, data []byte, n int) ([]byte, error) {
	off := len(data)
	if off+n <= cap(data) {
		data = data[:off+n]
	} else {
		grown := make([]byte, off+n)
		copy(grown, data)
		data = grown
	}
	if _, err := io.ReadFull(r, data[off:]); err != nil {
		return nil, err
	}
	return data, nil
}
