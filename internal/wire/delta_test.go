package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The gossip server-table delta piggybacks on responses the server
// was sending anyway (DESIGN.md §14). These tests pin its carrying
// contract, mirroring the trace-trailer pinning: a well-formed delta
// roundtrips on both wire versions, and a truncated, corrupt or
// oversized footer silently yields a delta-less response — it must
// never fail the RPC that carried it.

func deltaBytes() []byte {
	// Opaque at the wire layer; gossip.DecodeDelta interprets it.
	return []byte("DPgd\x01----delta-payload----")
}

// TestResponseDeltaRoundtripV1 pins the v1 footer: Data, Trace and
// Delta all survive together, and each is independent of the others.
func TestResponseDeltaRoundtripV1(t *testing.T) {
	cases := []struct {
		name string
		resp Response
	}{
		{"delta alone", Response{N: 1, Delta: deltaBytes()}},
		{"delta with data", Response{Data: []byte("payload"), Delta: deltaBytes()}},
		{"delta with trace", Response{Trace: []byte{9, 9, 9}, Delta: deltaBytes()}},
		{"delta with data and trace", Response{Data: []byte("d"), Trace: []byte{1, 2}, Delta: deltaBytes()}},
		{"delta with error", Response{Err: "boom", Delta: deltaBytes()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ReadResponse(bytes.NewReader(encodeResponse(t, &tc.resp)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Delta, tc.resp.Delta) {
				t.Fatalf("delta = %q, want %q", got.Delta, tc.resp.Delta)
			}
			if !bytes.Equal(got.Data, tc.resp.Data) || !bytes.Equal(got.Trace, tc.resp.Trace) ||
				got.Err != tc.resp.Err {
				t.Fatalf("carrying response corrupted: %+v", got)
			}
		})
	}
}

// TestResponseDeltaFooterBestEffortV1 pins the failure half of the
// contract: malformed footers degrade to trailer bytes, never to an
// RPC error.
func TestResponseDeltaFooterBestEffortV1(t *testing.T) {
	base := &Response{Data: []byte("payload"), Trace: []byte{5, 5}}

	grow := func(frame []byte, extra []byte) []byte {
		out := append(append([]byte(nil), frame...), extra...)
		binary.LittleEndian.PutUint32(out[4:8],
			binary.LittleEndian.Uint32(out[4:8])+uint32(len(extra)))
		return out
	}

	t.Run("magic with oversized length", func(t *testing.T) {
		foot := make([]byte, deltaFooterLen)
		binary.LittleEndian.PutUint32(foot[0:4], 1<<20) // claims more than the body holds
		copy(foot[4:8], deltaFooterMagic[:])
		got, err := ReadResponse(bytes.NewReader(grow(encodeResponse(t, base), foot)))
		if err != nil {
			t.Fatalf("oversized footer failed the response: %v", err)
		}
		if got.Delta != nil {
			t.Fatalf("oversized footer produced a delta: %q", got.Delta)
		}
		if !bytes.Equal(got.Data, base.Data) {
			t.Fatal("payload corrupted")
		}
	})

	t.Run("magic with zero length", func(t *testing.T) {
		foot := make([]byte, deltaFooterLen)
		copy(foot[4:8], deltaFooterMagic[:])
		got, err := ReadResponse(bytes.NewReader(grow(encodeResponse(t, base), foot)))
		if err != nil || got.Delta != nil {
			t.Fatalf("zero-length footer: delta=%q err=%v", got.Delta, err)
		}
	})

	t.Run("truncated footer", func(t *testing.T) {
		// The delta plus only half the footer: the tail no longer ends
		// with the magic, so everything stays trailer bytes.
		partial := append(deltaBytes(), deltaFooterMagic[0], deltaFooterMagic[1])
		got, err := ReadResponse(bytes.NewReader(grow(encodeResponse(t, base), partial)))
		if err != nil {
			t.Fatalf("truncated footer failed the response: %v", err)
		}
		if got.Delta != nil {
			t.Fatal("truncated footer produced a delta")
		}
	})

	t.Run("trace alone is never misread", func(t *testing.T) {
		resp := &Response{Data: []byte("d"), Trace: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}}
		got, err := ReadResponse(bytes.NewReader(encodeResponse(t, resp)))
		if err != nil || got.Delta != nil || !bytes.Equal(got.Trace, resp.Trace) {
			t.Fatalf("plain trace misparsed: %+v (%v)", got, err)
		}
	})
}

// TestResponseDeltaRoundtripV2 pins the v2 section: the delta rides
// the RESP metadata and coexists with streamed data and the trace.
func TestResponseDeltaRoundtripV2(t *testing.T) {
	var buf bytes.Buffer
	resp := &Response{N: 7, Data: []byte("payload"), Trace: []byte{3, 3}, Delta: deltaBytes()}
	if err := WriteResponseV2(&buf, 11, resp, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponseV2Into(bytes.NewReader(buf.Bytes()), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Delta, resp.Delta) {
		t.Fatalf("delta = %q, want %q", got.Delta, resp.Delta)
	}
	if !bytes.Equal(got.Data, resp.Data) || !bytes.Equal(got.Trace, resp.Trace) || got.N != resp.N {
		t.Fatalf("carrying response corrupted: %+v", got)
	}
}

// TestResponseDeltaBestEffortV2 pins that trailing RESP-metadata
// bytes that do not form an exact delta section are ignored, not an
// error — the forward-compatibility contract that lets older
// responses and future extensions coexist.
func TestResponseDeltaBestEffortV2(t *testing.T) {
	resp := &Response{N: 7, Trace: []byte{3, 3}}
	cases := []struct {
		name  string
		extra []byte
	}{
		{"short garbage", []byte{0xAB}},
		{"length without body", []byte{0xFF, 0xFF, 0x00, 0x00}},
		{"length overrunning body", append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, deltaBytes()...)},
		{"zero length with body", append([]byte{0, 0, 0, 0}, 'x', 'y')},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := append(EncodeResponseMetaV2(resp, 0), tc.extra...)
			got, _, err := DecodeResponseMetaV2(body)
			if err != nil {
				t.Fatalf("trailing bytes failed the response: %v", err)
			}
			if got.Delta != nil {
				t.Fatalf("trailing bytes produced a delta: %q", got.Delta)
			}
			if got.N != resp.N || !bytes.Equal(got.Trace, resp.Trace) {
				t.Fatalf("carrying response corrupted: %+v", got)
			}
		})
	}

	t.Run("truncation inside the delta still errors", func(t *testing.T) {
		full := EncodeResponseMetaV2(&Response{N: 7, Delta: deltaBytes()}, 0)
		// Cutting the body mid-delta invalidates the section (length no
		// longer matches) but must not fail the decode.
		got, _, err := DecodeResponseMetaV2(full[:len(full)-3])
		if err != nil {
			t.Fatalf("truncated delta failed the response: %v", err)
		}
		if got.Delta != nil {
			t.Fatal("truncated delta section still surfaced")
		}
	})
}
