package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestFrameHeaderRoundtrip(t *testing.T) {
	cases := []FrameHeader{
		{Kind: FrameReq, Flags: FlagSampled, Tag: 1, Len: 0},
		{Kind: FrameResp, Tag: 0xFFFFFFFF, Len: MaxMessage},
		{Kind: FrameData, Tag: 42, Len: StreamChunk},
		{Kind: FrameCancel, Tag: 7},
		{Kind: FrameKind(200), Flags: 0xFF, Tag: 9, Len: 17}, // unknown kind passes header validation
	}
	for _, h := range cases {
		var buf bytes.Buffer
		if err := WriteFrameHeader(&buf, h); err != nil {
			t.Fatalf("write %+v: %v", h, err)
		}
		if buf.Len() != FrameHeaderLen {
			t.Fatalf("header is %d bytes, want %d", buf.Len(), FrameHeaderLen)
		}
		got, err := ReadFrameHeader(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("roundtrip: got %+v want %+v", got, h)
		}
	}
}

func TestRequestV2Roundtrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing, Path: ""},
		{Op: OpRead, Path: "a/b", Gen: 3, Extents: []Extent{{0, 100}, {200, 50}}},
		{Op: OpWrite, Path: "w", Gen: 1, Extents: []Extent{{0, 5}}, Data: []byte("hello")},
		{Op: OpWrite, Path: "seg", Extents: []Extent{{0, 6}},
			Segments: [][]byte{[]byte("ab"), nil, []byte("cdef")}},
		{Op: OpRead, Path: "traced", TraceID: 7, SpanID: 9, Sampled: true},
		{Op: OpWrite, Path: "big", Extents: []Extent{{0, StreamChunk*2 + 17}},
			Data: bytes.Repeat([]byte{0xAB}, StreamChunk*2+17)},
	}
	for _, req := range reqs {
		var buf bytes.Buffer
		if err := WriteRequestV2(&buf, 5, req); err != nil {
			t.Fatalf("write %s: %v", req.Op, err)
		}
		h, err := ReadFrameHeader(&buf)
		if err != nil {
			t.Fatalf("header %s: %v", req.Op, err)
		}
		if h.Kind != FrameReq || h.Tag != 5 {
			t.Fatalf("got kind %d tag %d", h.Kind, h.Tag)
		}
		got, err := ReadRequestV2(&buf, h, nil)
		if err != nil {
			t.Fatalf("read %s: %v", req.Op, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("%s: %d bytes left over", req.Op, buf.Len())
		}
		want := normalizeRequest(req)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("roundtrip %s:\n got %+v\nwant %+v", req.Op, got, want)
		}
	}
}

// normalizeRequest maps a sender-side request to the form a receiver
// sees: Segments collapse into Data, empty Data is nil.
func normalizeRequest(req *Request) *Request {
	out := *req
	if req.Segments != nil {
		var data []byte
		for _, s := range req.Segments {
			data = append(data, s...)
		}
		out.Data = data
		out.Segments = nil
	}
	if len(out.Data) == 0 {
		out.Data = nil
	}
	if out.Extents == nil {
		out.Extents = []Extent{}
	}
	if out.TraceID == 0 {
		out.SpanID = 0
		out.Sampled = false
	}
	return &out
}

func TestResponseV2Roundtrip(t *testing.T) {
	resps := []*Response{
		{},
		{N: 42},
		{Err: "boom", N: -1},
		{Data: []byte("payload"), N: 7},
		{Data: bytes.Repeat([]byte{0xCD}, StreamChunk+3), N: 1},
		{Data: []byte("x"), Trace: []byte("spanbytes")},
	}
	for i, resp := range resps {
		var buf bytes.Buffer
		if err := WriteResponseV2(&buf, 9, resp, 0); err != nil {
			t.Fatalf("case %d write: %v", i, err)
		}
		got, err := ReadResponseV2Into(&buf, 9, nil)
		if err != nil {
			t.Fatalf("case %d read: %v", i, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("case %d: %d bytes left over", i, buf.Len())
		}
		want := *resp
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("case %d roundtrip:\n got %+v\nwant %+v", i, got, &want)
		}
	}
}

// TestResponseV2StreamedTrailer exercises the server streaming shape:
// DATA frames emitted chunk by chunk, then the RESP trailer accounting
// for all of them.
func TestResponseV2StreamedTrailer(t *testing.T) {
	var buf bytes.Buffer
	chunks := [][]byte{[]byte("first-"), []byte("second-"), []byte("third")}
	var total int64
	for _, c := range chunks {
		if err := WriteDataFrame(&buf, 3, c); err != nil {
			t.Fatal(err)
		}
		total += int64(len(c))
	}
	if err := WriteResponseV2(&buf, 3, &Response{N: total}, total); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponseV2Into(&buf, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "first-second-third" {
		t.Fatalf("got data %q", resp.Data)
	}
}

// TestResponseV2MidStreamError checks that an error RESP after partial
// DATA frames is reported as the error, discarding the partial data —
// the v2 replacement for v1's kill-the-conn on mid-read failures.
func TestResponseV2MidStreamError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataFrame(&buf, 3, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := WriteResponseV2(&buf, 3, &Response{Err: "disk gone"}, 7); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponseV2Into(&buf, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "disk gone" {
		t.Fatalf("got err %q", resp.Err)
	}
	if resp.Data != nil {
		t.Fatalf("partial data must be discarded, got %q", resp.Data)
	}
}

// randomRequest builds a random but valid request for the quickcheck.
func randomRequest(rng *rand.Rand) *Request {
	ops := []Op{OpPing, OpRead, OpWrite, OpRemove, OpStat, OpUsage, OpTruncate, OpRename, OpCopy}
	req := &Request{
		Op:   ops[rng.Intn(len(ops))],
		Path: randString(rng, rng.Intn(64)),
		Gen:  rng.Int63n(1 << 40),
	}
	for i := rng.Intn(5); i > 0; i-- {
		req.Extents = append(req.Extents, Extent{Off: rng.Int63n(1 << 30), Len: rng.Int63n(1 << 20)})
	}
	if rng.Intn(2) == 0 {
		data := make([]byte, rng.Intn(4096))
		rng.Read(data)
		if rng.Intn(2) == 0 && len(data) > 0 {
			// scatter form: split into random segments
			var segs [][]byte
			for len(data) > 0 {
				k := rng.Intn(len(data)) + 1
				segs = append(segs, data[:k])
				data = data[k:]
			}
			req.Segments = segs
		} else if len(data) > 0 {
			req.Data = data
		}
	}
	if rng.Intn(2) == 0 {
		req.TraceID = rng.Uint64() | 1
		req.SpanID = rng.Uint64()
		req.Sampled = rng.Intn(2) == 0
	}
	return req
}

func randString(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz/._-0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// TestWireV1V2Quickcheck is the v1≡v2 equivalence gate: random
// requests and responses framed through both protocol versions must
// decode to identical structures, so flipping -wire-v2 can never
// change what a server sees or a client gets back.
func TestWireV1V2Quickcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		req := randomRequest(rng)

		var b1 bytes.Buffer
		if err := WriteRequest(&b1, req); err != nil {
			t.Fatalf("iter %d v1 write: %v", i, err)
		}
		got1, err := ReadRequest(&b1)
		if err != nil {
			t.Fatalf("iter %d v1 read: %v", i, err)
		}

		var b2 bytes.Buffer
		if err := WriteRequestV2(&b2, uint32(i+1), req); err != nil {
			t.Fatalf("iter %d v2 write: %v", i, err)
		}
		h, err := ReadFrameHeader(&b2)
		if err != nil {
			t.Fatalf("iter %d v2 header: %v", i, err)
		}
		got2, err := ReadRequestV2(&b2, h, nil)
		if err != nil {
			t.Fatalf("iter %d v2 read: %v", i, err)
		}

		n1, n2 := canonRequest(got1), canonRequest(got2)
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("iter %d request divergence:\n v1 %+v\n v2 %+v", i, n1, n2)
		}
	}
	for i := 0; i < 500; i++ {
		resp := &Response{N: rng.Int63n(1 << 40)}
		if rng.Intn(3) == 0 {
			// Error and payload are mutually exclusive: no server op
			// sends both, clients ignore Data when Err is set, and v2
			// formalizes that by discarding any partial stream that
			// preceded an error RESP (TestResponseV2MidStreamError).
			resp.Err = randString(rng, rng.Intn(32))
		} else if rng.Intn(2) == 0 {
			resp.Data = make([]byte, rng.Intn(4096))
			rng.Read(resp.Data)
		}
		if rng.Intn(3) == 0 {
			resp.Trace = make([]byte, rng.Intn(64)+1)
			rng.Read(resp.Trace)
		}

		var b1 bytes.Buffer
		if err := WriteResponse(&b1, resp); err != nil {
			t.Fatalf("iter %d v1 write: %v", i, err)
		}
		got1, err := ReadResponse(&b1)
		if err != nil {
			t.Fatalf("iter %d v1 read: %v", i, err)
		}

		var b2 bytes.Buffer
		if err := WriteResponseV2(&b2, uint32(i+1), resp, 0); err != nil {
			t.Fatalf("iter %d v2 write: %v", i, err)
		}
		got2, err := ReadResponseV2Into(&b2, uint32(i+1), nil)
		if err != nil {
			t.Fatalf("iter %d v2 read: %v", i, err)
		}

		c1, c2 := canonResponse(got1), canonResponse(got2)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("iter %d response divergence:\n v1 %+v\n v2 %+v", i, c1, c2)
		}
	}
}

// canonRequest normalizes decoder-representation differences that are
// semantically identical (nil vs empty slices, aliased buffers).
func canonRequest(req *Request) *Request {
	out := *req
	if len(out.Data) == 0 {
		out.Data = nil
	} else {
		out.Data = append([]byte(nil), out.Data...)
	}
	if len(out.Extents) == 0 {
		out.Extents = nil
	}
	return &out
}

func canonResponse(resp *Response) *Response {
	out := *resp
	if len(out.Data) == 0 {
		out.Data = nil
	} else {
		out.Data = append([]byte(nil), out.Data...)
	}
	if len(out.Trace) == 0 {
		out.Trace = nil
	} else {
		out.Trace = append([]byte(nil), out.Trace...)
	}
	return &out
}

// TestRequestV2ScratchAlloc verifies the alloc hook supplies the
// payload buffer (the server's pooled-read-buffer path).
func TestRequestV2ScratchAlloc(t *testing.T) {
	req := &Request{Op: OpWrite, Path: "p", Extents: []Extent{{0, 4}}, Data: []byte("abcd")}
	var buf bytes.Buffer
	if err := WriteRequestV2(&buf, 1, req); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFrameHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]byte, 128)
	got, err := ReadRequestV2(&buf, h, func(n int64) []byte { return pool[:n] })
	if err != nil {
		t.Fatal(err)
	}
	if &got.Data[0] != &pool[0] {
		t.Fatal("payload not read into the alloc-supplied buffer")
	}
	if string(got.Data) != "abcd" {
		t.Fatalf("got %q", got.Data)
	}
}
