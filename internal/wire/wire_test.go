package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestRoundtrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing},
		{Op: OpRead, Path: "/home/x/f", Extents: []Extent{{0, 100}, {500, 28}}},
		{Op: OpWrite, Path: "sub", Extents: []Extent{{8, 4}}, Data: []byte{1, 2, 3, 4}},
		{Op: OpRemove, Path: "a/b/c"},
		{Op: OpStat, Path: "zz"},
		{Op: OpUsage},
		{Op: OpTruncate, Path: "t", Extents: []Extent{{0, 4096}}},
	}
	for _, req := range reqs {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("%v: %v", req.Op, err)
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("%v: %v", req.Op, err)
		}
		if got.Op != req.Op || got.Path != req.Path {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, req)
		}
		if len(got.Extents) != len(req.Extents) {
			t.Fatalf("extents: %v vs %v", got.Extents, req.Extents)
		}
		for i := range req.Extents {
			if got.Extents[i] != req.Extents[i] {
				t.Fatalf("extent %d: %v vs %v", i, got.Extents[i], req.Extents[i])
			}
		}
		if !bytes.Equal(got.Data, req.Data) {
			t.Fatalf("data mismatch")
		}
	}
}

func TestResponseRoundtrip(t *testing.T) {
	resps := []*Response{
		{},
		{Err: "boom"},
		{Data: []byte("payload"), N: 7},
		{N: -1},
	}
	for _, resp := range resps {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp); err != nil {
			t.Fatal(err)
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Err != resp.Err || got.N != resp.N || !bytes.Equal(got.Data, resp.Data) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, resp)
		}
	}
}

func TestPipelinedMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteRequest(&buf, &Request{Op: OpRead, Path: "p", Extents: []Extent{{int64(i), 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		req, err := ReadRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if req.Extents[0].Off != int64(i) {
			t.Fatalf("message %d out of order", i)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadFrames(t *testing.T) {
	// Bad magic.
	if _, err := ReadRequest(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadResponse(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpRead, Path: "p", Extents: []Extent{{0, 8}}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadRequest(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Error("truncated request accepted")
	}
	// Oversized declared length.
	hdr := []byte{0xD9, 1, byte(OpPing), 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadRequest(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized request accepted")
	}
	// Trailing junk inside the frame is tolerated (it is where the
	// optional trace trailer lives; tracing is best-effort) but must
	// not produce trace context unless it is an exact, non-zero
	// trailer.
	var buf2 bytes.Buffer
	if err := WriteRequest(&buf2, &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	raw := buf2.Bytes()
	raw = append(raw, 0xAA) // junk beyond frame: fine for first read
	raw[4] = raw[4] + 1     // grow declared length to swallow junk
	req, err := ReadRequest(bytes.NewReader(raw))
	if err != nil {
		t.Errorf("frame with junk trailer rejected: %v", err)
	} else if req.TraceID != 0 || req.Sampled {
		t.Errorf("junk trailer produced trace context: %+v", req)
	}
}

func TestDataBytes(t *testing.T) {
	if n := DataBytes(nil); n != 0 {
		t.Errorf("DataBytes(nil) = %d", n)
	}
	if n := DataBytes([]Extent{{0, 5}, {9, 7}}); n != 12 {
		t.Errorf("DataBytes = %d", n)
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpPing: "PING", OpRead: "READ", OpWrite: "WRITE", OpRemove: "REMOVE",
		OpStat: "STAT", OpUsage: "USAGE", OpTruncate: "TRUNCATE", Op(99): "Op(99)"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q", op, op.String())
		}
	}
}

// Property: any request with consistent extents/data survives a
// roundtrip byte-exactly.
func TestQuickRequestRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := &Request{
			Op:   Op(1 + r.Intn(7)),
			Path: randPath(r),
		}
		ne := r.Intn(6)
		var total int64
		for i := 0; i < ne; i++ {
			e := Extent{Off: int64(r.Intn(1 << 20)), Len: int64(r.Intn(4096))}
			req.Extents = append(req.Extents, e)
			total += e.Len
		}
		if req.Op == OpWrite {
			req.Data = make([]byte, total)
			r.Read(req.Data)
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			return false
		}
		if got.Op != req.Op || got.Path != req.Path || !bytes.Equal(got.Data, req.Data) {
			return false
		}
		return reflect.DeepEqual(got.Extents, req.Extents) ||
			(len(got.Extents) == 0 && len(req.Extents) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randPath(r *rand.Rand) string {
	n := r.Intn(40)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// Property: the scatter (Segments) form of a write request produces
// byte-identical frames to the packed (Data) form, for any split of
// the payload into pieces.
func TestQuickSegmentsMatchData(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := &Request{Op: OpWrite, Path: randPath(r)}
		ne := 1 + r.Intn(5)
		var total int64
		for i := 0; i < ne; i++ {
			e := Extent{Off: int64(r.Intn(1 << 20)), Len: int64(1 + r.Intn(2048))}
			req.Extents = append(req.Extents, e)
			total += e.Len
		}
		data := make([]byte, total)
		r.Read(data)

		packed := &Request{Op: req.Op, Path: req.Path, Extents: req.Extents, Data: data}
		var want bytes.Buffer
		if err := WriteRequest(&want, packed); err != nil {
			return false
		}

		// Split the payload at random points (empty pieces allowed).
		scattered := &Request{Op: req.Op, Path: req.Path, Extents: req.Extents, Segments: [][]byte{}}
		for off := int64(0); off < total; {
			n := int64(1 + r.Intn(1024))
			if off+n > total {
				n = total - off
			}
			scattered.Segments = append(scattered.Segments, data[off:off+n])
			off += n
		}
		if r.Intn(2) == 0 {
			scattered.Segments = append(scattered.Segments, nil) // empty piece
		}
		if scattered.PayloadLen() != int(total) {
			return false
		}
		var got bytes.Buffer
		if err := WriteRequest(&got, scattered); err != nil {
			return false
		}
		return bytes.Equal(got.Bytes(), want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsRoundtripToReceiverData(t *testing.T) {
	payload := []byte("scatter-gather payload crossing pieces")
	req := &Request{
		Op:   OpWrite,
		Path: "/f",
		Extents: []Extent{
			{Off: 0, Len: int64(len(payload))},
		},
		Segments: [][]byte{payload[:7], payload[7:20], payload[20:]},
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, payload) {
		t.Fatalf("receiver data = %q, want %q", got.Data, payload)
	}
	if got.Segments != nil {
		t.Fatal("Segments is a sender-side form; receivers must see Data")
	}
}

func TestReadResponseIntoScratch(t *testing.T) {
	resp := &Response{Data: bytes.Repeat([]byte("x"), 1000), N: 1000}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	// Big enough scratch: the body (and thus Data) lands inside it.
	scratch := make([]byte, 0, 1000+RespOverhead)
	got, err := ReadResponseInto(bytes.NewReader(frame), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, resp.Data) || got.N != resp.N {
		t.Fatal("scratch roundtrip mismatch")
	}
	if len(got.Data) > 0 && &got.Data[0] != &scratch[:1][0] {
		// Data must alias scratch: it starts RespOverhead-2-8... the
		// data sits after the 14-byte prefix inside scratch.
		same := false
		s := scratch[:cap(scratch)]
		for i := range s {
			if &s[i] == &got.Data[0] {
				same = true
				break
			}
		}
		if !same {
			t.Fatal("Data does not alias the scratch buffer")
		}
	}

	// Short scratch: falls back to allocating, still correct.
	got2, err := ReadResponseInto(bytes.NewReader(frame), make([]byte, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Data, resp.Data) {
		t.Fatal("fallback roundtrip mismatch")
	}
}
