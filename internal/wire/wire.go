// Package wire defines the binary protocol between DPFS clients and
// DPFS I/O servers. The paper's servers receive brick requests over
// TCP sockets and perform the actual I/O with the local file system API
// (Section 2); this package is the message layer of that path.
//
// A message is a 4-byte magic+version header, a 4-byte little-endian
// payload length, and the payload. Requests name an operation, a
// subfile path, the file's distribution generation and a list of byte
// extents; WRITE requests carry the concatenated extent data, READ
// responses return it. A combined request (Section 4.2) is simply one
// message whose extent list covers many bricks.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Op enumerates the server operations.
type Op uint8

const (
	// OpPing checks liveness.
	OpPing Op = iota + 1
	// OpRead returns the bytes of each extent of a subfile.
	OpRead
	// OpWrite stores the carried bytes at each extent of a subfile.
	OpWrite
	// OpRemove deletes a subfile.
	OpRemove
	// OpStat returns a subfile's current size.
	OpStat
	// OpUsage returns the server's total stored bytes.
	OpUsage
	// OpTruncate cuts a subfile to a length.
	OpTruncate
	// OpRename moves a subfile: Path is the old name, Data carries the
	// new name.
	OpRename
	// OpCopy tells a server to materialize brick slots of a subfile by
	// copying from another server (online repair). Path names the
	// destination subfile, Gen its generation, Extents pair up as
	// (dst, src): extent 2i is the destination slot range and extent
	// 2i+1 the matching source range. Data carries the copy source as
	// "srcAddr\nsrcPath\nsrcGen"; an empty srcAddr means the source is
	// this server itself (a local generation bump). An empty srcAddr
	// AND srcPath with no extents is the cleanup form: superseded
	// on-disk generations of Path are deleted (sent by repair after the
	// new generation is committed to the catalog).
	OpCopy
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpRemove:
		return "REMOVE"
	case OpStat:
		return "STAT"
	case OpUsage:
		return "USAGE"
	case OpTruncate:
		return "TRUNCATE"
	case OpRename:
		return "RENAME"
	case OpCopy:
		return "COPY"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Extent is one contiguous byte range of a subfile.
type Extent struct {
	Off int64
	Len int64
}

// Request is one client→server message.
type Request struct {
	Op   Op
	Path string
	// Gen is the file's distribution generation (the gen column of the
	// file's dpfs_file_distribution rows). Servers key subfiles by
	// (path, generation) and reject a request whose generation is older
	// than what they hold, so a client acting on a stale cached
	// distribution — e.g. a retried read after the file was removed and
	// recreated — gets an error instead of silently wrong bricks. Gen 0
	// means "ungenerationed" and addresses the bare path (the pre-cache
	// wire behavior, still used by raw tools and tests).
	Gen     int64
	Extents []Extent
	// Data carries the concatenated payload of all extents for
	// OpWrite; its length must equal the sum of extent lengths. For
	// OpTruncate, Extents[0].Len holds the new size.
	Data []byte
	// Segments, when non-nil, carries the OpWrite payload as a
	// scatter list instead of Data: WriteRequest flushes the pieces
	// with vectored I/O (net.Buffers / writev) so the sender never
	// packs them into one intermediate buffer. The concatenation of
	// the segments must equal the sum of extent lengths. Senders set
	// exactly one of Data and Segments; receivers always see Data.
	Segments [][]byte

	// TraceID, SpanID and Sampled are the wire-propagated trace
	// context, carried as an optional trailer after the payload so the
	// server can attach its spans to the client's request tree. A zero
	// TraceID means untraced and sends no trailer. Tracing is
	// best-effort: receivers ignore malformed trailers rather than
	// failing the request.
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// PayloadLen returns the number of payload bytes the request carries
// (len(Data), or the total of Segments when the scatter form is used).
func (req *Request) PayloadLen() int {
	if req.Segments != nil {
		n := 0
		for _, s := range req.Segments {
			n += len(s)
		}
		return n
	}
	return len(req.Data)
}

// Response is one server→client message.
type Response struct {
	// Err is non-empty when the operation failed.
	Err string
	// Data carries the concatenated extent payload for OpRead.
	Data []byte
	// N returns a scalar: bytes written, subfile size for OpStat,
	// stored bytes for OpUsage.
	N int64
	// Trace optionally carries the server's span tree for the request
	// (obs.EncodeSpans format), sent as a trailer after Data when the
	// request was sampled. Like Data it may alias the scratch buffer
	// passed to ReadResponseInto, so consume it before reuse. Decoding
	// failures are ignored by callers — tracing is best-effort.
	Trace []byte
	// Delta optionally carries a gossip server-table delta
	// (internal/gossip delta format) piggybacked on the response, so
	// clients learn membership changes at RPC latency instead of
	// waiting out their metadata-cache TTL. On v1 it rides as a
	// self-delimiting footer after the span trailer; on v2 as an
	// explicit section of the RESP metadata. Like Trace it is
	// best-effort — a damaged delta is dropped, never an RPC error —
	// and may alias the scratch buffer.
	Delta []byte
}

const (
	magic     = 0xD9
	version   = 1
	headerLen = 8
)

// MaxMessage bounds a message payload; both sides reject bigger frames
// to avoid unbounded allocations from corrupt peers.
const MaxMessage = 1 << 30

// RespOverhead is the fixed framing overhead of a successful response
// body beyond its extent data (error length + scalar + data length).
// Callers of ReadResponseInto add it to the expected data size when
// sizing a scratch buffer.
const RespOverhead = 2 + 8 + 4

// traceTrailerLen is the size of the optional request trace-context
// trailer: u64 trace ID, u64 parent span ID, one flags byte (bit 0 =
// sampled). A request body with exactly this many bytes after the
// payload carries trace context; any other remainder is ignored so
// future extensions and garbage alike never fail a request.
const traceTrailerLen = 8 + 8 + 1

// deltaFooterLen is the fixed tail of the optional v1 response delta
// footer: u32 delta length followed by the 4-byte footer magic. The
// footer is parsed from the end of the response body — everything
// between the payload and the footer remains the span trailer — so
// old peers, which treat all post-payload bytes as the trailer, and
// new peers interoperate without negotiation. A body whose tail
// happens to end in the magic without a consistent length is treated
// as plain trailer bytes: the delta is best-effort by contract.
const deltaFooterLen = 4 + 4

// deltaFooterMagic closes a v1 response delta footer. It is distinct
// from every frame magic so a truncation cannot alias a frame start.
var deltaFooterMagic = [4]byte{0xDB, 'g', 'd', 0xD9}

// FormatCopySource encodes the OpCopy source descriptor carried in
// Request.Data.
func FormatCopySource(addr, path string, gen int64) []byte {
	return []byte(addr + "\n" + path + "\n" + fmt.Sprintf("%d", gen))
}

// ParseCopySource decodes an OpCopy source descriptor.
func ParseCopySource(data []byte) (addr, path string, gen int64, err error) {
	parts := bytes.SplitN(data, []byte("\n"), 3)
	if len(parts) != 3 {
		return "", "", 0, errors.New("wire: malformed copy source")
	}
	g, err := strconv.ParseInt(string(parts[2]), 10, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("wire: bad copy source generation: %w", err)
	}
	return string(parts[0]), string(parts[1]), g, nil
}

// DataBytes sums the extent lengths.
func DataBytes(exts []Extent) int64 {
	var n int64
	for _, e := range exts {
		n += e.Len
	}
	return n
}

// WriteRequest frames and sends a request. The framing meta data is
// packed into one buffer; the payload — Data or the scatter Segments —
// is flushed behind it with vectored I/O, so scatter payloads reach the
// socket without an intermediate packing copy.
func WriteRequest(w io.Writer, req *Request) error {
	dlen := req.PayloadLen()
	var trailer []byte
	if req.TraceID != 0 {
		trailer = make([]byte, traceTrailerLen)
		binary.LittleEndian.PutUint64(trailer[0:8], req.TraceID)
		binary.LittleEndian.PutUint64(trailer[8:16], req.SpanID)
		if req.Sampled {
			trailer[16] = 1
		}
	}
	n := 2 + len(req.Path) + 8 + 4 + 16*len(req.Extents) + 4 + dlen + len(trailer)
	buf := make([]byte, headerLen, headerLen+n-dlen-len(trailer))
	buf[0] = magic
	buf[1] = version
	buf[2] = byte(req.Op)
	// buf[3] reserved
	binary.LittleEndian.PutUint32(buf[4:8], uint32(n))

	if len(req.Path) > 0xFFFF {
		return errors.New("wire: path too long")
	}
	var tmp [16]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(req.Path)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, req.Path...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(req.Gen))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(req.Extents)))
	buf = append(buf, tmp[:4]...)
	for _, e := range req.Extents {
		binary.LittleEndian.PutUint64(tmp[:8], uint64(e.Off))
		binary.LittleEndian.PutUint64(tmp[8:16], uint64(e.Len))
		buf = append(buf, tmp[:16]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(dlen))
	buf = append(buf, tmp[:4]...)
	if req.Segments != nil {
		bufs := make(net.Buffers, 0, 2+len(req.Segments))
		bufs = append(bufs, buf)
		for _, s := range req.Segments {
			if len(s) > 0 {
				bufs = append(bufs, s)
			}
		}
		if trailer != nil {
			bufs = append(bufs, trailer)
		}
		_, err := bufs.WriteTo(w)
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if len(req.Data) > 0 {
		if _, err := w.Write(req.Data); err != nil {
			return err
		}
	}
	if trailer != nil {
		if _, err := w.Write(trailer); err != nil {
			return err
		}
	}
	return nil
}

// ReadRequest reads one framed request.
func ReadRequest(r io.Reader) (*Request, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != magic || hdr[1] != version {
		return nil, fmt.Errorf("wire: bad magic %#x version %d", hdr[0], hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxMessage {
		return nil, fmt.Errorf("wire: request of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	req := &Request{Op: Op(hdr[2])}
	p := 0
	get := func(k int) ([]byte, error) {
		if p+k > len(body) {
			return nil, errors.New("wire: truncated request")
		}
		b := body[p : p+k]
		p += k
		return b, nil
	}
	b, err := get(2)
	if err != nil {
		return nil, err
	}
	plen := int(binary.LittleEndian.Uint16(b))
	b, err = get(plen)
	if err != nil {
		return nil, err
	}
	req.Path = string(b)
	b, err = get(8)
	if err != nil {
		return nil, err
	}
	req.Gen = int64(binary.LittleEndian.Uint64(b))
	b, err = get(4)
	if err != nil {
		return nil, err
	}
	ne := int(binary.LittleEndian.Uint32(b))
	if ne > 1<<24 {
		return nil, fmt.Errorf("wire: %d extents exceeds limit", ne)
	}
	req.Extents = make([]Extent, ne)
	for i := 0; i < ne; i++ {
		b, err = get(16)
		if err != nil {
			return nil, err
		}
		req.Extents[i].Off = int64(binary.LittleEndian.Uint64(b[:8]))
		req.Extents[i].Len = int64(binary.LittleEndian.Uint64(b[8:16]))
	}
	b, err = get(4)
	if err != nil {
		return nil, err
	}
	dlen := int(binary.LittleEndian.Uint32(b))
	b, err = get(dlen)
	if err != nil {
		return nil, err
	}
	if dlen > 0 {
		req.Data = b
	}
	// Bytes past the payload are the optional trace-context trailer.
	// Tracing is best-effort: only an exact-size trailer with a
	// non-zero trace ID is honored; anything else (truncated trailers,
	// unknown extensions, garbage) is silently ignored rather than
	// failing the request.
	if len(body)-p == traceTrailerLen {
		if id := binary.LittleEndian.Uint64(body[p : p+8]); id != 0 {
			req.TraceID = id
			req.SpanID = binary.LittleEndian.Uint64(body[p+8 : p+16])
			req.Sampled = body[p+16]&1 == 1
		}
	}
	return req, nil
}

// WriteResponse frames and sends a response. A non-empty Trace is
// appended after Data as the span trailer; a non-empty Delta follows
// it as a magic-closed footer.
func WriteResponse(w io.Writer, resp *Response) error {
	if len(resp.Err) > 0xFFFF {
		resp = &Response{Err: resp.Err[:0xFFFF]}
	}
	footer := len(resp.Delta)
	if footer > 0 {
		footer += deltaFooterLen
	}
	n := 2 + len(resp.Err) + 8 + 4 + len(resp.Data) + len(resp.Trace) + footer
	buf := make([]byte, headerLen, headerLen+n-len(resp.Data)-len(resp.Trace)-footer)
	buf[0] = magic
	buf[1] = version
	binary.LittleEndian.PutUint32(buf[4:8], uint32(n))

	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(resp.Err)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, resp.Err...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(resp.N))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(resp.Data)))
	buf = append(buf, tmp[:4]...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if len(resp.Data) > 0 {
		if _, err := w.Write(resp.Data); err != nil {
			return err
		}
	}
	if len(resp.Trace) > 0 {
		if _, err := w.Write(resp.Trace); err != nil {
			return err
		}
	}
	if len(resp.Delta) > 0 {
		foot := make([]byte, deltaFooterLen)
		binary.LittleEndian.PutUint32(foot[0:4], uint32(len(resp.Delta)))
		copy(foot[4:8], deltaFooterMagic[:])
		if _, err := w.Write(resp.Delta); err != nil {
			return err
		}
		if _, err := w.Write(foot); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse reads one framed response.
func ReadResponse(r io.Reader) (*Response, error) {
	return ReadResponseInto(r, nil)
}

// ReadResponseInto reads one framed response, using scratch as the
// body buffer when its capacity suffices (the returned Response's Data
// then aliases scratch, so the caller must consume it before reusing
// the buffer). A nil or short scratch falls back to allocating; the
// response body carries a small fixed overhead beyond the extent data,
// so callers should size scratch with RespOverhead slack.
func ReadResponseInto(r io.Reader, scratch []byte) (*Response, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != magic || hdr[1] != version {
		return nil, fmt.Errorf("wire: bad magic %#x version %d", hdr[0], hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxMessage {
		return nil, fmt.Errorf("wire: response of %d bytes exceeds limit", n)
	}
	var body []byte
	if uint64(cap(scratch)) >= uint64(n) {
		body = scratch[:n]
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	resp := &Response{}
	p := 0
	get := func(k int) ([]byte, error) {
		if p+k > len(body) {
			return nil, errors.New("wire: truncated response")
		}
		b := body[p : p+k]
		p += k
		return b, nil
	}
	b, err := get(2)
	if err != nil {
		return nil, err
	}
	elen := int(binary.LittleEndian.Uint16(b))
	b, err = get(elen)
	if err != nil {
		return nil, err
	}
	resp.Err = string(b)
	b, err = get(8)
	if err != nil {
		return nil, err
	}
	resp.N = int64(binary.LittleEndian.Uint64(b))
	b, err = get(4)
	if err != nil {
		return nil, err
	}
	dlen := int(binary.LittleEndian.Uint32(b))
	b, err = get(dlen)
	if err != nil {
		return nil, err
	}
	if dlen > 0 {
		resp.Data = b
	}
	// Bytes past the payload are the optional span trailer, possibly
	// closed by a gossip-delta footer. Both are best-effort: the raw
	// bytes are handed to the caller, a caller that fails to decode
	// them just drops the remote spans or the delta, and a footer
	// whose length does not fit stays part of the trailer.
	tail := body[p:]
	if len(tail) >= deltaFooterLen && [4]byte(tail[len(tail)-4:]) == deltaFooterMagic {
		dlen := int(binary.LittleEndian.Uint32(tail[len(tail)-8 : len(tail)-4]))
		if dlen > 0 && dlen <= len(tail)-deltaFooterLen {
			resp.Delta = tail[len(tail)-deltaFooterLen-dlen : len(tail)-deltaFooterLen]
			tail = tail[:len(tail)-deltaFooterLen-dlen]
		}
	}
	if len(tail) > 0 {
		resp.Trace = tail
	}
	return resp, nil
}
