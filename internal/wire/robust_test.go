package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// encodeRequest returns the full frame of req.
func encodeRequest(t testing.TB, req *Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeResponse(t testing.TB, resp *Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRequestEveryPrefixTruncation feeds the decoder every proper
// prefix of a valid frame: each one must produce an error, never a
// short-read panic or a silently truncated request.
func TestRequestEveryPrefixTruncation(t *testing.T) {
	full := encodeRequest(t, &Request{
		Op: OpWrite, Path: "/sub/file",
		Extents: []Extent{{Off: 0, Len: 4}, {Off: 100, Len: 4}},
		Data:    []byte("12345678"),
		TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00, Sampled: true,
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadRequest(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
	if _, err := ReadRequest(bytes.NewReader(full)); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
}

// TestResponseEveryPrefixTruncation is the response-side mirror.
func TestResponseEveryPrefixTruncation(t *testing.T) {
	full := encodeResponse(t, &Response{Err: "boom", N: 42, Data: []byte("payload"),
		Trace: []byte{1, 2, 3, 4, 5}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadResponse(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
	if _, err := ReadResponse(bytes.NewReader(full)); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
}

// TestCorruptRequestFrames mutates individual frame fields of a valid
// request; every mutation must be rejected. Offsets follow the layout
// in WriteRequest: 8-byte header, 2-byte path length, path, 8-byte
// generation, 4-byte extent count, 16 bytes per extent, 4-byte data
// length, data.
func TestCorruptRequestFrames(t *testing.T) {
	base := &Request{
		Op: OpWrite, Path: "/s", Gen: 3,
		Extents: []Extent{{Off: 8, Len: 4}},
		Data:    []byte("abcd"),
	}
	pathOff := headerLen
	extCountOff := pathOff + 2 + len(base.Path) + 8
	dataLenOff := extCountOff + 4 + 16*len(base.Extents)

	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"bad magic", func(b []byte) { b[0] = 0x00 }},
		{"bad version", func(b []byte) { b[1] = version + 1 }},
		{"payload length over MaxMessage", func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:8], MaxMessage+1)
		}},
		{"path length beyond body", func(b []byte) {
			binary.LittleEndian.PutUint16(b[pathOff:], 0xFFFF)
		}},
		{"extent count beyond limit", func(b []byte) {
			binary.LittleEndian.PutUint32(b[extCountOff:], 1<<24+1)
		}},
		{"extent count beyond body", func(b []byte) {
			binary.LittleEndian.PutUint32(b[extCountOff:], 1000)
		}},
		{"data length beyond body", func(b []byte) {
			binary.LittleEndian.PutUint32(b[dataLenOff:], 1<<20)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := encodeRequest(t, base)
			tc.mutate(frame)
			if _, err := ReadRequest(bytes.NewReader(frame)); err == nil {
				t.Fatal("corrupt frame decoded without error")
			}
		})
	}
}

// TestRequestTraceTrailerBestEffort pins the best-effort contract of
// the trace-context trailer: a well-formed trailer roundtrips, and
// truncated, oversized or garbage trailers silently yield an untraced
// request — they must never fail the frame.
func TestRequestTraceTrailerBestEffort(t *testing.T) {
	base := &Request{
		Op: OpWrite, Path: "/s", Gen: 3,
		Extents: []Extent{{Off: 8, Len: 4}},
		Data:    []byte("abcd"),
	}

	t.Run("trace context roundtrips", func(t *testing.T) {
		traced := *base
		traced.TraceID, traced.SpanID, traced.Sampled = 0xdead, 0xbeef, true
		got, err := ReadRequest(bytes.NewReader(encodeRequest(t, &traced)))
		if err != nil {
			t.Fatal(err)
		}
		if got.TraceID != 0xdead || got.SpanID != 0xbeef || !got.Sampled {
			t.Fatalf("trace context lost: %+v", got)
		}
		if !bytes.Equal(got.Data, base.Data) {
			t.Fatal("payload corrupted by trailer")
		}
	})

	t.Run("unsampled flag roundtrips", func(t *testing.T) {
		traced := *base
		traced.TraceID, traced.SpanID = 7, 8
		got, err := ReadRequest(bytes.NewReader(encodeRequest(t, &traced)))
		if err != nil {
			t.Fatal(err)
		}
		if got.TraceID != 7 || got.Sampled {
			t.Fatalf("unsampled context = %+v", got)
		}
	})

	// Garbage after the payload, in every size from 1 byte to past the
	// trailer length: the request must decode and (except for a valid
	// non-zero-ID trailer) stay untraced.
	for extra := 1; extra <= traceTrailerLen+8; extra++ {
		frame := encodeRequest(t, base)
		for i := 0; i < extra; i++ {
			frame = append(frame, 0x00) // zero bytes: a zero trace ID must be ignored
		}
		binary.LittleEndian.PutUint32(frame[4:8],
			binary.LittleEndian.Uint32(frame[4:8])+uint32(extra))
		got, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%d trailing zero bytes failed the request: %v", extra, err)
		}
		if got.TraceID != 0 || got.SpanID != 0 || got.Sampled {
			t.Fatalf("%d trailing zero bytes produced trace context %+v", extra, got)
		}
		if got.Path != base.Path || !bytes.Equal(got.Data, base.Data) {
			t.Fatalf("%d trailing bytes corrupted the request: %+v", extra, got)
		}
	}

	t.Run("garbage ids are accepted verbatim", func(t *testing.T) {
		frame := encodeRequest(t, base)
		junk := bytes.Repeat([]byte{0xA5}, traceTrailerLen)
		frame = append(frame, junk...)
		binary.LittleEndian.PutUint32(frame[4:8],
			binary.LittleEndian.Uint32(frame[4:8])+uint32(traceTrailerLen))
		got, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("garbage trailer failed the request: %v", err)
		}
		// Garbage IDs are just IDs; the request itself must be intact.
		if !bytes.Equal(got.Data, base.Data) || got.Path != base.Path {
			t.Fatalf("garbage trailer corrupted the request: %+v", got)
		}
		if got.TraceID != binary.LittleEndian.Uint64(junk[:8]) {
			t.Fatalf("trace id = %#x", got.TraceID)
		}
	})
}

// TestCorruptResponseFrames is the response-side mirror. Layout:
// 8-byte header, 2-byte error length, error, 8-byte scalar, 4-byte
// data length, data.
func TestCorruptResponseFrames(t *testing.T) {
	base := &Response{Err: "e", N: 7, Data: []byte("abcd")}
	errOff := headerLen
	dataLenOff := errOff + 2 + len(base.Err) + 8

	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"bad magic", func(b []byte) { b[0] = 0x00 }},
		{"bad version", func(b []byte) { b[1] = version + 1 }},
		{"payload length over MaxMessage", func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:8], MaxMessage+1)
		}},
		{"error length beyond body", func(b []byte) {
			binary.LittleEndian.PutUint16(b[errOff:], 0xFFFF)
		}},
		{"data length beyond body", func(b []byte) {
			binary.LittleEndian.PutUint32(b[dataLenOff:], 1<<20)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := encodeResponse(t, base)
			tc.mutate(frame)
			if _, err := ReadResponse(bytes.NewReader(frame)); err == nil {
				t.Fatal("corrupt frame decoded without error")
			}
		})
	}

	// Bytes past the payload are the span trailer, surfaced verbatim
	// (best-effort tracing: the frame must not be rejected).
	t.Run("trailing bytes become the span trailer", func(t *testing.T) {
		frame := encodeResponse(t, base)
		dataLen := binary.LittleEndian.Uint32(frame[dataLenOff:])
		binary.LittleEndian.PutUint32(frame[dataLenOff:], dataLen-1)
		got, err := ReadResponse(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("trailing byte failed the response: %v", err)
		}
		if !bytes.Equal(got.Trace, base.Data[len(base.Data)-1:]) {
			t.Fatalf("trailer = %v", got.Trace)
		}
	})
}

// FuzzReadRequest throws arbitrary bytes at the request decoder: it
// must never panic, and anything it accepts must re-encode to a frame
// that decodes to the same request (the decoder defines the format).
func FuzzReadRequest(f *testing.F) {
	f.Add(encodeRequest(f, &Request{Op: OpPing}))
	f.Add(encodeRequest(f, &Request{Op: OpRead, Path: "/a", Extents: []Extent{{Off: 0, Len: 16}}}))
	f.Add(encodeRequest(f, &Request{Op: OpWrite, Path: "/b",
		Extents: []Extent{{Off: 4, Len: 2}, {Off: 32, Len: 2}}, Data: []byte("wxyz")}))
	f.Add(encodeRequest(f, &Request{Op: OpRename, Path: "/old", Data: []byte("/new")}))
	f.Add(encodeRequest(f, &Request{Op: OpRead, Path: "/t", Extents: []Extent{{Off: 0, Len: 8}},
		TraceID: 0x0123456789abcdef, SpanID: 0xfedcba9876543210, Sampled: true}))
	f.Add([]byte{magic, version, byte(OpPing), 0, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{magic, version + 1, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		frame := encodeRequest(t, req)
		again, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-encoded accepted request rejected: %v", err)
		}
		if req.Op != again.Op || req.Path != again.Path || req.Gen != again.Gen ||
			!reflect.DeepEqual(req.Extents, again.Extents) || !bytes.Equal(req.Data, again.Data) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", req, again)
		}
		if req.TraceID != again.TraceID || req.SpanID != again.SpanID || req.Sampled != again.Sampled {
			t.Fatalf("trace context roundtrip mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzReadResponse is the response-side mirror.
func FuzzReadResponse(f *testing.F) {
	f.Add(encodeResponse(f, &Response{}))
	f.Add(encodeResponse(f, &Response{Err: "subfile missing"}))
	f.Add(encodeResponse(f, &Response{N: 1 << 40, Data: []byte("data")}))
	f.Add(encodeResponse(f, &Response{Data: []byte("d"), Trace: []byte{1, 0, 0, 9, 9}}))
	f.Add(encodeResponse(f, &Response{Data: []byte("d"), Delta: []byte("DPgd-delta")}))
	f.Add(encodeResponse(f, &Response{Trace: []byte{7}, Delta: []byte("DPgd!")}))
	f.Add([]byte{magic, version, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bytes.NewReader(data))
		if err != nil {
			return
		}
		frame := encodeResponse(t, resp)
		again, err := ReadResponse(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-encoded accepted response rejected: %v", err)
		}
		if resp.Err != again.Err || resp.N != again.N || !bytes.Equal(resp.Data, again.Data) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", resp, again)
		}
		if !bytes.Equal(resp.Trace, again.Trace) {
			t.Fatalf("trace trailer roundtrip mismatch: %v vs %v", resp.Trace, again.Trace)
		}
		if !bytes.Equal(resp.Delta, again.Delta) {
			t.Fatalf("delta footer roundtrip mismatch: %v vs %v", resp.Delta, again.Delta)
		}
	})
}

// encodeRequestV2 returns the full v2 framing of req under tag.
func encodeRequestV2(t testing.TB, tag uint32, req *Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequestV2(&buf, tag, req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readRequestV2 decodes one complete v2 request (header + metadata +
// payload frames) from raw bytes.
func readRequestV2(raw []byte) (*Request, error) {
	r := bytes.NewReader(raw)
	h, err := ReadFrameHeader(r)
	if err != nil {
		return nil, err
	}
	return ReadRequestV2(r, h, nil)
}

// TestFrameHeaderEveryPrefixTruncation feeds the frame-header decoder
// every proper prefix: each must error, never hang or panic.
func TestFrameHeaderEveryPrefixTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameHeader(&buf, FrameHeader{Kind: FrameData, Tag: 3, Len: 64}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadFrameHeader(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("header prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestRequestV2EveryPrefixTruncation mirrors the v1 truncation sweep
// across the whole multi-frame encoding (REQ metadata + DATA frames).
func TestRequestV2EveryPrefixTruncation(t *testing.T) {
	full := encodeRequestV2(t, 11, &Request{
		Op: OpWrite, Path: "/sub/file",
		Extents: []Extent{{Off: 0, Len: 4}, {Off: 100, Len: 4}},
		Data:    []byte("12345678"),
		TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00, Sampled: true,
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := readRequestV2(full[:cut]); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
	if _, err := readRequestV2(full); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}

// TestResponseV2EveryPrefixTruncation is the response-side mirror.
func TestResponseV2EveryPrefixTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponseV2(&buf, 11, &Response{Err: "", N: 42, Data: []byte("payload"),
		Trace: []byte{1, 2, 3, 4, 5}}, 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadResponseV2Into(bytes.NewReader(full[:cut]), 11, nil); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
	if _, err := ReadResponseV2Into(bytes.NewReader(full), 11, nil); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}

// TestCorruptFrameHeaders mutates v2 frame-header fields; framing
// errors (bad magic/version, oversized length) must be rejected while
// unknown kinds pass header validation (receivers skip them).
func TestCorruptFrameHeaders(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(b []byte)
		ok     bool
	}{
		{"v1 magic on a v2 stream", func(b []byte) { b[0] = 0xD9 }, false},
		{"zero magic", func(b []byte) { b[0] = 0x00 }, false},
		{"bad version", func(b []byte) { b[1] = version2 + 1 }, false},
		{"length over MaxMessage", func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], MaxMessage+1)
		}, false},
		{"unknown kind survives header validation", func(b []byte) { b[2] = 0xEE }, true},
		{"unknown flags survive header validation", func(b []byte) { b[3] = 0xFE }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrameHeader(&buf, FrameHeader{Kind: FrameData, Tag: 5, Len: 9}); err != nil {
				t.Fatal(err)
			}
			b := buf.Bytes()
			tc.mutate(b)
			_, err := ReadFrameHeader(bytes.NewReader(b))
			if tc.ok && err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("corrupt header decoded without error")
			}
		})
	}
}

// TestCorruptRequestV2Frames mutates v2 request encodings. The frame
// layout is FrameHeaderLen of header, then: 16 bytes trace context,
// op byte + reserved, u16 path length, path, u64 gen, u32 extent
// count, extents, u32 payload length, then DATA frames.
func TestCorruptRequestV2Frames(t *testing.T) {
	base := &Request{
		Op: OpWrite, Path: "/s", Gen: 3,
		Extents: []Extent{{Off: 8, Len: 4}},
		Data:    []byte("abcd"),
	}
	pathLenOff := FrameHeaderLen + 16 + 2
	extCountOff := pathLenOff + 2 + len(base.Path) + 8
	payloadLenOff := extCountOff + 4 + 16*len(base.Extents)
	dataFrameOff := payloadLenOff + 4 // header of the first DATA frame

	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"path length beyond body", func(b []byte) {
			binary.LittleEndian.PutUint16(b[pathLenOff:], 0xFFFF)
		}},
		{"extent count beyond limit", func(b []byte) {
			binary.LittleEndian.PutUint32(b[extCountOff:], 1<<24+1)
		}},
		{"extent count beyond body", func(b []byte) {
			binary.LittleEndian.PutUint32(b[extCountOff:], 1000)
		}},
		{"metadata shorter than layout", func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], 4) // REQ frame length cut mid-metadata
		}},
		{"payload larger than DATA frames deliver", func(b []byte) {
			binary.LittleEndian.PutUint32(b[payloadLenOff:], 1<<20)
		}},
		{"zero-length DATA frame", func(b []byte) {
			binary.LittleEndian.PutUint32(b[dataFrameOff+8:], 0)
		}},
		{"DATA frame overruns announced payload", func(b []byte) {
			binary.LittleEndian.PutUint32(b[dataFrameOff+8:], 1<<19)
		}},
		{"DATA frame for a different tag", func(b []byte) {
			binary.LittleEndian.PutUint32(b[dataFrameOff+4:], 999)
		}},
		{"DATA frame with wrong kind", func(b []byte) {
			b[dataFrameOff+2] = byte(FrameCancel)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := encodeRequestV2(t, 7, base)
			tc.mutate(frame)
			if _, err := readRequestV2(frame); err == nil {
				t.Fatal("corrupt v2 request decoded without error")
			}
		})
	}
}

// TestResponseV2UnknownFramesSkipped pins forward compatibility on a
// single-exchange conn: unknown frame kinds and stray CANCELs between
// DATA frames are skipped without failing the in-flight exchange.
func TestResponseV2UnknownFramesSkipped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataFrame(&buf, 4, []byte("he")); err != nil {
		t.Fatal(err)
	}
	// Interleave an unknown kind with a body, and a CANCEL for some
	// other tag — both must be ignored.
	if err := WriteFrameHeader(&buf, FrameHeader{Kind: FrameKind(0x77), Tag: 4, Len: 5}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("junk!")
	if err := WriteCancelFrame(&buf, 9999); err != nil {
		t.Fatal(err)
	}
	if err := WriteDataFrame(&buf, 4, []byte("llo")); err != nil {
		t.Fatal(err)
	}
	if err := WriteResponseV2(&buf, 4, &Response{N: 5}, 5); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponseV2Into(&buf, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "hello" || resp.N != 5 {
		t.Fatalf("got %+v", resp)
	}
}

// TestResponseV2GarbageBetweenFrames pins the opposite: bytes that are
// NOT valid frames (wrong magic) desynchronize the stream and must
// surface as an error rather than silently corrupting the response.
func TestResponseV2GarbageBetweenFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataFrame(&buf, 4, []byte("he")); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B})
	if err := WriteResponseV2(&buf, 4, &Response{N: 2}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponseV2Into(&buf, 4, nil); err == nil {
		t.Fatal("garbage between frames decoded without error")
	}
}

// FuzzReadFrameHeader throws arbitrary bytes at the v2 header decoder:
// never panic; accepted headers re-encode identically.
func FuzzReadFrameHeader(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrameHeader(&seed, FrameHeader{Kind: FrameReq, Flags: FlagSampled, Tag: 1, Len: 10})
	f.Add(seed.Bytes())
	f.Add([]byte{Magic2, version2, byte(FrameCancel), 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{Magic2, version2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadFrameHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrameHeader(&buf, h); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrameHeader(&buf)
		if err != nil || again != h {
			t.Fatalf("header roundtrip: %+v vs %+v (%v)", h, again, err)
		}
	})
}

// FuzzReadRequestV2 fuzzes the full v2 request decode (header,
// metadata, payload frames): never panic; accepted requests re-encode
// and decode identically.
func FuzzReadRequestV2(f *testing.F) {
	f.Add(encodeRequestV2(f, 1, &Request{Op: OpPing}))
	f.Add(encodeRequestV2(f, 2, &Request{Op: OpRead, Path: "/a", Extents: []Extent{{Off: 0, Len: 16}}}))
	f.Add(encodeRequestV2(f, 3, &Request{Op: OpWrite, Path: "/b",
		Extents: []Extent{{Off: 4, Len: 2}, {Off: 32, Len: 2}}, Data: []byte("wxyz")}))
	f.Add(encodeRequestV2(f, 4, &Request{Op: OpRead, Path: "/t", Extents: []Extent{{Off: 0, Len: 8}},
		TraceID: 0x0123456789abcdef, SpanID: 0xfedcba9876543210, Sampled: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readRequestV2(data)
		if err != nil {
			return
		}
		again, err := readRequestV2(encodeRequestV2(t, 1, req))
		if err != nil {
			t.Fatalf("re-encoded accepted request rejected: %v", err)
		}
		if req.Op != again.Op || req.Path != again.Path || req.Gen != again.Gen ||
			!reflect.DeepEqual(req.Extents, again.Extents) || !bytes.Equal(req.Data, again.Data) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", req, again)
		}
		if req.TraceID != again.TraceID || req.SpanID != again.SpanID || req.Sampled != again.Sampled {
			t.Fatalf("trace context roundtrip mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzReadResponseV2 is the response-side mirror.
func FuzzReadResponseV2(f *testing.F) {
	encode := func(t testing.TB, resp *Response) []byte {
		var buf bytes.Buffer
		if err := WriteResponseV2(&buf, 1, resp, 0); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(encode(f, &Response{}))
	f.Add(encode(f, &Response{Err: "subfile missing"}))
	f.Add(encode(f, &Response{N: 1 << 40, Data: []byte("data")}))
	f.Add(encode(f, &Response{Data: []byte("d"), Trace: []byte{1, 0, 0, 9, 9}}))
	f.Add(encode(f, &Response{Data: []byte("d"), Delta: []byte("DPgd-delta")}))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponseV2Into(bytes.NewReader(data), 1, nil)
		if err != nil {
			return
		}
		again, err := ReadResponseV2Into(bytes.NewReader(encode(t, resp)), 1, nil)
		if err != nil {
			t.Fatalf("re-encoded accepted response rejected: %v", err)
		}
		if resp.Err != again.Err || resp.N != again.N || !bytes.Equal(resp.Data, again.Data) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", resp, again)
		}
		if !bytes.Equal(resp.Trace, again.Trace) {
			t.Fatalf("trace roundtrip mismatch: %v vs %v", resp.Trace, again.Trace)
		}
		if !bytes.Equal(resp.Delta, again.Delta) {
			t.Fatalf("delta roundtrip mismatch: %v vs %v", resp.Delta, again.Delta)
		}
	})
}
