package metarepl

import (
	"errors"
	"fmt"
	"time"

	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
)

// This file is the serving half of a replica: every inbound
// replication connection is either a vote request (answered and
// closed) or a shipping stream from the primary (applied until it
// breaks). Both paths enforce epoch fencing — anything from an epoch
// older than ours is rejected with the newer epoch so the deposed
// sender steps down.

func (r *Replica) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.lis.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go r.handleConn(conn)
	}
}

func (r *Replica) handleConn(conn *mdbnet.ReplConn) {
	defer r.wg.Done()
	defer conn.Close()
	if !r.track(conn) {
		return
	}
	defer r.untrack(conn)
	m, err := conn.Recv()
	if err != nil {
		return
	}
	switch m.Kind {
	case mdbnet.ReplVoteReq:
		r.handleVote(conn, m)
	case mdbnet.ReplHello:
		r.handleStream(conn, m)
	}
}

// handleVote answers one vote request. The whole decision lives in
// metadb.GrantVote, under the same lock as record application, so both
// election-safety conditions hold atomically (DESIGN.md §13):
//
//   - the candidate's epoch is strictly newer than any epoch this
//     replica has durably seen — and the adoption is persisted before
//     the grant leaves, so one epoch can never collect two votes from
//     the same replica, not even across a crash;
//   - the candidate's log position (last record epoch, then sequence
//     number) is at least this replica's *at the moment of the grant* —
//     a shipped record either lands before the comparison (and counts
//     against the candidate) or after the epoch adoption (and is
//     fenced by ApplyShipped, never acknowledged). A persistence
//     failure refuses the vote rather than granting on a promise the
//     disk did not keep.
func (r *Replica) handleVote(conn *mdbnet.ReplConn, m *mdbnet.ReplMsg) {
	_, _, granted, err := r.db.GrantVote(m.Epoch, m.Seq, m.LastEpoch)
	if err != nil || !granted {
		epoch, _ := r.db.ReplEpoch()
		_ = conn.Send(&mdbnet.ReplMsg{Kind: mdbnet.ReplVote, From: r.cfg.ID, Epoch: epoch, Ok: false})
		return
	}
	// The grant is durable; adopt it in memory too (demoting a primary,
	// resetting the election clock so the candidate gets a full round
	// before this voter campaigns itself). No second persist needed.
	_ = r.stepTo(m.Epoch, -1, true, false)
	_ = conn.Send(&mdbnet.ReplMsg{Kind: mdbnet.ReplVote, From: r.cfg.ID, Epoch: m.Epoch, Ok: true})
}

// handleStream serves one shipping stream from a primary: handshake
// (report our durable position, or receive a snapshot), then apply
// records in order. Applying and acknowledging are pipelined — the
// receive loop hands each applied record's group-commit wait target to
// an acker goroutine, so the follower keeps applying while a shared
// fsync is in flight and its WAL batches exactly like the primary's.
func (r *Replica) handleStream(conn *mdbnet.ReplConn, hello *mdbnet.ReplMsg) {
	r.mu.Lock()
	cur := r.epoch
	amPrimary := r.role == Primary
	r.mu.Unlock()
	if hello.Epoch < cur || (hello.Epoch == cur && amPrimary) {
		_ = conn.Send(&mdbnet.ReplMsg{
			Kind: mdbnet.ReplError, From: r.cfg.ID, Epoch: cur,
			Err: fmt.Sprintf("metarepl: stale epoch %d (current %d)", hello.Epoch, cur),
		})
		return
	}
	// The stream's epoch must be durable before any record from it is
	// acknowledged: an ack at epoch e promises "I will never vote at
	// e", and GrantVote enforces that promise against the durable
	// epoch. A persistence failure therefore rejects the stream.
	if err := r.stepTo(hello.Epoch, hello.From, true, true); err != nil {
		_ = conn.Send(&mdbnet.ReplMsg{
			Kind: mdbnet.ReplError, From: r.cfg.ID, Epoch: cur,
			Err: fmt.Sprintf("metarepl: cannot adopt epoch %d: %v", hello.Epoch, err),
		})
		return
	}
	r.mu.Lock()
	adopted := r.epoch == hello.Epoch
	cur = r.epoch
	wait := r.applyWait
	r.mu.Unlock()
	if !adopted {
		_ = conn.Send(&mdbnet.ReplMsg{
			Kind: mdbnet.ReplError, From: r.cfg.ID, Epoch: cur,
			Err: fmt.Sprintf("metarepl: stale epoch %d (current %d)", hello.Epoch, cur),
		})
		return
	}

	// Handshake ack: report a position that is proven durable. Records
	// applied by an earlier stream may still await their shared fsync,
	// so settle the outstanding wait target first.
	if err := r.db.WaitWAL(wait); err != nil {
		return
	}
	seq, last := r.db.ReplState()
	r.setDurable(seq)
	if err := conn.Send(&mdbnet.ReplMsg{
		Kind: mdbnet.ReplAck, From: r.cfg.ID, Epoch: hello.Epoch, Seq: seq, LastEpoch: last,
	}); err != nil {
		return
	}

	type applied struct{ seq, wait int64 }
	ackCh := make(chan applied, 256)
	ackerDone := make(chan struct{})
	go func() {
		defer close(ackerDone)
		for p := range ackCh {
			if err := r.db.WaitWAL(p.wait); err != nil {
				return
			}
			r.setDurable(p.seq)
			if err := conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplAck, From: r.cfg.ID, Epoch: hello.Epoch, Seq: p.seq,
			}); err != nil {
				return
			}
		}
	}()
	defer func() {
		close(ackCh)
		<-ackerDone
	}()

	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		r.mu.Lock()
		cur = r.epoch
		r.lastHeard = time.Now()
		r.mu.Unlock()
		if cur > hello.Epoch {
			// A newer primary took over mid-stream; fence this one off.
			_ = conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplError, From: r.cfg.ID, Epoch: cur,
				Err: fmt.Sprintf("metarepl: stale epoch %d (current %d)", hello.Epoch, cur),
			})
			return
		}
		switch m.Kind {
		case mdbnet.ReplRecord:
			// ApplyShipped re-checks the stream epoch against the
			// durable epoch under the database lock — the authoritative
			// fence; the r.mu check above is only a fast path.
			w, err := r.db.ApplyShipped(hello.Epoch, m.Seq, m.Epoch, m.Ops)
			if err != nil {
				// A stale stream epoch means a newer primary won a vote
				// here mid-stream: fence the deposed sender explicitly.
				// Anything else (sequence gap, apply failure) just drops
				// the stream; the primary re-handshakes and resyncs.
				var stale *metadb.ErrStaleEpoch
				if errors.As(err, &stale) {
					_ = conn.Send(&mdbnet.ReplMsg{
						Kind: mdbnet.ReplError, From: r.cfg.ID, Epoch: stale.Current,
						Err: fmt.Sprintf("metarepl: stale epoch %d (current %d)", hello.Epoch, stale.Current),
					})
				}
				return
			}
			r.noteApplyWait(w)
			select {
			case ackCh <- applied{seq: m.Seq, wait: w}:
			case <-ackerDone:
				return
			}
		case mdbnet.ReplSnapshot:
			if err := r.db.RestoreSnapshot(hello.Epoch, m.Snap); err != nil {
				var stale *metadb.ErrStaleEpoch
				if errors.As(err, &stale) {
					_ = conn.Send(&mdbnet.ReplMsg{
						Kind: mdbnet.ReplError, From: r.cfg.ID, Epoch: stale.Current,
						Err: fmt.Sprintf("metarepl: stale epoch %d (current %d)", hello.Epoch, stale.Current),
					})
				}
				return
			}
			sseq, slast := r.db.ReplState()
			r.setDurable(sseq)
			if err := conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplAck, From: r.cfg.ID, Epoch: hello.Epoch, Seq: sseq, LastEpoch: slast,
			}); err != nil {
				return
			}
		case mdbnet.ReplHeartbeat:
			// Re-ack the durable watermark so the primary's lag gauge
			// stays honest through quiet periods.
			r.mu.Lock()
			dseq := r.durableSeq
			r.mu.Unlock()
			if err := conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplAck, From: r.cfg.ID, Epoch: hello.Epoch, Seq: dseq,
			}); err != nil {
				return
			}
		}
	}
}

// noteApplyWait records an in-flight group-commit wait target so a
// future handshake can settle it before reporting durability.
func (r *Replica) noteApplyWait(wait int64) {
	if wait == 0 {
		return
	}
	r.mu.Lock()
	if wait > r.applyWait {
		r.applyWait = wait
	}
	r.mu.Unlock()
}

// setDurable raises the proven-durable watermark.
func (r *Replica) setDurable(seq int64) {
	r.mu.Lock()
	if seq > r.durableSeq {
		r.durableSeq = seq
	}
	r.mu.Unlock()
}
