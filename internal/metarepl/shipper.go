package metarepl

import (
	"errors"
	"sort"
	"sync"
	"time"

	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/obs"
)

// This file is the primary half of the shipping stream: one shipper
// goroutine per follower owns that follower's connection, handshakes
// to find a common log position (shipping a full snapshot when there
// is none), then streams records and heartbeats while a receive loop
// folds the follower's durable acknowledgements back into the group.

// errResync asks run to tear the connection down and re-handshake.
var errResync = errors.New("metarepl: follower needs resync")

type shipper struct {
	r     *Replica
	peer  int
	epoch int64

	stopOnce sync.Once
	stopCh   chan struct{}
	notifyCh chan struct{}

	mu   sync.Mutex
	conn *mdbnet.ReplConn
}

func newShipper(r *Replica, peer int, epoch int64) *shipper {
	return &shipper{
		r:        r,
		peer:     peer,
		epoch:    epoch,
		stopCh:   make(chan struct{}),
		notifyCh: make(chan struct{}, 1),
	}
}

// notify nudges the send loop that new records are buffered.
func (s *shipper) notify() {
	select {
	case s.notifyCh <- struct{}{}:
	default:
	}
}

// halt stops the shipper and unblocks any in-flight send or receive.
func (s *shipper) halt() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.mu.Unlock()
}

func (s *shipper) stopped() bool {
	select {
	case <-s.stopCh:
		return true
	default:
		return false
	}
}

func (s *shipper) run() {
	defer s.r.wg.Done()
	backoff := 10 * time.Millisecond
	for !s.stopped() {
		if s.r.Role() != Primary {
			return
		}
		conn, err := mdbnet.DialRepl(s.r.cfg.Peers[s.peer], s.r.cfg.Dial)
		if err != nil {
			select {
			case <-s.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff < 320*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = 10 * time.Millisecond
		s.mu.Lock()
		if s.stopped() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conn = conn
		s.mu.Unlock()
		err = s.serve(conn)
		conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		if err != nil && !errors.Is(err, errResync) {
			// Transient transport failure: redial after a beat so a
			// dead follower does not spin the loop.
			select {
			case <-s.stopCh:
				return
			case <-time.After(backoff):
			}
		}
	}
}

// serve runs one connection: handshake, then stream until it breaks.
func (s *shipper) serve(conn *mdbnet.ReplConn) error {
	curSeq, curLast := s.r.db.ReplState()
	err := conn.Send(&mdbnet.ReplMsg{
		Kind: mdbnet.ReplHello, From: s.r.cfg.ID, Epoch: s.epoch,
		Seq: curSeq, LastEpoch: curLast,
	})
	if err != nil {
		return err
	}
	m, err := conn.Recv()
	if err != nil {
		return err
	}
	if m.Kind == mdbnet.ReplError {
		// Fencing: the follower is at a newer epoch; our lease is over.
		// Best-effort persist — stepping down needs no durability, the
		// durable gates are GrantVote and ApplyShipped on the voters.
		_ = s.r.stepTo(m.Epoch, -1, false, true)
		return errors.New(m.Err)
	}
	if m.Kind != mdbnet.ReplAck {
		return errors.New("metarepl: bad handshake reply " + m.Kind)
	}

	next := m.Seq + 1
	caughtUp := m.Seq == curSeq && m.LastEpoch == curLast
	if !caughtUp && !s.r.tailCovers(m.Seq, m.LastEpoch) {
		// The follower's position is unverifiable or out of reach:
		// replace its state wholesale.
		snap, err := s.r.db.StateSnapshot()
		if err != nil {
			return err
		}
		if err := conn.Send(&mdbnet.ReplMsg{
			Kind: mdbnet.ReplSnapshot, From: s.r.cfg.ID, Epoch: s.epoch, Snap: snap,
		}); err != nil {
			return err
		}
		if m, err = conn.Recv(); err != nil {
			return err
		}
		if m.Kind != mdbnet.ReplAck {
			return errors.New("metarepl: bad snapshot reply " + m.Kind)
		}
		next = m.Seq + 1
		s.r.reg.Counter(MetricResyncs).Inc()
		s.r.ev.Emit(obs.EventMetaResync, "metarepl", map[string]string{
			"group": s.r.cfg.Name, "follower": itoa(s.peer), "seq": itoa64(m.Seq),
		})
	}
	s.r.recordAck(s.peer, m.Seq)

	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			switch m.Kind {
			case mdbnet.ReplAck:
				s.r.recordAck(s.peer, m.Seq)
			case mdbnet.ReplError:
				_ = s.r.stepTo(m.Epoch, -1, false, true)
				return
			}
		}
	}()

	hb := time.NewTicker(s.r.cfg.Heartbeat)
	defer hb.Stop()
	for {
		batch, ok := s.r.tailFrom(next)
		if !ok {
			return errResync
		}
		for _, rec := range batch {
			if err := conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplRecord, From: s.r.cfg.ID,
				Epoch: rec.epoch, Seq: rec.seq, Ops: rec.ops,
			}); err != nil {
				return err
			}
			next = rec.seq + 1
		}
		if len(batch) > 0 {
			s.r.reg.Counter(MetricRecordsShipped).Add(int64(len(batch)))
			continue // drain before sleeping
		}
		select {
		case <-s.stopCh:
			return nil
		case <-recvDone:
			return errors.New("metarepl: follower connection lost")
		case <-s.notifyCh:
		case <-hb.C:
			if err := conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplHeartbeat, From: s.r.cfg.ID,
				Epoch: s.epoch, Seq: next - 1,
			}); err != nil {
				return err
			}
		}
	}
}

// tailCovers reports whether streaming can resume for a follower whose
// last record is (lastEpoch, seq): the buffered tail must still hold
// the record at seq to prove the follower's history matches (an empty
// follower just needs the tail to reach back to record 1).
func (r *Replica) tailCovers(seq, lastEpoch int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.shipSeq || len(r.tail) == 0 {
		return false
	}
	if seq == 0 {
		return r.tail[0].seq == 1
	}
	i := sort.Search(len(r.tail), func(i int) bool { return r.tail[i].seq >= seq })
	return i < len(r.tail) && r.tail[i].seq == seq && r.tail[i].epoch == lastEpoch
}

func itoa(v int) string     { return itoa64(int64(v)) }
func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
