package metarepl

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/obs"
)

// newGroup builds and starts an n-replica group over in-memory
// databases with fast timeouts, bootstrapping replica 0 as the first
// primary. Returned replicas are closed by the test cleanup.
func newGroup(t *testing.T, n int, ack Ack, ackTimeout time.Duration) ([]*Replica, []*metadb.DB) {
	t.Helper()
	liss := make([]*mdbnet.ReplListener, n)
	peers := make([]string, n)
	for i := range liss {
		lis, err := mdbnet.ListenRepl("")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		liss[i] = lis
		peers[i] = lis.Addr()
	}
	reps := make([]*Replica, n)
	dbs := make([]*metadb.DB, n)
	for i := 0; i < n; i++ {
		db, err := metadb.Open(metadb.Options{})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		dbs[i] = db
		if ackTimeout == 0 {
			ackTimeout = 2 * time.Second
		}
		rep, err := New(Config{
			Name: "g0", ID: i, Peers: peers, DB: db, Listener: liss[i],
			Ack: ack, Heartbeat: 10 * time.Millisecond,
			ElectionTimeout: 60 * time.Millisecond,
			AckTimeout:      ackTimeout,
			Events:          obs.NewEventLog(128),
		})
		if err != nil {
			t.Fatalf("new replica %d: %v", i, err)
		}
		reps[i] = rep
	}
	if err := reps[0].Bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for i, r := range reps {
			r.Close()
			dbs[i].Close()
		}
	})
	return reps, dbs
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func countRows(t *testing.T, db *metadb.DB, table string) int {
	t.Helper()
	res, err := db.Exec("SELECT * FROM " + table)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	return len(res.Rows)
}

func TestReplicationAndFailover(t *testing.T) {
	reps, dbs := newGroup(t, 3, AckMajority, 0)

	if _, err := dbs[0].Exec("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := dbs[0].Exec(fmt.Sprintf("INSERT INTO kv (k, v) VALUES ('k%d', %d)", i, i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	wantSeq, _ := dbs[0].ReplState()

	// Majority ack guarantees one follower; shipping continues
	// asynchronously until both converge.
	for f := 1; f <= 2; f++ {
		f := f
		waitFor(t, fmt.Sprintf("follower %d convergence", f), func() bool {
			seq, _ := dbs[f].ReplState()
			return seq == wantSeq
		})
		if got := countRows(t, dbs[f], "kv"); got != 20 {
			t.Fatalf("follower %d has %d rows, want 20", f, got)
		}
	}

	// Kill the primary: the lowest live replica (1) must take over.
	reps[0].Close()
	waitFor(t, "replica 1 promotion", func() bool { return reps[1].Role() == Primary })
	if epoch, leader := reps[1].Epoch(); epoch < 2 || leader != 1 {
		t.Fatalf("replica 1 at epoch %d leader %d after failover", epoch, leader)
	}
	if got := reps[1].Metrics().Counter(MetricPromotions).Value(); got != 1 {
		t.Fatalf("promotions counter = %d, want 1", got)
	}

	// The new primary commits with the surviving majority (2 of 3) and
	// the remaining follower converges behind it.
	if _, err := dbs[1].Exec("INSERT INTO kv (k, v) VALUES ('post', 99)"); err != nil {
		t.Fatalf("post-failover insert: %v", err)
	}
	newSeq, _ := dbs[1].ReplState()
	waitFor(t, "follower 2 post-failover convergence", func() bool {
		seq, _ := dbs[2].ReplState()
		return seq == newSeq
	})
	if got := countRows(t, dbs[2], "kv"); got != 21 {
		t.Fatalf("follower 2 has %d rows after failover, want 21", got)
	}
	waitFor(t, "follower 2 adopting the new epoch", func() bool {
		epoch, leader := reps[2].Epoch()
		return epoch >= 2 && leader == 1
	})
}

func TestStaleEpochStreamFenced(t *testing.T) {
	reps, _ := newGroup(t, 3, AckMajority, 0)

	// Wait for the primary's stream to push replica 2 to epoch 1, then
	// impersonate a deposed primary: its stale stream must be rejected
	// with the newer epoch so the sender steps down.
	waitFor(t, "replica 2 adopting epoch 1", func() bool {
		epoch, _ := reps[2].Epoch()
		return epoch >= 1
	})
	conn, err := mdbnet.DialRepl(reps[2].Addr(), nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := conn.Send(&mdbnet.ReplMsg{Kind: mdbnet.ReplHello, From: 9, Epoch: 0}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := conn.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if m.Kind != mdbnet.ReplError {
		t.Fatalf("stale hello answered with %q, want error", m.Kind)
	}
	if m.Epoch < 1 {
		t.Fatalf("rejection carries epoch %d, want >= 1", m.Epoch)
	}
	if !strings.Contains(m.Err, "stale epoch") {
		t.Fatalf("rejection text %q", m.Err)
	}
}

func TestSingleVotePerEpoch(t *testing.T) {
	reps, _ := newGroup(t, 3, AckMajority, 0)

	vote := func(from int, epoch int64) *mdbnet.ReplMsg {
		conn, err := mdbnet.DialRepl(reps[2].Addr(), nil)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		if err := conn.Send(&mdbnet.ReplMsg{Kind: mdbnet.ReplVoteReq, From: from, Epoch: epoch}); err != nil {
			t.Fatalf("send: %v", err)
		}
		m, err := conn.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		return m
	}

	if m := vote(7, 5); !m.Ok {
		t.Fatalf("first candidate at epoch 5 denied: %+v", m)
	}
	if m := vote(8, 5); m.Ok {
		t.Fatal("epoch 5 granted twice")
	}
	if m := vote(8, 4); m.Ok || m.Epoch < 5 {
		t.Fatalf("stale candidate got %+v, want denial carrying epoch >= 5", m)
	}
}

// TestTakeoverTailSeedAvoidsSnapshot: a primary that takes over with
// existing history seeds its tail with a boundary marker, so a
// follower standing exactly at the takeover position can verify its
// history and resume streaming even after new commits — instead of
// eating a full snapshot on every routine failover.
func TestTakeoverTailSeedAvoidsSnapshot(t *testing.T) {
	lis, err := mdbnet.ListenRepl("")
	if err != nil {
		t.Fatal(err)
	}
	db, err := metadb.Open(metadb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE kv (k TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv (k) VALUES ('pre%d')", i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := New(Config{
		Name: "g0", ID: 0, Peers: []string{lis.Addr()}, DB: db, Listener: lis,
		ElectionTimeout: time.Hour, Events: obs.NewEventLog(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	bSeq, bLast := db.ReplState()

	// One commit after the takeover moves shipSeq past the boundary.
	if _, err := db.Exec("INSERT INTO kv (k) VALUES ('post')"); err != nil {
		t.Fatal(err)
	}
	if !rep.tailCovers(bSeq, bLast) {
		t.Fatalf("follower at the takeover boundary (%d,%d) would be snapshotted", bSeq, bLast)
	}
	if rep.tailCovers(bSeq-1, bLast) {
		t.Fatalf("position %d predates the tail and must not verify", bSeq-1)
	}
	batch, ok := rep.tailFrom(bSeq + 1)
	if !ok || len(batch) != 1 || batch[0].seq != bSeq+1 {
		t.Fatalf("tailFrom(%d) = (%d records, %v), want the one post-takeover record", bSeq+1, len(batch), ok)
	}
	if len(batch[0].ops) == 0 {
		t.Fatal("streamed record carries no ops — the boundary marker leaked out")
	}
}

// TestCloseFailsPendingAcks: closing a primary with a commit stuck
// waiting for its quorum must fail that commit immediately, not spin
// on the closed stop channel until AckTimeout.
func TestCloseFailsPendingAcks(t *testing.T) {
	lis0, err := mdbnet.ListenRepl("")
	if err != nil {
		t.Fatal(err)
	}
	// The follower address accepts connections but never speaks the
	// protocol, so no ack ever arrives.
	lis1, err := mdbnet.ListenRepl("")
	if err != nil {
		t.Fatal(err)
	}
	defer lis1.Close()
	db, err := metadb.Open(metadb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rep, err := New(Config{
		Name: "g0", ID: 0, Peers: []string{lis0.Addr(), lis1.Addr()},
		DB: db, Listener: lis0, ElectionTimeout: time.Hour,
		AckTimeout: time.Hour, Events: obs.NewEventLog(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("CREATE TABLE kv (k TEXT)")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the commit reach its ack wait
	if err := rep.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "replica closed") {
			t.Fatalf("pending commit finished with %v, want a replica-closed failure", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("pending commit still blocked after Close")
	}
}

func TestAckAllBlocksOnDeadFollower(t *testing.T) {
	reps, dbs := newGroup(t, 3, AckAll, 200*time.Millisecond)
	if _, err := dbs[0].Exec("CREATE TABLE kv (k TEXT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	// With every follower alive AckAll commits normally.
	if _, err := dbs[0].Exec("INSERT INTO kv (k) VALUES ('a')"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// A dead follower must block acknowledgement (majority would not).
	reps[2].Close()
	_, err := dbs[0].Exec("INSERT INTO kv (k) VALUES ('b')")
	if err == nil {
		t.Fatal("AckAll commit acknowledged with a dead follower")
	}
	if !strings.Contains(err.Error(), "commit not replicated") {
		t.Fatalf("error %q does not surface the replication failure", err)
	}
	if reps[0].Metrics().Counter(MetricAckTimeouts).Value() == 0 {
		t.Fatal("ack timeout not counted")
	}
}

func TestSnapshotResyncForLaggard(t *testing.T) {
	// A follower whose position is out of the primary's in-memory tail
	// must be resynchronized by snapshot. The primary commits history
	// before the group exists, so its tail cannot reach back to record
	// 1 and the empty follower cannot be caught up record by record.
	lis0, err := mdbnet.ListenRepl("")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := mdbnet.ListenRepl("")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{lis0.Addr(), lis1.Addr()}
	db0, _ := metadb.Open(metadb.Options{})
	db1, _ := metadb.Open(metadb.Options{})
	defer db0.Close()
	defer db1.Close()

	// History committed before the replica group exists: the primary's
	// in-memory tail will not reach back to it.
	if _, err := db0.Exec("CREATE TABLE kv (k TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db0.Exec(fmt.Sprintf("INSERT INTO kv (k) VALUES ('pre%d')", i)); err != nil {
			t.Fatal(err)
		}
	}

	ev := obs.NewEventLog(64)
	rep0, err := New(Config{
		Name: "g0", ID: 0, Peers: peers, DB: db0, Listener: lis0,
		Heartbeat: 10 * time.Millisecond, ElectionTimeout: time.Hour,
		Events: ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := New(Config{
		Name: "g0", ID: 1, Peers: peers, DB: db1, Listener: lis1,
		Heartbeat: 10 * time.Millisecond, ElectionTimeout: time.Hour,
		Events: ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep0.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	rep0.Start()
	rep1.Start()
	defer rep0.Close()
	defer rep1.Close()

	wantSeq, _ := db0.ReplState()
	waitFor(t, "snapshot resync", func() bool {
		seq, _ := db1.ReplState()
		return seq >= wantSeq && rep0.Metrics().Counter(MetricResyncs).Value() > 0
	})
	if got := countRows(t, db1, "kv"); got != 5 {
		t.Fatalf("resynced follower has %d rows, want 5", got)
	}
	if len(ev.ByType(obs.EventMetaResync)) == 0 {
		t.Fatal("resync event not emitted")
	}
}
