// Package metarepl makes each catalog shard an R-way replica group: a
// small log-replication core in the raft family, specialized to the
// metadb WAL (DESIGN.md §13).
//
// One replica holds the primary lease for the group's current epoch.
// It is the only replica whose mdbnet server accepts SQL (the others
// reject with a redirect), and every transaction it commits is shipped
// — in commit order, epoch-stamped — to the followers over the mdbnet
// replication stream. A commit is acknowledged to the client only once
// enough replicas have it durable (majority by default); followers
// apply records to their own metadb and WAL, so any of them can take
// over with a complete acknowledged history.
//
// Failover is an election: when a follower stops hearing heartbeats it
// campaigns at the next epoch, staggered by replica ID so the lowest
// live follower normally wins without split votes. Votes are granted
// at most once per epoch (the epoch is durable before the grant) and
// only to candidates whose log position (last record's epoch, then
// sequence number) is at least the voter's — the raft argument that a
// majority-acknowledged record survives into every electable
// candidate. Epoch stamps fence the deposed: a primary that lost its
// lease has its shipped records and heartbeats rejected with the newer
// epoch, steps down on sight of it, and can never again assemble the
// majority a commit acknowledgement requires.
//
// A follower whose log cannot be extended record by record (it was
// down past the primary's retained tail, or it diverged across a
// failover) is resynchronized with a full state snapshot and then
// streams normally.
package metarepl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/obs"
)

// Replication metric names.
const (
	// MetricShipLag is the primary's view of how many committed
	// records its slowest connected follower still has to acknowledge.
	MetricShipLag = "metarepl_ship_lag"
	// MetricPromotions counts elections won — every failover takeover
	// (the bootstrap of a fresh group is not counted).
	MetricPromotions = "metarepl_promotions_total"
	// MetricRecordsShipped counts records sent to followers (each
	// follower counts separately).
	MetricRecordsShipped = "metarepl_records_shipped_total"
	// MetricResyncs counts full-snapshot resynchronizations of
	// followers that could not be caught up record by record.
	MetricResyncs = "metarepl_resyncs_total"
	// MetricAckTimeouts counts commits that failed because a majority
	// did not acknowledge within the ack timeout.
	MetricAckTimeouts = "metarepl_ack_timeouts_total"
)

// Role is a replica's current position in the group.
type Role int

const (
	// Follower applies shipped records and votes in elections.
	Follower Role = iota
	// Primary holds the epoch's lease: accepts SQL, ships records.
	Primary
)

func (r Role) String() string {
	if r == Primary {
		return "primary"
	}
	return "follower"
}

// Ack selects the durability quorum for commit acknowledgement.
type Ack int

const (
	// AckMajority acknowledges once ceil((R+1)/2) replicas (including
	// the primary) are durable — the default, and the weakest setting
	// that makes an acknowledged commit survive any minority failure.
	AckMajority Ack = iota
	// AckAll waits for every replica; a single dead follower blocks
	// writes, but any single surviving replica has everything.
	AckAll
)

// Config describes one replica's place in its group.
type Config struct {
	// Name labels the group in events and logs (e.g. "meta0").
	Name string
	// ID is this replica's index into Peers/SQLAddrs.
	ID int
	// Peers lists the replication-stream addresses of every group
	// member, index-aligned across all replicas.
	Peers []string
	// SQLAddrs lists the client-facing mdbnet addresses, index-aligned
	// with Peers; followers put SQLAddrs[leader] in their redirects.
	SQLAddrs []string
	// DB is this replica's database.
	DB *metadb.DB
	// Listener, when set, is a pre-bound replication listener (tests
	// bind ephemeral ports before assembling Peers). Nil listens on
	// Peers[ID].
	Listener *mdbnet.ReplListener
	// Ack is the commit-acknowledgement quorum (default AckMajority).
	Ack Ack
	// Heartbeat is the primary's keep-alive interval (default 25ms).
	Heartbeat time.Duration
	// ElectionTimeout is the base silence a follower tolerates before
	// campaigning; replica i waits ElectionTimeout + i*ElectionTimeout/2,
	// so the lowest live follower campaigns first (default 150ms).
	ElectionTimeout time.Duration
	// AckTimeout bounds how long a commit waits for its quorum before
	// failing with "commit not replicated" (default 5s).
	AckTimeout time.Duration
	// Dial overrides the replication-stream transport (fault
	// injection, tests).
	Dial mdbnet.DialFunc
	// Registry receives the metarepl_* metrics (default: a private
	// registry, reachable via Metrics).
	Registry *obs.Registry
	// Events receives promotion/step-down/resync events (default: the
	// process-wide log).
	Events *obs.EventLog
}

// record is one buffered log entry awaiting shipment.
type record struct {
	seq   int64
	epoch int64
	ops   []metadb.RedoOp
}

// tailCap bounds the primary's in-memory record tail; followers that
// fall further behind are resynced by snapshot.
const tailCap = 4096

// Replica is one member of a catalog replica group. Create with New,
// then Start (or Bootstrap on the designated first primary of a fresh
// group), and wire Gate into the replica's mdbnet server.
type Replica struct {
	cfg Config
	db  *metadb.DB
	lis *mdbnet.ReplListener
	reg *obs.Registry
	ev  *obs.EventLog

	mu        sync.Mutex
	role      Role
	epoch     int64
	leader    int // replica ID holding the lease; -1 while unknown
	lastHeard time.Time
	closed    bool
	stop      chan struct{}
	conns     map[*mdbnet.ReplConn]struct{} // accepted, still-open connections

	// Primary state.
	shipSeq  int64           // last committed (and buffered) sequence number
	tail     []record        // recent records; tail[0].seq..shipSeq contiguous
	acked    map[int]int64   // per-follower durable watermark
	ackWake  chan struct{}   // closed+replaced whenever acked/role changes
	shippers map[int]*shipper

	// Follower state. Acknowledgements must never over-report
	// durability, so the stream handler tracks the highest group-commit
	// wait target still possibly in flight (applyWait) and the highest
	// sequence number proven durable (durableSeq).
	applyWait  int64
	durableSeq int64

	wg sync.WaitGroup
}

// New creates a replica. It does not touch the network until Start.
func New(cfg Config) (*Replica, error) {
	if cfg.ID < 0 || cfg.ID >= len(cfg.Peers) {
		return nil, fmt.Errorf("metarepl: ID %d outside peer list of %d", cfg.ID, len(cfg.Peers))
	}
	if len(cfg.SQLAddrs) != 0 && len(cfg.SQLAddrs) != len(cfg.Peers) {
		return nil, fmt.Errorf("metarepl: %d SQL addresses for %d peers", len(cfg.SQLAddrs), len(cfg.Peers))
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("metarepl: nil DB")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 25 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Events == nil {
		cfg.Events = obs.Events()
	}
	lis := cfg.Listener
	if lis == nil {
		var err error
		lis, err = mdbnet.ListenRepl(cfg.Peers[cfg.ID])
		if err != nil {
			return nil, err
		}
	}
	epoch, leader := cfg.DB.ReplEpoch()
	if epoch == 0 {
		leader = -1 // a group that never had a primary has no leader
	}
	r := &Replica{
		cfg:       cfg,
		db:        cfg.DB,
		lis:       lis,
		reg:       cfg.Registry,
		ev:        cfg.Events,
		role:      Follower,
		epoch:     epoch,
		leader:    leader,
		lastHeard: time.Now(),
		stop:      make(chan struct{}),
		conns:     make(map[*mdbnet.ReplConn]struct{}),
		acked:     make(map[int]int64),
		ackWake:   make(chan struct{}),
	}
	if len(cfg.Peers) == 1 {
		r.leader = cfg.ID
	}
	return r, nil
}

// Metrics returns the replica's metric registry.
func (r *Replica) Metrics() *obs.Registry { return r.reg }

// Addr returns the replication-stream listen address.
func (r *Replica) Addr() string { return r.lis.Addr() }

// Start begins serving the replication protocol: accepting streams and
// votes, and campaigning when the primary goes silent.
func (r *Replica) Start() {
	r.wg.Add(2)
	go r.acceptLoop()
	go r.electionLoop()
}

// Bootstrap makes this replica the primary of a brand-new group at
// epoch 1 without an election. Only valid when the group has never had
// a primary (durable epoch 0); restarted replicas must rejoin as
// followers and let elections decide.
func (r *Replica) Bootstrap() error {
	if epoch, _ := r.db.ReplEpoch(); epoch != 0 {
		return fmt.Errorf("metarepl: bootstrap of a group already at epoch %d", epoch)
	}
	return r.becomePrimary(1, false)
}

// Role returns the replica's current role.
func (r *Replica) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// Epoch returns the replica's current epoch and the lease holder it
// believes in (-1 while unknown).
func (r *Replica) Epoch() (int64, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.leader
}

// Gate returns the admission check for this replica's mdbnet server:
// nil for the primary, a NotPrimaryError redirect for followers.
func (r *Replica) Gate() func() error {
	return func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.role == Primary {
			return nil
		}
		addr := ""
		if r.leader >= 0 && r.leader < len(r.cfg.SQLAddrs) && r.leader != r.cfg.ID {
			addr = r.cfg.SQLAddrs[r.leader]
		}
		return mdbnet.NotPrimaryError(addr, r.epoch)
	}
}

// Close stops the replica: listener, shippers, election timer. The
// database is left open (and with its replication hooks removed).
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.stop)
	shippers := r.shippers
	r.shippers = nil
	conns := make([]*mdbnet.ReplConn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.wake()
	r.mu.Unlock()

	r.db.SetReplHooks(nil)
	err := r.lis.Close()
	for _, s := range shippers {
		s.halt()
	}
	// Accepted streams block in Recv; closing them lets their handlers
	// drain so Wait below terminates.
	for _, c := range conns {
		c.Close()
	}
	r.wg.Wait()
	return err
}

// track registers an accepted connection for shutdown; it reports
// false (and closes the connection) when the replica is already
// closed.
func (r *Replica) track(c *mdbnet.ReplConn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conns[c] = struct{}{}
	return true
}

func (r *Replica) untrack(c *mdbnet.ReplConn) {
	r.mu.Lock()
	delete(r.conns, c)
	r.mu.Unlock()
}

// wake releases every goroutine waiting on acked/role changes. Caller
// holds r.mu.
func (r *Replica) wake() {
	close(r.ackWake)
	r.ackWake = make(chan struct{})
}

// quorum is the number of durable replicas (including the primary) a
// commit acknowledgement requires.
func (r *Replica) quorum() int {
	if r.cfg.Ack == AckAll {
		return len(r.cfg.Peers)
	}
	return len(r.cfg.Peers)/2 + 1
}

// ---------------------------------------------------------------------
// Primary side: shipping and commit acknowledgement.

// onShip is the metadb commit hook: called under the database write
// lock in commit order. It only buffers and notifies.
func (r *Replica) onShip(seq, epoch int64, ops []metadb.RedoOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != Primary {
		return
	}
	r.tail = append(r.tail, record{seq: seq, epoch: epoch, ops: ops})
	if len(r.tail) > tailCap {
		r.tail = r.tail[len(r.tail)-tailCap:]
	}
	r.shipSeq = seq
	r.updateLagLocked()
	for _, s := range r.shippers {
		s.notify()
	}
}

// onAck is the metadb acknowledgement gate: block until the commit's
// quorum is durable.
func (r *Replica) onAck(seq int64) error {
	deadline := time.Now().Add(r.cfg.AckTimeout)
	r.mu.Lock()
	for {
		if r.closed {
			// Close fires r.stop, which would otherwise turn the select
			// below into a busy loop (role stays Primary, quorum never
			// arrives); fail the commit immediately instead.
			r.mu.Unlock()
			return fmt.Errorf("metarepl: replica closed before seq %d reached a majority", seq)
		}
		if r.role != Primary {
			epoch := r.epoch
			r.mu.Unlock()
			return fmt.Errorf("metarepl: deposed at epoch %d before seq %d reached a majority", epoch, seq)
		}
		count := 1 // self: locally durable before Ack runs
		for _, a := range r.acked {
			if a >= seq {
				count++
			}
		}
		if count >= r.quorum() {
			r.mu.Unlock()
			return nil
		}
		if !time.Now().Before(deadline) {
			r.mu.Unlock()
			r.reg.Counter(MetricAckTimeouts).Inc()
			return fmt.Errorf("metarepl: seq %d not on a majority within %v (%d/%d durable)",
				seq, r.cfg.AckTimeout, count, r.quorum())
		}
		ch := r.ackWake
		r.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
		case <-r.stop:
		}
		r.mu.Lock()
	}
}

// updateLagLocked refreshes the ship-lag gauge: records the slowest
// follower still owes. Caller holds r.mu.
func (r *Replica) updateLagLocked() {
	if r.role != Primary || len(r.cfg.Peers) == 1 {
		return
	}
	min := int64(-1)
	for id, a := range r.acked {
		if id == r.cfg.ID {
			continue
		}
		if min < 0 || a < min {
			min = a
		}
	}
	if min < 0 {
		min = 0
	}
	lag := r.shipSeq - min
	if lag < 0 {
		lag = 0
	}
	r.reg.Gauge(MetricShipLag).Set(lag)
}

// becomePrimary installs this replica as the epoch's lease holder:
// durable epoch, replication hooks, one shipper per follower.
func (r *Replica) becomePrimary(epoch int64, elected bool) error {
	if err := r.db.SetReplEpoch(epoch, r.cfg.ID); err != nil {
		return err
	}
	seq, last := r.db.ReplState()

	r.mu.Lock()
	if r.closed || epoch < r.epoch {
		r.mu.Unlock()
		return fmt.Errorf("metarepl: lost epoch %d before takeover", epoch)
	}
	r.role = Primary
	r.epoch = epoch
	r.leader = r.cfg.ID
	r.shipSeq = seq
	r.tail = nil
	if seq > 0 {
		// Seed the tail with a boundary marker — the last record's
		// position, no ops. A follower handshaking at exactly (seq,
		// last) after new commits have moved shipSeq on can then verify
		// its history against the marker and resume streaming, instead
		// of taking a full snapshot on every routine failover. The
		// marker itself is never shipped: any follower that passes
		// tailCovers is at seq or beyond, so streaming starts at seq+1.
		r.tail = []record{{seq: seq, epoch: last}}
	}
	r.acked = make(map[int]int64)
	r.shippers = make(map[int]*shipper)
	for id := range r.cfg.Peers {
		if id == r.cfg.ID {
			continue
		}
		s := newShipper(r, id, epoch)
		r.shippers[id] = s
		r.wg.Add(1)
		go s.run()
	}
	r.wake()
	r.mu.Unlock()

	// The primary's own SQL gate opens via role; hooks make commits
	// ship and wait for their quorum.
	r.db.SetReplHooks(&metadb.ReplHooks{Ship: r.onShip, Ack: r.onAck})
	if elected {
		r.reg.Counter(MetricPromotions).Inc()
		r.ev.Emit(obs.EventMetaPromotion, "metarepl", map[string]string{
			"group":   r.cfg.Name,
			"replica": fmt.Sprint(r.cfg.ID),
			"epoch":   fmt.Sprint(epoch),
			"seq":     fmt.Sprint(seq),
		})
	}
	return nil
}

// stepTo adopts a (higher or equal) epoch as a follower. leader is the
// epoch's known lease holder or -1. Demotes a primary, halts its
// shippers, fails its pending acknowledgements.
//
// persist controls whether a higher epoch is durably recorded; pass
// false when the caller already persisted it (the vote path, via
// metadb.GrantVote). The returned error is a genuine persistence
// failure only — a concurrent adoption of an even higher epoch is a
// benign lost race and reported as nil. Callers that go on to
// acknowledge anything at the new epoch (the stream handler) must
// abort on error; callers merely reacting to a fence may ignore it,
// because vote and apply safety rest on the durable writes inside
// metadb.GrantVote and ApplyShipped, not on this one.
func (r *Replica) stepTo(epoch int64, leader int, heard, persist bool) error {
	r.mu.Lock()
	if epoch < r.epoch || r.closed {
		r.mu.Unlock()
		return nil
	}
	wasPrimary := r.role == Primary && epoch > r.epoch
	if r.role == Primary && !wasPrimary {
		// Same epoch as our own lease: nothing to adopt.
		r.mu.Unlock()
		return nil
	}
	higher := epoch > r.epoch
	r.role = Follower
	r.epoch = epoch
	if leader >= 0 || higher {
		r.leader = leader
	}
	if heard {
		r.lastHeard = time.Now()
	}
	var shippers map[int]*shipper
	if wasPrimary {
		shippers = r.shippers
		r.shippers = nil
	}
	r.wake()
	r.mu.Unlock()

	if wasPrimary {
		r.db.SetReplHooks(nil)
		for _, s := range shippers {
			s.halt()
		}
		r.ev.Emit(obs.EventMetaStepDown, "metarepl", map[string]string{
			"group":   r.cfg.Name,
			"replica": fmt.Sprint(r.cfg.ID),
			"epoch":   fmt.Sprint(epoch),
		})
	}
	if higher && persist {
		// Durable before anything is acknowledged at the new epoch. A
		// concurrent adoption of an even higher epoch wins the race and
		// surfaces as a regression error — the correct outcome, not a
		// failure. Anything else is an I/O problem the caller must see.
		if err := r.db.SetReplEpoch(epoch, maxInt(leader, -1)); err != nil {
			var reg *metadb.ErrEpochRegression
			if !errors.As(err, &reg) {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tailFrom copies buffered records with seq >= from. The second return
// is false when the tail no longer reaches back that far (snapshot
// needed). Caller must not hold r.mu.
func (r *Replica) tailFrom(from int64) ([]record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from > r.shipSeq {
		return nil, from == r.shipSeq+1
	}
	if len(r.tail) == 0 || r.tail[0].seq > from {
		return nil, false
	}
	i := sort.Search(len(r.tail), func(i int) bool { return r.tail[i].seq >= from })
	out := make([]record, len(r.tail)-i)
	copy(out, r.tail[i:])
	return out, true
}

// recordAck folds a follower's durable watermark in and wakes
// acknowledgement waiters.
func (r *Replica) recordAck(peer int, seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.acked[peer] {
		r.acked[peer] = seq
		r.updateLagLocked()
		r.wake()
	}
}
