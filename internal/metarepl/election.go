package metarepl

import (
	"time"

	"dpfs/internal/metadb/mdbnet"
)

// This file is failover: a follower that stops hearing from its
// primary campaigns at the next epoch. Campaign timing is staggered by
// replica ID — replica i tolerates ElectionTimeout + i*ElectionTimeout/2
// of silence — so after a primary death the lowest live replica
// normally reaches a majority before anyone else even starts, making
// failover deterministic in the common case without weakening the
// vote-safety rules that handle the races.

func (r *Replica) electionLoop() {
	defer r.wg.Done()
	silence := r.cfg.ElectionTimeout + time.Duration(r.cfg.ID)*r.cfg.ElectionTimeout/2
	tick := time.NewTicker(r.cfg.ElectionTimeout / 8)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		quiet := r.role == Follower && !r.closed && time.Since(r.lastHeard) > silence
		r.mu.Unlock()
		if quiet {
			r.campaign()
		}
	}
}

// campaign runs one election round at the next epoch. The self-vote is
// a metadb.GrantVote like any other: durable before any request goes
// out (a crashed-and-restarted candidate cannot hand its epoch's vote
// to someone else), strictly epoch-increasing (it cannot stack on top
// of a vote already granted at the same epoch to someone else), and
// the advertised log position is read atomically with the grant.
func (r *Replica) campaign() {
	r.mu.Lock()
	if r.closed || r.role != Follower {
		r.mu.Unlock()
		return
	}
	newEpoch := r.epoch + 1
	r.mu.Unlock()

	seq, last, granted, err := r.db.GrantVote(newEpoch, -1, 0)
	if err != nil || !granted {
		return // a higher epoch landed durably first (or I/O failed); retry later
	}
	r.mu.Lock()
	if r.closed || newEpoch < r.epoch {
		r.mu.Unlock()
		return
	}
	r.epoch = newEpoch
	r.leader = -1
	r.lastHeard = time.Now() // one full round before escalating again
	r.mu.Unlock()

	replies := make(chan *mdbnet.ReplMsg, len(r.cfg.Peers))
	for id, addr := range r.cfg.Peers {
		if id == r.cfg.ID {
			continue
		}
		go func(addr string) {
			conn, err := mdbnet.DialRepl(addr, r.cfg.Dial)
			if err != nil {
				replies <- nil
				return
			}
			defer conn.Close()
			if err := conn.Send(&mdbnet.ReplMsg{
				Kind: mdbnet.ReplVoteReq, From: r.cfg.ID, Epoch: newEpoch,
				Seq: seq, LastEpoch: last,
			}); err != nil {
				replies <- nil
				return
			}
			m, err := conn.Recv()
			if err != nil || m.Kind != mdbnet.ReplVote {
				replies <- nil
				return
			}
			replies <- m
		}(addr)
	}

	grants := 1 // the durable self-vote
	pending := len(r.cfg.Peers) - 1
	round := time.After(r.cfg.ElectionTimeout)
	for grants < r.quorum() && pending > 0 {
		select {
		case m := <-replies:
			pending--
			if m == nil {
				continue
			}
			if m.Ok {
				grants++
			} else if m.Epoch > newEpoch {
				// Fence reaction only; vote safety does not depend on
				// this persist, so a failure here is not fatal.
				_ = r.stepTo(m.Epoch, -1, false, true)
				return
			}
		case <-round:
			pending = 0
		case <-r.stop:
			return
		}
	}
	if grants < r.quorum() {
		return // split or dead round; the next timeout campaigns higher
	}
	r.mu.Lock()
	won := !r.closed && r.epoch == newEpoch && r.role == Follower
	r.mu.Unlock()
	if won {
		_ = r.becomePrimary(newEpoch, true)
	}
}
