package obs

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas are ignored
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(137)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 137 || s.Min != 137 || s.Max != 137 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Every quantile of a single observation is that observation: the
	// bucket upper bound (255) clamps to the observed max.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 137 {
			t.Fatalf("Quantile(%v) = %d, want 137", q, got)
		}
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile = %d, want 0 (bucket 0)", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	huge := int64(1) << 62 // far past the last regular bucket
	h.Record(huge)
	if s := h.Snapshot(); s.Max != huge {
		t.Fatalf("max = %d, want %d", s.Max, huge)
	}
	// The overflow bucket reports the observed max, not an unbounded
	// power of two.
	if got := h.Quantile(0.99); got != huge {
		t.Fatalf("Quantile = %d, want %d", got, huge)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	// Power-of-two buckets bound each quantile from above within 2x.
	if s.P50 < 500 || s.P50 > 1000 {
		t.Fatalf("p50 = %d, want within [500,1000]", s.P50)
	}
	if s.Max != 1000 || s.Min != 1 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	h.Record(7)
	if s := h.Snapshot(); s.Min != 7 || s.Max != 7 {
		t.Fatalf("after reset+record: %+v", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity not stable")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("gauge identity not stable")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("histogram identity not stable")
	}
	want := []string{"a", "a", "a"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
}

func TestRegistryAdoptHistogram(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram()
	h.Record(9)
	r.RegisterHistogram("adopted", h)
	r.RegisterHistogram("ignored", nil)
	if got := r.Histogram("adopted"); got != h {
		t.Fatal("adopted histogram not returned by name")
	}
	if s := r.Snapshot(); s.Histograms["adopted"].Count != 1 {
		t.Fatalf("snapshot = %+v", s.Histograms)
	}
	if _, ok := r.Snapshot().Histograms["ignored"]; ok {
		t.Fatal("nil histogram was registered")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run with -race to check the synchronization.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	names := []string{"x", "y", "z"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n).Add(1)
				r.Histogram(n).Record(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.Names()
				}
			}
		}(g)
	}
	wg.Wait()
	// 8 goroutines, i in [0,1000): i%3==0 hits 334 times, 1 and 2 hit
	// 333 times each.
	s := r.Snapshot()
	for i, n := range names {
		want := int64(8 * 333)
		if i == 0 {
			want = 8 * 334
		}
		if got := s.Counters[n]; got != want {
			t.Fatalf("counter %s = %d, want %d", n, got, want)
		}
		if got := s.Histograms[n].Count; got != want {
			t.Fatalf("histogram %s count = %d, want %d", n, got, want)
		}
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(5)
	r.Histogram("h").Record(7)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}
