package obs

import (
	"sync"
	"time"
)

// Event types recorded in the cluster event log. These are state
// transitions that counters cannot express: an operator scanning
// /debug/events should be able to reconstruct "what happened" from
// these alone.
const (
	// EventBreakerOpen fires when a server's circuit breaker opens
	// after consecutive transport failures.
	EventBreakerOpen = "breaker_open"
	// EventBreakerHalfOpen fires when a cooled-down breaker admits a
	// single probe request.
	EventBreakerHalfOpen = "breaker_half_open"
	// EventBreakerClose fires when a probe succeeds and the breaker
	// resets.
	EventBreakerClose = "breaker_close"
	// EventRetryExhausted fires when a request runs out of retry
	// budget and fails back to the caller.
	EventRetryExhausted = "retry_exhausted"
	// EventDegradedWrite fires when a replicated write commits on a
	// quorum smaller than the full replica set.
	EventDegradedWrite = "degraded_write"
	// EventFailover fires when a replicated read abandons a server and
	// is served by a surviving replica.
	EventFailover = "failover"
	// EventHealthEscalation fires when the repair prober moves a
	// server between alive, suspect, and dead.
	EventHealthEscalation = "health_escalation"
	// EventRepairPlan fires when the repair runner plans copies for a
	// file with lost bricks.
	EventRepairPlan = "repair_plan"
	// EventRepairCommit fires when a repaired file's new distribution
	// is committed to the catalog.
	EventRepairCommit = "repair_commit"
	// EventRepairCleanup fires when a repaired file's old-generation
	// subfiles are removed.
	EventRepairCleanup = "repair_cleanup"
	// EventDrainBegin fires when a server starts draining for
	// shutdown.
	EventDrainBegin = "drain_begin"
	// EventDrainEnd fires when a drain completes (cleanly or by
	// timeout).
	EventDrainEnd = "drain_end"
	// EventStaleGen fires when a client request is rejected because it
	// addresses a generation the server has already superseded.
	EventStaleGen = "cache_stale_gen"
	// EventSlowRequest fires when a traced request exceeds the
	// configured slow-request threshold; the event carries the
	// stitched trace rendering.
	EventSlowRequest = "slow_request"
	// EventMetaPromotion fires when a catalog replica wins an election
	// and takes over as its shard's primary (DESIGN.md §13).
	EventMetaPromotion = "meta_promotion"
	// EventMetaStepDown fires when a catalog primary discovers a
	// higher epoch and demotes itself to follower.
	EventMetaStepDown = "meta_step_down"
	// EventMetaResync fires when a follower's log cannot be extended
	// record by record and the primary ships a full snapshot instead.
	EventMetaResync = "meta_resync"
	// EventMetaUnreachable fires when the repair prober cannot reach
	// the catalog and falls back to planning from its last gossip
	// snapshot (DESIGN.md §14).
	EventMetaUnreachable = "meta_unreachable"
	// EventGossipSuspect fires when the gossip health table moves a
	// server into suspect (or dead), carrying the observer count.
	EventGossipSuspect = "gossip_suspect"
	// EventGossipMemberJoin fires when gossip discovers a server not
	// previously in the local membership table.
	EventGossipMemberJoin = "gossip_member_join"
)

// Event is one structured entry in the cluster event log.
type Event struct {
	// Seq is a monotonically increasing sequence number within one
	// EventLog (survives ring eviction, so gaps reveal dropped
	// history).
	Seq uint64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Component names the emitting subsystem ("client", "server/io-3",
	// "repair", ...).
	Component string `json:"component,omitempty"`
	// TraceID links the event to a trace when the triggering request
	// was sampled.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Fields carries event-specific details (server addr, path, error
	// text, ...).
	Fields map[string]string `json:"fields,omitempty"`
}

// EventLog is a bounded structured ring of cluster events. Emitting is
// cheap and safe from any goroutine; the storage is fixed-size and
// eviction advances the head without reallocating.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	head int
	n    int
	seq  uint64
}

// NewEventLog builds a log keeping the most recent capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Emit records an event. A nil receiver is a no-op, so call sites can
// emit unconditionally. Fields is retained, not copied: do not mutate
// it after emitting.
func (l *EventLog) Emit(typ, component string, fields map[string]string) {
	l.EmitTrace(typ, component, 0, fields)
}

// EmitTrace records an event linked to a trace ID (zero for
// untraced).
func (l *EventLog) EmitTrace(typ, component string, traceID uint64, fields map[string]string) {
	if l == nil {
		return
	}
	e := Event{Time: time.Now(), Type: typ, Component: component, TraceID: traceID, Fields: fields}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if l.n < len(l.buf) {
		l.buf[(l.head+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
	}
	l.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.head+i)%len(l.buf)])
	}
	return out
}

// ByType returns the recorded events of one type, oldest first.
func (l *EventLog) ByType(typ string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// Len reports how many events are held.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped reports how many events have been evicted from the ring.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - uint64(l.n)
}

// defaultEvents is the process-wide event log used when a component is
// not given an explicit one.
var defaultEvents = NewEventLog(1024)

// Events returns the process-wide default event log. Daemons serve it
// at /debug/events; libraries emit to it unless configured with their
// own log.
func Events() *EventLog {
	return defaultEvents
}
