package obs

import "context"

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span, so deeper
// layers of a handler can attach child spans without threading a span
// argument through every call.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by the context, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
