package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// promtool-style validation of text exposition, shared by the package
// tests and scripts/obslint so the CI gate and the unit tests agree on
// what "valid /metrics output" means.

var (
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (-?\d+(\.\d+)?(e[+-]?\d+)?)$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// LintPrometheus validates Prometheus text exposition the way
// `promtool check metrics` would, limited to what this repo emits:
// every line must be a TYPE comment or a well-formed sample, a TYPE
// line must precede its samples, histogram buckets must be cumulative
// and end at +Inf, and the +Inf bucket must equal _count. It returns
// one message per violation (empty means valid).
func LintPrometheus(r io.Reader) []string {
	var errs []string
	typed := map[string]string{}
	type histState struct {
		prev    float64
		lastLe  string
		count   float64
		infSeen bool
		inf     float64
	}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			m := promTypeRe.FindStringSubmatch(text)
			if m == nil {
				errs = append(errs, fmt.Sprintf("line %d: bad comment %q", line, text))
				continue
			}
			typed[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			errs = append(errs, fmt.Sprintf("line %d: bad sample %q", line, text))
			continue
		}
		name, le, valStr := m[1], m[3], m[4]
		val, _ := strconv.ParseFloat(valStr, 64)
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] == "histogram" {
				base = b
				break
			}
		}
		if _, ok := typed[base]; !ok {
			errs = append(errs, fmt.Sprintf("line %d: sample %s before TYPE", line, name))
			continue
		}
		if typed[base] == "histogram" {
			h := hists[base]
			if h == nil {
				h = &histState{}
				hists[base] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					errs = append(errs, fmt.Sprintf("line %d: bucket without le", line))
				}
				if val < h.prev {
					errs = append(errs, fmt.Sprintf("line %d: bucket le=%q not cumulative (%v < %v)", line, le, val, h.prev))
				}
				h.prev, h.lastLe = val, le
				if le == "+Inf" {
					h.infSeen, h.inf = true, val
				}
			case strings.HasSuffix(name, "_count"):
				h.count = val
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Sprintf("read: %v", err))
	}
	for name, h := range hists {
		if !h.infSeen {
			errs = append(errs, fmt.Sprintf("%s: no +Inf bucket", name))
		} else if h.inf != h.count {
			errs = append(errs, fmt.Sprintf("%s: +Inf bucket %v != count %v", name, h.inf, h.count))
		}
		if h.lastLe != "+Inf" {
			errs = append(errs, fmt.Sprintf("%s: last bucket le=%q, want +Inf", name, h.lastLe))
		}
	}
	return errs
}
