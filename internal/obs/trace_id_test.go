package obs

import (
	"testing"
	"time"
)

func TestSpanIdentityPropagation(t *testing.T) {
	root := NewRootSpan("client.request")
	if root.TraceID == 0 || root.SpanID == 0 {
		t.Fatalf("root ids not assigned: %+v", root)
	}
	child := root.Child("server.rpc")
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID || child.SpanID == 0 {
		t.Fatalf("child identity wrong: %+v", child)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child reused parent span id")
	}

	tc := child.Context()
	if !tc.Sampled || tc.TraceID != root.TraceID || tc.SpanID != child.SpanID {
		t.Fatalf("context = %+v", tc)
	}
	remote := StartRemote("server.request", tc)
	if remote.TraceID != root.TraceID || remote.ParentID != child.SpanID {
		t.Fatalf("remote identity wrong: %+v", remote)
	}

	// Untraced spans stay untraced and propagate nothing.
	plain := NewSpan("x")
	if c := plain.Child("y"); c.TraceID != 0 || c.SpanID != 0 {
		t.Fatalf("untraced child got identity: %+v", c)
	}
	if tc := plain.Context(); tc != (TraceContext{}) {
		t.Fatalf("untraced context = %+v", tc)
	}
	if s := StartRemote("z", TraceContext{}); s.TraceID != 0 {
		t.Fatalf("remote span from zero context got identity: %+v", s)
	}
	var nilSpan *Span
	if tc := nilSpan.Context(); tc != (TraceContext{}) {
		t.Fatal("nil span context not zero")
	}
}

func TestEncodeDecodeSpans(t *testing.T) {
	root := StartRemote("server.request", TraceContext{TraceID: 7, SpanID: 9, Sampled: true})
	root.Op = "read"
	root.Path = "/a/b"
	root.Server = "io-2"
	root.Bricks = 4
	sub := root.Child("server.subfile")
	sub.Extents = 3
	sub.Bytes = 4096
	sub.End()
	root.End()

	data := EncodeSpans(root)
	roots, err := DecodeSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	got := roots[0]
	if got.TraceID != 7 || got.ParentID != 9 || got.Name != "server.request" ||
		got.Op != "read" || got.Path != "/a/b" || got.Server != "io-2" || got.Bricks != 4 {
		t.Fatalf("root = %+v", got)
	}
	if got.Duration <= 0 || got.Start.IsZero() {
		t.Fatalf("timing lost: %+v", got)
	}
	kids := got.Children()
	if len(kids) != 1 || kids[0].Name != "server.subfile" || kids[0].Extents != 3 || kids[0].Bytes != 4096 {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].ParentID != got.SpanID || kids[0].TraceID != 7 {
		t.Fatalf("child identity lost: %+v", kids[0])
	}

	// Garbage and truncation must fail decode cleanly, never panic.
	if _, err := DecodeSpans(nil); err == nil {
		t.Fatal("nil decoded")
	}
	for i := 0; i < len(data); i++ {
		if _, err := DecodeSpans(data[:i]); err == nil {
			t.Fatalf("prefix %d decoded", i)
		}
	}
	if _, err := DecodeSpans(append(append([]byte(nil), data...), 0xff)); err == nil {
		t.Fatal("trailing garbage decoded")
	}

	if EncodeSpans(nil) != nil {
		t.Fatal("nil root should encode to nil")
	}
}

func TestTraceLogByTraceID(t *testing.T) {
	l := NewTraceLog(4)
	a := NewRootSpan("a")
	b := NewRootSpan("b")
	l.Add(&Trace{Root: a})
	l.Add(&Trace{Root: b})
	if got := l.ByTraceID(a.TraceID); got == nil || got.Root != a {
		t.Fatal("lookup by trace id failed")
	}
	if l.ByTraceID(0) != nil {
		t.Fatal("zero id must not match")
	}
}

func TestTraceLogRingNoRealloc(t *testing.T) {
	l := NewTraceLog(3)
	for i := 0; i < 10; i++ {
		l.Add(&Trace{Root: NewSpan("s")})
	}
	if l.Len() != 3 || len(l.buf) != 3 {
		t.Fatalf("ring grew: len=%d cap=%d", l.Len(), len(l.buf))
	}
	// Ordering survives wraparound.
	first := &Trace{Root: NewSpan("first")}
	last := &Trace{Root: NewSpan("last")}
	l.Add(first)
	l.Add(&Trace{Root: NewSpan("mid")})
	l.Add(last)
	got := l.Traces()
	if got[0] != first || got[2] != last {
		t.Fatalf("order wrong after wraparound")
	}
	if l.Last() != last {
		t.Fatal("Last wrong after wraparound")
	}
}

func TestSpanStartRemoteTiming(t *testing.T) {
	s := StartRemote("x", TraceContext{TraceID: 1, SpanID: 2, Sampled: true})
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration < time.Millisecond {
		t.Fatalf("duration = %v", s.Duration)
	}
}
