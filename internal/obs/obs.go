// Package obs is the DPFS observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with quantile snapshots) plus lightweight span-style
// request tracing. Every layer of the stack registers its own metrics
// here — the client engine (internal/core), the I/O server
// (internal/server), the metadata database (internal/metadb and
// mdbnet), the collective layer and the netsim device models — and the
// debug HTTP endpoint, the shell's stats command and the bench harness
// all read the same snapshots. The paper's quantitative claims
// (request combination, greedy load balance, brick blow-up) are
// verified against these numbers.
//
// All metric operations are safe for concurrent use and allocation-free
// on the hot path once a metric exists.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (active connections, queue
// depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// values <= 0, bucket i (1..numBuckets-2) holds values whose bit
// length is i (the range [2^(i-1), 2^i-1]), and the last bucket is the
// overflow bucket for everything larger.
const numBuckets = 41

// Histogram is a fixed-bucket power-of-two histogram intended for
// latencies in microseconds (but any non-negative int64 works). The
// log-scale buckets keep the footprint constant while resolving
// quantiles to within a factor of two, which is enough to tell a
// 100 µs path from a 10 ms one.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 when empty
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// NewHistogram builds an empty histogram (the zero value needs min
// initialization, so use this constructor).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
	h.buckets[bucketFor(v)].Add(1)
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Records; meant for test setup and benchmark phase boundaries.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the upper bound of the bucket holding the q-th
// observation, clamped to the observed min/max. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) int64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	min, max := h.min.Load(), h.max.Load()
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			var bound int64
			switch i {
			case 0:
				bound = 0
			case numBuckets - 1:
				bound = max
			default:
				bound = (int64(1) << uint(i)) - 1
			}
			if bound > max {
				bound = max
			}
			if bound < min {
				bound = min
			}
			return bound
		}
	}
	return max
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	count := h.count.Load()
	s := HistSnapshot{
		Count: count,
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(count)
	}
	return s
}

// HistSnapshot is a point-in-time view of a Histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Registry names and owns a set of metrics. The accessors get-or-create
// by name, so instrumentation sites need no registration step; two
// components sharing a Registry aggregate into the same metrics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// RegisterHistogram adopts an externally owned histogram under a name
// (e.g. a netsim model's wait histogram surfacing in a server's
// registry). A nil histogram is ignored.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Snapshot captures every metric. Maps are sorted-key stable only in
// the JSON encoding; callers index by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Reset zeroes every metric (benchmark phase boundaries, tests).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Names returns all metric names, sorted (counters, gauges and
// histograms together).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot is a point-in-time view of a whole Registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}
