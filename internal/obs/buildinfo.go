package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the build identity embedded in a binary: the module
// version and the VCS state recorded by the Go toolchain. It is
// exposed by every daemon's -version flag and as the build_info field
// of /healthz.
type BuildInfo struct {
	// Version is the module version ("(devel)" for local builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, when stamped.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time, when stamped.
	Time string `json:"time,omitempty"`
	// Modified reports whether the working tree was dirty at build
	// time.
	Modified bool `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build info, read once from
// debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the build info as a one-line version string.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s", b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Modified {
			s += " (modified)"
		}
	}
	if b.Time != "" {
		s += " built " + b.Time
	}
	return s
}
