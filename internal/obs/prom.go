package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition for the registry. Metric names follow the
// convention dpfs_<group>_<name>, where group is the registry's name
// in the handler config ("server", "db", "net", "client") and name is
// the registry-level metric name, which already carries the kind and
// unit suffixes this repo enforces via scripts/obslint.sh: counters
// end in _total, histograms in _us (microseconds) or _bytes.
//
// Histograms expose cumulative _bucket series whose le bounds are the
// upper edges of the power-of-two buckets (0, 1, 3, 7, ..., 2^i-1,
// +Inf), plus _sum and _count. The _count is derived from the +Inf
// bucket so the series is internally consistent even when sampled
// during concurrent writes (Prometheus requires the +Inf bucket to
// equal the count).

// promName mangles a group + metric name into a Prometheus metric
// name, replacing any character outside [a-zA-Z0-9_] with '_'.
func promName(group, name string) string {
	mangle := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				b.WriteRune(r)
			default:
				b.WriteRune('_')
			}
		}
		return b.String()
	}
	return "dpfs_" + mangle(group) + "_" + mangle(name)
}

// bucketBound returns the Prometheus le label for bucket i of the
// power-of-two histogram: "0" for the first bucket, 2^i-1 for the
// middle ones, "+Inf" for the overflow bucket.
func bucketBound(i int) string {
	switch {
	case i == 0:
		return "0"
	case i >= numBuckets-1:
		return "+Inf"
	default:
		return strconv.FormatInt((int64(1)<<uint(i))-1, 10)
	}
}

// WritePrometheus renders every metric of every registry in Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// groups and names are emitted in sorted order. Nil registries are
// skipped.
func WritePrometheus(w io.Writer, regs map[string]*Registry) {
	groups := make([]string, 0, len(regs))
	for g, r := range regs {
		if r != nil {
			groups = append(groups, g)
		}
	}
	sort.Strings(groups)
	for _, g := range groups {
		writePromRegistry(w, g, regs[g])
	}
}

// writePromRegistry renders one registry under a group prefix.
func writePromRegistry(w io.Writer, group string, r *Registry) {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	for _, n := range sortedKeys(counters) {
		pn := promName(group, n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n].Value())
	}
	for _, n := range sortedKeys(gauges) {
		pn := promName(group, n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[n].Value())
	}
	for _, n := range sortedKeys(hists) {
		h := hists[n]
		pn := promName(group, n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for i := 0; i < numBuckets; i++ {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, bucketBound(i), cum)
		}
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.sum.Load())
		fmt.Fprintf(w, "%s_count %d\n", pn, cum)
	}
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
