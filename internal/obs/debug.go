package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// Health is the /healthz payload. Status "ok" maps to HTTP 200,
// anything else to 503; Detail carries component-specific state such
// as catalog registration status.
type Health struct {
	Status string         `json:"status"`
	Detail map[string]any `json:"detail,omitempty"`
}

// Handler builds the debug endpoint: /metrics returns a JSON snapshot
// of every registry group, /healthz evaluates health (nil means always
// ok), and /debug/vars serves the process expvar map (see
// PublishExpvar).
func Handler(regs map[string]*Registry, health func() Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshotAll(regs))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func snapshotAll(regs map[string]*Registry) map[string]Snapshot {
	out := make(map[string]Snapshot, len(regs))
	for name, reg := range regs {
		if reg != nil {
			out[name] = reg.Snapshot()
		}
	}
	return out
}

var expvarMu sync.Mutex

// PublishExpvar exposes the registry groups under one expvar name so
// standard expvar tooling sees the same numbers as /metrics.
// Idempotent: re-publishing an existing name is a no-op (expvar itself
// panics on duplicates).
func PublishExpvar(name string, regs map[string]*Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return snapshotAll(regs) }))
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// StartDebug serves h on addr (":0" picks an ephemeral port) in a
// background goroutine.
func StartDebug(addr string, h http.Handler) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{lis: lis, srv: &http.Server{Handler: h}}
	go func() { _ = d.srv.Serve(lis) }()
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
