package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Health is the /healthz payload. Status "ok" maps to HTTP 200,
// anything else to 503; Detail carries component-specific state such
// as catalog registration status. Build is filled in by the handler
// with the binary's embedded build identity.
type Health struct {
	Status string         `json:"status"`
	Detail map[string]any `json:"detail,omitempty"`
	Build  *BuildInfo     `json:"build_info,omitempty"`
}

// HandlerConfig wires a daemon's observability surfaces into one debug
// HTTP handler. Any field may be nil/false; the corresponding endpoint
// then serves an empty result (or is not registered, for Pprof).
type HandlerConfig struct {
	// Regs maps group names ("server", "db", "net", "client") to
	// registries; served at /metrics (Prometheus text) and /debug/vars
	// (JSON, via PublishExpvar).
	Regs map[string]*Registry
	// Health evaluates the daemon's health for /healthz; nil means
	// always ok.
	Health func() Health
	// Traces is the trace ring served at /debug/trace.
	Traces *TraceLog
	// Events is the event ring served at /debug/events; nil falls back
	// to the process-wide default log.
	Events *EventLog
	// Pprof registers net/http/pprof handlers under /debug/pprof/.
	Pprof bool
	// Gossip, when non-nil, returns the daemon's gossip membership
	// view, served as indented JSON at /debug/gossip (typically the
	// node's self ID, round count and health-table snapshot). Nil makes
	// the endpoint report gossip as disabled. The callback's result
	// must be JSON-encodable; obs stays ignorant of the gossip types to
	// avoid an import cycle.
	Gossip func() any
}

// Handler builds the debug endpoint with the pre-v6 signature:
// metrics registries plus a health callback. It serves the default
// event log and no traces; new callers should use NewHandler.
func Handler(regs map[string]*Registry, health func() Health) http.Handler {
	return NewHandler(HandlerConfig{Regs: regs, Health: health})
}

// NewHandler builds the debug endpoint:
//
//	/metrics       Prometheus text exposition of every registry group
//	/healthz       health JSON (non-"ok" status -> 503) + build info
//	/debug/vars    process expvar map (JSON form of the registries,
//	               see PublishExpvar)
//	/debug/trace   recent request traces as indented text trees
//	               (?id=<hex trace id> selects one trace,
//	               ?n=<count> limits to the most recent n)
//	/debug/events  cluster event log as a JSON array
//	               (?type=<event type> filters, ?n=<count> limits)
//	/debug/gossip  gossip membership view as JSON (when cfg.Gossip)
//	/debug/pprof/  standard pprof handlers (when cfg.Pprof)
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, cfg.Regs)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok"}
		if cfg.Health != nil {
			h = cfg.Health()
		}
		if h.Build == nil {
			bi := Build()
			h.Build = &bi
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Traces == nil {
			fmt.Fprintln(w, "(tracing not enabled)")
			return
		}
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			if t := cfg.Traces.ByTraceID(id); t != nil {
				fmt.Fprintln(w, t.String())
			} else {
				fmt.Fprintf(w, "(no trace %016x)\n", id)
			}
			return
		}
		traces := cfg.Traces.Traces()
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		if len(traces) == 0 {
			fmt.Fprintln(w, "(no traces recorded)")
			return
		}
		for _, t := range traces {
			fmt.Fprintln(w, t.String())
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		log := cfg.Events
		if log == nil {
			log = Events()
		}
		events := log.Events()
		if typ := r.URL.Query().Get("type"); typ != "" {
			filtered := events[:0:0]
			for _, e := range events {
				if e.Type == typ {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/debug/gossip", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.Gossip == nil {
			fmt.Fprintln(w, `{"enabled":false}`)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Gossip())
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func snapshotAll(regs map[string]*Registry) map[string]Snapshot {
	out := make(map[string]Snapshot, len(regs))
	for name, reg := range regs {
		if reg != nil {
			out[name] = reg.Snapshot()
		}
	}
	return out
}

var expvarMu sync.Mutex

// PublishExpvar exposes the registry groups under one expvar name so
// standard expvar tooling (and /debug/vars) sees the JSON form of the
// same numbers /metrics exposes as Prometheus text.
// Idempotent: re-publishing an existing name is a no-op (expvar itself
// panics on duplicates).
func PublishExpvar(name string, regs map[string]*Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return snapshotAll(regs) }))
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// StartDebug serves h on addr (":0" picks an ephemeral port) in a
// background goroutine.
func StartDebug(addr string, h http.Handler) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{lis: lis, srv: &http.Server{Handler: h}}
	go func() { _ = d.srv.Serve(lis) }()
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
