package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(7)
	reg.Gauge("active_conns").Set(2)
	reg.Histogram("op_read_us").Record(100)

	h := Handler(map[string]*Registry{"server": reg, "nil": nil}, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var got map[string]Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	srv, ok := got["server"]
	if !ok {
		t.Fatalf("no server group in %v", got)
	}
	if srv.Counters["requests_total"] != 7 || srv.Gauges["active_conns"] != 2 {
		t.Fatalf("snapshot = %+v", srv)
	}
	if srv.Histograms["op_read_us"].Count != 1 {
		t.Fatalf("histogram = %+v", srv.Histograms)
	}
	if _, ok := got["nil"]; ok {
		t.Fatal("nil registry appeared in output")
	}
}

func TestHealthzStatusCodes(t *testing.T) {
	for _, tc := range []struct {
		health func() Health
		code   int
	}{
		{nil, http.StatusOK},
		{func() Health { return Health{Status: "ok", Detail: map[string]any{"registered": true}} }, http.StatusOK},
		{func() Health { return Health{Status: "degraded"} }, http.StatusServiceUnavailable},
	} {
		h := Handler(nil, tc.health)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != tc.code {
			t.Fatalf("status = %d, want %d", rr.Code, tc.code)
		}
		var body Health
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	PublishExpvar("dpfs_test_vars", map[string]*Registry{"g": reg})
	PublishExpvar("dpfs_test_vars", map[string]*Registry{"g": reg}) // idempotent

	h := Handler(nil, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, ok := got["dpfs_test_vars"]; !ok {
		t.Fatal("published var missing from /debug/vars")
	}
}

func TestStartDebug(t *testing.T) {
	d, err := StartDebug("127.0.0.1:0", Handler(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
