package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(7)
	reg.Gauge("active_conns").Set(2)
	reg.Histogram("op_read_us").Record(100)

	h := Handler(map[string]*Registry{"server": reg, "nil": nil}, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE dpfs_server_requests_total counter",
		"dpfs_server_requests_total 7",
		"# TYPE dpfs_server_active_conns gauge",
		"dpfs_server_active_conns 2",
		"# TYPE dpfs_server_op_read_us histogram",
		`dpfs_server_op_read_us_bucket{le="127"} 1`,
		`dpfs_server_op_read_us_bucket{le="+Inf"} 1`,
		"dpfs_server_op_read_us_sum 100",
		"dpfs_server_op_read_us_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "dpfs_nil_") {
		t.Fatal("nil registry appeared in output")
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestTraceAndEventsEndpoints(t *testing.T) {
	traces := NewTraceLog(4)
	root := NewRootSpan("client.request")
	root.Op = "read"
	root.End()
	traces.Add(&Trace{Root: root})
	events := NewEventLog(4)
	events.Emit(EventFailover, "client", map[string]string{"server": "io-1"})
	events.Emit(EventDegradedWrite, "client", nil)

	h := NewHandler(HandlerConfig{Traces: traces, Events: events, Pprof: true})

	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s status = %d", url, rr.Code)
		}
		return rr
	}

	if body := get("/debug/trace").Body.String(); !strings.Contains(body, "client.request op=read") {
		t.Fatalf("/debug/trace missing span: %s", body)
	}
	idURL := "/debug/trace?id=" + strconv.FormatUint(root.TraceID, 16)
	if body := get(idURL).Body.String(); !strings.Contains(body, "client.request") {
		t.Fatalf("/debug/trace?id= missing trace: %s", body)
	}
	if body := get("/debug/trace?id=deadbeef").Body.String(); !strings.Contains(body, "no trace") {
		t.Fatalf("unknown id should report no trace: %s", body)
	}

	var evs []Event
	if err := json.Unmarshal(get("/debug/events").Body.Bytes(), &evs); err != nil {
		t.Fatalf("bad events JSON: %v", err)
	}
	if len(evs) != 2 || evs[0].Type != EventFailover || evs[0].Fields["server"] != "io-1" {
		t.Fatalf("events = %+v", evs)
	}
	if err := json.Unmarshal(get("/debug/events?type="+EventDegradedWrite).Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EventDegradedWrite {
		t.Fatalf("filtered events = %+v", evs)
	}

	if body := get("/debug/pprof/cmdline").Body; body.Len() == 0 {
		t.Fatal("pprof cmdline empty")
	}

	// Without traces the endpoint degrades gracefully.
	h2 := NewHandler(HandlerConfig{})
	rr := httptest.NewRecorder()
	h2.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if !strings.Contains(rr.Body.String(), "tracing not enabled") {
		t.Fatalf("no-trace body = %s", rr.Body.String())
	}
}

func TestHealthzStatusCodes(t *testing.T) {
	for _, tc := range []struct {
		health func() Health
		code   int
	}{
		{nil, http.StatusOK},
		{func() Health { return Health{Status: "ok", Detail: map[string]any{"registered": true}} }, http.StatusOK},
		{func() Health { return Health{Status: "degraded"} }, http.StatusServiceUnavailable},
	} {
		h := Handler(nil, tc.health)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != tc.code {
			t.Fatalf("status = %d, want %d", rr.Code, tc.code)
		}
		var body Health
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	PublishExpvar("dpfs_test_vars", map[string]*Registry{"g": reg})
	PublishExpvar("dpfs_test_vars", map[string]*Registry{"g": reg}) // idempotent

	h := Handler(nil, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, ok := got["dpfs_test_vars"]; !ok {
		t.Fatal("published var missing from /debug/vars")
	}
}

func TestStartDebug(t *testing.T) {
	d, err := StartDebug("127.0.0.1:0", Handler(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
