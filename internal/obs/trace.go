package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Span is one timed step of a request. Spans form a tree: the client
// request is the root, each per-server combined RPC is a child, and a
// server handler may nest its subfile I/O below that. Field writes
// happen single-threaded in the owning goroutine before End; child
// creation is safe from concurrent goroutines (collective aggregators
// fan out under one root).
//
// Spans carry wire-propagatable identity: TraceID names the whole
// request tree across processes, SpanID names this span, and ParentID
// points at the span one level up (possibly in another process). A
// TraceID of zero means the span is untraced (local-only, never
// propagated).
type Span struct {
	TraceID  uint64        `json:"trace_id,omitempty"`
	SpanID   uint64        `json:"span_id,omitempty"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Op       string        `json:"op,omitempty"`
	Path     string        `json:"path,omitempty"`
	Server   string        `json:"server,omitempty"`
	Bricks   int           `json:"bricks,omitempty"`
	Extents  int           `json:"extents,omitempty"`
	Bytes    int64         `json:"bytes,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`

	mu       sync.Mutex
	children []*Span
}

// idSource is a locked math/rand source for span identity. Tracing is
// diagnostic, not security-sensitive, so a seeded PRNG is fine; the
// lock keeps concurrent root creation race-free.
var (
	idMu     sync.Mutex
	idSource = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// NewID returns a random non-zero 64-bit identifier for traces and
// spans.
func NewID() uint64 {
	idMu.Lock()
	defer idMu.Unlock()
	for {
		if v := idSource.Uint64(); v != 0 {
			return v
		}
	}
}

// NewSpan starts an untraced root span (no trace identity; never
// propagated across the wire).
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// NewRootSpan starts a sampled root span with fresh trace and span
// identifiers. Children inherit the TraceID and link back via
// ParentID, so the whole tree can be stitched across processes.
func NewRootSpan(name string) *Span {
	s := NewSpan(name)
	s.TraceID = NewID()
	s.SpanID = NewID()
	return s
}

// TraceContext is the propagated identity of an in-flight span: the
// shared trace ID, the sending span's ID (the receiver's parent), and
// whether the trace is sampled. The zero value means "untraced".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// Context returns the span's propagatable trace context. For untraced
// spans (or a nil receiver) it returns the zero TraceContext.
func (s *Span) Context() TraceContext {
	if s == nil || s.TraceID == 0 {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true}
}

// StartRemote starts a span whose parent lives in another process,
// carrying over the wire-propagated trace context. If the context is
// untraced it behaves like NewSpan.
func StartRemote(name string, tc TraceContext) *Span {
	s := NewSpan(name)
	if tc.TraceID != 0 {
		s.TraceID = tc.TraceID
		s.SpanID = NewID()
		s.ParentID = tc.SpanID
	}
	return s
}

// Child starts a sub-span. If the parent is traced the child inherits
// the TraceID, gets a fresh SpanID, and links back via ParentID.
func (s *Span) Child(name string) *Span {
	c := NewSpan(name)
	if s.TraceID != 0 {
		c.TraceID = s.TraceID
		c.SpanID = NewID()
		c.ParentID = s.SpanID
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an already-built span (typically decoded from a
// response's trace trailer) as a child of s.
func (s *Span) Adopt(c *Span) {
	if c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End stamps the duration (idempotent: the first End wins).
func (s *Span) End() {
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Trace is one recorded request tree.
type Trace struct {
	Root *Span
}

// Spans flattens the tree depth-first (root first).
func (t *Trace) Spans() []*Span {
	if t == nil || t.Root == nil {
		return nil
	}
	var out []*Span
	var walk func(*Span)
	walk = func(s *Span) {
		out = append(out, s)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// String renders the trace as an indented tree, one span per line.
func (t *Trace) String() string {
	if t == nil || t.Root == nil {
		return "(empty trace)"
	}
	var sb strings.Builder
	if t.Root.TraceID != 0 {
		fmt.Fprintf(&sb, "trace %016x\n", t.Root.TraceID)
	}
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.Name)
		if s.Op != "" {
			fmt.Fprintf(&sb, " op=%s", s.Op)
		}
		if s.Path != "" {
			fmt.Fprintf(&sb, " path=%s", s.Path)
		}
		if s.Server != "" {
			fmt.Fprintf(&sb, " server=%s", s.Server)
		}
		if s.Bricks > 0 {
			fmt.Fprintf(&sb, " bricks=%d", s.Bricks)
		}
		if s.Extents > 0 {
			fmt.Fprintf(&sb, " extents=%d", s.Extents)
		}
		if s.Bytes > 0 {
			fmt.Fprintf(&sb, " bytes=%d", s.Bytes)
		}
		fmt.Fprintf(&sb, " dur=%v\n", s.Duration.Round(time.Microsecond))
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

// TraceLog is a bounded ring of recent traces. Adding is cheap and
// safe from any goroutine; readers get copies. The storage is a true
// fixed-size circular buffer: it is allocated once at capacity and
// eviction just advances the head, never reallocating or copying.
type TraceLog struct {
	mu   sync.Mutex
	buf  []*Trace // fixed-size ring storage
	head int      // index of the oldest trace
	n    int      // live count (<= len(buf))
}

// NewTraceLog builds a log keeping the most recent capacity traces
// (minimum 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]*Trace, capacity)}
}

// Add appends a trace, evicting the oldest past capacity.
func (l *TraceLog) Add(t *Trace) {
	if t == nil {
		return
	}
	l.mu.Lock()
	if l.n < len(l.buf) {
		l.buf[(l.head+l.n)%len(l.buf)] = t
		l.n++
	} else {
		l.buf[l.head] = t
		l.head = (l.head + 1) % len(l.buf)
	}
	l.mu.Unlock()
}

// Traces returns the recorded traces, oldest first.
func (l *TraceLog) Traces() []*Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Trace, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.head+i)%len(l.buf)])
	}
	return out
}

// Last returns the most recent trace, or nil.
func (l *TraceLog) Last() *Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return nil
	}
	return l.buf[(l.head+l.n-1)%len(l.buf)]
}

// Len reports how many traces are held.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// ByTraceID returns the most recent trace whose root carries the given
// trace ID, or nil.
func (l *TraceLog) ByTraceID(id uint64) *Trace {
	if id == 0 {
		return nil
	}
	for _, t := range l.Traces() {
		if t.Root != nil && t.Root.TraceID == id {
			return t
		}
	}
	return nil
}

// Span trailer wire format (version 1): servers return their local
// span tree to the caller inside the response frame so the client can
// stitch a cross-process trace without scraping every daemon.
//
//	u8  version (1)
//	u16 span count
//	per span:
//	  u64 traceID, u64 spanID, u64 parentID
//	  i64 start unix-nanos, i64 duration nanos, i64 bytes
//	  u32 bricks, u32 extents
//	  u8-len name, u8-len op, u16-len path, u8-len server
//
// All integers little-endian. Encoding truncates long strings and
// caps the span count; decoding is strict about its own framing but
// callers treat any decode error as "no remote spans" — tracing is
// best-effort and must never fail a request.
const (
	spanTrailerVersion = 1
	maxTrailerSpans    = 512
)

// EncodeSpans serializes a span tree (depth-first from root) into the
// span trailer format. A nil root yields nil.
func EncodeSpans(root *Span) []byte {
	if root == nil {
		return nil
	}
	spans := (&Trace{Root: root}).Spans()
	if len(spans) > maxTrailerSpans {
		spans = spans[:maxTrailerSpans]
	}
	var b []byte
	b = append(b, spanTrailerVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(spans)))
	str8 := func(s string) {
		if len(s) > 255 {
			s = s[:255]
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	str16 := func(s string) {
		if len(s) > 65535 {
			s = s[:65535]
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	for _, s := range spans {
		b = binary.LittleEndian.AppendUint64(b, s.TraceID)
		b = binary.LittleEndian.AppendUint64(b, s.SpanID)
		b = binary.LittleEndian.AppendUint64(b, s.ParentID)
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Start.UnixNano()))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Duration))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Bytes))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Bricks))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Extents))
		str8(s.Name)
		str8(s.Op)
		str16(s.Path)
		str8(s.Server)
	}
	return b
}

// errBadTrailer reports a malformed span trailer.
var errBadTrailer = errors.New("obs: malformed span trailer")

// DecodeSpans parses a span trailer and rebuilds the tree, returning
// the root spans (spans whose parent is not in the trailer — usually
// exactly one, the receiving process's topmost span).
func DecodeSpans(data []byte) ([]*Span, error) {
	if len(data) < 3 || data[0] != spanTrailerVersion {
		return nil, errBadTrailer
	}
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	if n > maxTrailerSpans {
		return nil, errBadTrailer
	}
	p := 3
	need := func(k int) bool {
		if p+k > len(data) {
			return false
		}
		return true
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[p:])
		p += 8
		return v
	}
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(data[p:])
		p += 4
		return v
	}
	spans := make([]*Span, 0, n)
	for i := 0; i < n; i++ {
		if !need(8*6 + 4*2) {
			return nil, errBadTrailer
		}
		s := &Span{}
		s.TraceID = u64()
		s.SpanID = u64()
		s.ParentID = u64()
		s.Start = time.Unix(0, int64(u64()))
		s.Duration = time.Duration(u64())
		s.Bytes = int64(u64())
		s.Bricks = int(u32())
		s.Extents = int(u32())
		str8 := func() (string, bool) {
			if !need(1) {
				return "", false
			}
			k := int(data[p])
			p++
			if !need(k) {
				return "", false
			}
			v := string(data[p : p+k])
			p += k
			return v, true
		}
		var ok bool
		if s.Name, ok = str8(); !ok {
			return nil, errBadTrailer
		}
		if s.Op, ok = str8(); !ok {
			return nil, errBadTrailer
		}
		if !need(2) {
			return nil, errBadTrailer
		}
		k := int(binary.LittleEndian.Uint16(data[p:]))
		p += 2
		if !need(k) {
			return nil, errBadTrailer
		}
		s.Path = string(data[p : p+k])
		p += k
		if s.Server, ok = str8(); !ok {
			return nil, errBadTrailer
		}
		spans = append(spans, s)
	}
	if p != len(data) {
		return nil, errBadTrailer
	}
	// Relink the tree: children attach to their parent span when it is
	// present in the same trailer; the rest are roots.
	byID := make(map[uint64]*Span, len(spans))
	for _, s := range spans {
		if s.SpanID != 0 {
			byID[s.SpanID] = s
		}
	}
	var roots []*Span
	for _, s := range spans {
		if p := byID[s.ParentID]; p != nil && p != s {
			p.children = append(p.children, s)
		} else {
			roots = append(roots, s)
		}
	}
	return roots, nil
}
