package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed step of a request. Spans form a tree: the client
// request is the root, each per-server combined RPC is a child, and a
// server handler may nest its subfile I/O below that. Field writes
// happen single-threaded in the owning goroutine before End; child
// creation is safe from concurrent goroutines (collective aggregators
// fan out under one root).
type Span struct {
	Name     string        `json:"name"`
	Op       string        `json:"op,omitempty"`
	Path     string        `json:"path,omitempty"`
	Server   string        `json:"server,omitempty"`
	Bricks   int           `json:"bricks,omitempty"`
	Extents  int           `json:"extents,omitempty"`
	Bytes    int64         `json:"bytes,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`

	mu       sync.Mutex
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// Child starts a sub-span.
func (s *Span) Child(name string) *Span {
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the duration (idempotent: the first End wins).
func (s *Span) End() {
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Trace is one recorded request tree.
type Trace struct {
	Root *Span
}

// Spans flattens the tree depth-first (root first).
func (t *Trace) Spans() []*Span {
	if t == nil || t.Root == nil {
		return nil
	}
	var out []*Span
	var walk func(*Span)
	walk = func(s *Span) {
		out = append(out, s)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// String renders the trace as an indented tree, one span per line.
func (t *Trace) String() string {
	if t == nil || t.Root == nil {
		return "(empty trace)"
	}
	var sb strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.Name)
		if s.Op != "" {
			fmt.Fprintf(&sb, " op=%s", s.Op)
		}
		if s.Path != "" {
			fmt.Fprintf(&sb, " path=%s", s.Path)
		}
		if s.Server != "" {
			fmt.Fprintf(&sb, " server=%s", s.Server)
		}
		if s.Bricks > 0 {
			fmt.Fprintf(&sb, " bricks=%d", s.Bricks)
		}
		if s.Extents > 0 {
			fmt.Fprintf(&sb, " extents=%d", s.Extents)
		}
		if s.Bytes > 0 {
			fmt.Fprintf(&sb, " bytes=%d", s.Bytes)
		}
		fmt.Fprintf(&sb, " dur=%v\n", s.Duration.Round(time.Microsecond))
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

// TraceLog is a bounded ring of recent traces. Adding is cheap and
// safe from any goroutine; readers get copies.
type TraceLog struct {
	mu  sync.Mutex
	cap int
	buf []*Trace
}

// NewTraceLog builds a log keeping the most recent capacity traces
// (minimum 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{cap: capacity}
}

// Add appends a trace, evicting the oldest past capacity.
func (l *TraceLog) Add(t *Trace) {
	if t == nil {
		return
	}
	l.mu.Lock()
	l.buf = append(l.buf, t)
	if len(l.buf) > l.cap {
		l.buf = append([]*Trace(nil), l.buf[len(l.buf)-l.cap:]...)
	}
	l.mu.Unlock()
}

// Traces returns the recorded traces, oldest first.
func (l *TraceLog) Traces() []*Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Trace(nil), l.buf...)
}

// Last returns the most recent trace, or nil.
func (l *TraceLog) Last() *Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 {
		return nil
	}
	return l.buf[len(l.buf)-1]
}

// Len reports how many traces are held.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
