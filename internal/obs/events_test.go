package obs

import (
	"sync"
	"testing"
)

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Emit(EventFailover, "client", map[string]string{"i": string(rune('0' + i))})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
	evs := l.Events()
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("seqs = %d..%d, want 3..5", evs[0].Seq, evs[2].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotonic seq: %+v", evs)
		}
	}
}

func TestEventLogByTypeAndTrace(t *testing.T) {
	l := NewEventLog(8)
	l.Emit(EventBreakerOpen, "client", map[string]string{"server": "a"})
	l.EmitTrace(EventSlowRequest, "client", 0xabc, nil)
	l.Emit(EventBreakerClose, "client", nil)

	if got := l.ByType(EventBreakerOpen); len(got) != 1 || got[0].Fields["server"] != "a" {
		t.Fatalf("ByType = %+v", got)
	}
	slow := l.ByType(EventSlowRequest)
	if len(slow) != 1 || slow[0].TraceID != 0xabc {
		t.Fatalf("trace event = %+v", slow)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit("x", "y", nil) // must not panic
	if l.Events() != nil || l.Len() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log should be empty")
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit(EventRetryExhausted, "client", nil)
				l.Events()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("len = %d, want 64", l.Len())
	}
	if l.Dropped() != 800-64 {
		t.Fatalf("dropped = %d, want %d", l.Dropped(), 800-64)
	}
}
