package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(3)
	reg.Gauge("active_conns").Set(5)
	h := reg.Histogram("op_read_us")
	h.Record(0)
	h.Record(2)
	h.Record(1000)

	var sb strings.Builder
	WritePrometheus(&sb, map[string]*Registry{"server": reg})
	out := sb.String()

	for _, want := range []string{
		"# TYPE dpfs_server_requests_total counter\ndpfs_server_requests_total 3\n",
		"# TYPE dpfs_server_active_conns gauge\ndpfs_server_active_conns 5\n",
		"# TYPE dpfs_server_op_read_us histogram\n",
		`dpfs_server_op_read_us_bucket{le="0"} 1`,
		`dpfs_server_op_read_us_bucket{le="3"} 2`,
		`dpfs_server_op_read_us_bucket{le="1023"} 3`,
		`dpfs_server_op_read_us_bucket{le="+Inf"} 3`,
		"dpfs_server_op_read_us_sum 1002\n",
		"dpfs_server_op_read_us_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	regs := map[string]*Registry{"b": NewRegistry(), "a": NewRegistry()}
	regs["a"].Counter("x_total").Inc()
	regs["a"].Counter("a_total").Inc()
	regs["b"].Gauge("g").Set(1)
	var one, two strings.Builder
	WritePrometheus(&one, regs)
	WritePrometheus(&two, regs)
	if one.String() != two.String() {
		t.Fatal("output not deterministic")
	}
	if strings.Index(one.String(), "dpfs_a_a_total") > strings.Index(one.String(), "dpfs_a_x_total") {
		t.Fatal("names not sorted")
	}
	if strings.Index(one.String(), "dpfs_a_") > strings.Index(one.String(), "dpfs_b_") {
		t.Fatal("groups not sorted")
	}
}

// TestPrometheusExpositionValid is a promtool-style validity check:
// every line must be a TYPE comment or a sample, TYPE must precede its
// samples, histogram buckets must be cumulative, and the +Inf bucket
// must equal _count.
func TestPrometheusExpositionValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(2)
	reg.Gauge("g").Set(-4)
	hist := reg.Histogram("h_us")
	for i := int64(1); i < 1e6; i *= 7 {
		hist.Record(i)
	}
	var sb strings.Builder
	WritePrometheus(&sb, map[string]*Registry{"server": reg, "db": reg})
	if errs := LintPrometheus(strings.NewReader(sb.String())); len(errs) > 0 {
		t.Fatalf("exposition invalid: %v\n%s", errs, sb.String())
	}
}

func TestLintPrometheusCatchesBadExposition(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"garbage line", "!!!\n"},
		{"sample before TYPE", "dpfs_x_total 1\n"},
		{"non-cumulative buckets", "# TYPE dpfs_h_us histogram\n" +
			`dpfs_h_us_bucket{le="1"} 5` + "\n" +
			`dpfs_h_us_bucket{le="+Inf"} 3` + "\n" +
			"dpfs_h_us_sum 9\ndpfs_h_us_count 3\n"},
		{"inf != count", "# TYPE dpfs_h_us histogram\n" +
			`dpfs_h_us_bucket{le="+Inf"} 3` + "\n" +
			"dpfs_h_us_sum 9\ndpfs_h_us_count 4\n"},
		{"missing inf bucket", "# TYPE dpfs_h_us histogram\n" +
			`dpfs_h_us_bucket{le="1"} 3` + "\n" +
			"dpfs_h_us_sum 9\ndpfs_h_us_count 3\n"},
	} {
		if errs := LintPrometheus(strings.NewReader(tc.in)); len(errs) == 0 {
			t.Fatalf("%s: lint accepted invalid exposition:\n%s", tc.name, tc.in)
		}
	}
}
