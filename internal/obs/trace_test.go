package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("client.request")
	root.Op = "read"
	root.Path = "/a"
	c1 := root.Child("server.rpc")
	c1.Server = "io0"
	c1.Bricks = 3
	c2 := root.Child("server.rpc")
	c2.Server = "io1"
	c1.End()
	c2.End()
	root.End()

	tr := &Trace{Root: root}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0] != root || spans[1] != c1 || spans[2] != c2 {
		t.Fatal("depth-first order wrong")
	}
	for _, s := range spans {
		if s.Duration <= 0 {
			t.Fatalf("span %s has duration %v", s.Name, s.Duration)
		}
	}

	out := tr.String()
	for _, want := range []string{"client.request", "op=read", "server=io0", "bricks=3", "server=io1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpan("x")
	s.End()
	d := s.Duration
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration != d {
		t.Fatal("second End overwrote duration")
	}
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(2)
	l.Add(nil) // ignored
	t1 := &Trace{Root: NewSpan("1")}
	t2 := &Trace{Root: NewSpan("2")}
	t3 := &Trace{Root: NewSpan("3")}
	l.Add(t1)
	l.Add(t2)
	l.Add(t3)
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	got := l.Traces()
	if got[0] != t2 || got[1] != t3 {
		t.Fatal("ring kept wrong traces")
	}
	if l.Last() != t3 {
		t.Fatal("Last != newest")
	}
}

func TestTraceLogMinCapacity(t *testing.T) {
	l := NewTraceLog(0)
	l.Add(&Trace{Root: NewSpan("a")})
	l.Add(&Trace{Root: NewSpan("b")})
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1", l.Len())
	}
	if l.Last().Root.Name != "b" {
		t.Fatal("kept the wrong trace")
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr *Trace
	if tr.Spans() != nil {
		t.Fatal("nil trace should flatten to nil")
	}
	if s := (&Trace{}).String(); s != "(empty trace)" {
		t.Fatalf("empty trace renders %q", s)
	}
}
