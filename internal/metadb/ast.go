package metadb

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       Kind
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string // nil = all columns in schema order
	Rows  [][]Expr
}

// Select is SELECT items FROM table [JOIN ...] [WHERE] [GROUP BY]
// [HAVING] [ORDER BY] [LIMIT].
type Select struct {
	Distinct bool
	Items    []SelectItem
	Table    string
	Alias    string
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    *int64
}

// Join is one INNER JOIN clause.
type Join struct {
	Table string
	Alias string
	On    Expr
}

// CreateIndex is CREATE INDEX [IF NOT EXISTS] name ON table (col).
type CreateIndex struct {
	Name        string
	Table       string
	Col         string
	IfNotExists bool
}

// DropIndex is DROP INDEX [IF EXISTS] name ON table.
type DropIndex struct {
	Name     string
	Table    string
	IfExists bool
}

// SelectItem is one output column: either a star or an expression
// (which may contain aggregates) with an optional alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Update is UPDATE t SET col=expr,... [WHERE].
type Update struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// Delete is DELETE FROM t [WHERE].
type Delete struct {
	Table string
	Where Expr
}

// Begin, Commit and Rollback control transactions.
type Begin struct{}
type Commit struct{}
type Rollback struct{}

func (CreateTable) stmt() {}
func (DropTable) stmt()   {}
func (CreateIndex) stmt() {}
func (DropIndex) stmt()   {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (Update) stmt()      {}
func (Delete) stmt()      {}
func (Begin) stmt()       {}
func (Commit) stmt()      {}
func (Rollback) stmt()    {}

// Expr is a SQL expression node.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ V Value }

// Col is a column reference, optionally qualified with a table name or
// alias ("t.col").
type Col struct {
	Qual string
	Name string
}

// Unary is -x or NOT x.
type Unary struct {
	Op string // "-", "NOT"
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op   string // + - * / % = != < <= > >= AND OR LIKE ||
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// InList is x [NOT] IN (v1, v2, ...).
type InList struct {
	X    Expr
	Not  bool
	List []Expr
}

// Call is a scalar function call (LENGTH, UPPER, LOWER, ABS, ...).
type Call struct {
	Name string
	Args []Expr
}

// AggExpr is an aggregate function application: COUNT(*), COUNT(x),
// SUM(x), MIN(x), MAX(x), AVG(x). Aggregates are legal in SELECT items
// and HAVING clauses.
type AggExpr struct {
	Fn   string // COUNT, SUM, MIN, MAX, AVG
	Star bool   // COUNT(*)
	X    Expr
}

func (Lit) expr()     {}
func (Col) expr()     {}
func (Unary) expr()   {}
func (Binary) expr()  {}
func (IsNull) expr()  {}
func (InList) expr()  {}
func (Call) expr()    {}
func (AggExpr) expr() {}
