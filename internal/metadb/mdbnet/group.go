package mdbnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dpfs/internal/metadb"
	"dpfs/internal/obs"
)

// GroupClient is a client for one replicated catalog shard: it holds
// the shard's full replica address list and keeps statements flowing
// to whichever replica currently holds the primary lease (DESIGN.md
// §13). Failover is driven by the two error classes the servers
// produce:
//
//   - A NotPrimaryError rejection guarantees the statement never
//     executed, so the client follows the redirect (or rotates to the
//     next replica) and safely resends — unless a transaction is open,
//     in which case the transaction is already doomed on the old
//     primary and the error surfaces for the caller to retry whole.
//   - A TransportError means the statement may have executed, so it is
//     never resent (the same lost-ack COMMIT contract as Client); the
//     client rotates its target so the *next* statement tries another
//     replica.
//
// Statements are serialized, matching the one-session-per-connection
// model.
type GroupClient struct {
	trace atomic.Pointer[obs.Span]

	addrs []string
	dial  DialFunc

	mu     sync.Mutex
	cur    int     // index of the believed primary
	cli    *Client // connection to addrs[cur]; nil between failures
	inTx   bool    // a BEGIN succeeded with no COMMIT/ROLLBACK yet
	closed bool
}

// DialGroup connects to a replica group given its full address list
// (the same list, in the same order, on every client). The initial
// primary is resolved lazily by redirect; dialing succeeds as long as
// one replica is reachable.
func DialGroup(addrs []string, dial DialFunc) (*GroupClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("mdbnet: empty replica address list")
	}
	g := &GroupClient{addrs: addrs, dial: dial}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.connectLocked(); err != nil {
		return nil, err
	}
	return g, nil
}

// connectLocked dials addrs[cur], advancing through the list until one
// replica accepts. Caller holds g.mu.
func (g *GroupClient) connectLocked() error {
	var last error
	for range g.addrs {
		var (
			cli *Client
			err error
		)
		if g.dial != nil {
			cli, err = DialWith(g.addrs[g.cur], g.dial)
		} else {
			cli, err = Dial(g.addrs[g.cur])
		}
		if err == nil {
			g.cli = cli
			cli.SetTraceSpan(g.trace.Load())
			return nil
		}
		last = err
		g.cur = (g.cur + 1) % len(g.addrs)
	}
	return fmt.Errorf("mdbnet: no replica reachable in %v: %w", g.addrs, last)
}

// dropLocked abandons the current connection (aborting any server-side
// transaction) so the next statement reconnects. Caller holds g.mu.
func (g *GroupClient) dropLocked() {
	if g.cli != nil {
		g.cli.Close()
		g.cli = nil
	}
	g.inTx = false
}

// retarget points the client at a redirect address when it is in the
// replica list, or at the next replica otherwise. Caller holds g.mu.
func (g *GroupClient) retargetLocked(redirect string) {
	if redirect != "" {
		for i, a := range g.addrs {
			if a == redirect {
				g.cur = i
				return
			}
		}
	}
	g.cur = (g.cur + 1) % len(g.addrs)
}

// SetTraceSpan forwards trace context to the current and all future
// replica connections (same contract as Client.SetTraceSpan).
func (g *GroupClient) SetTraceSpan(parent *obs.Span) {
	g.trace.Store(parent)
	g.mu.Lock()
	if g.cli != nil {
		g.cli.SetTraceSpan(parent)
	}
	g.mu.Unlock()
}

// Exec sends one SQL statement to the current primary, following
// not-primary redirects.
func (g *GroupClient) Exec(sql string) (*metadb.Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, errors.New("mdbnet: client closed")
	}
	var lastErr error
	// One redirect per replica plus one rotation covers any single
	// failover; beyond that the group is unstable and the caller
	// should see the error.
	for attempt := 0; attempt <= len(g.addrs); attempt++ {
		if g.cli == nil {
			if err := g.connectLocked(); err != nil {
				return nil, err
			}
		}
		res, err := g.cli.Exec(sql)
		if err == nil {
			g.trackTx(sql)
			return res, nil
		}
		lastErr = err
		var te *TransportError
		if errors.As(err, &te) {
			// May have executed: never resend. Rotate so the next
			// statement tries another replica, and abandon the
			// connection (the server aborts any open transaction).
			g.dropLocked()
			g.cur = (g.cur + 1) % len(g.addrs)
			return nil, err
		}
		if redirect, ok := ParseNotPrimary(err.Error()); ok {
			if g.inTx {
				// The statement was rejected, but earlier statements of
				// this transaction ran on the deposed primary; drop the
				// connection (aborting them there) and surface the
				// error so the caller retries the transaction whole.
				g.dropLocked()
				g.retargetLocked(redirect)
				return nil, fmt.Errorf("%w (transaction aborted by failover): %v", ErrNotPrimary, err)
			}
			// Never executed: safe to resend at the new target.
			g.dropLocked()
			g.retargetLocked(redirect)
			continue
		}
		// An ordinary SQL error from the primary.
		g.trackTx(sql)
		return nil, err
	}
	return nil, fmt.Errorf("%w: no stable primary: %v", ErrNotPrimary, lastErr)
}

// trackTx follows the session's transaction state by statement
// keyword. Caller holds g.mu.
func (g *GroupClient) trackTx(sql string) {
	switch sqlKeyword(sql) {
	case "begin":
		g.inTx = true
	case "commit", "rollback":
		g.inTx = false
	}
}

// Close tears down the current connection and disables reconnects.
func (g *GroupClient) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	g.closed = true
	if g.cli != nil {
		err := g.cli.Close()
		g.cli = nil
		return err
	}
	return nil
}
