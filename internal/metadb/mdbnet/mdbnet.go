// Package mdbnet exposes a metadb database over TCP, playing the role
// POSTGRES plays in the paper: the DPFS meta-data lives in one database
// process somewhere on the network and every client performs catalog
// operations by sending SQL to it (Section 5).
//
// The protocol is one gob stream per direction. Each connection owns
// one database session, so BEGIN/COMMIT/ROLLBACK have connection scope
// exactly like a real database connection; a dropped connection aborts
// its open transaction.
package mdbnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpfs/internal/metadb"
	"dpfs/internal/obs"
)

// Metadata network server metric names. Latencies are microseconds.
const (
	MetricActiveConns = "active_conns"
	MetricConnsTotal  = "conns_total"
	MetricRequests    = "requests_total"
	MetricErrors      = "errors_total"
	MetricRequestUS   = "request_us"
)

// request is one SQL statement from client to server. The trace
// fields are optional wire-propagated identity (zero TraceID means
// untraced); gob tolerates their absence, so old and new peers
// interoperate.
type request struct {
	SQL     string
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// response carries a statement result or error back. Trace, when
// non-empty, is the server's span tree in obs.EncodeSpans format so
// the client can stitch the database's side into its own trace.
type response struct {
	Cols         []string
	Rows         [][]metadb.Value
	RowsAffected int64
	Err          string
	Trace        []byte
}

// serverTraceCap bounds the metadata server's local trace ring.
const serverTraceCap = 256

// Server serves a metadb database to network clients.
type Server struct {
	db     *metadb.DB
	lis    net.Listener
	reg    *obs.Registry
	traces *obs.TraceLog

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	closed   bool
	draining bool
	wg       sync.WaitGroup

	gate atomic.Pointer[func() error]
}

// SetGate installs a per-statement admission check: when it returns an
// error, the statement is rejected with that error instead of reaching
// the database. A replica group uses this to bounce SQL off followers
// with a NotPrimaryError redirect (DESIGN.md §13); nil removes the
// gate. Rejected statements are never executed, so clients may safely
// resend them elsewhere.
func (s *Server) SetGate(gate func() error) {
	if gate == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&gate)
}

// connState tracks whether a connection is mid-statement, so a drain
// can let it flush its response before closing.
type connState struct {
	busy bool
}

// NewServer starts serving db on lis. It returns immediately; use
// Close to stop.
func NewServer(db *metadb.DB, lis net.Listener) *Server {
	s := &Server{
		db:     db,
		lis:    lis,
		reg:    obs.NewRegistry(),
		traces: obs.NewTraceLog(serverTraceCap),
		conns:  make(map[net.Conn]*connState),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Metrics returns the server's connection and request metrics.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Traces returns the server's local trace log: one single-span trace
// per statement that arrived carrying trace context.
func (s *Server) Traces() *obs.TraceLog { return s.traces }

// Listen starts a server on the given TCP address ("" or ":0" picks an
// ephemeral port).
func Listen(db *metadb.DB, addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mdbnet: listen: %w", err)
	}
	return NewServer(db, lis), nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, drops all connections and waits for handlers.
// The underlying database is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server: it stops accepting, closes idle
// connections immediately, and lets connections that are mid-statement
// finish and flush their response before closing. ctx bounds the
// wait — on expiry the remaining connections are cut and ctx's error
// returned. The underlying database is not closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	for c, st := range s.conns {
		if !st.busy {
			c.Close()
		}
	}
	s.mu.Unlock()

	err := s.lis.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	s.reg.Counter(MetricConnsTotal).Inc()
	s.reg.Gauge(MetricActiveConns).Inc()
	defer func() {
		s.reg.Gauge(MetricActiveConns).Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	sess := s.db.Session()
	defer sess.Abort() // a dropped connection abandons its transaction

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.Lock()
		st := s.conns[conn]
		if st == nil || s.draining {
			s.mu.Unlock()
			return
		}
		st.busy = true
		s.mu.Unlock()
		if g := s.gate.Load(); g != nil {
			if gerr := (*g)(); gerr != nil {
				s.reg.Counter(MetricRequests).Inc()
				s.reg.Counter(MetricErrors).Inc()
				err := enc.Encode(&response{Err: gerr.Error()})
				s.mu.Lock()
				st.busy = false
				drain := s.draining
				s.mu.Unlock()
				if err != nil || drain {
					return
				}
				continue
			}
		}
		var resp response
		var sp *obs.Span
		if req.TraceID != 0 && req.Sampled {
			sp = obs.StartRemote("metadb.exec", obs.TraceContext{TraceID: req.TraceID, SpanID: req.SpanID, Sampled: true})
			sp.Op = sqlKeyword(req.SQL)
		}
		start := time.Now()
		res, err := sess.Exec(req.SQL)
		s.reg.Counter(MetricRequests).Inc()
		s.reg.Histogram(MetricRequestUS).Record(time.Since(start).Microseconds())
		if sp != nil {
			sp.End()
			s.traces.Add(&obs.Trace{Root: sp})
			resp.Trace = obs.EncodeSpans(sp)
		}
		if err != nil {
			s.reg.Counter(MetricErrors).Inc()
			resp.Err = err.Error()
		} else {
			resp.Cols = res.Cols
			resp.Rows = res.Rows
			resp.RowsAffected = res.RowsAffected
		}
		err = enc.Encode(&resp)
		s.mu.Lock()
		st.busy = false
		drain := s.draining
		s.mu.Unlock()
		if err != nil || drain {
			return
		}
	}
}

// Client is a connection to an mdbnet server. A Client owns one
// database session; it is safe for concurrent use (statements are
// serialized on the connection). A broken connection heals itself: the
// statement that observes the break fails, and the next statement
// redials (getting a fresh server-side session). The failed statement
// is never resent — a COMMIT whose acknowledgement was lost must not
// be applied twice.
type Client struct {
	trace atomic.Pointer[obs.Span]

	addr string
	dial DialFunc

	mu     sync.Mutex
	conn   net.Conn // nil while broken (between a failure and the next redial)
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

// SetTraceSpan makes subsequent statements record "metadb.rpc" child
// spans under parent and propagate its trace context to the server
// (whose "metadb.exec" span comes back stitched below them). A nil or
// untraced parent turns propagation off. Tracing is best-effort and
// last-setter-wins: concurrent requests with different parents each
// attach to whichever parent was current when they started.
func (c *Client) SetTraceSpan(parent *obs.Span) {
	c.trace.Store(parent)
}

// DialFunc opens the transport for a client connection. Tests and
// fault injectors substitute their own.
type DialFunc func(addr string) (net.Conn, error)

// Dial connects to an mdbnet server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	return DialWith(addr, func(a string) (net.Conn, error) {
		return net.DialTimeout("tcp", a, d)
	})
}

// DialWith connects through a custom transport dialer and remembers
// it for reconnects: when the connection later breaks (server restart,
// injected fault), the next statement redials before executing.
func DialWith(addr string, dial DialFunc) (*Client, error) {
	c := &Client{addr: addr, dial: dial}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("mdbnet: dial %s: %w", addr, err)
	}
	c.attach(conn)
	return c, nil
}

// attach installs a fresh transport connection.
func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
}

// dropLocked discards a broken connection so the next Exec redials.
// Caller holds c.mu.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Exec sends one SQL statement and waits for its result.
func (c *Client) Exec(sql string) (*metadb.Result, error) {
	req := request{SQL: sql}
	var sp *obs.Span
	if parent := c.trace.Load(); parent != nil && parent.TraceID != 0 {
		sp = parent.Child("metadb.rpc")
		sp.Op = sqlKeyword(sql)
		tc := sp.Context()
		req.TraceID, req.SpanID, req.Sampled = tc.TraceID, tc.SpanID, tc.Sampled
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		if sp != nil {
			sp.End()
		}
		return nil, errors.New("mdbnet: client closed")
	}
	if c.conn == nil {
		// The previous statement broke the connection; reconnect with
		// a fresh server-side session before sending this one.
		conn, err := c.dial(c.addr)
		if err != nil {
			if sp != nil {
				sp.End()
			}
			return nil, &TransportError{Op: "redial", Addr: c.addr, Err: err}
		}
		c.attach(conn)
	}
	if err := c.enc.Encode(req); err != nil {
		c.dropLocked()
		if sp != nil {
			sp.End()
		}
		return nil, &TransportError{Op: "send", Addr: c.addr, Err: err}
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropLocked()
		if sp != nil {
			sp.End()
		}
		return nil, &TransportError{Op: "receive", Addr: c.addr, Err: err}
	}
	if sp != nil {
		sp.End()
		if len(resp.Trace) > 0 {
			if remote, derr := obs.DecodeSpans(resp.Trace); derr == nil {
				for _, rs := range remote {
					sp.Adopt(rs)
				}
			}
		}
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &metadb.Result{Cols: resp.Cols, Rows: resp.Rows, RowsAffected: resp.RowsAffected}, nil
}

// sqlKeyword returns the statement's leading keyword, lower-cased
// ("select", "insert", ...), for span labelling.
func sqlKeyword(sql string) string {
	f := strings.Fields(sql)
	if len(f) == 0 {
		return ""
	}
	return strings.ToLower(f[0])
}

// Close tears the connection down (aborting any open transaction on
// the server side) and disables reconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
