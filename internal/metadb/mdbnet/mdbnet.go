// Package mdbnet exposes a metadb database over TCP, playing the role
// POSTGRES plays in the paper: the DPFS meta-data lives in one database
// process somewhere on the network and every client performs catalog
// operations by sending SQL to it (Section 5).
//
// The protocol is one gob stream per direction. Each connection owns
// one database session, so BEGIN/COMMIT/ROLLBACK have connection scope
// exactly like a real database connection; a dropped connection aborts
// its open transaction.
package mdbnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dpfs/internal/metadb"
	"dpfs/internal/obs"
)

// Metadata network server metric names. Latencies are microseconds.
const (
	MetricActiveConns = "active_conns"
	MetricConnsTotal  = "conns_total"
	MetricRequests    = "requests_total"
	MetricErrors      = "errors_total"
	MetricRequestUS   = "request_us"
)

// request is one SQL statement from client to server.
type request struct {
	SQL string
}

// response carries a statement result or error back.
type response struct {
	Cols         []string
	Rows         [][]metadb.Value
	RowsAffected int64
	Err          string
}

// Server serves a metadb database to network clients.
type Server struct {
	db  *metadb.DB
	lis net.Listener
	reg *obs.Registry

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// connState tracks whether a connection is mid-statement, so a drain
// can let it flush its response before closing.
type connState struct {
	busy bool
}

// NewServer starts serving db on lis. It returns immediately; use
// Close to stop.
func NewServer(db *metadb.DB, lis net.Listener) *Server {
	s := &Server{db: db, lis: lis, reg: obs.NewRegistry(), conns: make(map[net.Conn]*connState)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Metrics returns the server's connection and request metrics.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Listen starts a server on the given TCP address ("" or ":0" picks an
// ephemeral port).
func Listen(db *metadb.DB, addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mdbnet: listen: %w", err)
	}
	return NewServer(db, lis), nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, drops all connections and waits for handlers.
// The underlying database is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server: it stops accepting, closes idle
// connections immediately, and lets connections that are mid-statement
// finish and flush their response before closing. ctx bounds the
// wait — on expiry the remaining connections are cut and ctx's error
// returned. The underlying database is not closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	for c, st := range s.conns {
		if !st.busy {
			c.Close()
		}
	}
	s.mu.Unlock()

	err := s.lis.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	s.reg.Counter(MetricConnsTotal).Inc()
	s.reg.Gauge(MetricActiveConns).Inc()
	defer func() {
		s.reg.Gauge(MetricActiveConns).Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	sess := s.db.Session()
	defer sess.Abort() // a dropped connection abandons its transaction

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.Lock()
		st := s.conns[conn]
		if st == nil || s.draining {
			s.mu.Unlock()
			return
		}
		st.busy = true
		s.mu.Unlock()
		var resp response
		start := time.Now()
		res, err := sess.Exec(req.SQL)
		s.reg.Counter(MetricRequests).Inc()
		s.reg.Histogram(MetricRequestUS).Record(time.Since(start).Microseconds())
		if err != nil {
			s.reg.Counter(MetricErrors).Inc()
			resp.Err = err.Error()
		} else {
			resp.Cols = res.Cols
			resp.Rows = res.Rows
			resp.RowsAffected = res.RowsAffected
		}
		err = enc.Encode(&resp)
		s.mu.Lock()
		st.busy = false
		drain := s.draining
		s.mu.Unlock()
		if err != nil || drain {
			return
		}
	}
}

// Client is a connection to an mdbnet server. A Client owns one
// database session; it is safe for concurrent use (statements are
// serialized on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to an mdbnet server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("mdbnet: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Exec sends one SQL statement and waits for its result.
func (c *Client) Exec(sql string) (*metadb.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("mdbnet: client closed")
	}
	if err := c.enc.Encode(request{SQL: sql}); err != nil {
		return nil, fmt.Errorf("mdbnet: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("mdbnet: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &metadb.Result{Cols: resp.Cols, Rows: resp.Rows, RowsAffected: resp.RowsAffected}, nil
}

// Close tears the connection down (aborting any open transaction on
// the server side).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
