package mdbnet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs/internal/metadb"
)

func startServer(t *testing.T) (*Server, *metadb.DB) {
	t.Helper()
	db := metadb.Memory()
	srv, err := Listen(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicRoundtrip(t *testing.T) {
	srv, _ := startServer(t)
	c := dial(t, srv)

	if _, err := c.Exec(`CREATE TABLE t (id INT PRIMARY KEY, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`INSERT INTO t VALUES (1, 'hello'), (2, 'world')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	res, err = c.Exec(`SELECT s FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "hello" || res.Rows[1][0].Str != "world" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	srv, _ := startServer(t)
	c := dial(t, srv)
	if _, err := c.Exec(`SELECT * FROM missing`); err == nil {
		t.Fatal("expected error for missing table")
	}
	// The connection keeps working after an error.
	if _, err := c.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsPerConnection(t *testing.T) {
	srv, db := startServer(t)
	c1 := dial(t, srv)
	if _, err := c1.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// Second connection blocks until commit; verify post-commit view.
	done := make(chan int64, 1)
	go func() {
		c2 := dialNoCleanup(t, srv)
		defer c2.Close()
		res, err := c2.Exec(`SELECT COUNT(*) FROM t`)
		if err != nil {
			done <- -1
			return
		}
		done <- res.Rows[0][0].Int
	}()
	if _, err := c1.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	if n := <-done; n != 1 {
		t.Fatalf("second connection saw %d", n)
	}
	_ = db
}

func dialNoCleanup(t *testing.T, srv *Server) *Client {
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Error(err)
		return nil
	}
	return c
}

// TestDisconnectAbortsTransaction drops a connection mid-transaction
// and verifies the lock is released and the data rolled back.
func TestDisconnectAbortsTransaction(t *testing.T) {
	srv, db := startServer(t)
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	c1.Close() // crash the client mid-transaction

	// A fresh connection must eventually acquire the lock and see zero
	// rows.
	c2 := dial(t, srv)
	res, err := c2.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 0 {
		t.Fatalf("abandoned transaction leaked %d rows", res.Rows[0][0].Int)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for i := 0; i < 20; i++ {
				if _, err := cli.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, w*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := c.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 120 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestClientClosed(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Exec(`SELECT 1 FROM t`); err == nil {
		t.Fatal("exec on closed client should fail")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerClose(t *testing.T) {
	db := metadb.Memory()
	defer db.Close()
	srv, err := Listen(db, "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := c.Exec(`SELECT 1 FROM t`); err == nil {
		t.Fatal("exec against closed server should fail")
	}
	c.Close()
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("dialing closed server should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port should fail")
	}
}

// TestShutdownDrains races concurrent writers against a graceful
// Shutdown: every statement either completes fully or fails cleanly
// on a closed connection, Shutdown returns without hanging, and the
// server refuses work afterwards.
func TestShutdownDrains(t *testing.T) {
	srv, _ := startServer(t)
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE d (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				return
			}
			defer cl.Close()
			for i := 0; ; i++ {
				if _, err := cl.Exec(fmt.Sprintf(`INSERT INTO d VALUES (%d)`, g*1000000+i)); err != nil {
					return // drained away mid-stream: expected
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if _, err := c.Exec(`SELECT id FROM d`); err == nil {
		t.Fatal("exec after shutdown succeeded")
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("double shutdown: %v", err)
	}
}
