package mdbnet

import (
	"testing"
)

func TestServerMetrics(t *testing.T) {
	srv, _ := startServer(t)
	cli := dial(t, srv)

	if _, err := cli.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("NOT SQL"); err == nil {
		t.Fatal("expected error")
	}

	s := srv.Metrics().Snapshot()
	if got := s.Counters[MetricRequests]; got != 3 {
		t.Fatalf("requests_total = %d, want 3", got)
	}
	if got := s.Counters[MetricErrors]; got != 1 {
		t.Fatalf("errors_total = %d, want 1", got)
	}
	if got := s.Histograms[MetricRequestUS].Count; got != 3 {
		t.Fatalf("request_us count = %d, want 3", got)
	}
	if got := s.Counters[MetricConnsTotal]; got != 1 {
		t.Fatalf("conns_total = %d, want 1", got)
	}
	if got := s.Gauges[MetricActiveConns]; got != 1 {
		t.Fatalf("active_conns = %d, want 1 while the client is connected", got)
	}
}
