package mdbnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dpfs/internal/metadb"
)

// This file is the wire side of metadata replication (DESIGN.md §13):
// a second, long-lived gob protocol replica-group members speak to
// each other, next to the SQL protocol clients speak. One ReplMsg
// grammar carries everything — the shipping stream (hello, snapshot,
// record, heartbeat, ack) and elections (vote-req, vote) — so the
// whole group protocol is visible in one type.

// ReplMsg kinds.
const (
	// ReplHello opens a shipping stream: the primary announces its
	// epoch, ID and log position; the follower answers with an ack
	// carrying its own position (Seq -1 demands a snapshot).
	ReplHello = "hello"
	// ReplSnapshot carries a full metadb.StateSnapshot to replace the
	// follower's state.
	ReplSnapshot = "snapshot"
	// ReplRecord ships one commit record (epoch-stamped, in order).
	ReplRecord = "record"
	// ReplHeartbeat keeps the lease alive when no records flow.
	ReplHeartbeat = "heartbeat"
	// ReplAck reports the follower's durable log position back.
	ReplAck = "ack"
	// ReplVoteReq asks for a vote: a candidate's new epoch and its
	// last record's (epoch, seq) position.
	ReplVoteReq = "vote-req"
	// ReplVote answers a vote request (Ok = granted).
	ReplVote = "vote"
	// ReplError rejects the stream (stale epoch — the sender must step
	// down).
	ReplError = "error"
)

// ReplMsg is one message of the replication protocol. Fields are used
// per kind; unused ones stay zero.
type ReplMsg struct {
	Kind      string
	From      int   // sender's replica ID
	Epoch     int64 // sender's epoch (fencing: receivers reject stale epochs)
	Seq       int64 // log position (record seq, ack watermark, candidate's last seq)
	LastEpoch int64 // epoch of the sender's last log record (vote-req, hello)
	Ops       []metadb.RedoOp
	Snap      []byte
	Ok        bool
	Err       string
}

// ReplConn is one replication-protocol connection: gob-framed ReplMsg
// in both directions. Send is safe for concurrent use; Recv must stay
// on one goroutine.
type ReplConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

// DialRepl opens a replication connection to a group member's
// replication address.
func DialRepl(addr string, dial DialFunc) (*ReplConn, error) {
	if dial == nil {
		dial = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, 5*time.Second)
		}
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("mdbnet: dial repl %s: %w", addr, err)
	}
	return newReplConn(conn), nil
}

func newReplConn(conn net.Conn) *ReplConn {
	return &ReplConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Send writes one message.
func (c *ReplConn) Send(m *ReplMsg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

// Recv reads the next message.
func (c *ReplConn) Recv() (*ReplMsg, error) {
	var m ReplMsg
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Close tears the connection down.
func (c *ReplConn) Close() error { return c.conn.Close() }

// ReplListener accepts replication connections for one replica.
type ReplListener struct {
	lis net.Listener
}

// ListenRepl starts a replication listener ("" or ":0" picks an
// ephemeral port).
func ListenRepl(addr string) (*ReplListener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mdbnet: listen repl: %w", err)
	}
	return &ReplListener{lis: lis}, nil
}

// Addr returns the listen address.
func (l *ReplListener) Addr() string { return l.lis.Addr().String() }

// Accept waits for the next replication connection.
func (l *ReplListener) Accept() (*ReplConn, error) {
	conn, err := l.lis.Accept()
	if err != nil {
		return nil, err
	}
	return newReplConn(conn), nil
}

// Close stops the listener.
func (l *ReplListener) Close() error { return l.lis.Close() }

// ErrNotPrimary is the sentinel inside a follower's statement
// rejection. SQL errors cross the wire as strings, so after a network
// hop the sentinel is recognized by ParseNotPrimary instead of
// errors.Is; GroupClient re-wraps with the sentinel on the client
// side.
var ErrNotPrimary = errors.New("mdbnet: not primary")

// notPrimaryPrefix is ErrNotPrimary's wire form.
const notPrimaryPrefix = "mdbnet: not primary"

// NotPrimaryError builds the rejection a follower's statement gate
// returns, carrying the current primary's client address (empty when
// unknown — mid-election) and epoch so clients can re-resolve.
func NotPrimaryError(primaryAddr string, epoch int64) error {
	return fmt.Errorf("%w (primary=%s epoch=%d)", ErrNotPrimary, primaryAddr, epoch)
}

// ParseNotPrimary recognizes a NotPrimaryError that crossed the wire
// and extracts the redirect address (possibly empty).
func ParseNotPrimary(msg string) (addr string, ok bool) {
	if !strings.HasPrefix(msg, notPrimaryPrefix) {
		return "", false
	}
	if i := strings.Index(msg, "primary="); i >= 0 {
		rest := msg[i+len("primary="):]
		if j := strings.IndexAny(rest, " )"); j >= 0 {
			rest = rest[:j]
		}
		addr = rest
	}
	return addr, true
}

// TransportError marks a statement that failed in transit: the request
// may or may not have executed, so it must not be resent — not even to
// another replica. Contrast with a NotPrimaryError rejection, which
// guarantees the statement never ran.
type TransportError struct {
	Op   string // "redial", "send", "receive"
	Addr string
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("mdbnet: %s %s: %v", e.Op, e.Addr, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }
