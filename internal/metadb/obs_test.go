package metadb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQueryMetrics(t *testing.T) {
	db := Memory()
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT v FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELEKT"); err == nil {
		t.Fatal("expected parse error")
	}

	s := db.Metrics().Snapshot()
	// The parse error never reaches ExecStmt, so only the three valid
	// statements count.
	if got := s.Counters[MetricQueries]; got != 3 {
		t.Fatalf("queries_total = %d, want 3", got)
	}
	for _, kind := range []string{"createtable", "insert", "select"} {
		if got := s.Histograms[QueryMetric(kind)].Count; got != 1 {
			t.Fatalf("%s count = %d, want 1", QueryMetric(kind), got)
		}
	}
}

func TestWALMetrics(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	s := db.Metrics().Snapshot()
	if got := s.Counters[MetricWALAppends]; got != 2 {
		t.Fatalf("wal_appends_total = %d, want 2", got)
	}
	if s.Counters[MetricWALBytes] == 0 {
		t.Fatal("wal_bytes_total = 0")
	}
	if got := s.Counters[MetricWALFsyncs]; got != 2 {
		t.Fatalf("wal_fsyncs_total = %d, want 2 (Sync: true)", got)
	}
	if got := s.Counters[MetricWALCheckpoints]; got != 1 {
		t.Fatalf("wal_checkpoints_total = %d, want 1", got)
	}
}

// TestWALMetricsNoSync pins wal_fsyncs_total to real fsyncs: with
// Sync off the WAL is appended but never synced, so commits advance
// the append counter while the fsync counter stays at zero.
func TestWALMetricsNoSync(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	s := db.Metrics().Snapshot()
	if got := s.Counters[MetricWALAppends]; got != 2 {
		t.Fatalf("wal_appends_total = %d, want 2", got)
	}
	if got := s.Counters[MetricWALFsyncs]; got != 0 {
		t.Fatalf("wal_fsyncs_total = %d, want 0 (Sync: false, no fsyncs happen)", got)
	}
}

// TestWALMetricsGroupCommit drives concurrent committers through a
// group-commit WAL and checks the batching metrics: fewer real fsyncs
// than commits, at least one fsync that covered a whole batch
// (wal_group_commits_total), and a batch-size histogram whose count
// is the fsync count and whose sum is the commit count — every commit
// is covered by exactly one fsync.
func TestWALMetricsGroupCommit(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Sync: true, GroupCommit: true, SyncDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	const committers, inserts = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.Session()
			for i := 0; i < inserts; i++ {
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO t (id) VALUES (%d)", g*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := db.Metrics().Snapshot()
	appends := s.Counters[MetricWALAppends]
	fsyncs := s.Counters[MetricWALFsyncs]
	if want := int64(committers*inserts + 1); appends != want {
		t.Fatalf("wal_appends_total = %d, want %d", appends, want)
	}
	if fsyncs >= appends || fsyncs == 0 {
		t.Fatalf("wal_fsyncs_total = %d for %d commits, want 0 < fsyncs < commits (batching)", fsyncs, appends)
	}
	if got := s.Counters[MetricWALGroupCommits]; got == 0 {
		t.Fatal("wal_group_commits_total = 0, want at least one multi-commit fsync")
	}
	batch := s.Histograms[MetricWALBatchSize]
	if batch.Count != fsyncs {
		t.Fatalf("wal_batch_size count = %d, want one sample per fsync (%d)", batch.Count, fsyncs)
	}
	if batch.Sum != appends {
		t.Fatalf("wal_batch_size sum = %d, want every commit covered exactly once (%d)", batch.Sum, appends)
	}
}
