package metadb

import (
	"testing"
)

func TestQueryMetrics(t *testing.T) {
	db := Memory()
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT v FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELEKT"); err == nil {
		t.Fatal("expected parse error")
	}

	s := db.Metrics().Snapshot()
	// The parse error never reaches ExecStmt, so only the three valid
	// statements count.
	if got := s.Counters[MetricQueries]; got != 3 {
		t.Fatalf("queries_total = %d, want 3", got)
	}
	for _, kind := range []string{"createtable", "insert", "select"} {
		if got := s.Histograms[QueryMetric(kind)].Count; got != 1 {
			t.Fatalf("%s count = %d, want 1", QueryMetric(kind), got)
		}
	}
}

func TestWALMetrics(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	s := db.Metrics().Snapshot()
	if got := s.Counters[MetricWALAppends]; got != 2 {
		t.Fatalf("wal_appends_total = %d, want 2", got)
	}
	if s.Counters[MetricWALBytes] == 0 {
		t.Fatal("wal_bytes_total = 0")
	}
	if got := s.Counters[MetricWALFsyncs]; got != 2 {
		t.Fatalf("wal_fsyncs_total = %d, want 2 (Sync: true)", got)
	}
	if got := s.Counters[MetricWALCheckpoints]; got != 1 {
		t.Fatalf("wal_checkpoints_total = %d, want 1", got)
	}
}
