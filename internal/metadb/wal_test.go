package metadb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openDir(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return db
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, s TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'one'), (2, 'two')`)
	mustExec(t, s, `UPDATE t SET s = 'TWO' WHERE id = 2`)
	mustExec(t, s, `DELETE FROM t WHERE id = 1`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDir(t, dir)
	defer db2.Close()
	s2 := db2.Session()
	res := mustExec(t, s2, `SELECT id, s FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 || res.Rows[0][1].Str != "TWO" {
		t.Fatalf("recovered rows = %v", res.Rows)
	}
	// New inserts must not collide with recovered rowids.
	mustExec(t, s2, `INSERT INTO t VALUES (3, 'three')`)
	if v := cell(t, s2, `SELECT COUNT(*) FROM t`); v.Int != 2 {
		t.Fatalf("count = %v", v)
	}
}

// TestRecoveryFromWALOnly kills the database without Close (no
// snapshot): recovery must come purely from WAL replay.
func TestRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	mustExec(t, s, `INSERT INTO t VALUES (2)`)
	mustExec(t, s, `COMMIT`)
	// A transaction that never commits must not survive.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (3)`)
	// Simulated crash: drop the DB on the floor without Close/commit.

	db2 := openDir(t, dir)
	defer db2.Close()
	if v := cell(t, db2.Session(), `SELECT COUNT(*) FROM t`); v.Int != 2 {
		t.Fatalf("recovered %v rows, want 2 (uncommitted txn must vanish)", v)
	}
}

// TestTornWALTail corrupts the last record; recovery must keep all
// earlier commits and truncate the tail.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	// Crash without Close.
	walPath := filepath.Join(dir, "wal")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop off the last 3 bytes, tearing the final record.
	if err := os.Truncate(walPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2 := openDir(t, dir)
	defer db2.Close()
	v := cell(t, db2.Session(), `SELECT COUNT(*) FROM t`)
	if v.Int != 9 {
		t.Fatalf("recovered %v rows, want 9 (last commit torn)", v)
	}
	// The database remains writable after truncation.
	mustExec(t, db2.Session(), `INSERT INTO t VALUES (100)`)
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)`)
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')`, i))
	}
	walPath := filepath.Join(dir, "wal")
	st, _ := os.Stat(walPath)
	if st.Size() == 0 {
		t.Fatal("wal unexpectedly empty before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(walPath)
	if st.Size() != 0 {
		t.Fatalf("wal size after checkpoint = %d", st.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	db.Close()

	db2 := openDir(t, dir)
	defer db2.Close()
	if v := cell(t, db2.Session(), `SELECT COUNT(*) FROM t`); v.Int != 50 {
		t.Fatalf("count after snapshot recovery = %v", v)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CheckpointBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)`)
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'pppppppppppppppppppppppppppp')`, i))
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
		t.Fatalf("auto checkpoint never fired: %v", err)
	}
	db.Close()
	db2 := openDir(t, dir)
	defer db2.Close()
	if v := cell(t, db2.Session(), `SELECT COUNT(*) FROM t`); v.Int != 40 {
		t.Fatalf("count = %v", v)
	}
}

func TestDropTablePersists(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	s := db.Session()
	mustExec(t, s, `CREATE TABLE a (x INT)`)
	mustExec(t, s, `CREATE TABLE b (x INT)`)
	mustExec(t, s, `DROP TABLE a`)
	db.Close()

	db2 := openDir(t, dir)
	defer db2.Close()
	names := db2.TableNames()
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("recovered tables = %v", names)
	}
}

func TestSyncMode(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2 := openDir(t, dir)
	defer db2.Close()
	if v := cell(t, db2.Session(), `SELECT COUNT(*) FROM t`); v.Int != 1 {
		t.Fatalf("count = %v", v)
	}
}

func TestClosedDB(t *testing.T) {
	db := Memory()
	db.Close()
	if _, err := db.Exec(`CREATE TABLE t (x INT)`); err == nil {
		t.Fatal("write on closed db should fail")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint on closed db should fail")
	}
}

// Property: a random sequence of committed operations survives an
// arbitrary number of reopen cycles bit-for-bit (same SELECT results).
func TestQuickDurabilityRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "metadbq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)

		db, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		s := db.Session()
		if _, err := s.Exec(`CREATE TABLE t (id INT PRIMARY KEY, x INT)`); err != nil {
			return false
		}
		live := map[int64]int64{}
		nextID := int64(0)
		ops := 5 + r.Intn(40)
		for i := 0; i < ops; i++ {
			switch r.Intn(3) {
			case 0:
				id := nextID
				nextID++
				x := int64(r.Intn(1000))
				if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, id, x)); err != nil {
					return false
				}
				live[id] = x
			case 1:
				for id := range live {
					x := int64(r.Intn(1000))
					if _, err := s.Exec(fmt.Sprintf(`UPDATE t SET x = %d WHERE id = %d`, x, id)); err != nil {
						return false
					}
					live[id] = x
					break
				}
			case 2:
				for id := range live {
					if _, err := s.Exec(fmt.Sprintf(`DELETE FROM t WHERE id = %d`, id)); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			}
			// Occasionally checkpoint mid-stream.
			if r.Intn(10) == 0 {
				if err := db.Checkpoint(); err != nil {
					return false
				}
			}
		}
		db.Close()

		db2, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		defer db2.Close()
		res, err := db2.Exec(`SELECT id, x FROM t`)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(live) {
			t.Logf("seed %d: recovered %d rows, want %d", seed, len(res.Rows), len(live))
			return false
		}
		for _, row := range res.Rows {
			if want, ok := live[row[0].Int]; !ok || want != row[1].Int {
				t.Logf("seed %d: row %v mismatch", seed, row)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
