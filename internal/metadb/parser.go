package metadb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement (a trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("metadb: trailing input after statement: %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case tokIdent:
			want = "identifier"
		case tokInt:
			want = "integer"
		default:
			want = "token"
		}
	}
	return token{}, fmt.Errorf("metadb: expected %s, found %s", want, p.peek())
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("metadb: expected statement, found %s", t)
	}
	switch t.text {
	case "CREATE":
		if p.toks[p.i+1].text == "INDEX" {
			return p.createIndex()
		}
		return p.createTable()
	case "DROP":
		if p.toks[p.i+1].text == "INDEX" {
			return p.dropIndex()
		}
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "EXPLAIN":
		p.next()
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		sel, ok := inner.(Select)
		if !ok {
			return nil, fmt.Errorf("metadb: EXPLAIN supports only SELECT")
		}
		return Explain{Stmt: sel}, nil
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.deleteStmt()
	case "BEGIN":
		p.next()
		p.accept(tokKeyword, "TRANSACTION")
		return Begin{}, nil
	case "COMMIT":
		p.next()
		return Commit{}, nil
	case "ROLLBACK":
		p.next()
		return Rollback{}, nil
	}
	return nil, fmt.Errorf("metadb: unsupported statement %s", t)
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := CreateTable{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col := ColumnDef{}
		col.Name, err = p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("metadb: column %s needs a type: %w", col.Name, err)
		}
		col.Type, err = ParseType(tname)
		if err != nil {
			return nil, err
		}
		// Optional length like VARCHAR(64): parsed and ignored.
		if p.accept(tokSymbol, "(") {
			if _, err := p.expect(tokInt, ""); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		for {
			switch {
			case p.accept(tokKeyword, "PRIMARY"):
				if _, err := p.expect(tokKeyword, "KEY"); err != nil {
					return nil, err
				}
				col.PrimaryKey = true
				col.NotNull = true
			case p.accept(tokKeyword, "NOT"):
				if _, err := p.expect(tokKeyword, "NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
			case p.accept(tokKeyword, "UNIQUE"):
				col.Unique = true
			default:
				goto colDone
			}
		}
	colDone:
		st.Cols = append(st.Cols, col)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := DropTable{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) createIndex() (Statement, error) {
	p.next() // CREATE
	p.next() // INDEX
	st := CreateIndex{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	st.Table, err = p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st.Col, err = p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropIndex() (Statement, error) {
	p.next() // DROP
	p.next() // INDEX
	st := DropIndex{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	st.Table, err = p.ident()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) insert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	st := Insert{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	st := Select{}
	if p.accept(tokKeyword, "DISTINCT") {
		st.Distinct = true
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	st.Alias = p.maybeAlias()
	for {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		var j Join
		j.Table, err = p.ident()
		if err != nil {
			return nil, err
		}
		j.Alias = p.maybeAlias()
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		j.On, err = p.expr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, j)
	}
	if p.accept(tokKeyword, "WHERE") {
		st.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		st.Having, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		st.Limit = &n
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e, Alias: p.maybeAlias()}, nil
}

func (p *parser) maybeAlias() string {
	if p.accept(tokKeyword, "AS") {
		if p.at(tokIdent, "") {
			return p.next().text
		}
	}
	if p.at(tokIdent, "") {
		return p.next().text
	}
	return ""
}

func (p *parser) update() (Statement, error) {
	p.next() // UPDATE
	st := Update{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		st.Exprs = append(st.Exprs, e)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		st.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	st := Delete{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.accept(tokKeyword, "WHERE") {
		st.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// --- expression parsing (precedence climbing) ------------------------

// expr parses OR-level expressions.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNull{X: l, Not: not}, nil
	}
	// [NOT] IN / [NOT] LIKE
	not := false
	if p.at(tokKeyword, "NOT") && (p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "LIKE") {
		p.next()
		not = true
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return InList{X: l, Not: not, List: list}, nil
	}
	if p.accept(tokKeyword, "LIKE") {
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		var e Expr = Binary{Op: "LIKE", L: l, R: r}
		if not {
			e = Unary{Op: "NOT", X: e}
		}
		return e, nil
	}
	if not {
		return nil, fmt.Errorf("metadb: dangling NOT near %s", p.peek())
	}
	for _, op := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		case p.accept(tokSymbol, "||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		case p.accept(tokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	if p.accept(tokSymbol, "+") {
		return p.unaryExpr()
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metadb: bad integer literal %q", t.text)
		}
		return Lit{I(v)}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("metadb: bad float literal %q", t.text)
		}
		return Lit{F(v)}, nil
	case tokString:
		p.next()
		return Lit{S(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return Lit{Null()}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			agg := AggExpr{Fn: t.text}
			if t.text == "COUNT" && p.accept(tokSymbol, "*") {
				agg.Star = true
			} else {
				x, err := p.expr()
				if err != nil {
					return nil, err
				}
				agg.X = x
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
	case tokIdent:
		p.next()
		// Function call?
		if p.accept(tokSymbol, "(") {
			fn := strings.ToUpper(t.text)
			var args []Expr
			if !p.at(tokSymbol, ")") {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, e)
					if p.accept(tokSymbol, ",") {
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return Call{Name: fn, Args: args}, nil
		}
		// Optional table qualifier t.col.
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return Col{Qual: t.text, Name: col}, nil
		}
		return Col{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("metadb: unexpected %s in expression", t)
}
