package metadb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// Property: GROUP BY + COUNT/SUM agree with a brute-force reference
// over random data.
func TestQuickGroupByAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Memory().Session()
		defer s.db.Close()
		if _, err := s.Exec(`CREATE TABLE t (g INT, v INT)`); err != nil {
			return false
		}
		type agg struct {
			count int64
			sum   int64
		}
		ref := map[int64]*agg{}
		n := r.Intn(120)
		for i := 0; i < n; i++ {
			g := int64(r.Intn(6))
			v := int64(r.Intn(100) - 50)
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, g, v)); err != nil {
				return false
			}
			a := ref[g]
			if a == nil {
				a = &agg{}
				ref[g] = a
			}
			a.count++
			a.sum += v
		}
		res, err := s.Exec(`SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g`)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(res.Rows) != len(ref) {
			t.Logf("seed %d: %d groups, want %d", seed, len(res.Rows), len(ref))
			return false
		}
		keys := make([]int64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, k := range keys {
			row := res.Rows[i]
			if row[0].Int != k || row[1].Int != ref[k].count || row[2].Int != ref[k].sum {
				t.Logf("seed %d: group %d = %v, want (%d,%d,%d)", seed, i, row, k, ref[k].count, ref[k].sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: an inner join equals the brute-force cross product filtered
// by the ON condition.
func TestQuickJoinAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Memory().Session()
		defer s.db.Close()
		if _, err := s.Exec(`CREATE TABLE a (k INT, x INT)`); err != nil {
			return false
		}
		if _, err := s.Exec(`CREATE TABLE b (k INT, y INT)`); err != nil {
			return false
		}
		type row struct{ k, v int64 }
		var as, bs []row
		for i := 0; i < r.Intn(20); i++ {
			rr := row{int64(r.Intn(5)), int64(i)}
			as = append(as, rr)
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO a VALUES (%d, %d)`, rr.k, rr.v)); err != nil {
				return false
			}
		}
		for i := 0; i < r.Intn(20); i++ {
			rr := row{int64(r.Intn(5)), int64(i + 100)}
			bs = append(bs, rr)
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO b VALUES (%d, %d)`, rr.k, rr.v)); err != nil {
				return false
			}
		}
		var want []string
		for _, ra := range as {
			for _, rb := range bs {
				if ra.k == rb.k {
					want = append(want, fmt.Sprintf("%d|%d|%d", ra.k, ra.v, rb.v))
				}
			}
		}
		sort.Strings(want)

		res, err := s.Exec(`SELECT a.k, a.x, b.y FROM a JOIN b ON a.k = b.k`)
		if err != nil {
			return false
		}
		var got []string
		for _, r := range res.Rows {
			got = append(got, fmt.Sprintf("%d|%d|%d", r[0].Int, r[1].Int, r[2].Int))
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Logf("seed %d: %d join rows, want %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: row %d = %s, want %s", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser and executor never panic on arbitrary garbage
// (they must fail gracefully).
func TestQuickParserNeverPanics(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
		"DELETE", "CREATE", "TABLE", "INDEX", "JOIN", "ON", "GROUP", "BY",
		"HAVING", "ORDER", "LIMIT", "AND", "OR", "NOT", "NULL", "t", "x", "y",
		"(", ")", ",", "*", "=", "<", ">", "+", "-", "/", "'s'", "1", "2.5",
		"COUNT", "SUM", "DISTINCT", "IN", "LIKE", "IS", ";", "..", "\"q\"",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(14)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[r.Intn(len(words))])
			sb.WriteByte(' ')
		}
		s := Memory().Session()
		defer s.db.Close()
		_, _ = s.Exec(`CREATE TABLE t (x INT, y TEXT)`)
		_, _ = s.Exec(`INSERT INTO t VALUES (1, 'a')`)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("seed %d: panic on %q: %v", seed, sb.String(), p)
				}
			}()
			_, _ = s.Exec(sb.String())
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ORDER BY produces a non-decreasing sequence under Compare.
func TestQuickOrderBySorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Memory().Session()
		defer s.db.Close()
		if _, err := s.Exec(`CREATE TABLE t (v INT)`); err != nil {
			return false
		}
		for i := 0; i < r.Intn(60); i++ {
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, r.Intn(1000)-500)); err != nil {
				return false
			}
		}
		res, err := s.Exec(`SELECT v FROM t ORDER BY v`)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
