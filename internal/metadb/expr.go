package metadb

import (
	"fmt"
	"math"
	"strings"
)

// env resolves (possibly qualified) column references during
// expression evaluation.
type env func(qual, name string) (Value, error)

// evalCtx carries the evaluation environment: a row binding for column
// references and, where aggregates are legal (SELECT items, HAVING), an
// aggregate evaluator bound to the current group.
type evalCtx struct {
	lookup env
	agg    func(a AggExpr) (Value, error)
}

// eval evaluates an expression with SQL three-valued semantics: NULL
// operands propagate through arithmetic and comparisons; AND/OR follow
// Kleene logic.
func eval(e Expr, ctx *evalCtx) (Value, error) {
	switch n := e.(type) {
	case Lit:
		return n.V, nil
	case Col:
		if ctx == nil || ctx.lookup == nil {
			return Value{}, fmt.Errorf("metadb: column %q not allowed here", n.Name)
		}
		return ctx.lookup(n.Qual, n.Name)
	case Unary:
		return evalUnary(n, ctx)
	case Binary:
		return evalBinary(n, ctx)
	case IsNull:
		v, err := eval(n.X, ctx)
		if err != nil {
			return Value{}, err
		}
		return B(v.IsNull() != n.Not), nil
	case InList:
		return evalIn(n, ctx)
	case Call:
		return evalCall(n, ctx)
	case AggExpr:
		if ctx == nil || ctx.agg == nil {
			return Value{}, fmt.Errorf("metadb: aggregate %s not allowed here", n.Fn)
		}
		return ctx.agg(n)
	}
	return Value{}, fmt.Errorf("metadb: cannot evaluate %T", e)
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e Expr) bool {
	switch n := e.(type) {
	case AggExpr:
		return true
	case Unary:
		return hasAgg(n.X)
	case Binary:
		return hasAgg(n.L) || hasAgg(n.R)
	case IsNull:
		return hasAgg(n.X)
	case InList:
		if hasAgg(n.X) {
			return true
		}
		for _, x := range n.List {
			if hasAgg(x) {
				return true
			}
		}
	case Call:
		for _, x := range n.Args {
			if hasAgg(x) {
				return true
			}
		}
	}
	return false
}

func evalUnary(n Unary, ctx *evalCtx) (Value, error) {
	v, err := eval(n.X, ctx)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case "-":
		switch v.Kind {
		case KindNull:
			return Null(), nil
		case KindInt:
			return I(-v.Int), nil
		case KindFloat:
			return F(-v.Float), nil
		}
		return Value{}, fmt.Errorf("metadb: cannot negate %s", v.Kind)
	case "NOT":
		if v.IsNull() {
			return Null(), nil
		}
		return B(!v.Truth()), nil
	}
	return Value{}, fmt.Errorf("metadb: unknown unary operator %q", n.Op)
}

func evalBinary(n Binary, ctx *evalCtx) (Value, error) {
	// AND/OR get Kleene short-circuit treatment.
	if n.Op == "AND" || n.Op == "OR" {
		l, err := eval(n.L, ctx)
		if err != nil {
			return Value{}, err
		}
		if n.Op == "AND" && !l.IsNull() && !l.Truth() {
			return B(false), nil
		}
		if n.Op == "OR" && !l.IsNull() && l.Truth() {
			return B(true), nil
		}
		r, err := eval(n.R, ctx)
		if err != nil {
			return Value{}, err
		}
		switch {
		case n.Op == "AND":
			if r.IsNull() || l.IsNull() {
				if !r.IsNull() && !r.Truth() {
					return B(false), nil
				}
				return Null(), nil
			}
			return B(l.Truth() && r.Truth()), nil
		default: // OR
			if r.IsNull() || l.IsNull() {
				if !r.IsNull() && r.Truth() {
					return B(true), nil
				}
				return Null(), nil
			}
			return B(l.Truth() || r.Truth()), nil
		}
	}

	l, err := eval(n.L, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(n.R, ctx)
	if err != nil {
		return Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}

	switch n.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if (l.Kind == KindText) != (r.Kind == KindText) {
			return Value{}, fmt.Errorf("metadb: cannot compare %s with %s", l.Kind, r.Kind)
		}
		c := Compare(l, r)
		switch n.Op {
		case "=":
			return B(c == 0), nil
		case "!=":
			return B(c != 0), nil
		case "<":
			return B(c < 0), nil
		case "<=":
			return B(c <= 0), nil
		case ">":
			return B(c > 0), nil
		default:
			return B(c >= 0), nil
		}
	case "||":
		if l.Kind != KindText || r.Kind != KindText {
			return Value{}, fmt.Errorf("metadb: || requires text operands")
		}
		return S(l.Str + r.Str), nil
	case "LIKE":
		if l.Kind != KindText || r.Kind != KindText {
			return Value{}, fmt.Errorf("metadb: LIKE requires text operands")
		}
		return B(likeMatch(r.Str, l.Str)), nil
	case "+", "-", "*", "/", "%":
		return arith(n.Op, l, r)
	}
	return Value{}, fmt.Errorf("metadb: unknown operator %q", n.Op)
}

func arith(op string, l, r Value) (Value, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Value{}, fmt.Errorf("metadb: %s requires numeric operands, have %s and %s", op, l.Kind, r.Kind)
	}
	if l.Kind == KindInt && r.Kind == KindInt {
		a, b := l.Int, r.Int
		switch op {
		case "+":
			return I(a + b), nil
		case "-":
			return I(a - b), nil
		case "*":
			return I(a * b), nil
		case "/":
			if b == 0 {
				return Value{}, fmt.Errorf("metadb: division by zero")
			}
			return I(a / b), nil
		case "%":
			if b == 0 {
				return Value{}, fmt.Errorf("metadb: modulo by zero")
			}
			return I(a % b), nil
		}
	}
	switch op {
	case "+":
		return F(lf + rf), nil
	case "-":
		return F(lf - rf), nil
	case "*":
		return F(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("metadb: division by zero")
		}
		return F(lf / rf), nil
	case "%":
		if rf == 0 {
			return Value{}, fmt.Errorf("metadb: modulo by zero")
		}
		return F(math.Mod(lf, rf)), nil
	}
	return Value{}, fmt.Errorf("metadb: unknown arithmetic operator %q", op)
}

func evalIn(n InList, ctx *evalCtx) (Value, error) {
	x, err := eval(n.X, ctx)
	if err != nil {
		return Value{}, err
	}
	if x.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, item := range n.List {
		v, err := eval(item, ctx)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if Equal(x, v) {
			return B(!n.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return B(n.Not), nil
}

func evalCall(n Call, ctx *evalCtx) (Value, error) {
	argv := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := eval(a, ctx)
		if err != nil {
			return Value{}, err
		}
		argv[i] = v
	}
	want := func(k int) error {
		if len(argv) != k {
			return fmt.Errorf("metadb: %s takes %d argument(s), got %d", n.Name, k, len(argv))
		}
		return nil
	}
	switch n.Name {
	case "LENGTH":
		if err := want(1); err != nil {
			return Value{}, err
		}
		if argv[0].IsNull() {
			return Null(), nil
		}
		if argv[0].Kind != KindText {
			return Value{}, fmt.Errorf("metadb: LENGTH requires text")
		}
		return I(int64(len(argv[0].Str))), nil
	case "UPPER", "LOWER":
		if err := want(1); err != nil {
			return Value{}, err
		}
		if argv[0].IsNull() {
			return Null(), nil
		}
		if argv[0].Kind != KindText {
			return Value{}, fmt.Errorf("metadb: %s requires text", n.Name)
		}
		if n.Name == "UPPER" {
			return S(strings.ToUpper(argv[0].Str)), nil
		}
		return S(strings.ToLower(argv[0].Str)), nil
	case "ABS":
		if err := want(1); err != nil {
			return Value{}, err
		}
		switch argv[0].Kind {
		case KindNull:
			return Null(), nil
		case KindInt:
			if argv[0].Int < 0 {
				return I(-argv[0].Int), nil
			}
			return argv[0], nil
		case KindFloat:
			return F(math.Abs(argv[0].Float)), nil
		}
		return Value{}, fmt.Errorf("metadb: ABS requires a number")
	case "COALESCE":
		for _, v := range argv {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	}
	return Value{}, fmt.Errorf("metadb: unknown function %q", n.Name)
}

// likeMatch implements SQL LIKE: % matches any run (including empty), _
// matches exactly one byte. Matching is case-sensitive.
func likeMatch(pattern, s string) bool {
	// Iterative two-pointer algorithm with backtracking on %.
	p, si := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[si]):
			p++
			si++
		case p < len(pattern) && pattern[p] == '%':
			star = p
			sBack = si
			p++
		case star >= 0:
			p = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}
