package metadb

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// walRecordEnds parses the WAL's framing (8-byte little-endian length
// per record) and returns the end offset of every complete record.
func walRecordEnds(t *testing.T, wal []byte) []int64 {
	t.Helper()
	var ends []int64
	off := int64(0)
	for off < int64(len(wal)) {
		if off+8 > int64(len(wal)) {
			t.Fatalf("WAL ends mid-header at %d/%d", off, len(wal))
		}
		n := binary.LittleEndian.Uint64(wal[off : off+8])
		off += 8 + int64(n)
		if off > int64(len(wal)) {
			t.Fatalf("WAL record overruns file: end %d > size %d", off, len(wal))
		}
		ends = append(ends, off)
	}
	return ends
}

// seedWAL builds a WAL of one CREATE TABLE plus `inserts` single-row
// commits, crashed without Close (so recovery is WAL-only), and
// returns the raw WAL bytes.
func seedWAL(t *testing.T, inserts int) []byte {
	t.Helper()
	dir := t.TempDir()
	db := openDir(t, dir)
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < inserts; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	// Simulated crash: no Close, no checkpoint — the WAL is the only
	// durable state.
	wal, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	return wal
}

// TestWALCrashAtEveryOffset simulates a crash at every possible byte
// of a WAL append: for each prefix of the file, recovery must succeed,
// keep exactly the commits whose records are fully contained in the
// prefix, discard the torn tail, and leave a writable database.
func TestWALCrashAtEveryOffset(t *testing.T) {
	const inserts = 5
	wal := seedWAL(t, inserts)
	ends := walRecordEnds(t, wal)
	if len(ends) != inserts+1 {
		t.Fatalf("WAL holds %d records, want %d (create + %d inserts)", len(ends), inserts+1, inserts)
	}

	base := t.TempDir()
	for cut := 0; cut <= len(wal); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		complete := 0
		for _, end := range ends {
			if end <= int64(cut) {
				complete++
			}
		}
		s := db.Session()
		if complete == 0 {
			// Even the CREATE TABLE is torn: the table must not exist.
			if _, err := s.Exec(`SELECT COUNT(*) FROM t`); err == nil {
				t.Fatalf("cut %d: table recovered from a torn create record", cut)
			}
		} else {
			want := int64(complete - 1) // first complete record is the create
			if v := cell(t, s, `SELECT COUNT(*) FROM t`); v.Int != want {
				t.Fatalf("cut %d: recovered %d rows, want %d", cut, v.Int, want)
			}
			// The torn tail is truncated, not poisoned: the database
			// accepts new commits.
			mustExec(t, s, `INSERT INTO t VALUES (1000)`)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestWALCorruptLengthHeader corrupts a mid-file record's length
// header (the classic bit-rot case): recovery must keep everything
// before the corrupt record and discard it and all that follows — the
// framing has no way to resynchronize past a broken length.
func TestWALCorruptLengthHeader(t *testing.T) {
	const inserts = 5
	wal := seedWAL(t, inserts)
	ends := walRecordEnds(t, wal)

	// Corrupt the length of the third record (create + insert0 stay).
	corrupt := append([]byte(nil), wal...)
	binary.LittleEndian.PutUint64(corrupt[ends[1]:], 1<<40)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	db := openDir(t, dir)
	defer db.Close()
	if v := cell(t, db.Session(), `SELECT COUNT(*) FROM t`); v.Int != 1 {
		t.Fatalf("recovered %d rows, want 1 (records past the corruption discarded)", v.Int)
	}
	mustExec(t, db.Session(), `INSERT INTO t VALUES (1000)`)

	// The corrupt tail must be gone from disk after recovery, so a
	// second reopen sees a clean log.
	st, err := os.Stat(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(corrupt)) {
		t.Fatalf("WAL still %d bytes, want the corrupt tail truncated", st.Size())
	}
}
