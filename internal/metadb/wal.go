package metadb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dpfs/internal/obs"
)

// Durable storage layout:
//
//	<dir>/snapshot   full gob dump of all tables (atomic rename)
//	<dir>/wal        committed transactions appended after the snapshot
//
// Each WAL record is an 8-byte little-endian length followed by the gob
// encoding of a commitRecord (a fresh gob stream per record, so records
// are independently decodable and a torn tail is detected and
// discarded).

type commitRecord struct {
	// Seq is the record's 1-based position in the replicated log and
	// Epoch the primary term that produced it (DESIGN.md §13). Both are
	// zero in WALs written before replication existed; recovery treats
	// that as "counting starts now".
	Seq   int64
	Epoch int64
	Ops   []RedoOp
}

type snapshotRecord struct {
	// Seq/Epoch of the last commit record the snapshot covers, so the
	// replicated-log position survives WAL truncation.
	Seq   int64
	Epoch int64
	Tables []tableDump
}

type tableDump struct {
	Name    string
	Cols    []ColumnDef
	NextRow int64
	RowIDs  []int64
	Rows    [][]Value
	Indexes []indexDump
}

type indexDump struct {
	Name string
	Col  string
}

type walFile struct {
	dir  string
	f    *os.File
	sync bool
	size int64

	reg *obs.Registry // owning DB's registry; nil only in unit tests

	// Group-commit state. appended and durable are monotonic byte
	// sequence numbers: unlike size they never rewind when a
	// checkpoint resets the file, so a waiter's target stays
	// meaningful across resets (a reset marks everything appended so
	// far durable, because the snapshot supersedes it).
	group     bool
	groupWait time.Duration
	syncDelay time.Duration
	gcMu      sync.Mutex
	gcCond    *sync.Cond // lazily created; guards the fields below
	appended  int64      // bytes ever appended
	durable   int64      // bytes covered by an fsync or snapshot
	pending   int64      // commits appended since the last fsync
	syncing   bool       // a leader's fsync is in flight
	syncErr   error      // last failed fsync, covering appends <= errUpTo
	errUpTo   int64
}

func openWAL(dir string, sync bool) (*walFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("metadb: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metadb: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &walFile{dir: dir, f: f, sync: sync, size: st.Size()}, nil
}

func (w *walFile) close() error { return w.f.Close() }

// append writes one commit record at the end of the WAL.
func (w *walFile) append(rec commitRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("metadb: encode wal record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(buf.Len()))
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return err
	}
	w.size += 8 + int64(buf.Len())
	if w.reg != nil {
		w.reg.Counter(MetricWALAppends).Inc()
		w.reg.Counter(MetricWALBytes).Add(8 + int64(buf.Len()))
	}
	if w.group {
		// Group commit: record the append and leave the fsync to the
		// shared waitDurable path, outside the database write lock.
		w.gcMu.Lock()
		w.appended += 8 + int64(buf.Len())
		w.pending++
		w.gcMu.Unlock()
		return nil
	}
	if w.sync {
		if err := w.fsync(); err != nil {
			return err
		}
		if w.reg != nil {
			w.reg.Counter(MetricWALFsyncs).Inc()
		}
	}
	return nil
}

// fsync flushes the WAL file, first paying the modeled device cost
// when Options.SyncDelay is set.
func (w *walFile) fsync() error {
	if w.syncDelay > 0 {
		time.Sleep(w.syncDelay)
	}
	return w.f.Sync()
}

// target returns the monotonic byte sequence number a group-commit
// waiter must see durable. Caller holds walMu (so appended reflects
// the caller's own record).
func (w *walFile) target() int64 {
	w.gcMu.Lock()
	defer w.gcMu.Unlock()
	return w.appended
}

// waitDurable blocks until an fsync or snapshot covers the given
// sequence number, leading a shared fsync itself when none is in
// flight. Callers hold no locks.
func (w *walFile) waitDurable(target int64) error {
	w.gcMu.Lock()
	defer w.gcMu.Unlock()
	if w.gcCond == nil {
		w.gcCond = sync.NewCond(&w.gcMu)
	}
	for {
		if w.durable >= target {
			return nil
		}
		if w.syncErr != nil && target <= w.errUpTo {
			return w.syncErr
		}
		if w.syncing {
			w.gcCond.Wait()
			continue
		}
		// Become the leader: optionally linger for followers, then
		// fsync everything appended so far in one call.
		w.syncing = true
		if w.groupWait > 0 {
			w.gcMu.Unlock()
			time.Sleep(w.groupWait)
			w.gcMu.Lock()
		}
		end := w.appended
		batch := w.pending
		w.pending = 0
		w.gcMu.Unlock()
		err := w.fsync()
		w.gcMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
			if end > w.errUpTo {
				w.errUpTo = end
			}
		} else {
			if end > w.durable {
				w.durable = end
			}
			if w.reg != nil {
				w.reg.Counter(MetricWALFsyncs).Inc()
				w.reg.Histogram(MetricWALBatchSize).Record(batch)
				if batch > 1 {
					w.reg.Counter(MetricWALGroupCommits).Inc()
				}
			}
		}
		w.gcCond.Broadcast()
	}
}

// replay streams committed records to apply, stopping cleanly at a torn
// or corrupt tail (which it truncates away).
func (w *walFile) replay(apply func(commitRecord) error) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var good int64
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
			break // EOF or torn header
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n == 0 || n > 1<<30 {
			break // corrupt length
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(w.f, body); err != nil {
			break // torn body
		}
		var rec commitRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			break // corrupt record
		}
		if err := apply(rec); err != nil {
			return err
		}
		good += 8 + int64(n)
	}
	if good != w.size {
		if err := w.f.Truncate(good); err != nil {
			return err
		}
		w.size = good
	}
	return nil
}

// reset truncates the WAL to empty (after a snapshot). In group mode
// everything appended so far becomes durable — the freshly synced
// snapshot supersedes the discarded records — so pending waiters are
// released.
func (w *walFile) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.size = 0
	if w.group {
		w.gcMu.Lock()
		w.durable = w.appended
		w.pending = 0
		w.syncErr = nil
		w.errUpTo = 0
		if w.gcCond != nil {
			w.gcCond.Broadcast()
		}
		w.gcMu.Unlock()
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

// logCommit durably records a committed transaction's redo ops and
// triggers an automatic checkpoint when the WAL has grown large.
// Caller holds db.mu exclusively. The first return is the group-commit
// wait target: when > 0 the caller must pass it to wal.waitDurable
// after releasing db.mu — the record is appended here (keeping WAL
// order equal to commit order) but not yet fsynced. The second return
// is the commit's replicated-log sequence number (0 for empty
// commits): logCommit advances it under db.mu so log order, WAL order
// and commit order all agree.
func (db *DB) logCommit(redo []RedoOp) (int64, int64, error) {
	if len(redo) == 0 {
		return 0, 0, nil
	}
	seq := db.replSeq + 1
	if db.wal == nil {
		db.replSeq = seq
		db.replLastEpoch = db.replEpoch
		return 0, seq, nil
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if err := db.wal.append(commitRecord{Seq: seq, Epoch: db.replEpoch, Ops: redo}); err != nil {
		return 0, 0, err
	}
	db.replSeq = seq
	db.replLastEpoch = db.replEpoch
	if db.opts.CheckpointBytes > 0 && db.wal.size > db.opts.CheckpointBytes {
		// The snapshot makes every appended record durable, so group
		// committers have nothing to wait for.
		return 0, seq, db.snapshotLocked()
	}
	if db.wal.group {
		return db.wal.target(), seq, nil
	}
	return 0, seq, nil
}

// checkpointLocked snapshots under db.mu.
func (db *DB) checkpointLocked() error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	return db.snapshotLocked()
}

// snapshotLocked writes the full database state atomically and resets
// the WAL. Caller holds both db.mu and db.walMu.
func (db *DB) snapshotLocked() error {
	return db.writeSnapshotLocked(db.buildSnapshotLocked())
}

// buildSnapshotLocked captures the full database state as a snapshot
// record. Caller holds at least db.mu for reading.
func (db *DB) buildSnapshotLocked() snapshotRecord {
	rec := snapshotRecord{Seq: db.replSeq, Epoch: db.replLastEpoch}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		dump := tableDump{Name: t.Name, Cols: t.Cols, NextRow: t.nextRow}
		for _, rid := range t.scanIDs() {
			dump.RowIDs = append(dump.RowIDs, rid)
			dump.Rows = append(dump.Rows, t.rows[rid])
		}
		ixNames := make([]string, 0, len(t.secondary))
		for name := range t.secondary {
			ixNames = append(ixNames, name)
		}
		sort.Strings(ixNames)
		for _, name := range ixNames {
			ix := t.secondary[name]
			dump.Indexes = append(dump.Indexes, indexDump{Name: name, Col: t.Cols[ix.col].Name})
		}
		rec.Tables = append(rec.Tables, dump)
	}
	return rec
}

// writeSnapshotLocked persists a snapshot record atomically and resets
// the WAL. Caller holds both db.mu and db.walMu.
func (db *DB) writeSnapshotLocked(rec snapshotRecord) error {
	tmp := filepath.Join(db.wal.dir, "snapshot.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(rec); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.wal.dir, "snapshot")); err != nil {
		return err
	}
	db.reg.Counter(MetricWALCheckpoints).Inc()
	return db.wal.reset()
}

func (db *DB) tableNamesLocked() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	// Deterministic snapshot order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// recover loads the snapshot (if any) and replays the WAL.
func (db *DB) recover() error {
	snap := filepath.Join(db.wal.dir, "snapshot")
	if f, err := os.Open(snap); err == nil {
		var rec snapshotRecord
		err := gob.NewDecoder(f).Decode(&rec)
		f.Close()
		if err != nil {
			return fmt.Errorf("metadb: corrupt snapshot: %w", err)
		}
		for _, dump := range rec.Tables {
			t, err := NewTable(dump.Name, dump.Cols)
			if err != nil {
				return err
			}
			for i, rid := range dump.RowIDs {
				t.insert(dump.Rows[i], rid)
			}
			if dump.NextRow > t.nextRow {
				t.nextRow = dump.NextRow
			}
			for _, ix := range dump.Indexes {
				if err := t.createIndex(ix.Name, ix.Col); err != nil {
					return err
				}
			}
			db.tables[dump.Name] = t
		}
		db.replSeq = rec.Seq
		db.replLastEpoch = rec.Epoch
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return db.wal.replay(func(rec commitRecord) error {
		if rec.Seq > db.replSeq {
			db.replSeq = rec.Seq
			db.replLastEpoch = rec.Epoch
		} else if rec.Seq == 0 {
			// Pre-replication record: count it so the log position
			// still reflects every commit.
			db.replSeq++
		}
		return db.applyRedo(rec.Ops)
	})
}

// applyRedo replays committed operations during recovery.
func (db *DB) applyRedo(ops []RedoOp) error {
	for _, op := range ops {
		switch op.Kind {
		case "create":
			t, err := NewTable(op.Table, op.Cols)
			if err != nil {
				return err
			}
			db.tables[op.Table] = t
		case "drop":
			delete(db.tables, op.Table)
		case "insert":
			t, err := db.table(op.Table)
			if err != nil {
				return err
			}
			t.insert(op.Vals, op.RowID)
		case "delete":
			t, err := db.table(op.Table)
			if err != nil {
				return err
			}
			t.delete(op.RowID)
		case "update":
			t, err := db.table(op.Table)
			if err != nil {
				return err
			}
			t.update(op.RowID, op.Vals)
		case "createindex":
			t, err := db.table(op.Table)
			if err != nil {
				return err
			}
			if err := t.createIndex(op.Index, op.Col); err != nil {
				return err
			}
		case "dropindex":
			t, err := db.table(op.Table)
			if err != nil {
				return err
			}
			t.dropIndex(op.Index)
		default:
			return fmt.Errorf("metadb: unknown redo op %q", op.Kind)
		}
	}
	return nil
}
