// Package metadb is a small embedded relational database engine used as
// the DPFS meta-data repository. The paper stores DPFS meta data in
// POSTGRES and accesses it with standard SQL (Section 5); this package
// is the from-scratch substitute: a SQL subset (CREATE/DROP TABLE,
// INSERT, SELECT with WHERE/ORDER BY/LIMIT and whole-table aggregates,
// UPDATE, DELETE), transactions (BEGIN/COMMIT/ROLLBACK) with undo
// logging, and durable storage via a write-ahead log plus snapshot
// checkpoints. A TCP front end lives in the mdbnet subpackage.
package metadb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of SQL values.
type Kind uint8

const (
	// KindNull is the SQL NULL.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindText is a string.
	KindText
)

// String names the kind like the SQL type keywords do.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a SQL runtime value.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// Null, I, F and S are value constructors.
func Null() Value       { return Value{Kind: KindNull} }
func I(v int64) Value   { return Value{Kind: KindInt, Int: v} }
func F(v float64) Value { return Value{Kind: KindFloat, Float: v} }
func S(v string) Value  { return Value{Kind: KindText, Str: v} }
func B(v bool) Value {
	if v {
		return I(1)
	}
	return I(0)
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truth reports whether the value counts as true in a WHERE clause
// (non-zero number, non-empty handled as error elsewhere; NULL is
// false).
func (v Value) Truth() bool {
	switch v.Kind {
	case KindInt:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindText:
		return v.Str != ""
	}
	return false
}

// AsFloat coerces a numeric value to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	}
	return 0, false
}

// String renders the value as SQL literal text.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindText:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return "?"
}

// Text returns the value rendered as plain (unquoted) text, the way a
// client displays result cells.
func (v Value) Text() string {
	if v.Kind == KindText {
		return v.Str
	}
	return v.String()
}

// Compare orders two values: NULL sorts before everything; numbers
// compare numerically across int/float; text compares bytewise.
// Comparing text with numbers orders numbers first (deterministic, like
// SQLite's type ordering).
func Compare(a, b Value) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindNull:
		return 0
	case KindText:
		return strings.Compare(a.Str, b.Str)
	default: // numeric
		fa, _ := a.AsFloat()
		fb, _ := b.AsFloat()
		// Exact path for int/int to avoid float rounding on big ints.
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			}
			return 0
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
}

func typeRank(v Value) int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// Equal reports SQL equality (used by =; NULL = NULL is handled by the
// evaluator, which yields NULL before calling this).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// ParseType maps a SQL column type keyword to a Kind.
func ParseType(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "REAL", "FLOAT", "DOUBLE":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return KindText, nil
	}
	return 0, fmt.Errorf("metadb: unknown column type %q", name)
}

// coerce converts v for storage into a column of kind k; ints widen to
// floats, everything else must match (or be NULL).
func coerce(v Value, k Kind) (Value, error) {
	if v.IsNull() || v.Kind == k {
		return v, nil
	}
	if k == KindFloat && v.Kind == KindInt {
		return F(float64(v.Int)), nil
	}
	if k == KindInt && v.Kind == KindFloat && v.Float == float64(int64(v.Float)) {
		return I(int64(v.Float)), nil
	}
	return Value{}, fmt.Errorf("metadb: cannot store %s value %s in %s column", v.Kind, v, k)
}
