package metadb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written; strings unquoted
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "IF": true, "EXISTS": true, "NOT": true,
	"NULL": true, "PRIMARY": true, "KEY": true, "AND": true, "OR": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "LIKE": true, "IN": true,
	"IS": true, "AS": true, "DISTINCT": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "UNIQUE": true, "DEFAULT": true,
	"TRANSACTION": true, "GROUP": true, "HAVING": true, "JOIN": true,
	"INNER": true, "ON": true, "INDEX": true, "EXPLAIN": true,
}

// lex tokenizes a SQL statement. It returns a descriptive error with
// byte position on malformed input.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("metadb: unterminated string literal at byte %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			isFloat := false
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i < n && src[i] == '.' {
				isFloat = true
				i++
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				isFloat = true
				i++
				if i < n && (src[i] == '+' || src[i] == '-') {
					i++
				}
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind: kind, text: src[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(src[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("metadb: unterminated quoted identifier at byte %d", start)
			}
			toks = append(toks, token{kind: tokIdent, text: src[i : i+j], pos: start})
			i += j + 1
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>", "||":
				toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', ';', '.':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("metadb: unexpected character %q at byte %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
