package metadb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func cell(t *testing.T, s *Session, sql string) Value {
	t.Helper()
	res := mustExec(t, s, sql)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("Exec(%q): want single cell, got %d rows", sql, len(res.Rows))
	}
	return res.Rows[0][0]
}

func newTestDB(t *testing.T) *Session {
	t.Helper()
	db := Memory()
	t.Cleanup(func() { db.Close() })
	return db.Session()
}

func TestCreateInsertSelect(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE servers (name TEXT PRIMARY KEY, capacity INT, performance INT)`)
	mustExec(t, s, `INSERT INTO servers VALUES ('ccn0', 500, 1), ('aruba', 300, 2)`)
	res := mustExec(t, s, `INSERT INTO servers (name, capacity) VALUES ('moorea', 400)`)
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}

	res = mustExec(t, s, `SELECT name, capacity FROM servers ORDER BY capacity DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].Str != "ccn0" || res.Rows[1][0].Str != "moorea" || res.Rows[2][0].Str != "aruba" {
		t.Fatalf("order wrong: %v", res.Rows)
	}
	// Unset column is NULL.
	v := cell(t, s, `SELECT performance FROM servers WHERE name = 'moorea'`)
	if !v.IsNull() {
		t.Fatalf("expected NULL performance, got %v", v)
	}
	// SELECT * expansion.
	res = mustExec(t, s, `SELECT * FROM servers LIMIT 2`)
	if len(res.Cols) != 3 || res.Cols[0] != "name" {
		t.Fatalf("star cols = %v", res.Cols)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
}

func TestWhereAndExpressions(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, x INT, s TEXT, f REAL)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d, 'row%d', %d.5)`, i, i*i, i, i))
	}
	cases := []struct {
		where string
		want  int
	}{
		{`x > 50`, 3},
		{`x >= 49 AND x <= 81`, 3},
		{`id = 3 OR id = 7`, 2},
		{`NOT (id < 9)`, 2},
		{`s LIKE 'row1%'`, 2}, // row1, row10
		{`s LIKE '_ow2'`, 1},
		{`s NOT LIKE 'row%'`, 0},
		{`id IN (2, 4, 6)`, 3},
		{`id NOT IN (1,2,3,4,5,6,7,8,9)`, 1},
		{`f < 3`, 2},
		{`id % 2 = 0`, 5},
		{`(id + 1) * 2 = 6`, 1},
		{`-id = -4`, 1},
		{`s || 'x' = 'row5x'`, 1},
		{`LENGTH(s) = 5`, 1}, // row10
		{`UPPER(s) = 'ROW2'`, 1},
		{`LOWER('ROW3') = s`, 1},
		{`ABS(0 - id) = 6`, 1},
	}
	for _, c := range cases {
		res := mustExec(t, s, `SELECT id FROM t WHERE `+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, x INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)`)

	if res := mustExec(t, s, `SELECT id FROM t WHERE x > 5`); len(res.Rows) != 2 {
		t.Errorf("NULL should not match x > 5: %d rows", len(res.Rows))
	}
	if res := mustExec(t, s, `SELECT id FROM t WHERE x IS NULL`); len(res.Rows) != 1 {
		t.Errorf("IS NULL: %d rows", len(res.Rows))
	}
	if res := mustExec(t, s, `SELECT id FROM t WHERE x IS NOT NULL`); len(res.Rows) != 2 {
		t.Errorf("IS NOT NULL: %d rows", len(res.Rows))
	}
	// NULL = NULL is NULL, not true.
	if res := mustExec(t, s, `SELECT id FROM t WHERE x = NULL`); len(res.Rows) != 0 {
		t.Errorf("x = NULL matched %d rows", len(res.Rows))
	}
	// Kleene logic: NULL OR true = true, NULL AND false = false.
	if v := cell(t, s, `SELECT COUNT(*) FROM t WHERE x > 1000 OR 1 = 1`); v.Int != 3 {
		t.Errorf("NULL OR true: %v", v)
	}
	if res := mustExec(t, s, `SELECT id FROM t WHERE x > 1000 AND 1 = 0`); len(res.Rows) != 0 {
		t.Errorf("NULL AND false matched")
	}
	// COALESCE picks first non-null.
	if v := cell(t, s, `SELECT COALESCE(x, -1) FROM t WHERE id = 2`); v.Int != -1 {
		t.Errorf("COALESCE = %v", v)
	}
	// NULLs sort first.
	res := mustExec(t, s, `SELECT id FROM t ORDER BY x ASC`)
	if res.Rows[0][0].Int != 2 {
		t.Errorf("NULL should sort first: %v", res.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, x INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 1), (2, 2), (3, 3), (4, 4)`)

	res := mustExec(t, s, `UPDATE t SET x = x * 10 WHERE id > 2`)
	if res.RowsAffected != 2 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
	if v := cell(t, s, `SELECT x FROM t WHERE id = 4`); v.Int != 40 {
		t.Fatalf("x = %v", v)
	}

	res = mustExec(t, s, `DELETE FROM t WHERE x >= 30`)
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	if v := cell(t, s, `SELECT COUNT(*) FROM t`); v.Int != 2 {
		t.Fatalf("count = %v", v)
	}
	// Update the primary key itself.
	mustExec(t, s, `UPDATE t SET id = 100 WHERE id = 1`)
	if v := cell(t, s, `SELECT x FROM t WHERE id = 100`); v.Int != 1 {
		t.Fatalf("pk move failed: %v", v)
	}
	// Delete everything.
	mustExec(t, s, `DELETE FROM t`)
	if v := cell(t, s, `SELECT COUNT(*) FROM t`); v.Int != 0 {
		t.Fatalf("count after delete all = %v", v)
	}
}

func TestConstraints(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, email TEXT UNIQUE, name TEXT NOT NULL)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'a@x', 'alice')`)

	if _, err := s.Exec(`INSERT INTO t VALUES (1, 'b@x', 'bob')`); err == nil {
		t.Error("duplicate pk should fail")
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (2, 'a@x', 'bob')`); err == nil {
		t.Error("duplicate unique should fail")
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (3, 'c@x', NULL)`); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (NULL, 'd@x', 'dan')`); err == nil {
		t.Error("NULL pk should fail")
	}
	// NULL unique values are allowed repeatedly.
	mustExec(t, s, `INSERT INTO t VALUES (5, NULL, 'eve'), (6, NULL, 'fay')`)
	// Update into a duplicate must fail and leave the row unchanged.
	if _, err := s.Exec(`UPDATE t SET email = 'a@x' WHERE id = 5`); err == nil {
		t.Error("update to duplicate unique should fail")
	}
	if v := cell(t, s, `SELECT email FROM t WHERE id = 5`); !v.IsNull() {
		t.Errorf("failed update leaked: %v", v)
	}
	// Updating a row to its own value is fine.
	mustExec(t, s, `UPDATE t SET email = 'a@x' WHERE id = 1`)
	// Type mismatch.
	if _, err := s.Exec(`INSERT INTO t VALUES (7, 'g@x', 42)`); err == nil {
		t.Error("int into TEXT column should fail")
	}
}

func TestTypeCoercion(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, f REAL)`)
	// Int literal into REAL widens; exact float into INT narrows.
	mustExec(t, s, `INSERT INTO t VALUES (1, 2), (2.0, 3.5)`)
	if v := cell(t, s, `SELECT f FROM t WHERE id = 1`); v.Kind != KindFloat || v.Float != 2 {
		t.Errorf("widened value = %v", v)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (3.7, 1.0)`); err == nil {
		t.Error("non-integral float into INT should fail")
	}
}

func TestAggregates(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, x INT, f REAL)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 4, 1.5), (2, NULL, 2.5), (3, 2, NULL), (4, 6, 4.0)`)

	res := mustExec(t, s, `SELECT COUNT(*), COUNT(x), SUM(x), MIN(x), MAX(x), AVG(x) FROM t`)
	row := res.Rows[0]
	wants := []Value{I(4), I(3), I(12), I(2), I(6), F(4)}
	for i, w := range wants {
		if Compare(row[i], w) != 0 {
			t.Errorf("agg %s = %v, want %v", res.Cols[i], row[i], w)
		}
	}
	if v := cell(t, s, `SELECT SUM(f) FROM t WHERE id > 2`); v.Kind != KindFloat || v.Float != 4.0 {
		t.Errorf("sum(f) = %v", v)
	}
	// Aggregates over empty sets.
	res = mustExec(t, s, `SELECT COUNT(*), SUM(x), MIN(x), AVG(x) FROM t WHERE id > 100`)
	row = res.Rows[0]
	if row[0].Int != 0 || !row[1].IsNull() || !row[2].IsNull() || !row[3].IsNull() {
		t.Errorf("empty aggregates = %v", row)
	}
	// Mixing aggregates and plain columns without GROUP BY evaluates
	// the plain column on the group's first row (SQLite-style).
	res = mustExec(t, s, `SELECT id, COUNT(*) FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 4 {
		t.Errorf("mixed select = %v", res.Rows)
	}
	// Aliases.
	res = mustExec(t, s, `SELECT COUNT(*) AS n FROM t`)
	if res.Cols[0] != "n" {
		t.Errorf("alias = %v", res.Cols)
	}
}

func TestTransactions(t *testing.T) {
	db := Memory()
	defer db.Close()
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, x INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 1)`)

	// Rollback undoes everything including DDL.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (2, 2)`)
	mustExec(t, s, `UPDATE t SET x = 99 WHERE id = 1`)
	mustExec(t, s, `DELETE FROM t WHERE id = 1`)
	mustExec(t, s, `CREATE TABLE other (a INT)`)
	mustExec(t, s, `ROLLBACK`)

	if v := cell(t, s, `SELECT x FROM t WHERE id = 1`); v.Int != 1 {
		t.Fatalf("rollback failed: x = %v", v)
	}
	if v := cell(t, s, `SELECT COUNT(*) FROM t`); v.Int != 1 {
		t.Fatalf("rollback failed: count = %v", v)
	}
	if _, err := s.Exec(`SELECT * FROM other`); err == nil {
		t.Fatal("rolled-back table still exists")
	}

	// Commit keeps changes.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (2, 2)`)
	mustExec(t, s, `COMMIT`)
	if v := cell(t, s, `SELECT COUNT(*) FROM t`); v.Int != 2 {
		t.Fatalf("commit lost rows: %v", v)
	}

	// Statement atomicity inside a transaction: a failing multi-row
	// insert leaves no partial rows, and the transaction stays usable.
	mustExec(t, s, `BEGIN`)
	if _, err := s.Exec(`INSERT INTO t VALUES (3, 3), (1, 1)`); err == nil {
		t.Fatal("dup pk in multi-insert should fail")
	}
	mustExec(t, s, `INSERT INTO t VALUES (4, 4)`)
	mustExec(t, s, `COMMIT`)
	if v := cell(t, s, `SELECT COUNT(*) FROM t`); v.Int != 3 {
		t.Fatalf("statement atomicity broken: count = %v", v)
	}
	if res := mustExec(t, s, `SELECT id FROM t WHERE id = 3`); len(res.Rows) != 0 {
		t.Fatal("partial insert leaked row 3")
	}

	// Transaction state errors.
	if _, err := s.Exec(`COMMIT`); err == nil {
		t.Error("commit without begin should fail")
	}
	if _, err := s.Exec(`ROLLBACK`); err == nil {
		t.Error("rollback without begin should fail")
	}
	mustExec(t, s, `BEGIN`)
	if _, err := s.Exec(`BEGIN`); err == nil {
		t.Error("nested begin should fail")
	}
	mustExec(t, s, `ROLLBACK`)

	// Read-only transaction commit is a no-op.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `SELECT * FROM t`)
	mustExec(t, s, `COMMIT`)

	// Abort releases the lock so others can proceed.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (50, 50)`)
	s.Abort()
	s2 := db.Session()
	if v := cell(t, s2, `SELECT COUNT(*) FROM t`); v.Int != 3 {
		t.Fatalf("abort did not roll back: %v", v)
	}
}

func TestTransactionIsolationAcrossSessions(t *testing.T) {
	db := Memory()
	defer db.Close()
	s1 := db.Session()
	mustExec(t, s1, `CREATE TABLE t (id INT PRIMARY KEY)`)

	mustExec(t, s1, `BEGIN`)
	mustExec(t, s1, `INSERT INTO t VALUES (1)`)

	// A second session must not observe uncommitted data; it blocks
	// until commit (strict 2PL), so run it in a goroutine.
	got := make(chan int64, 1)
	go func() {
		s2 := db.Session()
		res, err := s2.Exec(`SELECT COUNT(*) FROM t`)
		if err != nil {
			got <- -1
			return
		}
		got <- res.Rows[0][0].Int
	}()
	mustExec(t, s1, `COMMIT`)
	if n := <-got; n != 1 {
		t.Fatalf("reader saw %d rows; wants 1 (after commit)", n)
	}
}

func TestConcurrentWriters(t *testing.T) {
	db := Memory()
	defer db.Close()
	mustExec(t, db.Session(), `CREATE TABLE t (id INT PRIMARY KEY)`)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			for i := 0; i < 25; i++ {
				if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, w*1000+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v := cell(t, db.Session(), `SELECT COUNT(*) FROM t`); v.Int != 200 {
		t.Fatalf("count = %v, want 200", v)
	}
}

func TestDropTable(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT)`)
	mustExec(t, s, `DROP TABLE t`)
	if _, err := s.Exec(`SELECT * FROM t`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := s.Exec(`DROP TABLE t`); err == nil {
		t.Fatal("dropping missing table should fail")
	}
	mustExec(t, s, `DROP TABLE IF EXISTS t`)
	mustExec(t, s, `CREATE TABLE IF NOT EXISTS u (id INT)`)
	mustExec(t, s, `CREATE TABLE IF NOT EXISTS u (id INT)`)

	// Rollback of a drop restores data.
	mustExec(t, s, `INSERT INTO u VALUES (7)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `DROP TABLE u`)
	mustExec(t, s, `ROLLBACK`)
	if v := cell(t, s, `SELECT id FROM u`); v.Int != 7 {
		t.Fatalf("drop rollback lost data: %v", v)
	}
}

func TestParserErrors(t *testing.T) {
	s := newTestDB(t)
	bad := []string{
		``,
		`SELEC * FROM t`,
		`SELECT FROM t`,
		`SELECT * FROM`,
		`CREATE TABLE`,
		`CREATE TABLE t (x BOGUSTYPE)`,
		`CREATE TABLE t (x INT,)`,
		`INSERT INTO t VALUES`,
		`INSERT t VALUES (1)`,
		`UPDATE t x = 1`,
		`DELETE t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT x`,
		`SELECT * FROM t ORDER x`,
		`SELECT 'unterminated FROM t`,
		"SELECT \x01 FROM t",
		`SELECT * FROM t; SELECT * FROM t`,
		`SELECT * FROM t WHERE x NOT 5`,
		`SELECT COUNT( FROM t`,
	}
	for _, sql := range bad {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, s TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'a')`)
	bad := []string{
		`SELECT nosuch FROM t`,
		`SELECT * FROM nosuch`,
		`SELECT id / 0 FROM t`,
		`SELECT id % 0 FROM t`,
		`SELECT id + s FROM t`,
		`SELECT -s FROM t`,
		`SELECT id || s FROM t`,
		`SELECT s LIKE 5 FROM t`,
		`SELECT LENGTH(id) FROM t`,
		`SELECT LENGTH(s, s) FROM t`,
		`SELECT NOSUCHFN(s) FROM t`,
		`SELECT id = s FROM t`,
		`INSERT INTO t (nosuch) VALUES (1)`,
		`INSERT INTO t (id) VALUES (1, 2)`,
		`UPDATE t SET nosuch = 1`,
		`UPDATE nosuch SET x = 1`,
		`DELETE FROM nosuch`,
		`INSERT INTO nosuch VALUES (1)`,
	}
	for _, sql := range bad {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"_", "", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%%", "x", true},
		{"", "", true},
		{"", "x", false},
		{"/home/%", "/home/user/f", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if Null().String() != "NULL" || I(5).String() != "5" || F(1.5).String() != "1.5" {
		t.Error("String renders wrong")
	}
	if S("it's").String() != "'it''s'" {
		t.Errorf("quote escape = %s", S("it's").String())
	}
	if S("abc").Text() != "abc" || I(7).Text() != "7" {
		t.Error("Text renders wrong")
	}
	if Compare(I(2), F(2.0)) != 0 {
		t.Error("int/float equality")
	}
	if Compare(Null(), I(0)) >= 0 {
		t.Error("NULL should sort before numbers")
	}
	if Compare(I(1), S("a")) >= 0 {
		t.Error("numbers should sort before text")
	}
	if Compare(I(1<<62), I(1<<62-1)) <= 0 {
		t.Error("big int comparison must be exact")
	}
	if !B(true).Truth() || B(false).Truth() || !S("x").Truth() || S("").Truth() || Null().Truth() {
		t.Error("Truth wrong")
	}
	if k := KindText.String(); k != "TEXT" {
		t.Errorf("kind = %s", k)
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("blob should be unknown")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, b INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 2), (1, 1), (2, 9), (0, 5)`)
	res := mustExec(t, s, `SELECT a, b FROM t ORDER BY a ASC, b DESC`)
	want := [][2]int64{{0, 5}, {1, 2}, {1, 1}, {2, 9}}
	for i, w := range want {
		if res.Rows[i][0].Int != w[0] || res.Rows[i][1].Int != w[1] {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestQuotedIdentAndComments(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE "select_t" (id INT) -- trailing comment`)
	mustExec(t, s, `INSERT INTO select_t VALUES (1)
-- a comment line
`)
	if v := cell(t, s, `SELECT COUNT(*) FROM "select_t"`); v.Int != 1 {
		t.Fatalf("count = %v", v)
	}
}

func TestPKFastPath(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (name TEXT PRIMARY KEY, x INT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES ('k%d', %d)`, i, i))
	}
	// Both orientations of the equality.
	if v := cell(t, s, `SELECT x FROM t WHERE name = 'k42'`); v.Int != 42 {
		t.Fatalf("pk lookup = %v", v)
	}
	if v := cell(t, s, `SELECT x FROM t WHERE 'k7' = name`); v.Int != 7 {
		t.Fatalf("pk lookup = %v", v)
	}
	if res := mustExec(t, s, `SELECT x FROM t WHERE name = 'missing'`); len(res.Rows) != 0 {
		t.Fatal("missing pk matched")
	}
	// Wrongly-typed pk probe matches nothing rather than erroring.
	if res := mustExec(t, s, `SELECT x FROM t WHERE name = 5`); len(res.Rows) != 0 {
		t.Fatal("typed pk probe matched")
	}
}

func TestTableNames(t *testing.T) {
	db := Memory()
	defer db.Close()
	s := db.Session()
	mustExec(t, s, `CREATE TABLE zz (a INT)`)
	mustExec(t, s, `CREATE TABLE aa (a INT)`)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Fatalf("names = %v", names)
	}
}

func TestExecStmtUnknown(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.ExecStmt(nil); err == nil {
		t.Fatal("nil statement should fail")
	}
}

func TestInsertSelectRoundtripLargeText(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, blob TEXT)`)
	big := strings.Repeat("brick,", 5000)
	mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (1, '%s')`, big))
	if v := cell(t, s, `SELECT blob FROM t WHERE id = 1`); v.Str != big {
		t.Fatal("large text roundtrip mismatch")
	}
}

// TestNoLostUpdate: two transactions that read-modify-write the same
// row must serialize completely; the second may not base its write on
// a stale read (this is the directory-entry update pattern of the
// DPFS catalog).
func TestNoLostUpdate(t *testing.T) {
	db := Memory()
	defer db.Close()
	s0 := db.Session()
	mustExec(t, s0, `CREATE TABLE d (k TEXT PRIMARY KEY, list TEXT)`)
	mustExec(t, s0, `INSERT INTO d VALUES ('/', '')`)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			if _, err := s.Exec(`BEGIN`); err != nil {
				errs <- err
				return
			}
			res, err := s.Exec(`SELECT list FROM d WHERE k = '/'`)
			if err != nil {
				errs <- err
				s.Abort()
				return
			}
			cur := res.Rows[0][0].Str
			next := cur + fmt.Sprintf("f%d,", w)
			if _, err := s.Exec(fmt.Sprintf(`UPDATE d SET list = '%s' WHERE k = '/'`, next)); err != nil {
				errs <- err
				s.Abort()
				return
			}
			if _, err := s.Exec(`COMMIT`); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v := cell(t, s0, `SELECT list FROM d WHERE k = '/'`)
	got := strings.Count(v.Str, ",")
	if got != workers {
		t.Fatalf("list has %d entries (%q), want %d — lost update", got, v.Str, workers)
	}
}
