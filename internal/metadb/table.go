package metadb

import (
	"fmt"
	"sort"
)

// Table is an in-memory relation: a schema, rows addressed by a
// monotonically increasing rowid (which also gives stable scan order),
// hash indexes on the primary key and UNIQUE columns, and optional
// non-unique secondary indexes (CREATE INDEX).
type Table struct {
	Name      string
	Cols      []ColumnDef
	colIdx    map[string]int
	rows      map[int64][]Value
	pk        int                     // index of the primary-key column, -1 if none
	pkIdx     map[Value]int64         // pk value -> rowid
	uniqIdx   map[int]map[Value]int64 // column index -> value -> rowid
	secondary map[string]*secondaryIndex
	nextRow   int64
}

// secondaryIndex is a non-unique hash index over one column.
type secondaryIndex struct {
	name string
	col  int
	m    map[Value]map[int64]struct{}
}

func (ix *secondaryIndex) add(v Value, rid int64) {
	if v.IsNull() {
		return
	}
	set, ok := ix.m[v]
	if !ok {
		set = make(map[int64]struct{})
		ix.m[v] = set
	}
	set[rid] = struct{}{}
}

func (ix *secondaryIndex) remove(v Value, rid int64) {
	if v.IsNull() {
		return
	}
	if set, ok := ix.m[v]; ok {
		delete(set, rid)
		if len(set) == 0 {
			delete(ix.m, v)
		}
	}
}

// createIndex registers and builds a secondary index.
func (t *Table) createIndex(name, col string) error {
	ci, err := t.ColIndex(col)
	if err != nil {
		return err
	}
	if _, dup := t.secondary[name]; dup {
		return fmt.Errorf("metadb: index %q already exists on table %q", name, t.Name)
	}
	ix := &secondaryIndex{name: name, col: ci, m: make(map[Value]map[int64]struct{})}
	for rid, vals := range t.rows {
		ix.add(vals[ci], rid)
	}
	if t.secondary == nil {
		t.secondary = make(map[string]*secondaryIndex)
	}
	t.secondary[name] = ix
	return nil
}

// dropIndex removes a secondary index.
func (t *Table) dropIndex(name string) bool {
	if _, ok := t.secondary[name]; !ok {
		return false
	}
	delete(t.secondary, name)
	return true
}

// indexOn returns a secondary index covering the column, if any.
func (t *Table) indexOn(col int) *secondaryIndex {
	for _, ix := range t.secondary {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// NewTable builds an empty table from column definitions.
func NewTable(name string, cols []ColumnDef) (*Table, error) {
	t := &Table{
		Name:    name,
		Cols:    cols,
		colIdx:  make(map[string]int, len(cols)),
		rows:    make(map[int64][]Value),
		pk:      -1,
		uniqIdx: make(map[int]map[Value]int64),
		nextRow: 1,
	}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("metadb: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[c.Name] = i
		if c.PrimaryKey {
			if t.pk >= 0 {
				return nil, fmt.Errorf("metadb: table %q has multiple primary keys", name)
			}
			t.pk = i
			t.pkIdx = make(map[Value]int64)
		}
		if c.Unique && !c.PrimaryKey {
			t.uniqIdx[i] = make(map[Value]int64)
		}
	}
	return t, nil
}

// ColIndex returns the position of the named column.
func (t *Table) ColIndex(name string) (int, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("metadb: no column %q in table %q", name, t.Name)
	}
	return i, nil
}

// checkRow coerces values to column types and validates constraints
// (NOT NULL, PK/UNIQUE). excludeRow is skipped during uniqueness checks
// (used when updating a row in place).
func (t *Table) checkRow(vals []Value, excludeRow int64) ([]Value, error) {
	if len(vals) != len(t.Cols) {
		return nil, fmt.Errorf("metadb: table %q has %d columns, got %d values", t.Name, len(t.Cols), len(vals))
	}
	out := make([]Value, len(vals))
	for i, c := range t.Cols {
		v, err := coerce(vals[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("metadb: column %q: %w", c.Name, err)
		}
		if v.IsNull() && c.NotNull {
			return nil, fmt.Errorf("metadb: column %q must not be NULL", c.Name)
		}
		out[i] = v
	}
	if t.pk >= 0 {
		if rid, ok := t.pkIdx[out[t.pk]]; ok && rid != excludeRow {
			return nil, fmt.Errorf("metadb: duplicate primary key %s in table %q", out[t.pk], t.Name)
		}
	}
	for ci, idx := range t.uniqIdx {
		v := out[ci]
		if v.IsNull() {
			continue
		}
		if rid, ok := idx[v]; ok && rid != excludeRow {
			return nil, fmt.Errorf("metadb: duplicate value %s for unique column %q", v, t.Cols[ci].Name)
		}
	}
	return out, nil
}

// insert adds a validated row and returns its rowid. When rid > 0 the
// caller (WAL replay) dictates the rowid.
func (t *Table) insert(vals []Value, rid int64) int64 {
	if rid <= 0 {
		rid = t.nextRow
	}
	if rid >= t.nextRow {
		t.nextRow = rid + 1
	}
	t.rows[rid] = vals
	if t.pk >= 0 {
		t.pkIdx[vals[t.pk]] = rid
	}
	for ci, idx := range t.uniqIdx {
		if !vals[ci].IsNull() {
			idx[vals[ci]] = rid
		}
	}
	for _, ix := range t.secondary {
		ix.add(vals[ix.col], rid)
	}
	return rid
}

// delete removes a row by id, returning its values.
func (t *Table) delete(rid int64) ([]Value, bool) {
	vals, ok := t.rows[rid]
	if !ok {
		return nil, false
	}
	delete(t.rows, rid)
	if t.pk >= 0 {
		delete(t.pkIdx, vals[t.pk])
	}
	for ci, idx := range t.uniqIdx {
		if !vals[ci].IsNull() {
			delete(idx, vals[ci])
		}
	}
	for _, ix := range t.secondary {
		ix.remove(vals[ix.col], rid)
	}
	return vals, true
}

// update replaces a row's values in place, maintaining indexes.
func (t *Table) update(rid int64, vals []Value) ([]Value, bool) {
	old, ok := t.rows[rid]
	if !ok {
		return nil, false
	}
	if t.pk >= 0 {
		delete(t.pkIdx, old[t.pk])
		t.pkIdx[vals[t.pk]] = rid
	}
	for ci, idx := range t.uniqIdx {
		if !old[ci].IsNull() {
			delete(idx, old[ci])
		}
		if !vals[ci].IsNull() {
			idx[vals[ci]] = rid
		}
	}
	for _, ix := range t.secondary {
		ix.remove(old[ix.col], rid)
		ix.add(vals[ix.col], rid)
	}
	t.rows[rid] = vals
	return old, true
}

// scanIDs returns all rowids in insertion (rowid) order.
func (t *Table) scanIDs() []int64 {
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// lookupPK returns the rowid holding the given primary-key value.
func (t *Table) lookupPK(v Value) (int64, bool) {
	if t.pk < 0 {
		return 0, false
	}
	rid, ok := t.pkIdx[v]
	return rid, ok
}

// pkEquality recognizes WHERE clauses of the form pkcol = literal (or
// literal = pkcol) so point lookups skip the scan.
func (t *Table) pkEquality(where Expr) (Value, bool) {
	if t.pk < 0 {
		return Value{}, false
	}
	b, ok := where.(Binary)
	if !ok || b.Op != "=" {
		return Value{}, false
	}
	pkName := t.Cols[t.pk].Name
	if c, ok := b.L.(Col); ok && c.Name == pkName {
		if l, ok := b.R.(Lit); ok {
			return l.V, true
		}
	}
	if c, ok := b.R.(Col); ok && c.Name == pkName {
		if l, ok := b.L.(Lit); ok {
			return l.V, true
		}
	}
	return Value{}, false
}

// clone deep-copies the table (used to undo DROP TABLE).
func (t *Table) clone() *Table {
	nt := &Table{
		Name:    t.Name,
		Cols:    append([]ColumnDef(nil), t.Cols...),
		colIdx:  make(map[string]int, len(t.colIdx)),
		rows:    make(map[int64][]Value, len(t.rows)),
		pk:      t.pk,
		uniqIdx: make(map[int]map[Value]int64, len(t.uniqIdx)),
		nextRow: t.nextRow,
	}
	for k, v := range t.colIdx {
		nt.colIdx[k] = v
	}
	if t.pkIdx != nil {
		nt.pkIdx = make(map[Value]int64, len(t.pkIdx))
		for k, v := range t.pkIdx {
			nt.pkIdx[k] = v
		}
	}
	for ci, idx := range t.uniqIdx {
		ni := make(map[Value]int64, len(idx))
		for k, v := range idx {
			ni[k] = v
		}
		nt.uniqIdx[ci] = ni
	}
	for id, vals := range t.rows {
		nt.rows[id] = append([]Value(nil), vals...)
	}
	for name, ix := range t.secondary {
		if nt.secondary == nil {
			nt.secondary = make(map[string]*secondaryIndex)
		}
		nix := &secondaryIndex{name: ix.name, col: ix.col, m: make(map[Value]map[int64]struct{}, len(ix.m))}
		for v, set := range ix.m {
			ns := make(map[int64]struct{}, len(set))
			for rid := range set {
				ns[rid] = struct{}{}
			}
			nix.m[v] = ns
		}
		nt.secondary[name] = nix
	}
	return nt
}
