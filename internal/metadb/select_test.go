package metadb

import (
	"fmt"
	"strings"
	"testing"
)

// catalogFixture loads a miniature of the DPFS schema: servers and
// file-distribution rows, the tables joins naturally apply to.
func catalogFixture(t *testing.T) *Session {
	t.Helper()
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE srv (name TEXT PRIMARY KEY, class TEXT, perf INT)`)
	mustExec(t, s, `CREATE TABLE dist (server TEXT, filename TEXT, bricks INT)`)
	mustExec(t, s, `INSERT INTO srv VALUES
		('a', 'class1', 1), ('b', 'class1', 1), ('c', 'class3', 3), ('d', 'class3', 3)`)
	mustExec(t, s, `INSERT INTO dist VALUES
		('a', '/f1', 12), ('b', '/f1', 12), ('c', '/f1', 4), ('d', '/f1', 4),
		('a', '/f2', 8), ('c', '/f2', 8)`)
	return s
}

func TestInnerJoin(t *testing.T) {
	s := catalogFixture(t)
	res := mustExec(t, s, `SELECT d.filename, s.class, d.bricks
		FROM dist d JOIN srv s ON d.server = s.name
		WHERE d.filename = '/f1' ORDER BY d.bricks DESC, s.class`)
	if len(res.Rows) != 4 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if res.Rows[0][1].Str != "class1" || res.Rows[0][2].Int != 12 {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
	if res.Rows[3][1].Str != "class3" || res.Rows[3][2].Int != 4 {
		t.Fatalf("row 3 = %v", res.Rows[3])
	}

	// INNER keyword form and table-name qualifiers.
	res = mustExec(t, s, `SELECT COUNT(*) FROM dist INNER JOIN srv ON dist.server = srv.name`)
	if res.Rows[0][0].Int != 6 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestJoinStarExpansion(t *testing.T) {
	s := catalogFixture(t)
	res := mustExec(t, s, `SELECT * FROM dist d JOIN srv s ON d.server = s.name LIMIT 1`)
	// dist has 3 columns + srv has 3.
	if len(res.Cols) != 6 {
		t.Fatalf("star cols = %v", res.Cols)
	}
}

func TestThreeWayJoin(t *testing.T) {
	s := catalogFixture(t)
	mustExec(t, s, `CREATE TABLE cls (class TEXT PRIMARY KEY, bw INT)`)
	mustExec(t, s, `INSERT INTO cls VALUES ('class1', 100), ('class3', 33)`)
	res := mustExec(t, s, `SELECT d.server, c.bw
		FROM dist d
		JOIN srv s ON d.server = s.name
		JOIN cls c ON s.class = c.class
		WHERE d.filename = '/f2' ORDER BY d.server`)
	if len(res.Rows) != 2 || res.Rows[0][1].Int != 100 || res.Rows[1][1].Int != 33 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinErrors(t *testing.T) {
	s := catalogFixture(t)
	bad := []string{
		`SELECT * FROM dist JOIN nosuch ON 1 = 1`,
		`SELECT * FROM dist d JOIN srv d ON 1 = 1`, // duplicate alias
		`SELECT nosuch FROM dist d JOIN srv s ON d.server = s.name`,
		`SELECT x.name FROM dist d JOIN srv s ON d.server = s.name`, // unknown qualifier
		`SELECT * FROM dist JOIN srv`,                               // missing ON
	}
	for _, sql := range bad {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	// Ambiguous unqualified column across joined tables.
	mustExec(t, s, `CREATE TABLE other (server TEXT)`)
	mustExec(t, s, `INSERT INTO other VALUES ('z')`)
	if _, err := s.Exec(`SELECT server FROM dist JOIN other ON 1 = 1`); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestGroupBy(t *testing.T) {
	s := catalogFixture(t)
	// Brick count per server across all files: the DPFS load report.
	res := mustExec(t, s, `SELECT server, SUM(bricks), COUNT(*) FROM dist
		GROUP BY server ORDER BY server`)
	want := []struct {
		srv    string
		bricks int64
		files  int64
	}{{"a", 20, 2}, {"b", 12, 1}, {"c", 12, 2}, {"d", 4, 1}}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %v", res.Rows)
	}
	for i, w := range want {
		r := res.Rows[i]
		if r[0].Str != w.srv || r[1].Int != w.bricks || r[2].Int != w.files {
			t.Fatalf("group %d = %v, want %+v", i, r, w)
		}
	}
}

func TestGroupByWithJoinAndHaving(t *testing.T) {
	s := catalogFixture(t)
	// Total bricks per storage class, keeping only classes holding
	// more than 10: the greedy algorithm's 3:1 split made visible via
	// pure SQL.
	res := mustExec(t, s, `SELECT s.class, SUM(d.bricks) AS total
		FROM dist d JOIN srv s ON d.server = s.name
		WHERE d.filename = '/f1'
		GROUP BY s.class
		HAVING SUM(d.bricks) > 10
		ORDER BY total DESC`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "class1" || res.Rows[0][1].Int != 24 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	s := catalogFixture(t)
	// Global-aggregate HAVING is legal.
	res := mustExec(t, s, `SELECT COUNT(*) FROM dist HAVING COUNT(*) > 100`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Plain select + HAVING is rejected.
	if _, err := s.Exec(`SELECT server FROM dist HAVING 1 = 1`); err == nil {
		t.Error("HAVING without aggregation should fail")
	}
}

func TestAggregateExpressions(t *testing.T) {
	s := catalogFixture(t)
	res := mustExec(t, s, `SELECT SUM(bricks) * 2 + 1 FROM dist WHERE filename = '/f2'`)
	if res.Rows[0][0].Int != 33 {
		t.Fatalf("expr = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, `SELECT SUM(bricks) / COUNT(bricks) FROM dist WHERE filename = '/f1'`)
	if res.Rows[0][0].Int != 8 {
		t.Fatalf("avg-by-hand = %v", res.Rows[0][0])
	}
	// Aggregates are rejected in WHERE.
	if _, err := s.Exec(`SELECT server FROM dist WHERE COUNT(*) > 1`); err == nil {
		t.Error("aggregate in WHERE should fail")
	}
	// ... and in UPDATE/INSERT values.
	if _, err := s.Exec(`UPDATE dist SET bricks = COUNT(*)`); err == nil {
		t.Error("aggregate in UPDATE should fail")
	}
}

func TestOrderByPositionAndAlias(t *testing.T) {
	s := catalogFixture(t)
	res := mustExec(t, s, `SELECT server, SUM(bricks) AS total FROM dist GROUP BY server ORDER BY 2 DESC`)
	if res.Rows[0][0].Str != "a" {
		t.Fatalf("order by position: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT server, SUM(bricks) AS total FROM dist GROUP BY server ORDER BY total DESC`)
	if res.Rows[0][0].Str != "a" {
		t.Fatalf("order by alias: %v", res.Rows)
	}
	if _, err := s.Exec(`SELECT server FROM dist ORDER BY 9`); err == nil {
		t.Error("out-of-range position should fail")
	}
}

func TestGroupByEmptyTable(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, b INT)`)
	res := mustExec(t, s, `SELECT a, COUNT(*) FROM t GROUP BY a`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Without GROUP BY, an empty aggregate still yields a row.
	res = mustExec(t, s, `SELECT COUNT(*) FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSecondaryIndex(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE dist (server TEXT, filename TEXT, bricks INT)`)
	for f := 0; f < 50; f++ {
		for srvID := 0; srvID < 4; srvID++ {
			mustExec(t, s, fmt.Sprintf(`INSERT INTO dist VALUES ('s%d', '/file%d', %d)`, srvID, f, f+srvID))
		}
	}
	mustExec(t, s, `CREATE INDEX dist_file ON dist (filename)`)

	res := mustExec(t, s, `SELECT server, bricks FROM dist WHERE filename = '/file7' ORDER BY server`)
	if len(res.Rows) != 4 || res.Rows[0][0].Str != "s0" || res.Rows[0][1].Int != 7 {
		t.Fatalf("indexed lookup = %v", res.Rows)
	}
	// Index stays correct across update/delete.
	mustExec(t, s, `UPDATE dist SET filename = '/renamed' WHERE filename = '/file7'`)
	if res := mustExec(t, s, `SELECT COUNT(*) FROM dist WHERE filename = '/file7'`); res.Rows[0][0].Int != 0 {
		t.Fatal("index saw stale rows after update")
	}
	if res := mustExec(t, s, `SELECT COUNT(*) FROM dist WHERE filename = '/renamed'`); res.Rows[0][0].Int != 4 {
		t.Fatal("index missed moved rows")
	}
	mustExec(t, s, `DELETE FROM dist WHERE filename = '/renamed'`)
	if res := mustExec(t, s, `SELECT COUNT(*) FROM dist WHERE filename = '/renamed'`); res.Rows[0][0].Int != 0 {
		t.Fatal("index saw deleted rows")
	}

	// Dup / IF NOT EXISTS / missing column.
	if _, err := s.Exec(`CREATE INDEX dist_file ON dist (filename)`); err == nil {
		t.Error("duplicate index should fail")
	}
	mustExec(t, s, `CREATE INDEX IF NOT EXISTS dist_file ON dist (filename)`)
	if _, err := s.Exec(`CREATE INDEX bad ON dist (nosuch)`); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := s.Exec(`CREATE INDEX bad ON nosuch (x)`); err == nil {
		t.Error("index on missing table should fail")
	}

	// Drop.
	mustExec(t, s, `DROP INDEX dist_file ON dist`)
	if _, err := s.Exec(`DROP INDEX dist_file ON dist`); err == nil {
		t.Error("double drop should fail")
	}
	mustExec(t, s, `DROP INDEX IF EXISTS dist_file ON dist`)
	if _, err := s.Exec(`DROP INDEX x ON nosuch`); err == nil {
		t.Error("drop on missing table should fail")
	}
}

func TestIndexTransactionality(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (x INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (2)`)

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `CREATE INDEX ix ON t (x)`)
	mustExec(t, s, `ROLLBACK`)
	// Rolled back: creating again must work.
	mustExec(t, s, `CREATE INDEX ix ON t (x)`)

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `DROP INDEX ix ON t`)
	mustExec(t, s, `ROLLBACK`)
	// The restored index still answers queries correctly.
	if res := mustExec(t, s, `SELECT COUNT(*) FROM t WHERE x = 2`); res.Rows[0][0].Int != 2 {
		t.Fatal("restored index wrong")
	}
}

func TestIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (x INT, y TEXT)`)
	mustExec(t, s, `CREATE INDEX t_x ON t (x)`)
	mustExec(t, s, `INSERT INTO t VALUES (5, 'five'), (5, 'cinq'), (6, 'six')`)
	db.Close() // snapshot path

	db2 := openDir(t, dir)
	s2 := db2.Session()
	if res := mustExec(t, s2, `SELECT COUNT(*) FROM t WHERE x = 5`); res.Rows[0][0].Int != 2 {
		t.Fatal("index lost after snapshot recovery")
	}
	// Index survives WAL-only recovery too.
	mustExec(t, s2, `DROP INDEX t_x ON t`)
	mustExec(t, s2, `CREATE INDEX t_x2 ON t (y)`)
	mustExec(t, s2, `INSERT INTO t VALUES (7, 'seven')`)
	// Crash without Close.
	db3 := openDir(t, dir)
	defer db3.Close()
	s3 := db3.Session()
	if res := mustExec(t, s3, `SELECT x FROM t WHERE y = 'seven'`); len(res.Rows) != 1 || res.Rows[0][0].Int != 7 {
		t.Fatalf("WAL-recovered index = %v", res.Rows)
	}
	db2.Close()
}

func TestTableAliasSingle(t *testing.T) {
	s := catalogFixture(t)
	res := mustExec(t, s, `SELECT x.name FROM srv x WHERE x.perf = 3 ORDER BY x.name`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "c" {
		t.Fatalf("alias rows = %v", res.Rows)
	}
}

func TestCrossJoinViaOnTrue(t *testing.T) {
	s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE a (x INT)`)
	mustExec(t, s, `CREATE TABLE b (y INT)`)
	mustExec(t, s, `INSERT INTO a VALUES (1), (2)`)
	mustExec(t, s, `INSERT INTO b VALUES (10), (20), (30)`)
	res := mustExec(t, s, `SELECT x, y FROM a JOIN b ON 1 = 1 ORDER BY x, y`)
	if len(res.Rows) != 6 {
		t.Fatalf("cross join rows = %d", len(res.Rows))
	}
	if res.Rows[5][0].Int != 2 || res.Rows[5][1].Int != 30 {
		t.Fatalf("last row = %v", res.Rows[5])
	}
}

func TestSelectDistinct(t *testing.T) {
	s := catalogFixture(t)
	res := mustExec(t, s, `SELECT DISTINCT filename FROM dist ORDER BY filename`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "/f1" || res.Rows[1][0].Str != "/f2" {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
	// Multi-column distinct.
	res = mustExec(t, s, `SELECT DISTINCT filename, bricks FROM dist WHERE filename = '/f1'`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct pairs = %v", res.Rows)
	}
	// DISTINCT respects LIMIT after dedup.
	res = mustExec(t, s, `SELECT DISTINCT server FROM dist LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	s := catalogFixture(t)
	mustExec(t, s, `CREATE INDEX dist_file ON dist (filename)`)

	plan := func(sql string) string {
		res := mustExec(t, s, sql)
		var lines []string
		for _, r := range res.Rows {
			lines = append(lines, r[0].Str)
		}
		return fmt.Sprint(lines)
	}

	p := plan(`EXPLAIN SELECT * FROM dist WHERE filename = '/f1'`)
	if !contains(p, "INDEX LOOKUP dist BY dist_file") {
		t.Fatalf("plan = %s", p)
	}
	p = plan(`EXPLAIN SELECT * FROM srv WHERE name = 'a'`)
	if !contains(p, "POINT LOOKUP srv BY PRIMARY KEY") {
		t.Fatalf("plan = %s", p)
	}
	p = plan(`EXPLAIN SELECT s.class, SUM(d.bricks) FROM dist d JOIN srv s ON d.server = s.name
		WHERE d.bricks > 2 GROUP BY s.class HAVING COUNT(*) > 1 ORDER BY s.class LIMIT 5`)
	for _, want := range []string{"SCAN dist", "NESTED LOOP JOIN srv", "FILTER (d.bricks > 2)",
		"GROUP BY s.class", "HAVING (COUNT(*) > 1)", "SORT BY s.class", "LIMIT 5"} {
		if !contains(p, want) {
			t.Fatalf("plan missing %q: %s", want, p)
		}
	}
	p = plan(`EXPLAIN SELECT DISTINCT COUNT(*) FROM dist`)
	if !contains(p, "AGGREGATE (single group)") || !contains(p, "DISTINCT") {
		t.Fatalf("plan = %s", p)
	}
	if _, err := s.Exec(`EXPLAIN INSERT INTO dist VALUES ('x', 'y', 1)`); err == nil {
		t.Fatal("EXPLAIN INSERT should fail")
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}
