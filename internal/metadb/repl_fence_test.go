package metadb

import (
	"errors"
	"testing"
)

// TestApplyShippedStaleEpochFence is the regression test for the
// lost-acknowledged-write race: once a replica grants a vote at epoch
// e+1 (durably, under the database lock), no record arriving on an
// epoch-e stream may be applied — and therefore never acknowledged —
// because the e+1 winner's log does not contain it.
func TestApplyShippedStaleEpochFence(t *testing.T) {
	primary, records := shipBatch(t, 3) // epoch-1 records, seq 1..4

	follower, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	for _, rec := range records[:2] {
		if _, err := follower.ApplyShipped(1, rec.seq, rec.epoch, rec.ops); err != nil {
			t.Fatalf("apply record %d: %v", rec.seq, err)
		}
	}
	seq, last := follower.ReplState()

	// A candidate at the follower's exact position wins a vote at
	// epoch 2...
	if _, _, granted, err := follower.GrantVote(2, seq, last); err != nil || !granted {
		t.Fatalf("vote at epoch 2 refused (granted=%v err=%v)", granted, err)
	}

	// ...after which the deposed epoch-1 stream must not extend the log.
	var stale *ErrStaleEpoch
	if _, err := follower.ApplyShipped(1, records[2].seq, records[2].epoch, records[2].ops); !errors.As(err, &stale) {
		t.Fatalf("stale-stream record gave %v, want *ErrStaleEpoch", err)
	} else if stale.Stream != 1 || stale.Current != 2 {
		t.Fatalf("fence reported %+v, want stream=1 current=2", stale)
	}
	if got, _ := follower.ReplState(); got != seq {
		t.Fatalf("fenced record moved the log to %d", got)
	}

	// Nor may it wipe the follower with a snapshot.
	snap, err := primary.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.RestoreSnapshot(1, snap); !errors.As(err, &stale) {
		t.Fatalf("stale-stream snapshot gave %v, want *ErrStaleEpoch", err)
	}

	// The same record and snapshot are fine on the new epoch's stream.
	if _, err := follower.ApplyShipped(2, records[2].seq, records[2].epoch, records[2].ops); err != nil {
		t.Fatalf("record on current-epoch stream: %v", err)
	}
	if err := follower.RestoreSnapshot(2, snap); err != nil {
		t.Fatalf("snapshot on current-epoch stream: %v", err)
	}
}

// TestGrantVoteSemantics pins the vote rules: strictly one durable
// vote per epoch, log-behind candidates refused without burning the
// epoch, self-votes always log-current.
func TestGrantVoteSemantics(t *testing.T) {
	db, records := shipBatch(t, 2) // log at (seq 3, epoch 1)
	_ = records
	seq, last := db.ReplState()

	// A candidate behind our log is refused, and the epoch is NOT
	// adopted — an up-to-date candidate can still win it here.
	if _, _, granted, err := db.GrantVote(2, seq-1, last); err != nil || granted {
		t.Fatalf("log-behind candidate granted (err=%v)", err)
	}
	if epoch, _ := db.ReplEpoch(); epoch != 1 {
		t.Fatalf("refused vote moved the epoch to %d", epoch)
	}
	if vseq, vlast, granted, err := db.GrantVote(2, seq, last); err != nil || !granted {
		t.Fatalf("up-to-date candidate refused (err=%v)", err)
	} else if vseq != seq || vlast != last {
		t.Fatalf("grant reported position (%d,%d), want (%d,%d)", vseq, vlast, seq, last)
	}
	// One vote per epoch: the same epoch never grants twice, whatever
	// the candidate's log.
	if _, _, granted, _ := db.GrantVote(2, seq+10, last+1); granted {
		t.Fatal("epoch 2 granted twice")
	}
	// A self-vote (candSeq < 0) is trivially log-current.
	if _, _, granted, err := db.GrantVote(3, -1, 0); err != nil || !granted {
		t.Fatalf("self-vote at epoch 3 refused (err=%v)", err)
	}
}
