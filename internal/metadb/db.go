package metadb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpfs/internal/obs"
)

// Result is the outcome of one statement.
type Result struct {
	// Cols and Rows are set for SELECT.
	Cols []string
	Rows [][]Value
	// RowsAffected counts rows touched by INSERT/UPDATE/DELETE.
	RowsAffected int64
}

// Options configures a database.
type Options struct {
	// Dir is the durable storage directory; empty means in-memory only.
	Dir string
	// Sync fsyncs the WAL on every commit.
	Sync bool
	// CheckpointBytes triggers an automatic snapshot + WAL truncation
	// once the WAL grows past this size. Zero uses a default of 4 MiB;
	// negative disables automatic checkpoints.
	CheckpointBytes int64
	// GroupCommit batches commit fsyncs: committers append their WAL
	// records under the write lock (so WAL order stays commit order),
	// then wait outside it for a shared fsync that covers their record.
	// One committer leads each fsync; everyone appended before it
	// started rides along. Durability is unchanged — a commit is not
	// acknowledged until an fsync (or snapshot) covers it. Only
	// meaningful together with Sync.
	GroupCommit bool
	// GroupCommitWait is how long a group-commit leader lingers for
	// followers before issuing the shared fsync. Zero means no added
	// wait: batches still form naturally from commits that arrive
	// while an earlier fsync is in flight. Small values (hundreds of
	// microseconds) trade a little latency for larger batches.
	GroupCommitWait time.Duration
	// SyncDelay models the storage device's per-fsync cost by sleeping
	// that long before every WAL fsync. It exists for benchmarks and
	// tests that need a deterministic device model independent of the
	// host filesystem (the WAL analogue of netsim's wire classes);
	// leave it zero in production.
	SyncDelay time.Duration
}

// DB is an embedded relational database. It is safe for concurrent use
// through any number of Sessions. Writes are serialized (strict
// two-phase locking at database granularity); readers outside write
// transactions run concurrently.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	closed bool

	reg *obs.Registry

	walMu sync.Mutex // serializes WAL appends and checkpoints (under mu)
	wal   *walFile
	opts  Options

	// Replication state (DESIGN.md §13). replSeq is the 1-based
	// sequence number of the last commit in the replicated log,
	// replLastEpoch the epoch stamped on that commit, and replEpoch the
	// epoch stamped on new commits. All three are guarded by mu;
	// replEpoch is additionally persisted in <dir>/epoch together with
	// the lease holder so a restarted replica cannot regress its term.
	replSeq       int64
	replLastEpoch int64
	replEpoch     int64
	replLeader    int
	repl          atomic.Pointer[ReplHooks]
}

// Metadata database metric names. Per-statement-kind latency
// histograms are named "query_<kind>_us" (query_select_us,
// query_insert_us, ...), in microseconds.
const (
	MetricQueries        = "queries_total"
	MetricWALAppends     = "wal_appends_total"
	MetricWALBytes       = "wal_bytes_total"
	MetricWALFsyncs      = "wal_fsyncs_total"
	MetricWALCheckpoints = "wal_checkpoints_total"
	// MetricWALGroupCommits counts fsyncs that covered more than one
	// commit (true group commits). MetricWALBatchSize is the
	// dimensionless histogram of commits covered per group-commit
	// fsync.
	MetricWALGroupCommits = "wal_group_commits_total"
	MetricWALBatchSize    = "wal_batch_size"
)

// QueryMetric names the latency histogram for a statement kind.
func QueryMetric(kind string) string { return "query_" + kind + "_us" }

// Open creates or reopens a database. With a non-empty Options.Dir any
// existing snapshot and write-ahead log are recovered first.
func Open(opts Options) (*DB, error) {
	db := &DB{tables: make(map[string]*Table), opts: opts, reg: obs.NewRegistry()}
	if opts.CheckpointBytes == 0 {
		db.opts.CheckpointBytes = 4 << 20
	}
	if opts.Dir != "" {
		w, err := openWAL(opts.Dir, opts.Sync)
		if err != nil {
			return nil, err
		}
		w.reg = db.reg
		w.group = opts.GroupCommit && opts.Sync
		w.groupWait = opts.GroupCommitWait
		w.syncDelay = opts.SyncDelay
		db.wal = w
		if err := db.recover(); err != nil {
			w.close()
			return nil, err
		}
		if err := db.loadEpoch(); err != nil {
			w.close()
			return nil, err
		}
	}
	return db, nil
}

// Memory opens a throwaway in-memory database.
func Memory() *DB {
	db, _ := Open(Options{})
	return db
}

// Close checkpoints (when durable) and shuts the database down.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		if err := db.checkpointLocked(); err != nil {
			return err
		}
		return db.wal.close()
	}
	return nil
}

// Checkpoint forces a snapshot and truncates the WAL.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("metadb: database closed")
	}
	if db.wal == nil {
		return nil
	}
	return db.checkpointLocked()
}

// Metrics returns the database's metric registry: queries_total, the
// query_<kind>_us latency histograms, and the wal_* counters.
func (db *DB) Metrics() *obs.Registry { return db.reg }

// Session opens a new client session. Sessions are not themselves safe
// for concurrent use; open one per goroutine or connection.
func (db *DB) Session() *Session {
	return &Session{db: db}
}

// Exec runs one autocommitted statement on a fresh session: a
// convenience for callers that do not need transactions.
func (db *DB) Exec(sql string) (*Result, error) {
	return db.Session().Exec(sql)
}

// TableNames returns the current table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Session is one client's connection to the database, carrying its
// transaction state.
type Session struct {
	db *DB
	tx *txState
}

type txState struct {
	locked bool // holds db.mu exclusively
	undo   []undoOp
	redo   []RedoOp
}

type undoOp struct {
	kind  string // "insert", "delete", "update", "create", "drop", "createindex", "dropindex"
	table string
	rowid int64
	vals  []Value // pre-image for delete/update
	tbl   *Table  // saved table for drop
	index string  // index name for createindex/dropindex
	col   string  // indexed column for dropindex undo
}

// RedoOp is one durable mutation in a WAL commit record.
type RedoOp struct {
	Kind  string // "insert", "delete", "update", "create", "drop", "createindex", "dropindex"
	Table string
	RowID int64
	Vals  []Value
	Cols  []ColumnDef
	Index string // index name for createindex/dropindex
	Col   string // indexed column for createindex
}

// InTx reports whether the session has an open transaction.
func (s *Session) InTx() bool { return s.tx != nil }

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(st)
}

// stmtKind labels a statement for metrics.
func stmtKind(st Statement) string {
	switch st.(type) {
	case Begin:
		return "begin"
	case Commit:
		return "commit"
	case Rollback:
		return "rollback"
	case Select:
		return "select"
	case Explain:
		return "explain"
	case CreateTable:
		return "createtable"
	case DropTable:
		return "droptable"
	case CreateIndex:
		return "createindex"
	case DropIndex:
		return "dropindex"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	}
	return "other"
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Statement) (*Result, error) {
	start := time.Now()
	res, err := s.execStmt(st)
	reg := s.db.reg
	reg.Counter(MetricQueries).Inc()
	reg.Histogram(QueryMetric(stmtKind(st))).Record(time.Since(start).Microseconds())
	return res, err
}

func (s *Session) execStmt(st Statement) (*Result, error) {
	switch st := st.(type) {
	case Begin:
		if s.tx != nil {
			return nil, errors.New("metadb: transaction already open")
		}
		s.tx = &txState{}
		return &Result{}, nil
	case Commit:
		return s.commit()
	case Rollback:
		return s.rollback()
	case Select:
		return s.runRead(st)
	case Explain:
		db := s.db
		if s.tx != nil && s.tx.locked {
			// Already hold the exclusive lock.
			return db.explainSelect(st.Stmt)
		}
		db.mu.RLock()
		defer db.mu.RUnlock()
		if db.closed {
			return nil, errors.New("metadb: database closed")
		}
		return db.explainSelect(st.Stmt)
	case CreateTable, DropTable, CreateIndex, DropIndex, Insert, Update, Delete:
		return s.runWrite(st)
	}
	return nil, fmt.Errorf("metadb: unhandled statement %T", st)
}

// Abort rolls back any open transaction (used when a client
// disconnects mid-transaction).
func (s *Session) Abort() {
	if s.tx != nil {
		_, _ = s.rollback()
	}
}

func (s *Session) commit() (*Result, error) {
	if s.tx == nil {
		return nil, errors.New("metadb: no transaction open")
	}
	tx := s.tx
	s.tx = nil
	if !tx.locked {
		return &Result{}, nil // read-only transaction
	}
	wait, seq, err := s.db.logCommit(tx.redo)
	if err != nil {
		// The WAL write failed; the safe reaction is to undo the
		// in-memory effects so memory and disk stay consistent.
		applyUndo(s.db, tx.undo)
		s.db.mu.Unlock()
		return nil, fmt.Errorf("metadb: commit failed, transaction rolled back: %w", err)
	}
	hooks := s.db.repl.Load()
	if hooks != nil && hooks.Ship != nil && seq > 0 {
		// Still under db.mu: ship order equals commit order. The hook
		// only enqueues; network and fsync costs stay off this path.
		hooks.Ship(seq, s.db.replEpoch, tx.redo)
	}
	s.db.mu.Unlock()
	if wait > 0 {
		// Group commit: the record is appended (in commit order) but
		// not yet fsynced. Wait outside the write lock for a shared
		// fsync — or a snapshot — to cover it.
		if err := s.db.wal.waitDurable(wait); err != nil {
			// The shared fsync failed after the lock was released. The
			// transaction is applied in memory and later transactions
			// may already depend on it, so it cannot be rolled back;
			// report that durability was not achieved.
			return nil, fmt.Errorf("metadb: commit not durable: %w", err)
		}
	}
	if hooks != nil && hooks.Ack != nil && seq > 0 {
		// Replication: the commit is locally durable but must not be
		// acknowledged until enough replicas hold it (DESIGN.md §13).
		if err := hooks.Ack(seq); err != nil {
			return nil, fmt.Errorf("metadb: commit not replicated: %w", err)
		}
	}
	return &Result{}, nil
}

func (s *Session) rollback() (*Result, error) {
	if s.tx == nil {
		return nil, errors.New("metadb: no transaction open")
	}
	tx := s.tx
	s.tx = nil
	if !tx.locked {
		return &Result{}, nil
	}
	applyUndo(s.db, tx.undo)
	s.db.mu.Unlock()
	return &Result{}, nil
}

func applyUndo(db *DB, undo []undoOp) {
	for i := len(undo) - 1; i >= 0; i-- {
		op := undo[i]
		switch op.kind {
		case "insert": // undo an insert: delete the row
			if t := db.tables[op.table]; t != nil {
				t.delete(op.rowid)
			}
		case "delete": // undo a delete: restore the row
			if t := db.tables[op.table]; t != nil {
				t.insert(op.vals, op.rowid)
			}
		case "update":
			if t := db.tables[op.table]; t != nil {
				t.update(op.rowid, op.vals)
			}
		case "create": // undo create: drop
			delete(db.tables, op.table)
		case "drop": // undo drop: restore the saved table
			db.tables[op.table] = op.tbl
		case "createindex":
			if t := db.tables[op.table]; t != nil {
				t.dropIndex(op.index)
			}
		case "dropindex":
			if t := db.tables[op.table]; t != nil {
				_ = t.createIndex(op.index, op.col)
			}
		}
	}
}

// runRead executes a SELECT under the appropriate lock. Autocommit
// reads share an RLock; reads inside an explicit transaction take the
// exclusive lock for the life of the transaction (strict two-phase
// locking), so a read-modify-write transaction cannot lose its update
// to a concurrent transaction that read the same rows.
func (s *Session) runRead(st Select) (*Result, error) {
	db := s.db
	if s.tx != nil {
		if !s.tx.locked {
			db.mu.Lock()
			if db.closed {
				db.mu.Unlock()
				return nil, errors.New("metadb: database closed")
			}
			s.tx.locked = true
		}
		return db.execSelect(st)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errors.New("metadb: database closed")
	}
	return db.execSelect(st)
}

// runWrite executes a mutating statement, acquiring the exclusive lock
// for the life of the transaction (or just this statement when
// autocommitting).
func (s *Session) runWrite(st Statement) (*Result, error) {
	db := s.db
	auto := s.tx == nil
	if auto {
		s.tx = &txState{}
	}
	if !s.tx.locked {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			s.tx = nil
			return nil, errors.New("metadb: database closed")
		}
		s.tx.locked = true
	}
	res, err := db.execWrite(st, s.tx)
	if err != nil {
		if auto {
			// Autocommit statement failed: roll back its partial work.
			_, _ = s.rollback()
		}
		// In an explicit transaction the statement's own partial
		// effects were already undone by execWrite; the transaction
		// stays open for the client to COMMIT or ROLLBACK.
		return nil, err
	}
	if auto {
		if _, cerr := s.commit(); cerr != nil {
			return nil, cerr
		}
	}
	return res, nil
}

// execWrite dispatches a mutating statement; on error it undoes the
// statement's own partial effects so explicit transactions see
// statement atomicity. Caller holds the exclusive lock.
func (db *DB) execWrite(st Statement, tx *txState) (*Result, error) {
	undoMark := len(tx.undo)
	redoMark := len(tx.redo)
	var (
		res *Result
		err error
	)
	switch st := st.(type) {
	case CreateTable:
		res, err = db.execCreate(st, tx)
	case DropTable:
		res, err = db.execDrop(st, tx)
	case CreateIndex:
		res, err = db.execCreateIndex(st, tx)
	case DropIndex:
		res, err = db.execDropIndex(st, tx)
	case Insert:
		res, err = db.execInsert(st, tx)
	case Update:
		res, err = db.execUpdate(st, tx)
	case Delete:
		res, err = db.execDelete(st, tx)
	default:
		err = fmt.Errorf("metadb: unhandled write %T", st)
	}
	if err != nil {
		applyUndo(db, tx.undo[undoMark:])
		tx.undo = tx.undo[:undoMark]
		tx.redo = tx.redo[:redoMark]
		return nil, err
	}
	return res, nil
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("metadb: no such table %q", name)
	}
	return t, nil
}

func (db *DB) execCreate(st CreateTable, tx *txState) (*Result, error) {
	if _, exists := db.tables[st.Name]; exists {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("metadb: table %q already exists", st.Name)
	}
	t, err := NewTable(st.Name, st.Cols)
	if err != nil {
		return nil, err
	}
	db.tables[st.Name] = t
	tx.undo = append(tx.undo, undoOp{kind: "create", table: st.Name})
	tx.redo = append(tx.redo, RedoOp{Kind: "create", Table: st.Name, Cols: st.Cols})
	return &Result{}, nil
}

func (db *DB) execDrop(st DropTable, tx *txState) (*Result, error) {
	t, exists := db.tables[st.Name]
	if !exists {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("metadb: no such table %q", st.Name)
	}
	delete(db.tables, st.Name)
	tx.undo = append(tx.undo, undoOp{kind: "drop", table: st.Name, tbl: t})
	tx.redo = append(tx.redo, RedoOp{Kind: "drop", Table: st.Name})
	return &Result{}, nil
}

func (db *DB) execCreateIndex(st CreateIndex, tx *txState) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	if _, exists := t.secondary[st.Name]; exists {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("metadb: index %q already exists on table %q", st.Name, st.Table)
	}
	if err := t.createIndex(st.Name, st.Col); err != nil {
		return nil, err
	}
	tx.undo = append(tx.undo, undoOp{kind: "createindex", table: st.Table, index: st.Name})
	tx.redo = append(tx.redo, RedoOp{Kind: "createindex", Table: st.Table, Index: st.Name, Col: st.Col})
	return &Result{}, nil
}

func (db *DB) execDropIndex(st DropIndex, tx *txState) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	ix, exists := t.secondary[st.Name]
	if !exists {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("metadb: no index %q on table %q", st.Name, st.Table)
	}
	col := t.Cols[ix.col].Name
	t.dropIndex(st.Name)
	tx.undo = append(tx.undo, undoOp{kind: "dropindex", table: st.Table, index: st.Name, col: col})
	tx.redo = append(tx.redo, RedoOp{Kind: "dropindex", Table: st.Table, Index: st.Name})
	return &Result{}, nil
}

func (db *DB) execInsert(st Insert, tx *txState) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	cols := st.Cols
	if cols == nil {
		cols = make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
	}
	colPos := make([]int, len(cols))
	for i, c := range cols {
		p, err := t.ColIndex(c)
		if err != nil {
			return nil, err
		}
		colPos[i] = p
	}
	var n int64
	for _, rowExprs := range st.Rows {
		if len(rowExprs) != len(cols) {
			return nil, fmt.Errorf("metadb: INSERT has %d values for %d columns", len(rowExprs), len(cols))
		}
		vals := make([]Value, len(t.Cols)) // unset columns are NULL
		for i := range vals {
			vals[i] = Null()
		}
		for i, e := range rowExprs {
			v, err := eval(e, nil)
			if err != nil {
				return nil, err
			}
			vals[colPos[i]] = v
		}
		checked, err := t.checkRow(vals, 0)
		if err != nil {
			return nil, err
		}
		rid := t.insert(checked, 0)
		tx.undo = append(tx.undo, undoOp{kind: "insert", table: t.Name, rowid: rid})
		tx.redo = append(tx.redo, RedoOp{Kind: "insert", Table: t.Name, RowID: rid, Vals: checked})
		n++
	}
	return &Result{RowsAffected: n}, nil
}

// matchRows returns the rowids satisfying the WHERE clause, using the
// primary-key or a secondary index for simple equality predicates.
func (db *DB) matchRows(t *Table, where Expr) ([]int64, error) {
	if where != nil {
		if ci, lit, ok := eqPredicate(t, where); ok {
			v, err := coerce(lit, t.Cols[ci].Type)
			if err != nil {
				return nil, nil // a mistyped probe matches nothing
			}
			if ci == t.pk {
				if rid, found := t.lookupPK(v); found {
					return []int64{rid}, nil
				}
				return nil, nil
			}
			if uidx, ok := t.uniqIdx[ci]; ok {
				if rid, found := uidx[v]; found {
					return []int64{rid}, nil
				}
				return nil, nil
			}
			if ix := t.indexOn(ci); ix != nil {
				set := ix.m[v]
				out := make([]int64, 0, len(set))
				for rid := range set {
					out = append(out, rid)
				}
				sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
				return out, nil
			}
		}
	}
	var out []int64
	for _, rid := range t.scanIDs() {
		vals := t.rows[rid]
		if where != nil {
			v, err := eval(where, &evalCtx{lookup: rowEnv(t, vals)})
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Truth() {
				continue
			}
		}
		out = append(out, rid)
	}
	return out, nil
}

// eqPredicate recognizes WHERE clauses of the form col = literal (or
// literal = col) over this table.
func eqPredicate(t *Table, where Expr) (colIdx int, lit Value, ok bool) {
	b, isBin := where.(Binary)
	if !isBin || b.Op != "=" {
		return 0, Value{}, false
	}
	try := func(ce, le Expr) (int, Value, bool) {
		c, ok := ce.(Col)
		if !ok || (c.Qual != "" && c.Qual != t.Name) {
			return 0, Value{}, false
		}
		l, ok := le.(Lit)
		if !ok {
			return 0, Value{}, false
		}
		ci, err := t.ColIndex(c.Name)
		if err != nil {
			return 0, Value{}, false
		}
		return ci, l.V, true
	}
	if ci, v, ok := try(b.L, b.R); ok {
		return ci, v, true
	}
	return try(b.R, b.L)
}

func rowEnv(t *Table, vals []Value) env {
	return func(qual, name string) (Value, error) {
		if qual != "" && qual != t.Name {
			return Value{}, fmt.Errorf("metadb: unknown table qualifier %q", qual)
		}
		i, err := t.ColIndex(name)
		if err != nil {
			return Value{}, err
		}
		return vals[i], nil
	}
}

func (db *DB) execUpdate(st Update, tx *txState) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	colPos := make([]int, len(st.Cols))
	for i, c := range st.Cols {
		p, err := t.ColIndex(c)
		if err != nil {
			return nil, err
		}
		colPos[i] = p
	}
	rids, err := db.matchRows(t, st.Where)
	if err != nil {
		return nil, err
	}
	var n int64
	for _, rid := range rids {
		old := t.rows[rid]
		vals := append([]Value(nil), old...)
		for i, e := range st.Exprs {
			v, err := eval(e, &evalCtx{lookup: rowEnv(t, old)})
			if err != nil {
				return nil, err
			}
			vals[colPos[i]] = v
		}
		checked, err := t.checkRow(vals, rid)
		if err != nil {
			return nil, err
		}
		pre, _ := t.update(rid, checked)
		tx.undo = append(tx.undo, undoOp{kind: "update", table: t.Name, rowid: rid, vals: pre})
		tx.redo = append(tx.redo, RedoOp{Kind: "update", Table: t.Name, RowID: rid, Vals: checked})
		n++
	}
	return &Result{RowsAffected: n}, nil
}

func (db *DB) execDelete(st Delete, tx *txState) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	rids, err := db.matchRows(t, st.Where)
	if err != nil {
		return nil, err
	}
	var n int64
	for _, rid := range rids {
		vals, ok := t.delete(rid)
		if !ok {
			continue
		}
		tx.undo = append(tx.undo, undoOp{kind: "delete", table: t.Name, rowid: rid, vals: vals})
		tx.redo = append(tx.redo, RedoOp{Kind: "delete", Table: t.Name, RowID: rid})
		n++
	}
	return &Result{RowsAffected: n}, nil
}
