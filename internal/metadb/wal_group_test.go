package metadb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// seedGroupWAL builds a WAL through a group-commit database under
// real concurrency: `committers` goroutines each durably insert
// `inserts` distinct rows, so commits pile up behind the in-flight
// fsync and whole batches share one sync. The database is crashed
// without Close (the WAL is the only durable state) and the raw WAL
// bytes plus the set of committed ids are returned. The seeding
// asserts batching actually happened — fewer fsyncs than commits —
// so the crash tests below demonstrably cover batched appends.
func seedGroupWAL(t *testing.T, committers, inserts int) []byte {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(Options{
		Dir: dir, Sync: true,
		GroupCommit: true, SyncDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY)`)
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.Session()
			for i := 0; i < inserts; i++ {
				if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, g*1000+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := db.Metrics().Snapshot()
	appends := snap.Counters[MetricWALAppends]
	fsyncs := snap.Counters[MetricWALFsyncs]
	if fsyncs >= appends {
		t.Fatalf("no batching happened: %d fsyncs for %d commits", fsyncs, appends)
	}
	// Simulated crash: no Close, no checkpoint.
	wal, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	return wal
}

// idSet dumps table t's ids.
func idSet(t *testing.T, s *Session) map[int64]bool {
	t.Helper()
	res := mustExec(t, s, `SELECT id FROM t`)
	out := make(map[int64]bool, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].Int] = true
	}
	return out
}

// TestWALGroupCommitCrashAtEveryOffset is the batched analogue of
// TestWALCrashAtEveryOffset: a crash at every byte offset of a WAL
// written by group commit must recover exactly the whole transactions
// the prefix contains — batching shares fsyncs, but each commit is
// still its own WAL record, so durability remains all-or-nothing per
// transaction and the recovered set grows monotonically with the cut.
func TestWALGroupCommitCrashAtEveryOffset(t *testing.T) {
	wal := seedGroupWAL(t, 4, 3)
	ends := walRecordEnds(t, wal)
	if len(ends) != 4*3+1 {
		t.Fatalf("WAL holds %d records, want %d (create + 12 inserts)", len(ends), 4*3+1)
	}

	base := t.TempDir()
	prev := map[int64]bool{}
	for cut := 0; cut <= len(wal); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		complete := 0
		for _, end := range ends {
			if end <= int64(cut) {
				complete++
			}
		}
		s := db.Session()
		if complete == 0 {
			if _, err := s.Exec(`SELECT COUNT(*) FROM t`); err == nil {
				t.Fatalf("cut %d: table recovered from a torn create record", cut)
			}
		} else {
			got := idSet(t, s)
			if len(got) != complete-1 { // first complete record is the create
				t.Fatalf("cut %d: recovered %d rows, want %d", cut, len(got), complete-1)
			}
			// Prefix property: a longer prefix recovers a superset.
			for id := range prev {
				if !got[id] {
					t.Fatalf("cut %d: id %d recovered at a shorter cut is gone", cut, id)
				}
			}
			prev = got
			mustExec(t, s, `INSERT INTO t VALUES (99999)`)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// groupEquivOps generates one goroutine's deterministic operation
// sequence against its own table (disjoint tables make the final
// state independent of cross-goroutine interleaving).
func groupEquivOps(rng *rand.Rand, table string, n int) []string {
	ops := make([]string, 0, n+1)
	ops = append(ops, fmt.Sprintf(`CREATE TABLE %s (id INT PRIMARY KEY, v INT)`, table))
	live := []int{}
	next := 0
	for i := 0; i < n; i++ {
		switch k := rng.Intn(4); {
		case k <= 1 || len(live) == 0: // insert
			ops = append(ops, fmt.Sprintf(`INSERT INTO %s VALUES (%d, %d)`, table, next, rng.Intn(100)))
			live = append(live, next)
			next++
		case k == 2: // update
			id := live[rng.Intn(len(live))]
			ops = append(ops, fmt.Sprintf(`UPDATE %s SET v = %d WHERE id = %d`, table, rng.Intn(100), id))
		default: // delete
			j := rng.Intn(len(live))
			ops = append(ops, fmt.Sprintf(`DELETE FROM %s WHERE id = %d`, table, live[j]))
			live = append(live[:j], live[j+1:]...)
		}
	}
	return ops
}

// TestWALGroupCommitEquivalence is the quickcheck satellite: for
// seeded random transaction streams run concurrently through a
// group-commit database, the table state recovered from its (batched)
// WAL must equal the state an unbatched database reaches executing
// the same streams. Each stream owns one table, so the expected state
// is interleaving-independent.
func TestWALGroupCommitEquivalence(t *testing.T) {
	const goroutines = 4
	for seed := int64(0); seed < 10; seed++ {
		streams := make([][]string, goroutines)
		for g := range streams {
			streams[g] = groupEquivOps(rand.New(rand.NewSource(seed*100+int64(g))), fmt.Sprintf("t%d", g), 15)
		}

		// Reference: the same streams, serially, no batching, no WAL.
		ref := Memory()
		for _, ops := range streams {
			s := ref.Session()
			for _, op := range ops {
				mustExec(t, s, op)
			}
		}

		// Batched: concurrent sessions over a sync group-commit DB,
		// crashed without Close so recovery replays the batched WAL.
		dir := t.TempDir()
		db, err := Open(Options{Dir: dir, Sync: true, GroupCommit: true, SyncDelay: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(ops []string) {
				defer wg.Done()
				s := db.Session()
				for _, op := range ops {
					if _, err := s.Exec(op); err != nil {
						errs <- err
						return
					}
				}
			}(streams[g])
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		wal, err := os.ReadFile(filepath.Join(dir, "wal"))
		if err != nil {
			t.Fatal(err)
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, "wal"), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(Options{Dir: crashDir})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}

		for g := 0; g < goroutines; g++ {
			q := fmt.Sprintf(`SELECT id, v FROM t%d ORDER BY id`, g)
			want := mustExec(t, ref.Session(), q)
			got := mustExec(t, rec.Session(), q)
			if len(want.Rows) != len(got.Rows) {
				t.Fatalf("seed %d t%d: %d rows recovered, want %d", seed, g, len(got.Rows), len(want.Rows))
			}
			for i := range want.Rows {
				if want.Rows[i][0].Int != got.Rows[i][0].Int || want.Rows[i][1].Int != got.Rows[i][1].Int {
					t.Fatalf("seed %d t%d row %d: got (%d,%d), want (%d,%d)", seed, g, i,
						got.Rows[i][0].Int, got.Rows[i][1].Int, want.Rows[i][0].Int, want.Rows[i][1].Int)
				}
			}
		}
		db.Close()
		rec.Close()
		ref.Close()
	}
}
