package metadb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// shippedRecord is one captured Ship-hook call: what a primary's
// replication core would put on the wire.
type shippedRecord struct {
	seq, epoch int64
	ops        []RedoOp
}

// shipBatch builds a primary at epoch 1 with the Ship hook installed,
// commits one CREATE plus `inserts` single-row commits, and returns
// the primary and the captured records in commit order.
func shipBatch(t *testing.T, inserts int) (*DB, []shippedRecord) {
	t.Helper()
	primary, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	if err := primary.SetReplEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	var records []shippedRecord
	primary.SetReplHooks(&ReplHooks{
		Ship: func(seq, epoch int64, ops []RedoOp) {
			records = append(records, shippedRecord{seq: seq, epoch: epoch, ops: ops})
		},
		Ack: func(int64) error { return nil },
	})
	s := primary.Session()
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < inserts; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i, i))
	}
	if len(records) != inserts+1 {
		t.Fatalf("captured %d shipped records, want %d", len(records), inserts+1)
	}
	return primary, records
}

// applyRecords ships records[from:] onto the follower, settling each
// record's group-commit wait target.
func applyRecords(t *testing.T, db *DB, records []shippedRecord, from int64) {
	t.Helper()
	for _, rec := range records {
		if rec.seq <= from {
			continue
		}
		wait, err := db.ApplyShipped(rec.epoch, rec.seq, rec.epoch, rec.ops)
		if err != nil {
			t.Fatalf("apply record %d: %v", rec.seq, err)
		}
		if err := db.WaitWAL(wait); err != nil {
			t.Fatalf("wait record %d: %v", rec.seq, err)
		}
	}
}

// dumpT reads the full contents of table t for comparison.
func dumpT(t *testing.T, db *DB) [][]Value {
	t.Helper()
	res, err := db.Exec(`SELECT id, v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// TestShippedWALCrashAtEveryRecordBoundary is the WAL-shipping crash
// quickcheck of DESIGN.md §13: a follower that crashes at any record
// boundary (and just before one — a torn append) during a shipped
// batch must recover its position from its own WAL, reject records
// that do not extend it with *ErrSeqGap, and converge byte-for-byte
// with the primary once the remainder of the batch is re-shipped.
func TestShippedWALCrashAtEveryRecordBoundary(t *testing.T) {
	const inserts = 6
	primary, records := shipBatch(t, inserts)
	wantRows := dumpT(t, primary)
	wantSeq, wantLast := primary.ReplState()

	// A reference follower applies the whole batch; its WAL bytes are
	// the crash corpus.
	refDir := t.TempDir()
	ref := openDir(t, refDir)
	applyRecords(t, ref, records, 0)
	// Crash without Close: the WAL is the only durable state.
	wal, err := os.ReadFile(filepath.Join(refDir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	ends := walRecordEnds(t, wal)
	if len(ends) != len(records) {
		t.Fatalf("follower WAL holds %d records, want %d", len(ends), len(records))
	}

	base := t.TempDir()
	cuts := []int64{0}
	for _, end := range ends {
		cuts = append(cuts, end-1, end) // torn tail, then clean boundary
	}
	for i, cut := range cuts {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		complete := int64(0)
		for _, end := range ends {
			if end <= cut {
				complete++
			}
		}
		seq, _ := db.ReplState()
		if seq != complete {
			t.Fatalf("cut %d: recovered to seq %d, want %d", cut, seq, complete)
		}

		// A record that skips ahead must be rejected with a gap error,
		// never silently applied out of order.
		if seq+2 <= int64(len(records)) {
			skip := records[seq+1]
			var gap *ErrSeqGap
			if _, err := db.ApplyShipped(skip.epoch, skip.seq, skip.epoch, skip.ops); !errors.As(err, &gap) {
				t.Fatalf("cut %d: out-of-order record %d gave %v, want *ErrSeqGap", cut, skip.seq, err)
			} else if gap.Have != seq || gap.Want != skip.seq {
				t.Fatalf("cut %d: gap error %+v, want have=%d want=%d", cut, gap, seq, skip.seq)
			}
		}

		// Re-ship the remainder: the follower must converge exactly.
		applyRecords(t, db, records, seq)
		gotSeq, gotLast := db.ReplState()
		if gotSeq != wantSeq || gotLast != wantLast {
			t.Fatalf("cut %d: converged to (%d, %d), want (%d, %d)", cut, gotSeq, gotLast, wantSeq, wantLast)
		}
		if got := dumpT(t, db); !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("cut %d: rows diverged:\n got %v\nwant %v", cut, got, wantRows)
		}

		// The converged follower must survive one more crash/recover
		// cycle with nothing left to re-ship.
		if err := db.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		db2 := openDir(t, dir)
		if seq2, _ := db2.ReplState(); seq2 != wantSeq {
			t.Fatalf("cut %d: reopen lost records: seq %d, want %d", cut, seq2, wantSeq)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
