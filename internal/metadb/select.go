package metadb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// tableRef binds a FROM or JOIN table to its alias.
type tableRef struct {
	alias string
	t     *Table
}

// binding is one joined row: values aligned with the executor's table
// refs.
type binding [][]Value

// execSelect runs a SELECT: nested-loop joins, WHERE, optional GROUP
// BY/HAVING with aggregates, ORDER BY and LIMIT. Caller holds at least
// a read lock.
func (db *DB) execSelect(st Select) (*Result, error) {
	refs, err := db.resolveRefs(st)
	if err != nil {
		return nil, err
	}

	rows, err := db.joinRows(st, refs)
	if err != nil {
		return nil, err
	}

	items, names, err := expandItems(st.Items, refs)
	if err != nil {
		return nil, err
	}

	grouped := len(st.GroupBy) > 0
	if !grouped {
		for _, it := range items {
			if hasAgg(it) {
				grouped = true
				break
			}
		}
	}
	if !grouped && st.Having != nil {
		return nil, errors.New("metadb: HAVING requires aggregation or GROUP BY")
	}

	res := &Result{Cols: names}
	if grouped {
		if err := db.evalGrouped(st, refs, rows, items, res); err != nil {
			return nil, err
		}
	} else {
		if err := db.evalPlain(st, refs, rows, items, res); err != nil {
			return nil, err
		}
	}
	if st.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	if st.Limit != nil && int64(len(res.Rows)) > *st.Limit {
		res.Rows = res.Rows[:*st.Limit]
	}
	return res, nil
}

// dedupeRows drops duplicate output rows, keeping first occurrences
// (so an ORDER BY sort is preserved).
func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.String())
			sb.WriteByte('\x00')
		}
		k := sb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// resolveRefs looks up the FROM table and all join tables.
func (db *DB) resolveRefs(st Select) ([]tableRef, error) {
	base, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	alias := st.Alias
	if alias == "" {
		alias = st.Table
	}
	refs := []tableRef{{alias: alias, t: base}}
	for _, j := range st.Joins {
		t, err := db.table(j.Table)
		if err != nil {
			return nil, err
		}
		a := j.Alias
		if a == "" {
			a = j.Table
		}
		for _, r := range refs {
			if r.alias == a {
				return nil, fmt.Errorf("metadb: duplicate table alias %q", a)
			}
		}
		refs = append(refs, tableRef{alias: a, t: t})
	}
	return refs, nil
}

// bindEnv resolves column references against the first bound tables of
// a (possibly partial) binding.
func bindEnv(refs []tableRef, b binding, bound int) env {
	return func(qual, name string) (Value, error) {
		found := -1
		var out Value
		for i := 0; i < bound; i++ {
			r := refs[i]
			if qual != "" && qual != r.alias && qual != r.t.Name {
				continue
			}
			ci, ok := r.t.colIdx[name]
			if !ok {
				continue
			}
			if found >= 0 {
				return Value{}, fmt.Errorf("metadb: ambiguous column %q", name)
			}
			found = i
			out = b[i][ci]
		}
		if found < 0 {
			if qual != "" {
				return Value{}, fmt.Errorf("metadb: no column %s.%s", qual, name)
			}
			return Value{}, fmt.Errorf("metadb: no column %q", name)
		}
		return out, nil
	}
}

// joinRows produces all bindings satisfying the join conditions and
// the WHERE clause. The base table uses index/PK lookups when the
// WHERE clause is a simple equality and there are no joins.
func (db *DB) joinRows(st Select, refs []tableRef) ([]binding, error) {
	var out []binding

	baseIDs := db.pruneBase(st, refs)

	cur := make(binding, len(refs))
	var walk func(level int) error
	walk = func(level int) error {
		if level == len(refs) {
			if st.Where != nil {
				v, err := eval(st.Where, &evalCtx{lookup: bindEnv(refs, cur, len(refs))})
				if err != nil {
					return err
				}
				if v.IsNull() || !v.Truth() {
					return nil
				}
			}
			row := make(binding, len(refs))
			copy(row, cur)
			out = append(out, row)
			return nil
		}
		t := refs[level].t
		var ids []int64
		if level == 0 {
			ids = baseIDs
		} else {
			ids = t.scanIDs()
		}
		for _, rid := range ids {
			cur[level] = t.rows[rid]
			if level > 0 {
				on := st.Joins[level-1].On
				if on != nil {
					v, err := eval(on, &evalCtx{lookup: bindEnv(refs, cur, level+1)})
					if err != nil {
						return err
					}
					if v.IsNull() || !v.Truth() {
						continue
					}
				}
			}
			if err := walk(level + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}

// pruneBase returns the candidate rowids of the base table: an
// index/PK point lookup when the query is single-table with a simple
// equality WHERE (the WHERE is still re-evaluated per row afterwards,
// so pruning is purely an optimization), otherwise a full scan.
func (db *DB) pruneBase(st Select, refs []tableRef) []int64 {
	t := refs[0].t
	if len(refs) == 1 && st.Where != nil {
		if ci, lit, ok := eqPredicateAliased(t, refs[0].alias, st.Where); ok {
			if v, err := coerce(lit, t.Cols[ci].Type); err == nil {
				if ci == t.pk {
					if rid, found := t.lookupPK(v); found {
						return []int64{rid}
					}
					return nil
				}
				if uidx, ok := t.uniqIdx[ci]; ok {
					if rid, found := uidx[v]; found {
						return []int64{rid}
					}
					return nil
				}
				if ix := t.indexOn(ci); ix != nil {
					set := ix.m[v]
					out := make([]int64, 0, len(set))
					for rid := range set {
						out = append(out, rid)
					}
					sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
					return out
				}
			} else {
				return nil // mistyped probe matches nothing
			}
		}
	}
	return t.scanIDs()
}

// eqPredicateAliased is eqPredicate with an extra accepted qualifier
// (the FROM-clause alias).
func eqPredicateAliased(t *Table, alias string, where Expr) (colIdx int, lit Value, ok bool) {
	b, isBin := where.(Binary)
	if !isBin || b.Op != "=" {
		return 0, Value{}, false
	}
	try := func(ce, le Expr) (int, Value, bool) {
		c, ok := ce.(Col)
		if !ok || (c.Qual != "" && c.Qual != t.Name && c.Qual != alias) {
			return 0, Value{}, false
		}
		l, ok := le.(Lit)
		if !ok {
			return 0, Value{}, false
		}
		ci, err := t.ColIndex(c.Name)
		if err != nil {
			return 0, Value{}, false
		}
		return ci, l.V, true
	}
	if ci, v, ok := try(b.L, b.R); ok {
		return ci, v, true
	}
	return try(b.R, b.L)
}

// expandItems expands * into per-column references and derives output
// names.
func expandItems(items []SelectItem, refs []tableRef) ([]Expr, []string, error) {
	var exprs []Expr
	var names []string
	for _, it := range items {
		if it.Star {
			for _, r := range refs {
				for _, c := range r.t.Cols {
					exprs = append(exprs, Col{Qual: r.alias, Name: c.Name})
					names = append(names, c.Name)
				}
			}
			continue
		}
		name := it.Alias
		if name == "" {
			switch e := it.Expr.(type) {
			case Col:
				name = e.Name
			case AggExpr:
				name = e.Fn
			default:
				name = fmt.Sprintf("col%d", len(exprs)+1)
			}
		}
		exprs = append(exprs, it.Expr)
		names = append(names, name)
	}
	if len(exprs) == 0 {
		return nil, nil, errors.New("metadb: empty select list")
	}
	return exprs, names, nil
}

// evalPlain evaluates items per row, then sorts.
func (db *DB) evalPlain(st Select, refs []tableRef, rows []binding, items []Expr, res *Result) error {
	type sortedRow struct {
		out  []Value
		keys []Value
	}
	srows := make([]sortedRow, 0, len(rows))
	for _, b := range rows {
		ctx := &evalCtx{lookup: bindEnv(refs, b, len(refs))}
		out := make([]Value, len(items))
		for i, e := range items {
			v, err := eval(e, ctx)
			if err != nil {
				return err
			}
			out[i] = v
		}
		keys, err := orderKeys(st.OrderBy, ctx, out, res.Cols)
		if err != nil {
			return err
		}
		srows = append(srows, sortedRow{out: out, keys: keys})
	}
	sortByKeys(st.OrderBy, func(i, j int) bool { return lessKeys(st.OrderBy, srows[i].keys, srows[j].keys) },
		len(srows), func(less func(i, j int) bool) {
			sort.SliceStable(srows, less)
		})
	for _, r := range srows {
		res.Rows = append(res.Rows, r.out)
	}
	return nil
}

// evalGrouped buckets rows by the GROUP BY keys (one global bucket if
// none), applies HAVING, and evaluates items with aggregate support.
func (db *DB) evalGrouped(st Select, refs []tableRef, rows []binding, items []Expr, res *Result) error {
	type bucket struct {
		key  string
		rows []binding
	}
	var buckets []*bucket
	index := map[string]*bucket{}
	for _, b := range rows {
		key := ""
		if len(st.GroupBy) > 0 {
			ctx := &evalCtx{lookup: bindEnv(refs, b, len(refs))}
			var sb strings.Builder
			for _, ge := range st.GroupBy {
				v, err := eval(ge, ctx)
				if err != nil {
					return err
				}
				sb.WriteString(v.String())
				sb.WriteByte('\x00')
			}
			key = sb.String()
		}
		bk, ok := index[key]
		if !ok {
			bk = &bucket{key: key}
			index[key] = bk
			buckets = append(buckets, bk)
		}
		bk.rows = append(bk.rows, b)
	}
	// An ungrouped aggregate over zero rows still yields one row.
	if len(buckets) == 0 && len(st.GroupBy) == 0 {
		buckets = append(buckets, &bucket{})
	}

	type sortedRow struct {
		out  []Value
		keys []Value
	}
	var srows []sortedRow
	for _, bk := range buckets {
		ctx := &evalCtx{agg: func(a AggExpr) (Value, error) { return db.aggregate(a, refs, bk.rows) }}
		if len(bk.rows) > 0 {
			ctx.lookup = bindEnv(refs, bk.rows[0], len(refs))
		}
		if st.Having != nil {
			v, err := eval(st.Having, ctx)
			if err != nil {
				return err
			}
			if v.IsNull() || !v.Truth() {
				continue
			}
		}
		out := make([]Value, len(items))
		for i, e := range items {
			v, err := eval(e, ctx)
			if err != nil {
				return err
			}
			out[i] = v
		}
		keys, err := orderKeys(st.OrderBy, ctx, out, res.Cols)
		if err != nil {
			return err
		}
		srows = append(srows, sortedRow{out: out, keys: keys})
	}
	sortByKeys(st.OrderBy, func(i, j int) bool { return lessKeys(st.OrderBy, srows[i].keys, srows[j].keys) },
		len(srows), func(less func(i, j int) bool) {
			sort.SliceStable(srows, less)
		})
	for _, r := range srows {
		res.Rows = append(res.Rows, r.out)
	}
	return nil
}

// aggregate computes one aggregate over a bucket.
func (db *DB) aggregate(a AggExpr, refs []tableRef, rows []binding) (Value, error) {
	if a.Star {
		if a.Fn != "COUNT" {
			return Value{}, fmt.Errorf("metadb: %s(*) is not valid", a.Fn)
		}
		return I(int64(len(rows))), nil
	}
	var (
		count int64
		sumF  float64
		sumI  int64
		allI  = true
		best  Value
		first = true
	)
	for _, b := range rows {
		v, err := eval(a.X, &evalCtx{lookup: bindEnv(refs, b, len(refs))})
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch a.Fn {
		case "SUM", "AVG":
			f, ok := v.AsFloat()
			if !ok {
				return Value{}, fmt.Errorf("metadb: %s requires numeric values", a.Fn)
			}
			sumF += f
			if v.Kind == KindInt {
				sumI += v.Int
			} else {
				allI = false
			}
		case "MIN":
			if first || Compare(v, best) < 0 {
				best = v
			}
		case "MAX":
			if first || Compare(v, best) > 0 {
				best = v
			}
		}
		first = false
	}
	switch a.Fn {
	case "COUNT":
		return I(count), nil
	case "SUM":
		if count == 0 {
			return Null(), nil
		}
		if allI {
			return I(sumI), nil
		}
		return F(sumF), nil
	case "AVG":
		if count == 0 {
			return Null(), nil
		}
		return F(sumF / float64(count)), nil
	case "MIN", "MAX":
		if count == 0 {
			return Null(), nil
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("metadb: unknown aggregate %q", a.Fn)
}

// orderKeys evaluates ORDER BY keys for one output row. Keys may be
// arbitrary expressions, an output column name, or a 1-based output
// position.
func orderKeys(keys []OrderKey, ctx *evalCtx, out []Value, names []string) ([]Value, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	vals := make([]Value, len(keys))
	for i, k := range keys {
		// ORDER BY 2 — output position.
		if lit, ok := k.Expr.(Lit); ok && lit.V.Kind == KindInt {
			pos := int(lit.V.Int)
			if pos < 1 || pos > len(out) {
				return nil, fmt.Errorf("metadb: ORDER BY position %d out of range", pos)
			}
			vals[i] = out[pos-1]
			continue
		}
		// ORDER BY alias — output column name takes priority when the
		// expression is a bare, unqualified name matching an output.
		if c, ok := k.Expr.(Col); ok && c.Qual == "" {
			if j := indexOfName(names, c.Name); j >= 0 {
				// Prefer the row column when it resolves (plain
				// selects); fall back to the output column (grouped
				// selects where the alias names an aggregate).
				if ctx.lookup != nil {
					if v, err := ctx.lookup("", c.Name); err == nil {
						vals[i] = v
						continue
					}
				}
				vals[i] = out[j]
				continue
			}
		}
		v, err := eval(k.Expr, ctx)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

func indexOfName(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

func lessKeys(keys []OrderKey, a, b []Value) bool {
	for k := range keys {
		c := Compare(a[k], b[k])
		if c == 0 {
			continue
		}
		if keys[k].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// sortByKeys applies the sort only when ORDER BY is present.
func sortByKeys(keys []OrderKey, less func(i, j int) bool, n int, do func(func(i, j int) bool)) {
	if len(keys) == 0 || n < 2 {
		return
	}
	do(less)
}
