package metadb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the database side of metadata replication (DESIGN.md
// §13). The DB itself knows nothing about networks or elections — it
// only exposes the four capabilities a log-replication core needs:
//
//   - a commit hook called in commit order with each committed
//     transaction's redo ops (ReplHooks.Ship), plus an acknowledgement
//     gate that can hold a commit until a majority of replicas is
//     durable (ReplHooks.Ack);
//   - an apply path for shipped records (ApplyShipped) that keeps the
//     follower's own WAL as its durability story and fences out
//     records from streams whose epoch the replica already voted past;
//   - a durable epoch (SetReplEpoch) so a restarted replica cannot
//     vote or accept records at a term it already moved past, and an
//     atomic vote primitive (GrantVote) that compares the candidate's
//     log position and adopts its epoch under the same lock the apply
//     path uses — so a vote and a concurrent record apply serialize;
//   - full-state transfer (StateSnapshot/RestoreSnapshot) for
//     followers too far behind — or too diverged — to stream.

// ReplHooks connects a DB acting as a replica-group primary to the
// replication core. Ship is called under the database write lock
// immediately after the commit's WAL append, so ship order equals WAL
// order equals commit order; it must only enqueue. Ack is called after
// local durability, outside all locks; commit blocks until it returns
// and reports its error as "commit not replicated".
type ReplHooks struct {
	Ship func(seq, epoch int64, ops []RedoOp)
	Ack  func(seq int64) error
}

// SetReplHooks installs or clears (nil) the primary-side replication
// hooks. In-flight commits that already loaded the previous hooks
// finish with them.
func (db *DB) SetReplHooks(h *ReplHooks) { db.repl.Store(h) }

// ReplState returns the replicated-log position: the sequence number
// of the last commit applied to this database and the epoch stamped on
// it. (0, 0) means the log is empty.
func (db *DB) ReplState() (seq, lastEpoch int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replSeq, db.replLastEpoch
}

// ReplEpoch returns the durable epoch and the replica ID holding the
// primary lease for it.
func (db *DB) ReplEpoch() (epoch int64, leader int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replEpoch, db.replLeader
}

// ErrEpochRegression reports an attempt to move the durable epoch
// backwards — always a lost race with a concurrent higher-epoch
// adoption, never an I/O failure, so callers may treat it as benign
// where a genuine persistence failure must not be ignored.
type ErrEpochRegression struct {
	Cur int64 // the durable epoch that stays in force
	New int64 // the rejected, smaller epoch
}

func (e *ErrEpochRegression) Error() string {
	return fmt.Sprintf("metadb: epoch regression %d -> %d", e.Cur, e.New)
}

// SetReplEpoch durably records a new epoch and its lease holder. New
// commits are stamped with the new epoch. Epochs never regress: a
// smaller value than the current one fails with *ErrEpochRegression.
func (db *DB) SetReplEpoch(epoch int64, leader int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("metadb: database closed")
	}
	if epoch < db.replEpoch {
		return &ErrEpochRegression{Cur: db.replEpoch, New: epoch}
	}
	prevEpoch, prevLeader := db.replEpoch, db.replLeader
	db.replEpoch = epoch
	db.replLeader = leader
	if err := db.writeEpochLocked(); err != nil {
		// The rename never happened, so the disk still holds the old
		// epoch; keep memory consistent with it rather than acting at
		// an epoch a crash would forget.
		db.replEpoch, db.replLeader = prevEpoch, prevLeader
		return err
	}
	return nil
}

// GrantVote is the durable half of an election vote, decided
// atomically under the database lock so it serializes with
// ApplyShipped: either a record lands before the vote (and the log
// comparison sees it) or after (and the epoch fence rejects it) —
// there is no window where a record can be acknowledged at an epoch
// this replica has voted past. A vote is granted only when
//
//   - epoch strictly exceeds the durable epoch (one vote per epoch,
//     even across a crash: the adoption is persisted before the grant
//     returns), and
//   - the candidate's log position (candLastEpoch, then candSeq) is at
//     least this replica's, so every majority-durable record survives
//     into any electable candidate. candSeq < 0 means the vote is for
//     this replica itself, which is trivially log-current.
//
// The returned seq/lastEpoch are this replica's log position read
// atomically with the decision (a self-voting candidate advertises
// them in its vote requests). A persistence failure refuses the vote.
func (db *DB) GrantVote(epoch, candSeq, candLastEpoch int64) (seq, lastEpoch int64, granted bool, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, 0, false, errors.New("metadb: database closed")
	}
	seq, lastEpoch = db.replSeq, db.replLastEpoch
	if epoch <= db.replEpoch {
		return seq, lastEpoch, false, nil
	}
	if candSeq >= 0 && (candLastEpoch < lastEpoch || (candLastEpoch == lastEpoch && candSeq < seq)) {
		return seq, lastEpoch, false, nil
	}
	prevEpoch, prevLeader := db.replEpoch, db.replLeader
	db.replEpoch, db.replLeader = epoch, -1
	if werr := db.writeEpochLocked(); werr != nil {
		db.replEpoch, db.replLeader = prevEpoch, prevLeader
		return seq, lastEpoch, false, werr
	}
	return seq, lastEpoch, true, nil
}

// writeEpochLocked persists "<epoch> <leader>" to <dir>/epoch with an
// fsync (atomic via rename). In-memory databases keep it in memory
// only. Caller holds db.mu.
func (db *DB) writeEpochLocked() error {
	if db.opts.Dir == "" {
		return nil
	}
	tmp := filepath.Join(db.opts.Dir, "epoch.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d %d\n", db.replEpoch, db.replLeader); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(db.opts.Dir, "epoch"))
}

// loadEpoch restores the durable epoch on open; a missing file means
// epoch 0 (never part of a replica group, or created pre-replication).
func (db *DB) loadEpoch() error {
	data, err := os.ReadFile(filepath.Join(db.opts.Dir, "epoch"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if _, err := fmt.Sscanf(string(data), "%d %d", &db.replEpoch, &db.replLeader); err != nil {
		return fmt.Errorf("metadb: corrupt epoch file: %w", err)
	}
	return nil
}

// ErrSeqGap reports a shipped record that does not directly extend the
// replica's log; the shipper reacts with a snapshot resync.
type ErrSeqGap struct {
	Have int64 // last applied sequence number
	Want int64 // sequence number of the rejected record
}

func (e *ErrSeqGap) Error() string {
	return fmt.Sprintf("metadb: shipped record %d does not extend log at %d", e.Want, e.Have)
}

// ErrStaleEpoch reports a shipped record or snapshot arriving on a
// stream whose epoch is older than the replica's durable epoch: the
// sending primary was deposed (this replica has since voted for, or
// heard from, a newer one), so applying — and above all acknowledging —
// the record would let a dead lease contribute to a commit quorum.
type ErrStaleEpoch struct {
	Stream  int64 // the stream's hello epoch
	Current int64 // the replica's durable epoch
}

func (e *ErrStaleEpoch) Error() string {
	return fmt.Sprintf("metadb: shipped at stale epoch %d (current %d)", e.Stream, e.Current)
}

// ApplyShipped applies one shipped commit record on a follower: the
// redo ops mutate the tables and the record lands in the follower's
// own WAL, so follower durability works exactly like primary
// durability. The returned wait target is the group-commit watermark —
// pass it to WaitWAL before acknowledging the record (0 means the
// append is already as durable as Options demand). A seq that is not
// exactly ReplState()+1 fails with *ErrSeqGap.
//
// streamEpoch is the hello epoch of the shipping stream; a record from
// a stream older than the durable epoch fails with *ErrStaleEpoch.
// The check runs under the same lock as GrantVote — raft's term check
// inside AppendEntries — so a vote granted to an epoch-e+1 candidate
// can never interleave with an epoch-e record slipping in afterwards:
// once the vote's epoch adoption is durable, every later epoch-e apply
// is rejected and never acknowledged.
func (db *DB) ApplyShipped(streamEpoch, seq, epoch int64, ops []RedoOp) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, errors.New("metadb: database closed")
	}
	if streamEpoch < db.replEpoch {
		return 0, &ErrStaleEpoch{Stream: streamEpoch, Current: db.replEpoch}
	}
	if seq != db.replSeq+1 {
		return 0, &ErrSeqGap{Have: db.replSeq, Want: seq}
	}
	if err := db.applyRedo(ops); err != nil {
		return 0, fmt.Errorf("metadb: apply shipped record %d: %w", seq, err)
	}
	db.replSeq = seq
	db.replLastEpoch = epoch
	if db.wal == nil {
		return 0, nil
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if err := db.wal.append(commitRecord{Seq: seq, Epoch: epoch, Ops: ops}); err != nil {
		return 0, err
	}
	if db.opts.CheckpointBytes > 0 && db.wal.size > db.opts.CheckpointBytes {
		return 0, db.snapshotLocked()
	}
	if db.wal.group {
		return db.wal.target(), nil
	}
	return 0, nil
}

// WaitWAL blocks until the WAL is durable up to the given wait target
// returned by ApplyShipped (a no-op for 0 or in-memory databases).
// Waiting outside ApplyShipped lets a follower keep applying records
// while a shared fsync is in flight — the same batching the primary
// gets from group commit.
func (db *DB) WaitWAL(wait int64) error {
	if wait == 0 || db.wal == nil {
		return nil
	}
	return db.wal.waitDurable(wait)
}

// StateSnapshot serializes the full database state, including the
// replicated-log position, for shipping to a follower that cannot be
// caught up record by record.
func (db *DB) StateSnapshot() ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errors.New("metadb: database closed")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db.buildSnapshotLocked()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreSnapshot replaces the entire database state with a shipped
// snapshot, discarding any divergent local history. On a durable
// database the snapshot is persisted and the WAL reset, so a crash
// right after restore recovers the restored state. streamEpoch is
// fenced exactly like ApplyShipped's: a deposed primary must not be
// able to wipe a follower's state any more than extend its log.
func (db *DB) RestoreSnapshot(streamEpoch int64, data []byte) error {
	var rec snapshotRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return fmt.Errorf("metadb: corrupt shipped snapshot: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("metadb: database closed")
	}
	if streamEpoch < db.replEpoch {
		return &ErrStaleEpoch{Stream: streamEpoch, Current: db.replEpoch}
	}
	tables := make(map[string]*Table, len(rec.Tables))
	for _, dump := range rec.Tables {
		t, err := NewTable(dump.Name, dump.Cols)
		if err != nil {
			return err
		}
		for i, rid := range dump.RowIDs {
			t.insert(dump.Rows[i], rid)
		}
		if dump.NextRow > t.nextRow {
			t.nextRow = dump.NextRow
		}
		for _, ix := range dump.Indexes {
			if err := t.createIndex(ix.Name, ix.Col); err != nil {
				return err
			}
		}
		tables[dump.Name] = t
	}
	db.tables = tables
	db.replSeq = rec.Seq
	db.replLastEpoch = rec.Epoch
	if db.wal == nil {
		return nil
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	return db.writeSnapshotLocked(rec)
}
