package metadb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the database side of metadata replication (DESIGN.md
// §13). The DB itself knows nothing about networks or elections — it
// only exposes the four capabilities a log-replication core needs:
//
//   - a commit hook called in commit order with each committed
//     transaction's redo ops (ReplHooks.Ship), plus an acknowledgement
//     gate that can hold a commit until a majority of replicas is
//     durable (ReplHooks.Ack);
//   - an apply path for shipped records (ApplyShipped) that keeps the
//     follower's own WAL as its durability story;
//   - a durable epoch (SetReplEpoch) so a restarted replica cannot
//     vote or accept records at a term it already moved past;
//   - full-state transfer (StateSnapshot/RestoreSnapshot) for
//     followers too far behind — or too diverged — to stream.

// ReplHooks connects a DB acting as a replica-group primary to the
// replication core. Ship is called under the database write lock
// immediately after the commit's WAL append, so ship order equals WAL
// order equals commit order; it must only enqueue. Ack is called after
// local durability, outside all locks; commit blocks until it returns
// and reports its error as "commit not replicated".
type ReplHooks struct {
	Ship func(seq, epoch int64, ops []RedoOp)
	Ack  func(seq int64) error
}

// SetReplHooks installs or clears (nil) the primary-side replication
// hooks. In-flight commits that already loaded the previous hooks
// finish with them.
func (db *DB) SetReplHooks(h *ReplHooks) { db.repl.Store(h) }

// ReplState returns the replicated-log position: the sequence number
// of the last commit applied to this database and the epoch stamped on
// it. (0, 0) means the log is empty.
func (db *DB) ReplState() (seq, lastEpoch int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replSeq, db.replLastEpoch
}

// ReplEpoch returns the durable epoch and the replica ID holding the
// primary lease for it.
func (db *DB) ReplEpoch() (epoch int64, leader int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replEpoch, db.replLeader
}

// SetReplEpoch durably records a new epoch and its lease holder. New
// commits are stamped with the new epoch. Epochs never regress: a
// smaller value than the current one is an error.
func (db *DB) SetReplEpoch(epoch int64, leader int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("metadb: database closed")
	}
	if epoch < db.replEpoch {
		return fmt.Errorf("metadb: epoch regression %d -> %d", db.replEpoch, epoch)
	}
	db.replEpoch = epoch
	db.replLeader = leader
	return db.writeEpochLocked()
}

// writeEpochLocked persists "<epoch> <leader>" to <dir>/epoch with an
// fsync (atomic via rename). In-memory databases keep it in memory
// only. Caller holds db.mu.
func (db *DB) writeEpochLocked() error {
	if db.opts.Dir == "" {
		return nil
	}
	tmp := filepath.Join(db.opts.Dir, "epoch.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d %d\n", db.replEpoch, db.replLeader); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(db.opts.Dir, "epoch"))
}

// loadEpoch restores the durable epoch on open; a missing file means
// epoch 0 (never part of a replica group, or created pre-replication).
func (db *DB) loadEpoch() error {
	data, err := os.ReadFile(filepath.Join(db.opts.Dir, "epoch"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if _, err := fmt.Sscanf(string(data), "%d %d", &db.replEpoch, &db.replLeader); err != nil {
		return fmt.Errorf("metadb: corrupt epoch file: %w", err)
	}
	return nil
}

// ErrSeqGap reports a shipped record that does not directly extend the
// replica's log; the shipper reacts with a snapshot resync.
type ErrSeqGap struct {
	Have int64 // last applied sequence number
	Want int64 // sequence number of the rejected record
}

func (e *ErrSeqGap) Error() string {
	return fmt.Sprintf("metadb: shipped record %d does not extend log at %d", e.Want, e.Have)
}

// ApplyShipped applies one shipped commit record on a follower: the
// redo ops mutate the tables and the record lands in the follower's
// own WAL, so follower durability works exactly like primary
// durability. The returned wait target is the group-commit watermark —
// pass it to WaitWAL before acknowledging the record (0 means the
// append is already as durable as Options demand). A seq that is not
// exactly ReplState()+1 fails with *ErrSeqGap.
func (db *DB) ApplyShipped(seq, epoch int64, ops []RedoOp) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, errors.New("metadb: database closed")
	}
	if seq != db.replSeq+1 {
		return 0, &ErrSeqGap{Have: db.replSeq, Want: seq}
	}
	if err := db.applyRedo(ops); err != nil {
		return 0, fmt.Errorf("metadb: apply shipped record %d: %w", seq, err)
	}
	db.replSeq = seq
	db.replLastEpoch = epoch
	if db.wal == nil {
		return 0, nil
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if err := db.wal.append(commitRecord{Seq: seq, Epoch: epoch, Ops: ops}); err != nil {
		return 0, err
	}
	if db.opts.CheckpointBytes > 0 && db.wal.size > db.opts.CheckpointBytes {
		return 0, db.snapshotLocked()
	}
	if db.wal.group {
		return db.wal.target(), nil
	}
	return 0, nil
}

// WaitWAL blocks until the WAL is durable up to the given wait target
// returned by ApplyShipped (a no-op for 0 or in-memory databases).
// Waiting outside ApplyShipped lets a follower keep applying records
// while a shared fsync is in flight — the same batching the primary
// gets from group commit.
func (db *DB) WaitWAL(wait int64) error {
	if wait == 0 || db.wal == nil {
		return nil
	}
	return db.wal.waitDurable(wait)
}

// StateSnapshot serializes the full database state, including the
// replicated-log position, for shipping to a follower that cannot be
// caught up record by record.
func (db *DB) StateSnapshot() ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errors.New("metadb: database closed")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db.buildSnapshotLocked()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreSnapshot replaces the entire database state with a shipped
// snapshot, discarding any divergent local history. On a durable
// database the snapshot is persisted and the WAL reset, so a crash
// right after restore recovers the restored state.
func (db *DB) RestoreSnapshot(data []byte) error {
	var rec snapshotRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return fmt.Errorf("metadb: corrupt shipped snapshot: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("metadb: database closed")
	}
	tables := make(map[string]*Table, len(rec.Tables))
	for _, dump := range rec.Tables {
		t, err := NewTable(dump.Name, dump.Cols)
		if err != nil {
			return err
		}
		for i, rid := range dump.RowIDs {
			t.insert(dump.Rows[i], rid)
		}
		if dump.NextRow > t.nextRow {
			t.nextRow = dump.NextRow
		}
		for _, ix := range dump.Indexes {
			if err := t.createIndex(ix.Name, ix.Col); err != nil {
				return err
			}
		}
		tables[dump.Name] = t
	}
	db.tables = tables
	db.replSeq = rec.Seq
	db.replLastEpoch = rec.Epoch
	if db.wal == nil {
		return nil
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	return db.writeSnapshotLocked(rec)
}
