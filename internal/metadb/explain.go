package metadb

import (
	"fmt"
	"strings"
)

// Explain is EXPLAIN SELECT ...: it returns the executor's access plan
// as rows of text instead of running the query.
type Explain struct {
	Stmt Select
}

func (Explain) stmt() {}

// explainSelect renders the plan the executor would follow.
func (db *DB) explainSelect(st Select) (*Result, error) {
	refs, err := db.resolveRefs(st)
	if err != nil {
		return nil, err
	}
	var lines []string

	// Base table access method.
	base := refs[0]
	access := fmt.Sprintf("SCAN %s (%d rows)", base.t.Name, len(base.t.rows))
	if len(refs) == 1 && st.Where != nil {
		if ci, _, ok := eqPredicateAliased(base.t, base.alias, st.Where); ok {
			col := base.t.Cols[ci].Name
			switch {
			case ci == base.t.pk:
				access = fmt.Sprintf("POINT LOOKUP %s BY PRIMARY KEY (%s)", base.t.Name, col)
			case base.t.uniqIdx[ci] != nil:
				access = fmt.Sprintf("POINT LOOKUP %s BY UNIQUE (%s)", base.t.Name, col)
			case base.t.indexOn(ci) != nil:
				access = fmt.Sprintf("INDEX LOOKUP %s BY %s (%s)", base.t.Name, base.t.indexOn(ci).name, col)
			}
		}
	}
	lines = append(lines, access)

	for i, j := range st.Joins {
		t := refs[i+1].t
		lines = append(lines, fmt.Sprintf("NESTED LOOP JOIN %s (%d rows) ON %s",
			t.Name, len(t.rows), ExprString(j.On)))
	}
	if st.Where != nil {
		lines = append(lines, "FILTER "+ExprString(st.Where))
	}
	if len(st.GroupBy) > 0 {
		keys := make([]string, len(st.GroupBy))
		for i, g := range st.GroupBy {
			keys[i] = ExprString(g)
		}
		lines = append(lines, "GROUP BY "+strings.Join(keys, ", "))
	} else {
		agg := false
		for _, it := range st.Items {
			if it.Expr != nil && hasAgg(it.Expr) {
				agg = true
			}
		}
		if agg {
			lines = append(lines, "AGGREGATE (single group)")
		}
	}
	if st.Having != nil {
		lines = append(lines, "HAVING "+ExprString(st.Having))
	}
	if len(st.OrderBy) > 0 {
		keys := make([]string, len(st.OrderBy))
		for i, k := range st.OrderBy {
			keys[i] = ExprString(k.Expr)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		lines = append(lines, "SORT BY "+strings.Join(keys, ", "))
	}
	if st.Distinct {
		lines = append(lines, "DISTINCT")
	}
	if st.Limit != nil {
		lines = append(lines, fmt.Sprintf("LIMIT %d", *st.Limit))
	}

	res := &Result{Cols: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []Value{S(l)})
	}
	return res, nil
}

// ExprString renders an expression roughly as SQL (used by EXPLAIN and
// error messages).
func ExprString(e Expr) string {
	switch n := e.(type) {
	case nil:
		return "<nil>"
	case Lit:
		return n.V.String()
	case Col:
		if n.Qual != "" {
			return n.Qual + "." + n.Name
		}
		return n.Name
	case Unary:
		if n.Op == "NOT" {
			return "NOT " + ExprString(n.X)
		}
		return n.Op + ExprString(n.X)
	case Binary:
		return "(" + ExprString(n.L) + " " + n.Op + " " + ExprString(n.R) + ")"
	case IsNull:
		if n.Not {
			return ExprString(n.X) + " IS NOT NULL"
		}
		return ExprString(n.X) + " IS NULL"
	case InList:
		items := make([]string, len(n.List))
		for i, x := range n.List {
			items[i] = ExprString(x)
		}
		op := " IN ("
		if n.Not {
			op = " NOT IN ("
		}
		return ExprString(n.X) + op + strings.Join(items, ", ") + ")"
	case Call:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = ExprString(a)
		}
		return n.Name + "(" + strings.Join(args, ", ") + ")"
	case AggExpr:
		if n.Star {
			return n.Fn + "(*)"
		}
		return n.Fn + "(" + ExprString(n.X) + ")"
	}
	return fmt.Sprintf("<%T>", e)
}
