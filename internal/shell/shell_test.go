package shell

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

func newShell(t *testing.T) (*Shell, *dpfs.Client) {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(3), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	client := dpfs.Wrap(fs)
	t.Cleanup(func() { client.Close() })
	return New(client), client
}

func run(t *testing.T, sh *Shell, line string) string {
	t.Helper()
	out, err := sh.Run(context.Background(), line)
	if err != nil {
		t.Fatalf("Run(%q): %v", line, err)
	}
	return out
}

func runErr(t *testing.T, sh *Shell, line string) error {
	t.Helper()
	_, err := sh.Run(context.Background(), line)
	if err == nil {
		t.Fatalf("Run(%q) should fail", line)
	}
	return err
}

func TestPwdCdMkdirLs(t *testing.T) {
	sh, _ := newShell(t)
	if out := run(t, sh, "pwd"); out != "/\n" {
		t.Fatalf("pwd = %q", out)
	}
	run(t, sh, "mkdir /home")
	run(t, sh, "cd /home")
	if sh.Cwd() != "/home" {
		t.Fatalf("cwd = %q", sh.Cwd())
	}
	run(t, sh, "mkdir xhshen") // relative
	run(t, sh, "cd xhshen")
	if out := run(t, sh, "pwd"); out != "/home/xhshen\n" {
		t.Fatalf("pwd = %q", out)
	}
	run(t, sh, "cd ..")
	out := run(t, sh, "ls")
	if !strings.Contains(out, "d xhshen/") {
		t.Fatalf("ls = %q", out)
	}
	runErr(t, sh, "cd /nosuch")
	runErr(t, sh, "ls /nosuch")
	runErr(t, sh, "bogus")
	if out := run(t, sh, ""); out != "" {
		t.Fatalf("empty line output %q", out)
	}
	if out := run(t, sh, "help"); !strings.Contains(out, "mkdir") {
		t.Fatalf("help = %q", out)
	}
}

func TestCpImportExportCat(t *testing.T) {
	sh, _ := newShell(t)
	dir := t.TempDir()
	local := filepath.Join(dir, "seq.bin")
	payload := bytes.Repeat([]byte("dpfs!"), 10000)
	if err := os.WriteFile(local, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	out := run(t, sh, "cp local:"+local+" /data")
	if !strings.Contains(out, "imported 50000 bytes") {
		t.Fatalf("import out = %q", out)
	}
	// stat shows the file.
	out = run(t, sh, "stat /data")
	if !strings.Contains(out, "size:      50000 bytes") || !strings.Contains(out, "level:     linear") {
		t.Fatalf("stat = %q", out)
	}
	// cat returns the bytes.
	if out := run(t, sh, "cat /data"); out != string(payload) {
		t.Fatal("cat mismatch")
	}
	// DPFS-to-DPFS copy.
	out = run(t, sh, "cp /data /data2")
	if !strings.Contains(out, "copied 50000 bytes") {
		t.Fatalf("copy out = %q", out)
	}
	if out := run(t, sh, "cat /data2"); out != string(payload) {
		t.Fatal("copied file mismatch")
	}
	// Export back out.
	exported := filepath.Join(dir, "out.bin")
	run(t, sh, "cp /data2 local:"+exported)
	got, err := os.ReadFile(exported)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("export mismatch")
	}
	// ls shows both files.
	out = run(t, sh, "ls /")
	if !strings.Contains(out, "- data ") || !strings.Contains(out, "- data2 ") {
		t.Fatalf("ls = %q", out)
	}
	// rm removes.
	run(t, sh, "rm /data")
	runErr(t, sh, "stat /data")
	runErr(t, sh, "cp local:"+local+" local:"+exported)
	runErr(t, sh, "cp /only-one")
	runErr(t, sh, "cp local:/nosuchfile /x")
	runErr(t, sh, "cat /nosuch")
}

func TestDf(t *testing.T) {
	sh, _ := newShell(t)
	out := run(t, sh, "df")
	for _, name := range []string{"io0", "io1", "io2", "PERF"} {
		if !strings.Contains(out, name) {
			t.Fatalf("df output missing %s: %q", name, out)
		}
	}
}

func TestRmdir(t *testing.T) {
	sh, _ := newShell(t)
	run(t, sh, "mkdir /d")
	run(t, sh, "rmdir /d")
	runErr(t, sh, "rmdir /d")
	runErr(t, sh, "mkdir")
	runErr(t, sh, "rmdir")
	runErr(t, sh, "rm")
	runErr(t, sh, "stat")
	runErr(t, sh, "cd")
	runErr(t, sh, "cat")
	runErr(t, sh, "ls /a /b")
}

func TestStatShowsLevels(t *testing.T) {
	sh, client := newShell(t)
	ctx := context.Background()
	_ = ctx
	f, err := client.Create("/md", 8, []int64{32, 32}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := run(t, sh, "stat /md")
	if !strings.Contains(out, "tile:      [8 8]") || !strings.Contains(out, "bricks:    16") {
		t.Fatalf("stat multidim = %q", out)
	}
	f, err = client.Create("/arr", 8, []int64{32, 32}, core.Hint{Level: stripe.LevelArray,
		Pattern: []stripe.Dist{stripe.DistStar, stripe.DistBlock}, Grid: []int64{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	out = run(t, sh, "stat /arr")
	if !strings.Contains(out, "pattern:   (*,BLOCK)") {
		t.Fatalf("stat array = %q", out)
	}
}

func TestEnsureDirs(t *testing.T) {
	_, client := newShell(t)
	if err := EnsureDirs(client, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	ok, err := client.IsDir("/a/b/c")
	if err != nil || !ok {
		t.Fatalf("IsDir = %v %v", ok, err)
	}
	// Idempotent.
	if err := EnsureDirs(client, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := EnsureDirs(client, "/"); err != nil {
		t.Fatal(err)
	}
	if err := EnsureDirs(client, "bad"); err == nil {
		t.Fatal("relative path accepted")
	}
}

func TestMvAndDu(t *testing.T) {
	sh, client := newShell(t)
	ctx := context.Background()

	f, err := client.Create("/a.dat", 1, []int64{4096}, core.Hint{BrickBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, bytes.Repeat([]byte{7}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := run(t, sh, "mv /a.dat /b.dat")
	if !strings.Contains(out, "renamed /a.dat -> /b.dat") {
		t.Fatalf("mv out = %q", out)
	}
	runErr(t, sh, "stat /a.dat")
	run(t, sh, "stat /b.dat")
	if got := run(t, sh, "cat /b.dat"); got != string(bytes.Repeat([]byte{7}, 4096)) {
		t.Fatal("moved file content mismatch")
	}

	out = run(t, sh, "du")
	if !strings.Contains(out, "BRICKS") || !strings.Contains(out, "io0") {
		t.Fatalf("du out = %q", out)
	}
	// 8 bricks over 3 servers: io0 holds 3.
	if !strings.Contains(out, "io0") {
		t.Fatalf("du out = %q", out)
	}
	runErr(t, sh, "mv /b.dat")
	runErr(t, sh, "mv /missing /x")
}

func TestChmodChown(t *testing.T) {
	sh, client := newShell(t)
	f, err := client.Create("/f", 1, []int64{64}, core.Hint{BrickBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	run(t, sh, "chmod 600 /f")
	run(t, sh, "chown xhshen /f")
	out := run(t, sh, "stat /f")
	if !strings.Contains(out, "perm:      600") || !strings.Contains(out, "owner:     xhshen") {
		t.Fatalf("stat after chmod/chown = %q", out)
	}
	runErr(t, sh, "chmod 9z9 /f")
	runErr(t, sh, "chmod 600 /missing")
	runErr(t, sh, "chown root /missing")
	runErr(t, sh, "chmod 600")
	runErr(t, sh, "chown root")
}

// TestCpPreservesLevel: DPFS-to-DPFS copy keeps the striping level and
// geometry rather than linearizing.
func TestCpPreservesLevel(t *testing.T) {
	sh, client := newShell(t)
	ctx := context.Background()
	f, err := client.Create("/md", 8, []int64{32, 32}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 32*32*8)
	if err := f.WriteSection(ctx, dpfs.FullSection([]int64{32, 32}), data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	run(t, sh, "cp /md /md2")
	out := run(t, sh, "stat /md2")
	if !strings.Contains(out, "level:     multidim") || !strings.Contains(out, "tile:      [8 8]") {
		t.Fatalf("copied stat = %q", out)
	}
	f2, err := client.Open("/md2")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := f2.ReadSection(ctx, dpfs.FullSection([]int64{32, 32}), buf); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if !bytes.Equal(buf, data) {
		t.Fatal("copied data mismatch")
	}
}

func TestTraceAndEventsCommands(t *testing.T) {
	sh, client := newShell(t)
	// Without tracing enabled the trace command must explain itself.
	if err := runErr(t, sh, "trace"); !strings.Contains(err.Error(), "tracing not enabled") {
		t.Fatalf("trace without -trace: %v", err)
	}
	client.Engine().EnableTracing(8)

	run(t, sh, "mkdir /d")
	if _, err := sh.Run(context.Background(), "cp local:"+writeLocal(t, "hello trace")+" /d/f"); err != nil {
		t.Fatal(err)
	}
	out := run(t, sh, "cat /d/f")
	if !strings.Contains(out, "hello trace") {
		t.Fatalf("cat = %q", out)
	}

	// The cat recorded a client.request trace with server.rpc children
	// stitched to server.request spans from the I/O servers.
	tr := run(t, sh, "trace")
	for _, want := range []string{"client.request", "server.rpc", "server.request"} {
		if !strings.Contains(tr, want) {
			t.Fatalf("trace output missing %q:\n%s", want, tr)
		}
	}
	// Selecting the last trace by its hex id renders the same tree.
	id := traceIDFromOutput(t, tr)
	if byID := run(t, sh, "trace "+id); !strings.Contains(byID, "client.request") {
		t.Fatalf("trace %s = %q", id, byID)
	}

	// No failures happened, so the event log is empty but well-formed.
	if out := run(t, sh, "events"); !strings.Contains(out, "no events recorded") {
		t.Fatalf("events = %q", out)
	}
	client.Engine().Events().Emit("failover", "client", map[string]string{"server": "io9"})
	out = run(t, sh, "events failover 5")
	if !strings.Contains(out, "failover") || !strings.Contains(out, "server=io9") {
		t.Fatalf("events failover = %q", out)
	}
}

// writeLocal drops content into a temp file and returns its path.
func writeLocal(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "local.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// traceIDFromOutput digs the 16-hex trace id out of the rendered
// "trace <id>" header line.
func traceIDFromOutput(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "trace "); ok && len(rest) >= 16 {
			return rest[:16]
		}
	}
	t.Fatalf("no trace id header in output:\n%s", out)
	return ""
}
