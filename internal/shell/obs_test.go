package shell

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStatsCommand(t *testing.T) {
	sh, _ := newShell(t)

	// A fresh session has no traffic and no latency samples.
	out := run(t, sh, "stats")
	if !strings.Contains(out, "requests:     0") || !strings.Contains(out, "no samples") {
		t.Fatalf("fresh stats output:\n%s", out)
	}

	// Import a file (client I/O), then stats must show the traffic.
	local := filepath.Join(t.TempDir(), "in.bin")
	if err := os.WriteFile(local, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, sh, "cp local:"+local+" /data.bin")

	out = run(t, sh, "stats")
	if strings.Contains(out, "requests:     0") {
		t.Fatalf("stats still zero after import:\n%s", out)
	}
	for _, want := range []string{"moved:", "useful:       8192 bytes", "p50", "p95", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestHelpMentionsStats(t *testing.T) {
	sh, _ := newShell(t)
	if out := run(t, sh, "help"); !strings.Contains(out, "stats") {
		t.Fatalf("help does not mention stats:\n%s", out)
	}
}
