// Package shell implements the DPFS user interface of Section 7: a set
// of UNIX-like commands (ls, pwd, cd, mkdir, rmdir, rm, stat, df, cp,
// cat) operating on DPFS files and directories, including data
// transfer between sequential (local) files and DPFS. The interactive
// binary cmd/dpfs-sh wraps this package; keeping the command engine
// here makes it testable.
package shell

import (
	"context"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"

	"dpfs"
	"dpfs/internal/cache"
	"dpfs/internal/core"
	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/repair"
	"dpfs/internal/stripe"
)

// Shell is one interactive session: a DPFS client plus a current
// working directory.
type Shell struct {
	client   *dpfs.Client
	cwd      string
	replicas int
}

// New builds a shell rooted at /.
func New(client *dpfs.Client) *Shell {
	return &Shell{client: client, cwd: "/"}
}

// SetReplicas sets the replication factor for files this shell
// creates (cp into DPFS). 0 keeps the engine default of one copy.
func (sh *Shell) SetReplicas(n int) { sh.replicas = n }

// Cwd returns the current working directory.
func (sh *Shell) Cwd() string { return sh.cwd }

// Run executes one command line and returns its output.
func (sh *Shell) Run(ctx context.Context, line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		return helpText, nil
	case "pwd":
		return sh.cwd + "\n", nil
	case "cd":
		return sh.cd(args)
	case "ls":
		return sh.ls(args)
	case "mkdir":
		return sh.mkdir(args)
	case "rmdir":
		return sh.rmdir(args)
	case "rm":
		return sh.rm(ctx, args)
	case "stat":
		return sh.stat(args)
	case "df":
		return sh.df()
	case "cp":
		return sh.cp(ctx, args)
	case "mv":
		return sh.mv(ctx, args)
	case "chmod":
		return sh.chmod(args)
	case "chown":
		return sh.chown(args)
	case "du":
		return sh.du()
	case "cat":
		return sh.cat(ctx, args)
	case "stats":
		return sh.stats()
	case "trace":
		return sh.trace(args)
	case "events":
		return sh.events(args)
	case "repair":
		return sh.repair(ctx)
	case "health":
		return sh.health()
	}
	return "", fmt.Errorf("dpfs-sh: unknown command %q (try help)", cmd)
}

const helpText = `DPFS shell commands:
  pwd                     print the working directory
  cd DIR                  change the working directory
  ls [PATH]               list a directory (d marks directories)
  mkdir DIR               create a directory
  rmdir DIR               remove an empty directory
  rm FILE                 remove a DPFS file (catalog + all subfiles)
  stat FILE               show a file's attributes and distribution
  df                      show registered I/O servers
  cp SRC DST              copy; prefix local files with local:
                          (local:a.bin /b imports, /b local:a.bin exports,
                           /a /b copies within DPFS)
  mv OLD NEW              rename/move a DPFS file
  chmod MODE FILE         set a file's permission (octal)
  chown OWNER FILE        set a file's owner
  du                      per-server file and brick usage
  cat FILE                print a DPFS file's bytes
  stats                   this client's traffic, cache and latency counters
  trace [N|ID]            render recent request traces (stitched across
                          processes; ID is a 16-hex-digit trace id)
  events [TYPE] [N]       recent cluster events (breaker, failover, repair...)
  repair                  probe servers and re-replicate lost brick copies
  health                  per-server health states from the catalog
  help                    this text
`

// resolve makes an argument absolute against the cwd.
func (sh *Shell) resolve(p string) string {
	if p == "" {
		return sh.cwd
	}
	if !strings.HasPrefix(p, "/") {
		p = path.Join(sh.cwd, p)
	}
	return path.Clean(p)
}

func one(args []string, usage string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("dpfs-sh: usage: %s", usage)
	}
	return args[0], nil
}

func (sh *Shell) cd(args []string) (string, error) {
	arg, err := one(args, "cd DIR")
	if err != nil {
		return "", err
	}
	p := sh.resolve(arg)
	ok, err := sh.client.IsDir(p)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("dpfs-sh: no such directory %s", p)
	}
	sh.cwd = p
	return "", nil
}

func (sh *Shell) ls(args []string) (string, error) {
	p := sh.cwd
	if len(args) == 1 {
		p = sh.resolve(args[0])
	} else if len(args) > 1 {
		return "", fmt.Errorf("dpfs-sh: usage: ls [PATH]")
	}
	dirs, files, err := sh.client.ReadDir(p)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, d := range dirs {
		fmt.Fprintf(&sb, "d %s/\n", d)
	}
	sort.Strings(files)
	for _, f := range files {
		fi, err := sh.client.Stat(path.Join(p, f))
		if err != nil {
			fmt.Fprintf(&sb, "- %s (?)\n", f)
			continue
		}
		fmt.Fprintf(&sb, "- %s  %d bytes  %s  %d servers\n", f, fi.Size, fi.Geometry.Level, len(fi.Servers))
	}
	return sb.String(), nil
}

func (sh *Shell) mkdir(args []string) (string, error) {
	arg, err := one(args, "mkdir DIR")
	if err != nil {
		return "", err
	}
	return "", sh.client.Mkdir(sh.resolve(arg))
}

func (sh *Shell) rmdir(args []string) (string, error) {
	arg, err := one(args, "rmdir DIR")
	if err != nil {
		return "", err
	}
	return "", sh.client.Rmdir(sh.resolve(arg))
}

func (sh *Shell) rm(ctx context.Context, args []string) (string, error) {
	arg, err := one(args, "rm FILE")
	if err != nil {
		return "", err
	}
	return "", sh.client.Remove(ctx, sh.resolve(arg))
}

func (sh *Shell) stat(args []string) (string, error) {
	arg, err := one(args, "stat FILE")
	if err != nil {
		return "", err
	}
	p := sh.resolve(arg)
	fi, err := sh.client.Stat(p)
	if err != nil {
		return "", err
	}
	g := fi.Geometry
	var sb strings.Builder
	fmt.Fprintf(&sb, "file:      %s\n", fi.Path)
	fmt.Fprintf(&sb, "owner:     %s\n", fi.Owner)
	fmt.Fprintf(&sb, "perm:      %o\n", fi.Perm)
	fmt.Fprintf(&sb, "size:      %d bytes\n", fi.Size)
	fmt.Fprintf(&sb, "level:     %s\n", g.Level)
	fmt.Fprintf(&sb, "dims:      %v (elem %d bytes)\n", g.Dims, g.ElemSize)
	switch g.Level {
	case stripe.LevelLinear:
		fmt.Fprintf(&sb, "brick:     %d bytes\n", g.BrickBytes)
	case stripe.LevelMultidim:
		fmt.Fprintf(&sb, "tile:      %v\n", g.Tile)
	case stripe.LevelArray:
		pat := make([]string, len(g.Pattern))
		for i, d := range g.Pattern {
			pat[i] = d.String()
		}
		fmt.Fprintf(&sb, "pattern:   (%s) grid %v\n", strings.Join(pat, ","), g.Grid)
	}
	fmt.Fprintf(&sb, "bricks:    %d\n", g.NumBricks())
	fmt.Fprintf(&sb, "placement: %s\n", fi.Placement)
	fmt.Fprintf(&sb, "replicas:  %d\n", fi.Replicas)
	return sb.String(), nil
}

func (sh *Shell) df() (string, error) {
	servers, err := sh.client.Servers()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-22s %10s %5s\n", "SERVER", "ADDR", "CAPACITY", "PERF")
	for _, s := range servers {
		fmt.Fprintf(&sb, "%-24s %-22s %10d %5d\n", s.Name, s.Addr, s.Capacity, s.Performance)
	}
	return sb.String(), nil
}

const localPrefix = "local:"

func (sh *Shell) cp(ctx context.Context, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("dpfs-sh: usage: cp SRC DST (prefix local files with %q)", localPrefix)
	}
	src, dst := args[0], args[1]
	srcLocal := strings.HasPrefix(src, localPrefix)
	dstLocal := strings.HasPrefix(dst, localPrefix)
	switch {
	case srcLocal && dstLocal:
		return "", fmt.Errorf("dpfs-sh: at least one side of cp must be a DPFS path")
	case srcLocal:
		return sh.importFile(ctx, strings.TrimPrefix(src, localPrefix), sh.resolve(dst))
	case dstLocal:
		return sh.exportFile(ctx, sh.resolve(src), strings.TrimPrefix(dst, localPrefix))
	default:
		return sh.copyWithin(ctx, sh.resolve(src), sh.resolve(dst))
	}
}

func (sh *Shell) importFile(ctx context.Context, local, dpfsPath string) (string, error) {
	f, err := os.Open(local)
	if err != nil {
		return "", err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	if err := sh.client.Import(ctx, f, dpfsPath, st.Size(), core.Hint{Replicas: sh.replicas}); err != nil {
		return "", err
	}
	return fmt.Sprintf("imported %d bytes to %s\n", st.Size(), dpfsPath), nil
}

func (sh *Shell) exportFile(ctx context.Context, dpfsPath, local string) (string, error) {
	f, err := os.Create(local)
	if err != nil {
		return "", err
	}
	if err := sh.client.Export(ctx, f, dpfsPath); err != nil {
		f.Close()
		os.Remove(local)
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	fi, err := sh.client.Stat(dpfsPath)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("exported %d bytes to %s\n", fi.Size, local), nil
}

// copyWithin copies a DPFS file to a new DPFS file with the same
// geometry (level, brick shape, HPF pattern), moving data in row-block
// sections.
func (sh *Shell) copyWithin(ctx context.Context, src, dst string) (string, error) {
	fi, err := sh.client.Stat(src)
	if err != nil {
		return "", err
	}
	g := fi.Geometry
	srcF, err := sh.client.Open(src)
	if err != nil {
		return "", err
	}
	defer srcF.Close()
	rep := sh.replicas
	if rep == 0 {
		rep = fi.Replicas // copies keep the source's replication
	}
	dstF, err := sh.client.Create(dst, g.ElemSize, g.Dims, core.Hint{
		Level:      g.Level,
		BrickBytes: g.BrickBytes,
		Tile:       g.Tile,
		Pattern:    g.Pattern,
		Grid:       g.Grid,
		Replicas:   rep,
	})
	if err != nil {
		return "", err
	}
	defer dstF.Close()

	rows := g.Dims[0]
	rowBytes := g.Size() / rows
	step := rows
	if rowBytes > 0 {
		if step = (1 << 20) / rowBytes; step < 1 {
			step = 1
		}
	}
	for r0 := int64(0); r0 < rows; r0 += step {
		n := step
		if rem := rows - r0; rem < n {
			n = rem
		}
		sec := stripe.FullSection(g.Dims)
		sec.Start[0] = r0
		sec.Count[0] = n
		buf := make([]byte, sec.Bytes(g.ElemSize))
		if err := srcF.ReadSection(ctx, sec, buf); err != nil {
			return "", err
		}
		if err := dstF.WriteSection(ctx, sec, buf); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("copied %d bytes to %s\n", fi.Size, dst), nil
}

func (sh *Shell) mv(ctx context.Context, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("dpfs-sh: usage: mv OLD NEW")
	}
	oldP, newP := sh.resolve(args[0]), sh.resolve(args[1])
	if err := sh.client.Rename(ctx, oldP, newP); err != nil {
		return "", err
	}
	return fmt.Sprintf("renamed %s -> %s\n", oldP, newP), nil
}

func (sh *Shell) chmod(args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("dpfs-sh: usage: chmod MODE FILE")
	}
	mode, err := strconv.ParseInt(args[0], 8, 32)
	if err != nil {
		return "", fmt.Errorf("dpfs-sh: bad octal mode %q", args[0])
	}
	return "", sh.client.Chmod(sh.resolve(args[1]), int(mode))
}

func (sh *Shell) chown(args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("dpfs-sh: usage: chown OWNER FILE")
	}
	return "", sh.client.Chown(sh.resolve(args[1]), args[0])
}

func (sh *Shell) du() (string, error) {
	usage, err := sh.client.Usage()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %8s %8s %10s %5s\n", "SERVER", "FILES", "BRICKS", "CAPACITY", "PERF")
	for _, u := range usage {
		fmt.Fprintf(&sb, "%-24s %8d %8d %10d %5d\n", u.Name, u.Files, u.Bricks, u.Capacity, u.Performance)
	}
	return sb.String(), nil
}

func (sh *Shell) cat(ctx context.Context, args []string) (string, error) {
	arg, err := one(args, "cat FILE")
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := sh.client.Export(ctx, &sb, sh.resolve(arg)); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// stats reports this client's own traffic counters and request
// latency distribution (Section 4.2's combined requests in action:
// moved vs. useful bytes shows the combination overhead).
func (sh *Shell) stats() (string, error) {
	st := sh.client.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests:     %d\n", st.Requests)
	fmt.Fprintf(&sb, "moved:        %d bytes\n", st.BytesTransferred)
	fmt.Fprintf(&sb, "useful:       %d bytes\n", st.BytesUseful)
	snap := sh.client.Engine().Metrics().Snapshot()
	if h, ok := snap.Histograms[core.MetricRequestLatency]; ok && h.Count > 0 {
		fmt.Fprintf(&sb, "latency:      p50 %dus  p95 %dus  p99 %dus  (n=%d)\n",
			h.P50, h.P95, h.P99, h.Count)
	} else {
		fmt.Fprintf(&sb, "latency:      no samples\n")
	}
	if snap.Counters[cache.MetricDataHits]+snap.Counters[cache.MetricDataMisses]+
		snap.Counters[cache.MetricMetaHits]+snap.Counters[cache.MetricMetaMisses] > 0 {
		fmt.Fprintf(&sb, "cache data:   %d hits  %d misses  %d prefetched  %d bytes held\n",
			snap.Counters[cache.MetricDataHits], snap.Counters[cache.MetricDataMisses],
			snap.Counters[cache.MetricPrefetch], snap.Gauges[cache.MetricDataBytes])
		fmt.Fprintf(&sb, "cache meta:   %d hits  %d misses\n",
			snap.Counters[cache.MetricMetaHits], snap.Counters[cache.MetricMetaMisses])
	}
	fmt.Fprintf(&sb, "replication:  %d failovers  %d degraded writes  %d failure reports\n",
		snap.Counters[core.MetricFailovers], snap.Counters[core.MetricDegradedWrites],
		snap.Counters[core.MetricFailureReports])
	if snap.Counters[repair.MetricFilesRepaired]+snap.Counters[repair.MetricFilesFailed] > 0 {
		fmt.Fprintf(&sb, "repair:       %d files repaired  %d brick copies  %d files failed\n",
			snap.Counters[repair.MetricFilesRepaired], snap.Counters[repair.MetricBricksCopied],
			snap.Counters[repair.MetricFilesFailed])
	}
	return sb.String(), nil
}

// trace renders recent request traces from the engine's trace log.
// Server-side spans arrive stitched into the client's trees via the
// response trace trailers, so the rendering shows the whole
// cross-process request: client root, per-server RPCs, and the
// servers' own handler and subfile spans.
func (sh *Shell) trace(args []string) (string, error) {
	log := sh.client.Engine().TraceLog()
	if log == nil {
		return "", fmt.Errorf("dpfs-sh: tracing not enabled (run with -trace)")
	}
	if len(args) > 1 {
		return "", fmt.Errorf("dpfs-sh: usage: trace [N|ID]")
	}
	if len(args) == 1 {
		// A 16-hex-digit argument addresses one trace by id.
		if id, err := strconv.ParseUint(args[0], 16, 64); err == nil && len(args[0]) == 16 {
			t := log.ByTraceID(id)
			if t == nil {
				return "", fmt.Errorf("dpfs-sh: no trace %s in the log", args[0])
			}
			return t.String(), nil
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return "", fmt.Errorf("dpfs-sh: usage: trace [N|ID]")
		}
		return renderTraces(log.Traces(), n), nil
	}
	t := log.Last()
	if t == nil {
		return "(no traces recorded)\n", nil
	}
	return t.String(), nil
}

// renderTraces prints the newest n traces, oldest of them first.
func renderTraces(ts []*obs.Trace, n int) string {
	if len(ts) == 0 {
		return "(no traces recorded)\n"
	}
	if n > len(ts) {
		n = len(ts)
	}
	var sb strings.Builder
	for _, t := range ts[len(ts)-n:] {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// events prints recent cluster events (breaker transitions, retry
// exhaustion, failovers, degraded writes, repair lifecycle, slow
// requests), newest last.
func (sh *Shell) events(args []string) (string, error) {
	log := sh.client.Engine().Events()
	evs := log.Events()
	n := 20
	switch len(args) {
	case 0:
	case 1:
		if v, err := strconv.Atoi(args[0]); err == nil && v > 0 {
			n = v
		} else {
			evs = log.ByType(args[0])
		}
	case 2:
		evs = log.ByType(args[0])
		v, err := strconv.Atoi(args[1])
		if err != nil || v < 1 {
			return "", fmt.Errorf("dpfs-sh: usage: events [TYPE] [N]")
		}
		n = v
	default:
		return "", fmt.Errorf("dpfs-sh: usage: events [TYPE] [N]")
	}
	if len(evs) == 0 {
		return "(no events recorded)\n", nil
	}
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	var sb strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&sb, "%6d %s %-18s %-10s", e.Seq, e.Time.Format("15:04:05.000"), e.Type, e.Component)
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if k == "trace" {
				continue // full trace renderings are for slow-request logs
			}
			fmt.Fprintf(&sb, " %s=%s", k, e.Fields[k])
		}
		if e.TraceID != 0 {
			fmt.Fprintf(&sb, " trace=%016x", e.TraceID)
		}
		sb.WriteByte('\n')
	}
	if d := log.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "(%d older events dropped)\n", d)
	}
	return sb.String(), nil
}

// repair runs one online-repair pass: probe every server, record
// health, and re-replicate bricks that lost copies to dead servers.
func (sh *Shell) repair(ctx context.Context) (string, error) {
	rep, err := sh.client.Repair(ctx)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	names := make([]string, 0, len(rep.Alive))
	for n := range rep.Alive {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		state := "alive"
		if !rep.Alive[n] {
			state = "DOWN"
		}
		fmt.Fprintf(&sb, "server %-24s %s\n", n, state)
	}
	fmt.Fprintf(&sb, "files: %d checked  %d intact  %d repaired  %d failed\n",
		rep.Checked, rep.Intact, rep.Repaired, rep.Failed)
	for _, f := range rep.Files {
		if f.Err != "" {
			fmt.Fprintf(&sb, "  %s: FAILED: %s\n", f.Path, f.Err)
			continue
		}
		fmt.Fprintf(&sb, "  %s: %d lost copies, %d re-replicated (gen %d)\n",
			f.Path, f.LostReplicas, f.CopiedBricks, f.NewGen)
	}
	return sb.String(), nil
}

// health prints the catalog's per-server health table.
func (sh *Shell) health() (string, error) {
	rows, err := sh.client.ServerHealth()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-8s %5s\n", "SERVER", "STATE", "FAILS")
	for _, h := range rows {
		fmt.Fprintf(&sb, "%-24s %-8s %5d\n", h.Name, h.State, h.Fails)
	}
	if len(rows) == 0 {
		sb.WriteString("(no health records; run repair or report a failure first)\n")
	}
	return sb.String(), nil
}

// EnsureDirs makes every directory on path (mkdir -p), ignoring
// already-existing components.
func EnsureDirs(client *dpfs.Client, p string) error {
	clean, err := meta.CleanPath(p)
	if err != nil {
		return err
	}
	if clean == "/" {
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(clean, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		ok, err := client.IsDir(cur)
		if err != nil {
			return err
		}
		if ok {
			continue
		}
		if err := client.Mkdir(cur); err != nil {
			return err
		}
	}
	return nil
}
