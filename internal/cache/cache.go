// Package cache implements the DPFS client-side caches: a metadata
// cache that lets Open/Stat skip the metadata database on the hot path,
// and a bounded brick data cache that serves repeated reads locally.
//
// DPFS keeps every file attribute and distribution row in relational
// tables reached over the network (Section 5 of the paper), so an
// uncached client pays a metadb round trip per Open and re-fetches
// bricks it was just served. Both caches are private to one client
// engine (one core.FS): entries expire on a TTL and are explicitly
// invalidated by the operations of the owning client (create, remove,
// rename, overlapping writes). There is no cross-client coherence
// protocol — a concurrent writer in another process is detected by the
// distribution-row generation check (see internal/server and DESIGN.md
// §9), not hidden by the cache.
//
// The data cache is an LRU bounded by bytes. Entries are whole bricks
// keyed by (path, generation, brick index); fills are guarded by an
// invalidation token so a read racing an overlapping write can never
// install pre-write bytes after the write's invalidation ran.
package cache

import (
	"container/list"
	"sync"
	"time"

	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// Cache metric names, registered in the owning engine's obs.Registry.
const (
	// MetricMetaHits counts metadata lookups served from cache.
	MetricMetaHits = "cache_meta_hits_total"
	// MetricMetaMisses counts metadata lookups that went to the catalog.
	MetricMetaMisses = "cache_meta_misses_total"
	// MetricMetaInvalidations counts explicit metadata invalidations.
	MetricMetaInvalidations = "cache_meta_invalidations_total"
	// MetricDataHits counts bricks served from the data cache.
	MetricDataHits = "cache_data_hits_total"
	// MetricDataMisses counts bricks that had to travel the network.
	MetricDataMisses = "cache_data_misses_total"
	// MetricDataEvictions counts bricks evicted by the LRU byte budget.
	MetricDataEvictions = "cache_data_evictions_total"
	// MetricDataBytes gauges the bytes currently held by the data cache.
	MetricDataBytes = "cache_data_bytes"
	// MetricPrefetch counts bricks fetched by readahead.
	MetricPrefetch = "cache_prefetch_total"
)

// Meta caches catalog lookups: file records (attributes plus the
// brick→server assignment of the distribution rows) and the DPFS-SERVER
// registry. Entries expire ttl after insertion; the owning engine
// invalidates eagerly on its own create/remove/rename. Safe for
// concurrent use.
type Meta struct {
	ttl time.Duration
	now func() time.Time // injectable clock for TTL tests

	mu      sync.Mutex
	reg     *obs.Registry
	files   map[string]fileEntry
	servers map[string]serverEntry
	list    *listEntry // cached full server listing
}

type fileEntry struct {
	fi      meta.FileInfo
	rs      *stripe.ReplicaSet
	expires time.Time
}

type serverEntry struct {
	si      meta.ServerInfo
	expires time.Time
}

type listEntry struct {
	infos   []meta.ServerInfo
	expires time.Time
}

// NewMeta builds a metadata cache with the given TTL. reg receives the
// hit/miss/invalidation counters; nil uses a private registry.
func NewMeta(ttl time.Duration, reg *obs.Registry) *Meta {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Meta{
		ttl:     ttl,
		now:     time.Now,
		reg:     reg,
		files:   make(map[string]fileEntry),
		servers: make(map[string]serverEntry),
	}
}

// SetMetrics redirects the cache's counters to reg (the engine forwards
// its own SetMetrics so shared bench registries see cache traffic).
func (m *Meta) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	m.reg = reg
	m.mu.Unlock()
}

// GetFile returns a cached file record. The FileInfo and replica set
// are shared, not copied: callers must treat them as immutable, exactly
// as they treat a catalog LookupReplicated result.
func (m *Meta) GetFile(path string) (meta.FileInfo, *stripe.ReplicaSet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.files[path]
	if !ok || m.now().After(e.expires) {
		if ok {
			delete(m.files, path)
		}
		m.reg.Counter(MetricMetaMisses).Inc()
		return meta.FileInfo{}, nil, false
	}
	m.reg.Counter(MetricMetaHits).Inc()
	return e.fi, e.rs, true
}

// PutFile caches a file record under fi.Path.
func (m *Meta) PutFile(fi meta.FileInfo, rs *stripe.ReplicaSet) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[fi.Path] = fileEntry{fi: fi, rs: rs, expires: m.now().Add(m.ttl)}
}

// InvalidateFile drops a path's cached record (create, remove, rename,
// resize).
func (m *Meta) InvalidateFile(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok {
		delete(m.files, path)
		m.reg.Counter(MetricMetaInvalidations).Inc()
	}
}

// GetServer returns a cached DPFS-SERVER row.
func (m *Meta) GetServer(name string) (meta.ServerInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.servers[name]
	if !ok || m.now().After(e.expires) {
		if ok {
			delete(m.servers, name)
		}
		m.reg.Counter(MetricMetaMisses).Inc()
		return meta.ServerInfo{}, false
	}
	m.reg.Counter(MetricMetaHits).Inc()
	return e.si, true
}

// PutServer caches one DPFS-SERVER row.
func (m *Meta) PutServer(si meta.ServerInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.servers[si.Name] = serverEntry{si: si, expires: m.now().Add(m.ttl)}
}

// GetServers returns the cached full server listing.
func (m *Meta) GetServers() ([]meta.ServerInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.list == nil || m.now().After(m.list.expires) {
		m.list = nil
		m.reg.Counter(MetricMetaMisses).Inc()
		return nil, false
	}
	m.reg.Counter(MetricMetaHits).Inc()
	return m.list.infos, true
}

// PutServers caches the full server listing (and each row).
func (m *Meta) PutServers(infos []meta.ServerInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	exp := m.now().Add(m.ttl)
	m.list = &listEntry{infos: infos, expires: exp}
	for _, si := range infos {
		m.servers[si.Name] = serverEntry{si: si, expires: exp}
	}
}

// BrickKey identifies one cached brick: the file path, the file's
// distribution generation (so a recreated file can never alias its
// predecessor's bytes), and the brick index.
type BrickKey struct {
	Path  string
	Gen   int64
	Brick int
}

// Data is the brick data cache: an LRU over whole bricks, bounded by a
// byte budget. Get returns the cached slice itself (never mutated after
// insertion), so hits copy once into the caller's buffer and nothing
// else. Safe for concurrent use.
type Data struct {
	capacity int64

	mu   sync.Mutex
	reg  *obs.Registry
	size int64
	lru  *list.List // front = most recent; values are *dataEntry
	m    map[BrickKey]*list.Element

	// Fill poisoning: seq counts invalidations; a fill's token is the
	// seq observed before its network fetch began, and Put refuses the
	// fill when its key was invalidated after that point. poison maps
	// key → seq of its last invalidation; when it grows past poisonMax
	// it is cleared and clearSeq advances, which rejects every fill
	// older than the clear (over-rejection is safe, staleness is not).
	seq      uint64
	clearSeq uint64
	poison   map[BrickKey]uint64
}

type dataEntry struct {
	key  BrickKey
	data []byte
}

// poisonMax bounds the poison map; see the field comment on Data.
const poisonMax = 1 << 16

// NewData builds a data cache bounded to capacity bytes. reg receives
// the hit/miss/eviction counters and the byte gauge; nil uses a private
// registry.
func NewData(capacity int64, reg *obs.Registry) *Data {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Data{
		capacity: capacity,
		reg:      reg,
		lru:      list.New(),
		m:        make(map[BrickKey]*list.Element),
		poison:   make(map[BrickKey]uint64),
	}
}

// SetMetrics redirects the cache's counters to reg.
func (d *Data) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.mu.Lock()
	d.reg = reg
	d.mu.Unlock()
}

// Get returns the cached brick and promotes it. The returned slice is
// owned by the cache and must only be read.
func (d *Data) Get(k BrickKey) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.m[k]
	if !ok {
		d.reg.Counter(MetricDataMisses).Inc()
		return nil, false
	}
	d.lru.MoveToFront(el)
	d.reg.Counter(MetricDataHits).Inc()
	return el.Value.(*dataEntry).data, true
}

// Token snapshots the invalidation sequence. Take one before starting a
// network fetch and hand it to Put with the fetched bytes.
func (d *Data) Token() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Put inserts a copy of data under k, evicting LRU entries to stay
// within the byte budget. The fill is dropped (returning false) when k
// was invalidated after tok was taken — the fetched bytes may predate
// an acknowledged overlapping write — or when data alone exceeds the
// whole budget.
func (d *Data) Put(k BrickKey, data []byte, tok uint64) bool {
	n := int64(len(data))
	if n == 0 || n > d.capacity {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if tok < d.clearSeq {
		return false
	}
	if s, ok := d.poison[k]; ok && s > tok {
		return false
	}
	if el, ok := d.m[k]; ok {
		// Replace in place (a concurrent fill of the same brick).
		e := el.Value.(*dataEntry)
		d.size += n - int64(len(e.data))
		e.data = append([]byte(nil), data...)
		d.lru.MoveToFront(el)
	} else {
		e := &dataEntry{key: k, data: append([]byte(nil), data...)}
		d.m[k] = d.lru.PushFront(e)
		d.size += n
	}
	for d.size > d.capacity {
		back := d.lru.Back()
		if back == nil {
			break
		}
		d.removeLocked(back)
		d.reg.Counter(MetricDataEvictions).Inc()
	}
	d.reg.Gauge(MetricDataBytes).Set(d.size)
	return true
}

// Invalidate drops one brick and poisons its in-flight fills.
func (d *Data) Invalidate(k BrickKey) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.invalidateLocked(k)
	d.reg.Gauge(MetricDataBytes).Set(d.size)
}

// InvalidatePath drops every cached brick of a path (any generation)
// and poisons their in-flight fills.
func (d *Data) InvalidatePath(path string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var victims []BrickKey
	for el := d.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*dataEntry); e.key.Path == path {
			victims = append(victims, e.key)
		}
	}
	for _, k := range victims {
		d.invalidateLocked(k)
	}
	// Poison fills of bricks not currently cached too: a remove/rename
	// may race a fill of a brick evicted moments ago. Bumping seq and
	// clearing from clearSeq forward rejects every fill started before
	// this call, for any key — coarse, but path-wide invalidations are
	// rare (remove, rename) and over-rejection only costs a refetch.
	d.seq++
	d.clearSeq = d.seq
	d.poison = make(map[BrickKey]uint64)
	d.reg.Gauge(MetricDataBytes).Set(d.size)
}

func (d *Data) invalidateLocked(k BrickKey) {
	d.seq++
	d.poison[k] = d.seq
	if len(d.poison) > poisonMax {
		d.poison = make(map[BrickKey]uint64)
		d.clearSeq = d.seq
	}
	if el, ok := d.m[k]; ok {
		d.removeLocked(el)
	}
}

func (d *Data) removeLocked(el *list.Element) {
	e := el.Value.(*dataEntry)
	d.lru.Remove(el)
	delete(d.m, e.key)
	d.size -= int64(len(e.data))
}

// Len reports the number of cached bricks.
func (d *Data) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}

// Bytes reports the bytes currently cached.
func (d *Data) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}
