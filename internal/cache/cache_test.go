package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// testReplicaSet builds an unreplicated layout over two servers for
// the four-brick test file.
func testReplicaSet(t *testing.T) *stripe.ReplicaSet {
	t.Helper()
	lists := stripe.ReplicaLists([][]int{{0}, {1}, {0}, {1}}, 2)
	rs, err := stripe.ReplicaSetFromLists(lists, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestMetaTTLAndInvalidation(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewMeta(time.Second, nil)
	m.now = func() time.Time { return now }

	fi := meta.FileInfo{Path: "/a", Size: 42, Generation: 7}
	rs := testReplicaSet(t)
	m.PutFile(fi, rs)

	got, gotRS, ok := m.GetFile("/a")
	if !ok || got.Size != 42 || got.Generation != 7 || gotRS == nil || len(gotRS.Primary()) != 4 {
		t.Fatalf("GetFile = %+v %v %v, want cached entry", got, gotRS, ok)
	}

	// Not yet expired at exactly ttl.
	now = now.Add(time.Second)
	if _, _, ok := m.GetFile("/a"); !ok {
		t.Fatal("entry expired at exactly ttl; want expiry only after ttl")
	}
	// Expired past ttl.
	now = now.Add(time.Nanosecond)
	if _, _, ok := m.GetFile("/a"); ok {
		t.Fatal("entry survived past ttl")
	}

	m.PutFile(fi, rs)
	m.InvalidateFile("/a")
	if _, _, ok := m.GetFile("/a"); ok {
		t.Fatal("entry survived InvalidateFile")
	}
}

func TestMetaServerCaching(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewMeta(time.Second, nil)
	m.now = func() time.Time { return now }

	infos := []meta.ServerInfo{
		{Name: "a", Addr: "1:1"},
		{Name: "b", Addr: "2:2"},
	}
	m.PutServers(infos)

	if got, ok := m.GetServers(); !ok || len(got) != 2 {
		t.Fatalf("GetServers = %v %v", got, ok)
	}
	// PutServers also seeds the per-name cache.
	if si, ok := m.GetServer("b"); !ok || si.Addr != "2:2" {
		t.Fatalf("GetServer(b) = %+v %v", si, ok)
	}
	now = now.Add(2 * time.Second)
	if _, ok := m.GetServers(); ok {
		t.Fatal("server list survived past ttl")
	}
	if _, ok := m.GetServer("a"); ok {
		t.Fatal("server row survived past ttl")
	}
}

func TestMetaMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMeta(time.Minute, reg)
	m.PutFile(meta.FileInfo{Path: "/x"}, nil)
	m.GetFile("/x")    // hit
	m.GetFile("/y")    // miss
	m.InvalidateFile("/x")
	m.InvalidateFile("/x") // no-op: already gone
	if got := reg.Counter(MetricMetaHits).Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := reg.Counter(MetricMetaMisses).Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := reg.Counter(MetricMetaInvalidations).Value(); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
}

func key(path string, brick int) BrickKey {
	return BrickKey{Path: path, Gen: 1, Brick: brick}
}

func TestDataLRUEvictionByBytes(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewData(100, reg)
	blob := func(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

	for i := 0; i < 4; i++ { // 4 x 25 = 100 bytes: exactly at budget
		if !d.Put(key("/f", i), blob(byte(i), 25), d.Token()) {
			t.Fatalf("Put brick %d rejected", i)
		}
	}
	if d.Len() != 4 || d.Bytes() != 100 {
		t.Fatalf("Len=%d Bytes=%d, want 4/100", d.Len(), d.Bytes())
	}

	// Touch brick 0 so brick 1 is LRU, then overflow.
	if _, ok := d.Get(key("/f", 0)); !ok {
		t.Fatal("brick 0 missing")
	}
	if !d.Put(key("/f", 4), blob(4, 25), d.Token()) {
		t.Fatal("Put brick 4 rejected")
	}
	if _, ok := d.Get(key("/f", 1)); ok {
		t.Fatal("LRU brick 1 not evicted")
	}
	if _, ok := d.Get(key("/f", 0)); !ok {
		t.Fatal("recently used brick 0 evicted")
	}
	if got := reg.Counter(MetricDataEvictions).Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if d.Bytes() != 100 {
		t.Errorf("Bytes = %d, want 100", d.Bytes())
	}

	// An entry bigger than the whole budget is refused outright.
	if d.Put(key("/f", 9), blob(9, 101), d.Token()) {
		t.Fatal("oversized entry accepted")
	}
	// Replacing an entry in place adjusts accounting.
	if !d.Put(key("/f", 0), blob(7, 50), d.Token()) {
		t.Fatal("replacement rejected")
	}
	if got, _ := d.Get(key("/f", 0)); len(got) != 50 || got[0] != 7 {
		t.Fatalf("replacement not visible: len=%d", len(got))
	}
}

func TestDataPutCopies(t *testing.T) {
	d := NewData(1024, nil)
	src := []byte{1, 2, 3}
	d.Put(key("/f", 0), src, d.Token())
	src[0] = 99
	got, ok := d.Get(key("/f", 0))
	if !ok || got[0] != 1 {
		t.Fatalf("cache aliased caller buffer: %v %v", got, ok)
	}
}

func TestDataInvalidatePoisonsInflightFill(t *testing.T) {
	d := NewData(1024, nil)
	k := key("/f", 3)

	// A fill takes its token, then an overlapping write invalidates
	// while the read RPC is "in flight": the late Put must be dropped.
	tok := d.Token()
	d.Invalidate(k)
	if d.Put(k, []byte("stale"), tok) {
		t.Fatal("poisoned fill accepted")
	}
	if _, ok := d.Get(k); ok {
		t.Fatal("stale data cached")
	}

	// A fill whose token postdates the invalidation is fine.
	tok = d.Token()
	if !d.Put(k, []byte("fresh"), tok) {
		t.Fatal("fresh fill rejected")
	}

	// Invalidation also removes an already-cached entry (the other
	// ordering of the same race).
	d.Invalidate(k)
	if _, ok := d.Get(k); ok {
		t.Fatal("invalidated entry still served")
	}
}

func TestDataInvalidatePathDropsAllGenerations(t *testing.T) {
	d := NewData(1024, nil)
	d.Put(BrickKey{Path: "/f", Gen: 1, Brick: 0}, []byte("a"), d.Token())
	d.Put(BrickKey{Path: "/f", Gen: 2, Brick: 1}, []byte("b"), d.Token())
	d.Put(BrickKey{Path: "/g", Gen: 1, Brick: 0}, []byte("c"), d.Token())

	tok := d.Token() // in-flight fill for an uncached brick of /f
	d.InvalidatePath("/f")

	if _, ok := d.Get(BrickKey{Path: "/f", Gen: 1, Brick: 0}); ok {
		t.Fatal("gen-1 brick survived path invalidation")
	}
	if _, ok := d.Get(BrickKey{Path: "/f", Gen: 2, Brick: 1}); ok {
		t.Fatal("gen-2 brick survived path invalidation")
	}
	if _, ok := d.Get(BrickKey{Path: "/g", Gen: 1, Brick: 0}); !ok {
		t.Fatal("unrelated path dropped")
	}
	// Path invalidation poisons every older fill, even of uncached keys.
	if d.Put(BrickKey{Path: "/f", Gen: 1, Brick: 9}, []byte("z"), tok) {
		t.Fatal("pre-invalidation fill accepted after InvalidatePath")
	}
}

func TestDataPoisonMapBounded(t *testing.T) {
	d := NewData(1<<20, nil)
	tok := d.Token()
	for i := 0; i < poisonMax+10; i++ {
		d.Invalidate(key("/f", i))
	}
	if len(d.poison) > poisonMax {
		t.Fatalf("poison map grew to %d", len(d.poison))
	}
	// After the clear, old tokens are rejected wholesale.
	if d.Put(key("/g", 0), []byte("x"), tok) {
		t.Fatal("pre-clear token accepted")
	}
	if !d.Put(key("/g", 0), []byte("x"), d.Token()) {
		t.Fatal("fresh token rejected")
	}
}

// TestDataRace hammers Get/Put/Invalidate concurrently; run under
// -race this checks the locking, and afterwards we check the byte
// accounting is still exact.
func TestDataRace(t *testing.T) {
	d := NewData(4096, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(fmt.Sprintf("/f%d", g%4), i%32)
				switch i % 3 {
				case 0:
					d.Put(k, bytes.Repeat([]byte{byte(i)}, 64), d.Token())
				case 1:
					d.Get(k)
				default:
					if i%30 == 2 {
						d.InvalidatePath(fmt.Sprintf("/f%d", g%4))
					} else {
						d.Invalidate(k)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var want int64
	d.mu.Lock()
	for el := d.lru.Front(); el != nil; el = el.Next() {
		want += int64(len(el.Value.(*dataEntry).data))
	}
	got := d.size
	d.mu.Unlock()
	if got != want {
		t.Fatalf("size accounting drifted: size=%d, sum=%d", got, want)
	}
	if got > 4096 {
		t.Fatalf("over budget: %d", got)
	}
}
