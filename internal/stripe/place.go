package stripe

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Placement assigns bricks to I/O servers when a file is created.
type Placement interface {
	// Assign returns, for each of numBricks bricks, the index of the
	// server that stores it.
	Assign(numBricks, numServers int) ([]int, error)
	// Name identifies the algorithm in the catalog.
	Name() string
}

// RoundRobin is the straightforward striping algorithm: brick i goes to
// server i mod numServers (Fig. 3).
type RoundRobin struct{}

// Name implements Placement.
func (RoundRobin) Name() string { return "round-robin" }

// Assign implements Placement.
func (RoundRobin) Assign(numBricks, numServers int) ([]int, error) {
	if numServers <= 0 {
		return nil, errors.New("stripe: need at least one server")
	}
	out := make([]int, numBricks)
	for i := range out {
		out[i] = i % numServers
	}
	return out, nil
}

// Greedy is the load-balancing striping algorithm of Fig. 8. Each
// server has a normalized performance number Perf[k]: the access time
// for one brick relative to the fastest server (fastest = 1, slower
// servers larger). Brick i is assigned to the server k minimizing the
// accumulated cost A[k]+Perf[k]; ties prefer the faster (smaller Perf)
// server, then the lower index. With Perf = [1,2,1,2] this reproduces
// the distribution of Fig. 9 / Fig. 10 exactly.
type Greedy struct {
	// Perf holds one normalized performance number per server,
	// Perf[k] >= 1.
	Perf []int
}

// Name implements Placement.
func (Greedy) Name() string { return "greedy" }

// Assign implements Placement.
func (g Greedy) Assign(numBricks, numServers int) ([]int, error) {
	if numServers <= 0 {
		return nil, errors.New("stripe: need at least one server")
	}
	if len(g.Perf) != numServers {
		return nil, fmt.Errorf("stripe: greedy placement has %d performance numbers for %d servers",
			len(g.Perf), numServers)
	}
	for k, p := range g.Perf {
		if p < 1 {
			return nil, fmt.Errorf("stripe: performance number of server %d must be >= 1, got %d", k, p)
		}
	}
	acc := make([]int64, numServers)
	out := make([]int, numBricks)
	for i := 0; i < numBricks; i++ {
		best := 0
		bestScore := acc[0] + int64(g.Perf[0])
		for k := 1; k < numServers; k++ {
			score := acc[k] + int64(g.Perf[k])
			if score < bestScore || (score == bestScore && g.Perf[k] < g.Perf[best]) {
				best, bestScore = k, score
			}
		}
		out[i] = best
		acc[best] += int64(g.Perf[best])
	}
	return out, nil
}

// BrickLists converts a brick→server assignment into per-server brick
// lists (the bricklist attribute of DPFS-FILE-DISTRIBUTION), preserving
// ascending brick order within each list.
func BrickLists(assign []int, numServers int) [][]int {
	lists := make([][]int, numServers)
	for b, s := range assign {
		lists[s] = append(lists[s], b)
	}
	return lists
}

// LocalIndex builds, from a brick→server assignment, the map from brick
// id to its position within its server's bricklist. Brick b of a file
// is stored at byte offset LocalIndex[b]*SlotBytes in its server's
// subfile.
func LocalIndex(assign []int) []int64 {
	next := make(map[int]int64)
	out := make([]int64, len(assign))
	for b, s := range assign {
		out[b] = next[s]
		next[s]++
	}
	return out
}

// FormatBrickList renders a brick list the way Fig. 10 stores it in the
// catalog: comma-separated brick ids ("0,2,6,8,...").
func FormatBrickList(bricks []int) string {
	var sb strings.Builder
	for i, b := range bricks {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(b))
	}
	return sb.String()
}

// ParseBrickList parses the catalog representation produced by
// FormatBrickList.
func ParseBrickList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("stripe: bad brick list entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// AssignmentFromLists reconstructs the brick→server assignment from
// per-server brick lists, validating that every brick in [0,numBricks)
// appears exactly once.
func AssignmentFromLists(lists [][]int, numBricks int) ([]int, error) {
	out := make([]int, numBricks)
	seen := make([]bool, numBricks)
	for s, list := range lists {
		for _, b := range list {
			if b < 0 || b >= numBricks {
				return nil, fmt.Errorf("stripe: brick %d out of range [0,%d)", b, numBricks)
			}
			if seen[b] {
				return nil, fmt.Errorf("stripe: brick %d assigned twice", b)
			}
			seen[b] = true
			out[b] = s
		}
	}
	for b, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("stripe: brick %d unassigned", b)
		}
	}
	return out, nil
}
