package stripe

import (
	"bytes"
	"fmt"
	"testing"
)

// brickStore is an in-memory brick storage used to validate plans: it
// applies write plans from a packed buffer and serves read plans into a
// packed buffer, byte-for-byte like the real servers do.
type brickStore struct {
	g      *Geometry
	bricks map[int][]byte
}

func newBrickStore(g *Geometry) *brickStore {
	return &brickStore{g: g, bricks: make(map[int][]byte)}
}

func (st *brickStore) brick(b int) []byte {
	buf, ok := st.bricks[b]
	if !ok {
		buf = make([]byte, st.g.BrickBytesOf(b))
		st.bricks[b] = buf
	}
	return buf
}

func (st *brickStore) write(plan []BrickIO, packed []byte) {
	for _, bio := range plan {
		buf := st.brick(bio.Brick)
		for _, s := range bio.Segs {
			copy(buf[s.BrickOff:s.BrickOff+s.Len], packed[s.MemOff:s.MemOff+s.Len])
		}
	}
}

func (st *brickStore) read(plan []BrickIO, packed []byte) {
	for _, bio := range plan {
		buf := st.brick(bio.Brick)
		for _, s := range bio.Segs {
			copy(packed[s.MemOff:s.MemOff+s.Len], buf[s.BrickOff:s.BrickOff+s.Len])
		}
	}
}

// fillPattern writes a deterministic byte pattern derived from the
// global element index, so any misplaced byte is detected.
func arrayBytes(dims []int64, elemSize int64) []byte {
	n := prod(dims) * elemSize
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i/251 + 13)
	}
	return out
}

// extractSection copies the section out of a full row-major array
// buffer, producing the packed reference buffer.
func extractSection(full []byte, dims []int64, sec Section, elemSize int64) []byte {
	out := make([]byte, sec.Bytes(elemSize))
	nd := len(dims)
	runBytes := sec.Count[nd-1] * elemSize
	mem := int64(0)
	abs := make([]int64, nd)
	_ = iterOuter(sec.Count, func(pos []int64) error {
		for d := 0; d < nd; d++ {
			abs[d] = sec.Start[d] + pos[d]
		}
		off := rowMajorOffset(abs, dims) * elemSize
		copy(out[mem:mem+runBytes], full[off:off+runBytes])
		mem += runBytes
		return nil
	})
	return out
}

// roundtripSection writes the full array through the geometry's plan,
// then reads back the given section and compares with the reference.
func roundtripSection(t *testing.T, g *Geometry, sec Section) {
	t.Helper()
	full := arrayBytes(g.Dims, g.ElemSize)
	st := newBrickStore(g)

	fullPlan, err := g.PlanSection(FullSection(g.Dims))
	if err != nil {
		t.Fatalf("PlanSection(full): %v", err)
	}
	st.write(fullPlan, full)

	plan, err := g.PlanSection(sec)
	if err != nil {
		t.Fatalf("PlanSection(%v): %v", sec, err)
	}
	got := make([]byte, sec.Bytes(g.ElemSize))
	st.read(plan, got)

	want := extractSection(full, g.Dims, sec, g.ElemSize)
	if !bytes.Equal(got, want) {
		t.Fatalf("level=%v section %v: read data mismatch", g.Level, sec)
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{LevelLinear: "linear", LevelMultidim: "multidim", LevelArray: "array", Level(9): "Level(9)"}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
	for _, name := range []string{"linear", "multidim", "array"} {
		l, err := ParseLevel(name)
		if err != nil || l.String() != name {
			t.Errorf("ParseLevel(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("ParseLevel(bogus) should fail")
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
		ok   bool
	}{
		{"linear ok", Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{64}, BrickBytes: 8}, true},
		{"linear no brick", Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{64}}, false},
		{"zero elem", Geometry{Level: LevelLinear, Dims: []int64{64}, BrickBytes: 8}, false},
		{"no dims", Geometry{Level: LevelLinear, ElemSize: 1, BrickBytes: 8}, false},
		{"neg dim", Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{-4}, BrickBytes: 8}, false},
		{"multidim ok", Geometry{Level: LevelMultidim, ElemSize: 4, Dims: []int64{8, 8}, Tile: []int64{2, 2}}, true},
		{"multidim rank", Geometry{Level: LevelMultidim, ElemSize: 4, Dims: []int64{8, 8}, Tile: []int64{2}}, false},
		{"multidim zero tile", Geometry{Level: LevelMultidim, ElemSize: 4, Dims: []int64{8, 8}, Tile: []int64{2, 0}}, false},
		{"array ok", Geometry{Level: LevelArray, ElemSize: 8, Dims: []int64{8, 8},
			Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{4, 1}}, true},
		{"array bad grid", Geometry{Level: LevelArray, ElemSize: 8, Dims: []int64{8, 8},
			Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{0, 1}}, false},
		{"array grid too big", Geometry{Level: LevelArray, ElemSize: 8, Dims: []int64{8, 8},
			Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{16, 1}}, false},
		{"array rank", Geometry{Level: LevelArray, ElemSize: 8, Dims: []int64{8, 8},
			Pattern: []Dist{DistBlock}, Grid: []int64{4}}, false},
		{"bad level", Geometry{Level: Level(77), ElemSize: 1, Dims: []int64{4}}, false},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestRoundRobinFigure3 reproduces Fig. 3: a 32-brick DPFS file striped
// across four I/O devices by round-robin.
func TestRoundRobinFigure3(t *testing.T) {
	assign, err := RoundRobin{}.Assign(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	lists := BrickLists(assign, 4)
	want := [][]int{
		{0, 4, 8, 12, 16, 20, 24, 28},
		{1, 5, 9, 13, 17, 21, 25, 29},
		{2, 6, 10, 14, 18, 22, 26, 30},
		{3, 7, 11, 15, 19, 23, 27, 31},
	}
	for s := range want {
		if fmt.Sprint(lists[s]) != fmt.Sprint(want[s]) {
			t.Errorf("server %d bricklist = %v, want %v", s, lists[s], want[s])
		}
	}
}

// TestGreedyFigure9 reproduces Fig. 9 / the DPFS-FILE-DISTRIBUTION rows
// of Fig. 10: with normalized performance numbers [1,2,1,2] the greedy
// algorithm gives the fast servers (0 and 2) bricks {0,2,6,8,...} and
// {1,3,7,9,...} and the slow servers {4,10,16,22,28} and
// {5,11,17,23,29}.
func TestGreedyFigure9(t *testing.T) {
	assign, err := Greedy{Perf: []int{1, 2, 1, 2}}.Assign(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	lists := BrickLists(assign, 4)
	want := [][]int{
		{0, 2, 6, 8, 12, 14, 18, 20, 24, 26, 30},
		{4, 10, 16, 22, 28},
		{1, 3, 7, 9, 13, 15, 19, 21, 25, 27, 31},
		{5, 11, 17, 23, 29},
	}
	for s := range want {
		if fmt.Sprint(lists[s]) != fmt.Sprint(want[s]) {
			t.Errorf("server %d bricklist = %v, want %v", s, lists[s], want[s])
		}
	}
}

// TestGreedyHomogeneous: with equal performance numbers greedy must
// degrade to round-robin.
func TestGreedyHomogeneous(t *testing.T) {
	assign, err := Greedy{Perf: []int{1, 1, 1, 1}}.Assign(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := RoundRobin{}.Assign(64, 4)
	for b := range assign {
		if assign[b] != rr[b] {
			t.Fatalf("brick %d: greedy %d != round-robin %d", b, assign[b], rr[b])
		}
	}
}

// TestGreedyRatio: the paper's Fig. 13 setup — class 1 is 3x faster
// than class 3 — must hand the fast half about 3x the bricks.
func TestGreedyRatio(t *testing.T) {
	perf := []int{1, 1, 1, 1, 3, 3, 3, 3}
	assign, err := Greedy{Perf: perf}.Assign(960, 8)
	if err != nil {
		t.Fatal(err)
	}
	lists := BrickLists(assign, 8)
	fast, slow := len(lists[0]), len(lists[4])
	if fast != 3*slow {
		t.Errorf("fast server got %d bricks, slow %d; want exactly 3:1 for 960 bricks", fast, slow)
	}
}

func TestGreedyErrors(t *testing.T) {
	if _, err := (Greedy{Perf: []int{1}}).Assign(4, 2); err == nil {
		t.Error("mismatched perf length should fail")
	}
	if _, err := (Greedy{Perf: []int{1, 0}}).Assign(4, 2); err == nil {
		t.Error("perf < 1 should fail")
	}
	if _, err := (Greedy{Perf: nil}).Assign(4, 0); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := (RoundRobin{}).Assign(4, 0); err == nil {
		t.Error("zero servers should fail")
	}
}

// TestLinearColumnAccessFigure5 reproduces the worked example of Fig.
// 5: an 8x8 array, brick size 4 elements, striped over 4 devices.
// Processor 0 reading the first two columns must touch bricks
// 0,2,4,6,8,10,12,14 with only 2 of each brick's 4 elements useful.
func TestLinearColumnAccessFigure5(t *testing.T) {
	g := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{8, 8}, BrickBytes: 4}
	plan, err := g.PlanSection(NewSection([]int64{0, 0}, []int64{8, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 8 {
		t.Fatalf("touched %d bricks, want 8", len(plan))
	}
	for i, bio := range plan {
		if bio.Brick != 2*i {
			t.Errorf("brick[%d] = %d, want %d", i, bio.Brick, 2*i)
		}
		if got := bio.Bytes(); got != 2 {
			t.Errorf("brick %d useful bytes = %d, want 2 (half the brick discarded)", bio.Brick, got)
		}
	}
	// Row access (BLOCK,*): two full rows are exactly 4 bricks, fully used.
	plan, err = g.PlanSection(NewSection([]int64{0, 0}, []int64{2, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("(BLOCK,*) touched %d bricks, want 4", len(plan))
	}
	for _, bio := range plan {
		if bio.Bytes() != 4 {
			t.Errorf("brick %d useful bytes = %d, want full brick", bio.Brick, bio.Bytes())
		}
	}
}

// TestMultidimColumnAccessFigure6 reproduces Fig. 6: the same 8x8 array
// striped as 2x2 multidimensional bricks. Processor 0 reading the first
// two columns touches only bricks 0,4,8,12 and no extra data.
func TestMultidimColumnAccessFigure6(t *testing.T) {
	g := &Geometry{Level: LevelMultidim, ElemSize: 1, Dims: []int64{8, 8}, Tile: []int64{2, 2}}
	if n := g.NumBricks(); n != 16 {
		t.Fatalf("NumBricks = %d, want 16", n)
	}
	plan, err := g.PlanSection(NewSection([]int64{0, 0}, []int64{8, 2}))
	if err != nil {
		t.Fatal(err)
	}
	wantBricks := []int{0, 4, 8, 12}
	if len(plan) != len(wantBricks) {
		t.Fatalf("touched %d bricks, want %d", len(plan), len(wantBricks))
	}
	for i, bio := range plan {
		if bio.Brick != wantBricks[i] {
			t.Errorf("brick[%d] = %d, want %d", i, bio.Brick, wantBricks[i])
		}
		if bio.Bytes() != 4 {
			t.Errorf("brick %d useful bytes = %d, want 4 (whole brick useful)", bio.Brick, bio.Bytes())
		}
	}
}

// TestPaper64KExample verifies the quantitative claim of Sec. 3.2: for
// a 64K x 64K array with 64K-element bricks, reading one column needs
// all 65536 bricks under linear striping but only 256 bricks when
// striped as 256x256 multidimensional tiles.
func TestPaper64KExample(t *testing.T) {
	const n = 65536
	lin := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{n, n}, BrickBytes: n}
	if got := lin.NumBricks(); got != n {
		t.Fatalf("linear NumBricks = %d, want %d", got, n)
	}
	col := NewSection([]int64{0, 0}, []int64{n, 1})
	plan, err := lin.PlanSection(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != n {
		t.Errorf("linear column access touches %d bricks, want %d", len(plan), n)
	}

	md := &Geometry{Level: LevelMultidim, ElemSize: 1, Dims: []int64{n, n}, Tile: []int64{256, 256}}
	plan, err = md.PlanSection(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 256 {
		t.Errorf("multidim column access touches %d bricks, want 256", len(plan))
	}
}

// TestRequestCombinationSection42 reproduces the worked example of Sec.
// 4.2: 32 bricks round-robin over 4 devices, processor 0 accessing
// bricks 0-7. The general approach needs 8 requests; combination needs
// 4 (bricks {0,4}, {1,5}, {2,6}, {3,7}), and staggering lets rank r
// start at server r.
func TestRequestCombinationSection42(t *testing.T) {
	g := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{32}, BrickBytes: 1}
	assign, _ := RoundRobin{}.Assign(32, 4)
	plan, err := g.PlanExtents([]Extent{{Off: 0, Len: 8}})
	if err != nil {
		t.Fatal(err)
	}

	per := PerBrick(plan, assign)
	if len(per) != 8 {
		t.Fatalf("general approach issues %d requests, want 8", len(per))
	}

	comb := Combine(plan, assign)
	if len(comb) != 4 {
		t.Fatalf("combined approach issues %d requests, want 4", len(comb))
	}
	wantBricks := [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	for i, r := range comb {
		if r.Server != i {
			t.Errorf("request %d server = %d, want %d", i, r.Server, i)
		}
		var got []int
		for _, b := range r.Bricks {
			got = append(got, b.Brick)
		}
		if fmt.Sprint(got) != fmt.Sprint(wantBricks[i]) {
			t.Errorf("request %d bricks = %v, want %v", i, got, wantBricks[i])
		}
	}

	for rank := 0; rank < 4; rank++ {
		st := Stagger(comb, rank, 4)
		if st[0].Server != rank {
			t.Errorf("rank %d starts at server %d, want %d", rank, st[0].Server, rank)
		}
		for i := 1; i < len(st); i++ {
			if st[i].Server != (rank+i)%4 {
				t.Errorf("rank %d request %d at server %d, want %d", rank, i, st[i].Server, (rank+i)%4)
			}
		}
	}
}

func TestStaggerEdgeCases(t *testing.T) {
	if got := Stagger(nil, 3, 4); len(got) != 0 {
		t.Errorf("Stagger(nil) = %v", got)
	}
	one := []Request{{Server: 2}}
	if got := Stagger(one, 1, 4); len(got) != 1 || got[0].Server != 2 {
		t.Errorf("Stagger(single) = %v", got)
	}
	if got := Stagger(one, 1, 0); len(got) != 1 {
		t.Errorf("Stagger with 0 servers = %v", got)
	}
}

func TestWholeBricks(t *testing.T) {
	g := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{10}, BrickBytes: 4}
	plan, err := g.PlanExtents([]Extent{{Off: 0, Len: 10}})
	if err != nil {
		t.Fatal(err)
	}
	sizes := WholeBricks(g, plan)
	want := []int64{4, 4, 2} // last brick is partial
	if fmt.Sprint(sizes) != fmt.Sprint(want) {
		t.Errorf("WholeBricks = %v, want %v", sizes, want)
	}
}

func TestBrickListRoundtrip(t *testing.T) {
	in := []int{0, 2, 6, 8, 12}
	s := FormatBrickList(in)
	if s != "0,2,6,8,12" {
		t.Errorf("FormatBrickList = %q", s)
	}
	out, err := ParseBrickList(s)
	if err != nil || fmt.Sprint(out) != fmt.Sprint(in) {
		t.Errorf("ParseBrickList(%q) = %v, %v", s, out, err)
	}
	if out, err := ParseBrickList(""); err != nil || len(out) != 0 {
		t.Errorf("ParseBrickList(empty) = %v, %v", out, err)
	}
	if _, err := ParseBrickList("1,x,3"); err == nil {
		t.Error("ParseBrickList with junk should fail")
	}
}

func TestAssignmentFromLists(t *testing.T) {
	assign, _ := Greedy{Perf: []int{1, 2, 1, 2}}.Assign(32, 4)
	lists := BrickLists(assign, 4)
	back, err := AssignmentFromLists(lists, 32)
	if err != nil {
		t.Fatal(err)
	}
	for b := range assign {
		if back[b] != assign[b] {
			t.Fatalf("brick %d: reconstructed %d != original %d", b, back[b], assign[b])
		}
	}
	if _, err := AssignmentFromLists([][]int{{0, 1}}, 3); err == nil {
		t.Error("missing brick should fail")
	}
	if _, err := AssignmentFromLists([][]int{{0, 0, 1}}, 2); err == nil {
		t.Error("duplicate brick should fail")
	}
	if _, err := AssignmentFromLists([][]int{{0, 7}}, 2); err == nil {
		t.Error("out-of-range brick should fail")
	}
}

func TestLocalIndex(t *testing.T) {
	assign := []int{0, 1, 0, 1, 0}
	idx := LocalIndex(assign)
	want := []int64{0, 0, 1, 1, 2}
	if fmt.Sprint(idx) != fmt.Sprint(want) {
		t.Errorf("LocalIndex = %v, want %v", idx, want)
	}
}

func TestSectionValidate(t *testing.T) {
	dims := []int64{8, 8}
	cases := []struct {
		sec Section
		ok  bool
	}{
		{NewSection([]int64{0, 0}, []int64{8, 8}), true},
		{NewSection([]int64{7, 7}, []int64{1, 1}), true},
		{NewSection([]int64{0}, []int64{8}), false},
		{NewSection([]int64{-1, 0}, []int64{1, 1}), false},
		{NewSection([]int64{0, 0}, []int64{0, 1}), false},
		{NewSection([]int64{4, 0}, []int64{5, 1}), false},
	}
	for _, c := range cases {
		err := c.sec.Validate(dims)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.sec, err, c.ok)
		}
	}
	if s := NewSection([]int64{1, 2}, []int64{3, 4}).String(); s != "[1:4,2:6)" {
		t.Errorf("String = %q", s)
	}
}

func TestPlanSectionErrors(t *testing.T) {
	g := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{8}, BrickBytes: 2}
	if _, err := g.PlanSection(NewSection([]int64{0}, []int64{100})); err == nil {
		t.Error("oversized section should fail")
	}
	bad := &Geometry{Level: Level(9), ElemSize: 1, Dims: []int64{8}}
	if _, err := bad.PlanSection(NewSection([]int64{0}, []int64{8})); err == nil {
		t.Error("bad level should fail")
	}
	md := &Geometry{Level: LevelMultidim, ElemSize: 1, Dims: []int64{8}, Tile: []int64{2}}
	if _, err := md.PlanExtents([]Extent{{0, 4}}); err == nil {
		t.Error("PlanExtents on non-linear file should fail")
	}
	if _, err := g.PlanExtents([]Extent{{Off: 4, Len: 10}}); err == nil {
		t.Error("extent past EOF should fail")
	}
	if _, err := g.PlanExtents([]Extent{{Off: -1, Len: 2}}); err == nil {
		t.Error("negative extent should fail")
	}
}

func TestArrayLevelChunks(t *testing.T) {
	// Fig. 7: a 2-d array accessed by 4 processors as (BLOCK,BLOCK).
	g := &Geometry{
		Level: LevelArray, ElemSize: 8, Dims: []int64{8, 8},
		Pattern: []Dist{DistBlock, DistBlock}, Grid: []int64{2, 2},
	}
	if n := g.NumBricks(); n != 4 {
		t.Fatalf("NumBricks = %d, want 4", n)
	}
	// Each processor's chunk is exactly one brick, touched as a single
	// contiguous segment (no striping overhead for checkpoint-style
	// whole-chunk access).
	for p, start := range [][]int64{{0, 0}, {0, 4}, {4, 0}, {4, 4}} {
		plan, err := g.PlanSection(NewSection(start, []int64{4, 4}))
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) != 1 {
			t.Fatalf("proc %d touches %d bricks, want 1", p, len(plan))
		}
		if plan[0].Brick != p {
			t.Errorf("proc %d got brick %d", p, plan[0].Brick)
		}
		if len(plan[0].Segs) != 1 {
			t.Errorf("proc %d chunk split into %d segments, want 1 contiguous", p, len(plan[0].Segs))
		}
		if plan[0].Bytes() != 4*4*8 {
			t.Errorf("proc %d bytes = %d", p, plan[0].Bytes())
		}
	}
}

func TestArrayLevelStarDim(t *testing.T) {
	// (*, BLOCK) with 4 processors: 4 column chunks of 8x2.
	g := &Geometry{
		Level: LevelArray, ElemSize: 1, Dims: []int64{8, 8},
		Pattern: []Dist{DistStar, DistBlock}, Grid: []int64{1, 4},
	}
	if n := g.NumBricks(); n != 4 {
		t.Fatalf("NumBricks = %d, want 4", n)
	}
	plan, err := g.PlanSection(NewSection([]int64{0, 2}, []int64{8, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Brick != 1 {
		t.Fatalf("plan = %+v, want single brick 1", plan)
	}
	if len(plan[0].Segs) != 1 || plan[0].Bytes() != 16 {
		t.Errorf("chunk access segs=%d bytes=%d, want 1 contiguous segment of 16", len(plan[0].Segs), plan[0].Bytes())
	}
}

func TestArrayUnevenBlocks(t *testing.T) {
	// 10 rows over 3 blocks: ceil(10/3)=4, so chunks of 4,4,2 rows.
	g := &Geometry{
		Level: LevelArray, ElemSize: 1, Dims: []int64{10, 4},
		Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{3, 1},
	}
	if n := g.NumBricks(); n != 3 {
		t.Fatalf("NumBricks = %d, want 3", n)
	}
	sizes := []int64{16, 16, 8}
	for b, want := range sizes {
		if got := g.BrickBytesOf(b); got != want {
			t.Errorf("BrickBytesOf(%d) = %d, want %d", b, got, want)
		}
	}
	if got := g.SlotBytes(); got != 16 {
		t.Errorf("SlotBytes = %d, want 16", got)
	}
	roundtripSection(t, g, NewSection([]int64{3, 1}, []int64{6, 2}))
}

func TestGeometrySizes(t *testing.T) {
	g := &Geometry{Level: LevelLinear, ElemSize: 8, Dims: []int64{1024, 1024}, BrickBytes: 1 << 16}
	if got := g.Size(); got != 8<<20 {
		t.Errorf("Size = %d", got)
	}
	if got := g.NumBricks(); got != 128 {
		t.Errorf("NumBricks = %d, want 128", got)
	}
	if got := g.SlotBytes(); got != 1<<16 {
		t.Errorf("SlotBytes = %d", got)
	}
	// Partial last brick.
	g2 := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{10}, BrickBytes: 4}
	if got := g2.NumBricks(); got != 3 {
		t.Errorf("NumBricks = %d, want 3", got)
	}
	if got := g2.BrickBytesOf(2); got != 2 {
		t.Errorf("BrickBytesOf(2) = %d, want 2", got)
	}
	md := &Geometry{Level: LevelMultidim, ElemSize: 2, Dims: []int64{7, 5}, Tile: []int64{4, 4}}
	if got := md.NumBricks(); got != 4 {
		t.Errorf("multidim NumBricks = %d, want 4", got)
	}
	if got := md.SlotBytes(); got != 32 {
		t.Errorf("multidim SlotBytes = %d, want 32", got)
	}
	if got := md.BrickBytesOf(3); got != 32 {
		t.Errorf("multidim edge BrickBytesOf = %d, want full slot 32", got)
	}
}

// Exhaustive roundtrips over small geometries for all levels, including
// non-divisible edge bricks and 1-d and 3-d arrays.
func TestRoundtripMatrix(t *testing.T) {
	geoms := []*Geometry{
		{Level: LevelLinear, ElemSize: 1, Dims: []int64{64}, BrickBytes: 7},
		{Level: LevelLinear, ElemSize: 4, Dims: []int64{9, 7}, BrickBytes: 16},
		{Level: LevelLinear, ElemSize: 8, Dims: []int64{6, 6, 6}, BrickBytes: 64},
		{Level: LevelMultidim, ElemSize: 1, Dims: []int64{8, 8}, Tile: []int64{2, 2}},
		{Level: LevelMultidim, ElemSize: 4, Dims: []int64{9, 7}, Tile: []int64{4, 3}},
		{Level: LevelMultidim, ElemSize: 2, Dims: []int64{5, 6, 7}, Tile: []int64{2, 3, 4}},
		{Level: LevelMultidim, ElemSize: 8, Dims: []int64{16}, Tile: []int64{5}},
		{Level: LevelArray, ElemSize: 1, Dims: []int64{8, 8}, Pattern: []Dist{DistBlock, DistBlock}, Grid: []int64{2, 2}},
		{Level: LevelArray, ElemSize: 4, Dims: []int64{10, 6}, Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{3, 1}},
		{Level: LevelArray, ElemSize: 8, Dims: []int64{12, 12, 4}, Pattern: []Dist{DistBlock, DistBlock, DistStar}, Grid: []int64{3, 2, 1}},
	}
	for _, g := range geoms {
		t.Run(fmt.Sprintf("%v-%v", g.Level, g.Dims), func(t *testing.T) {
			roundtripSection(t, g, FullSection(g.Dims))
			// A strictly interior section.
			sec := Section{Start: make([]int64, len(g.Dims)), Count: make([]int64, len(g.Dims))}
			for d, n := range g.Dims {
				sec.Start[d] = n / 4
				sec.Count[d] = n - n/4 - n/8
				if sec.Count[d] <= 0 {
					sec.Count[d] = 1
				}
			}
			roundtripSection(t, g, sec)
			// Single element at the far corner.
			for d, n := range g.Dims {
				sec.Start[d] = n - 1
				sec.Count[d] = 1
			}
			roundtripSection(t, g, sec)
		})
	}
}

func TestPlanExtentsRoundtrip(t *testing.T) {
	g := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{100}, BrickBytes: 8}
	full := arrayBytes(g.Dims, 1)
	st := newBrickStore(g)
	plan, err := g.PlanExtents([]Extent{{0, 100}})
	if err != nil {
		t.Fatal(err)
	}
	st.write(plan, full)

	exts := []Extent{{Off: 3, Len: 10}, {Off: 50, Len: 1}, {Off: 90, Len: 10}}
	plan, err = g.PlanExtents(exts)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, e := range exts {
		want = append(want, full[e.Off:e.Off+e.Len]...)
	}
	got := make([]byte, len(want))
	st.read(plan, got)
	if !bytes.Equal(got, want) {
		t.Fatal("extent roundtrip mismatch")
	}
}

func TestChunkSection(t *testing.T) {
	g := &Geometry{
		Level: LevelArray, ElemSize: 8, Dims: []int64{32, 32},
		Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{4, 1},
	}
	for b := 0; b < 4; b++ {
		sec, err := g.ChunkSection(b)
		if err != nil {
			t.Fatal(err)
		}
		if sec.Start[0] != int64(b)*8 || sec.Count[0] != 8 || sec.Count[1] != 32 {
			t.Fatalf("chunk %d section = %v", b, sec)
		}
	}
	// Uneven division: 10 rows over 3 blocks -> 4,4,2.
	g2 := &Geometry{Level: LevelArray, ElemSize: 1, Dims: []int64{10, 4},
		Pattern: []Dist{DistBlock, DistStar}, Grid: []int64{3, 1}}
	sec, err := g2.ChunkSection(2)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Start[0] != 8 || sec.Count[0] != 2 {
		t.Fatalf("last chunk = %v", sec)
	}
	// Errors.
	if _, err := g.ChunkSection(-1); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := g.ChunkSection(4); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	lin := &Geometry{Level: LevelLinear, ElemSize: 1, Dims: []int64{8}, BrickBytes: 2}
	if _, err := lin.ChunkSection(0); err == nil {
		t.Error("ChunkSection on linear accepted")
	}
}
