package stripe

import "sort"

// Request is one network request to a single server, carrying one or
// more brick accesses. Without request combination every brick access
// travels alone; with combination all of a client's brick accesses that
// land on the same server are shipped together (Section 4.2).
type Request struct {
	Server int
	Bricks []BrickIO
}

// Bytes returns the number of payload bytes the request moves.
func (r *Request) Bytes() int64 {
	var n int64
	for i := range r.Bricks {
		n += r.Bricks[i].Bytes()
	}
	return n
}

// PerBrick turns a plan into the paper's "general approach": one
// request per brick, in ascending brick order. assign maps brick id to
// server.
func PerBrick(plan []BrickIO, assign []int) []Request {
	out := make([]Request, 0, len(plan))
	for _, b := range plan {
		out = append(out, Request{Server: assign[b.Brick], Bricks: []BrickIO{b}})
	}
	return out
}

// Combine implements request combination: all bricks of the plan that
// reside on the same server are grouped into a single request. Requests
// come out ordered by server index; bricks within a request keep
// ascending brick order.
func Combine(plan []BrickIO, assign []int) []Request {
	byServer := make(map[int]*Request)
	var servers []int
	for _, b := range plan {
		s := assign[b.Brick]
		r, ok := byServer[s]
		if !ok {
			r = &Request{Server: s}
			byServer[s] = r
			servers = append(servers, s)
		}
		r.Bricks = append(r.Bricks, b)
	}
	sort.Ints(servers)
	out := make([]Request, 0, len(servers))
	for _, s := range servers {
		out = append(out, *byServer[s])
	}
	return out
}

// Stagger reorders combined requests so that client rank starts its
// sweep at server (rank mod numServers) and proceeds cyclically. This
// is the scheduling optimization of Section 4.2: when all clients
// access all servers, staggering keeps them from convoying on the same
// device. Requests for servers the client does not touch are simply
// absent.
func Stagger(reqs []Request, rank, numServers int) []Request {
	if numServers <= 0 || len(reqs) <= 1 {
		return reqs
	}
	start := rank % numServers
	out := make([]Request, len(reqs))
	copy(out, reqs)
	sort.Slice(out, func(i, j int) bool {
		return rotOrder(out[i].Server, start, numServers) < rotOrder(out[j].Server, start, numServers)
	})
	return out
}

// rotOrder maps server s to its position in the cyclic order starting
// at start.
func rotOrder(s, start, n int) int {
	return ((s-start)%n + n) % n
}

// WholeBricks widens every brick access in the plan to cover the entire
// stored brick, mirroring the paper's model in which the brick is the
// basic accessing unit: a read fetches whole bricks and the client
// discards the unneeded parts ("only the first two elements of each
// brick are really useful, the second half will be discarded", Sec.
// 3.2). The original segments are retained so the caller can scatter
// the useful bytes; the widened extent is recorded per brick.
//
// It returns, aligned with the plan, the byte count to transfer for
// each brick when whole-brick fetching is used.
func WholeBricks(g *Geometry, plan []BrickIO) []int64 {
	out := make([]int64, len(plan))
	for i := range plan {
		out[i] = g.BrickBytesOf(plan[i].Brick)
	}
	return out
}
