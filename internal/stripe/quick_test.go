package stripe

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomGeometry draws a small random geometry of any level.
func randomGeometry(r *rand.Rand) *Geometry {
	nd := 1 + r.Intn(3)
	dims := make([]int64, nd)
	for d := range dims {
		dims[d] = 1 + int64(r.Intn(12))
	}
	elem := []int64{1, 2, 4, 8}[r.Intn(4)]
	g := &Geometry{ElemSize: elem, Dims: dims}
	switch r.Intn(3) {
	case 0:
		g.Level = LevelLinear
		g.BrickBytes = 1 + int64(r.Intn(40))
	case 1:
		g.Level = LevelMultidim
		g.Tile = make([]int64, nd)
		for d := range g.Tile {
			g.Tile[d] = 1 + int64(r.Intn(int(dims[d])))
		}
	case 2:
		g.Level = LevelArray
		g.Pattern = make([]Dist, nd)
		g.Grid = make([]int64, nd)
		for d := range g.Pattern {
			if r.Intn(2) == 0 {
				g.Pattern[d] = DistStar
				g.Grid[d] = 1
			} else {
				g.Pattern[d] = DistBlock
				g.Grid[d] = 1 + int64(r.Intn(int(dims[d])))
			}
		}
	}
	return g
}

func randomSection(r *rand.Rand, dims []int64) Section {
	sec := Section{Start: make([]int64, len(dims)), Count: make([]int64, len(dims))}
	for d, n := range dims {
		sec.Start[d] = int64(r.Intn(int(n)))
		sec.Count[d] = 1 + int64(r.Intn(int(n-sec.Start[d])))
	}
	return sec
}

// Property: a plan's memory segments exactly tile [0, sectionBytes)
// with no overlap and no gap, and every brick segment stays within the
// brick's stored bytes.
func TestQuickPlanCoversSection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGeometry(r)
		sec := randomSection(r, g.Dims)
		plan, err := g.PlanSection(sec)
		if err != nil {
			t.Logf("seed %d: plan error: %v", seed, err)
			return false
		}
		type span struct{ off, end int64 }
		var spans []span
		for _, bio := range plan {
			bb := g.BrickBytesOf(bio.Brick)
			for _, s := range bio.Segs {
				if s.Len <= 0 || s.BrickOff < 0 || s.BrickOff+s.Len > bb {
					t.Logf("seed %d: segment %+v escapes brick %d (%d bytes)", seed, s, bio.Brick, bb)
					return false
				}
				spans = append(spans, span{s.MemOff, s.MemOff + s.Len})
			}
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
		want := sec.Bytes(g.ElemSize)
		pos := int64(0)
		for _, sp := range spans {
			if sp.off != pos {
				t.Logf("seed %d: %v %v sec=%v gap/overlap at %d (next span %d)", seed, g.Level, g.Dims, sec, pos, sp.off)
				return false
			}
			pos = sp.end
		}
		if pos != want {
			t.Logf("seed %d: covered %d bytes, want %d", seed, pos, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: writing a random section and reading it back through
// independently computed plans returns the identical bytes, and bytes
// outside the section are untouched.
func TestQuickSectionRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGeometry(r)
		sec := randomSection(r, g.Dims)
		st := newBrickStore(g)

		payload := make([]byte, sec.Bytes(g.ElemSize))
		r.Read(payload)
		plan, err := g.PlanSection(sec)
		if err != nil {
			return false
		}
		st.write(plan, payload)

		plan2, err := g.PlanSection(sec)
		if err != nil {
			return false
		}
		got := make([]byte, len(payload))
		st.read(plan2, got)
		for i := range got {
			if got[i] != payload[i] {
				t.Logf("seed %d: byte %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: two disjoint sections never write to the same brick byte.
func TestQuickDisjointSectionsDisjointBytes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGeometry(r)
		nd := len(g.Dims)
		// Split the array in two along a random dimension with size>1.
		d := -1
		for _, cand := range r.Perm(nd) {
			if g.Dims[cand] > 1 {
				d = cand
				break
			}
		}
		if d == -1 {
			return true
		}
		cut := 1 + int64(r.Intn(int(g.Dims[d]-1)))
		a := FullSection(g.Dims)
		a.Count[d] = cut
		b := FullSection(g.Dims)
		b.Start[d] = cut
		b.Count[d] = g.Dims[d] - cut

		occupied := make(map[[2]int64]int) // (brick, byte) -> section
		for idx, sec := range []Section{a, b} {
			plan, err := g.PlanSection(sec)
			if err != nil {
				return false
			}
			for _, bio := range plan {
				for _, s := range bio.Segs {
					for o := s.BrickOff; o < s.BrickOff+s.Len; o++ {
						key := [2]int64{int64(bio.Brick), o}
						if prev, ok := occupied[key]; ok && prev != idx {
							t.Logf("seed %d: brick %d byte %d written by both sections", seed, bio.Brick, o)
							return false
						}
						occupied[key] = idx
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy assignment keeps accumulated normalized cost within
// one brick of balanced — max(A) - min(A+P) stays bounded — and fast
// servers never hold fewer bricks than slow ones.
func TestQuickGreedyBalance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ns := 1 + r.Intn(8)
		nb := r.Intn(200)
		perf := make([]int, ns)
		for i := range perf {
			perf[i] = 1 + r.Intn(4)
		}
		assign, err := Greedy{Perf: perf}.Assign(nb, ns)
		if err != nil {
			return false
		}
		if len(assign) != nb {
			return false
		}
		acc := make([]int64, ns)
		for _, s := range assign {
			if s < 0 || s >= ns {
				return false
			}
			acc[s] += int64(perf[s])
		}
		// The greedy invariant: when the last brick landed on server i
		// its score acc[i] (after adding P[i]) was minimal among all
		// j's scores at that moment, and scores only grow, so in the
		// final state acc[i] <= acc[j] + P[j] for every j.
		for i := range acc {
			if acc[i] == 0 {
				continue
			}
			for j := range acc {
				if acc[i] > acc[j]+int64(perf[j]) {
					t.Logf("seed %d: perf=%v acc=%v violates greedy invariant (%d vs %d)", seed, perf, acc, i, j)
					return false
				}
			}
		}
		// Faster servers get at least as many bricks.
		counts := make([]int, ns)
		for _, s := range assign {
			counts[s]++
		}
		for i := range perf {
			for j := range perf {
				if perf[i] < perf[j] && counts[i] < counts[j] {
					t.Logf("seed %d: perf=%v counts=%v: faster server %d has fewer bricks than %d", seed, perf, counts, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Combine preserves exactly the brick set and never repeats a
// server; PerBrick preserves order; Stagger is a permutation.
func TestQuickCombinePreservesBricks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGeometry(r)
		sec := randomSection(r, g.Dims)
		plan, err := g.PlanSection(sec)
		if err != nil {
			return false
		}
		ns := 1 + r.Intn(6)
		assign, err := RoundRobin{}.Assign(g.NumBricks(), ns)
		if err != nil {
			return false
		}

		want := map[int]bool{}
		for _, b := range plan {
			want[b.Brick] = true
		}

		comb := Combine(plan, assign)
		seenServer := map[int]bool{}
		got := map[int]bool{}
		for _, req := range comb {
			if seenServer[req.Server] {
				t.Logf("seed %d: server %d appears twice after Combine", seed, req.Server)
				return false
			}
			seenServer[req.Server] = true
			for _, b := range req.Bricks {
				if assign[b.Brick] != req.Server {
					t.Logf("seed %d: brick %d in request for wrong server", seed, b.Brick)
					return false
				}
				got[b.Brick] = true
			}
		}
		if len(got) != len(want) {
			return false
		}

		st := Stagger(comb, r.Intn(16), ns)
		if len(st) != len(comb) {
			return false
		}
		per := PerBrick(plan, assign)
		if len(per) != len(plan) {
			return false
		}
		for i, req := range per {
			if len(req.Bricks) != 1 || req.Bricks[0].Brick != plan[i].Brick {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BrickLists / AssignmentFromLists are inverses for any
// placement, and LocalIndex is dense per server.
func TestQuickListsInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ns := 1 + r.Intn(8)
		nb := r.Intn(100)
		var pl Placement = RoundRobin{}
		if r.Intn(2) == 0 {
			perf := make([]int, ns)
			for i := range perf {
				perf[i] = 1 + r.Intn(3)
			}
			pl = Greedy{Perf: perf}
		}
		assign, err := pl.Assign(nb, ns)
		if err != nil {
			return false
		}
		lists := BrickLists(assign, ns)
		back, err := AssignmentFromLists(lists, nb)
		if err != nil {
			return false
		}
		for i := range assign {
			if assign[i] != back[i] {
				return false
			}
		}
		idx := LocalIndex(assign)
		// Per server, local indices must be 0,1,2,... in brick order.
		next := make([]int64, ns)
		for b, s := range assign {
			if idx[b] != next[s] {
				return false
			}
			next[s]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
