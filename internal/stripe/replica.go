package stripe

import (
	"fmt"
	"strconv"
	"strings"
)

// This file adds brick replication to the placement layer. A file
// created with replication factor R stores R copies of every brick on R
// distinct servers. Replica rank 0 is the "preferred" copy (the one the
// base placement algorithm chose); higher ranks are fallbacks read only
// when lower ranks are unreachable, and every rank receives writes.

// ReplicaEntry is one element of a server's brick list when the file is
// replicated: the brick id plus the replica rank this server holds.
type ReplicaEntry struct {
	Brick int
	Rank  int
}

// AssignReplicas places replicas replicas of each of numBricks bricks on
// distinct servers. Rank 0 follows the base placement p exactly (so
// replicas == 1 reproduces p.Assign bit for bit); higher ranks are
// placed per algorithm:
//
//   - Greedy: cost-aware — each extra replica goes to the server with
//     the lowest accumulated cost that does not already hold the brick,
//     continuing the accumulation started by the rank-0 sweep.
//   - anything else (round-robin): offset-shifted — rank k of brick i
//     lands on server (assign0[i]+k) mod numServers.
//
// The result is indexed [brick][rank].
func AssignReplicas(p Placement, numBricks, numServers, replicas int) ([][]int, error) {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > numServers {
		return nil, fmt.Errorf("stripe: replication factor %d exceeds %d servers", replicas, numServers)
	}
	base, err := p.Assign(numBricks, numServers)
	if err != nil {
		return nil, err
	}
	out := make([][]int, numBricks)
	if g, ok := p.(Greedy); ok && replicas > 1 {
		acc := make([]int64, numServers)
		for _, s := range base {
			acc[s] += int64(g.Perf[s])
		}
		for i, s0 := range base {
			set := make([]int, 1, replicas)
			set[0] = s0
			for r := 1; r < replicas; r++ {
				best := -1
				var bestScore int64
				for k := 0; k < numServers; k++ {
					if containsInt(set, k) {
						continue
					}
					score := acc[k] + int64(g.Perf[k])
					if best < 0 || score < bestScore ||
						(score == bestScore && g.Perf[k] < g.Perf[best]) {
						best, bestScore = k, score
					}
				}
				set = append(set, best)
				acc[best] += int64(g.Perf[best])
			}
			out[i] = set
		}
		return out, nil
	}
	for i, s0 := range base {
		set := make([]int, replicas)
		for r := range set {
			set[r] = (s0 + r) % numServers
		}
		out[i] = set
	}
	return out, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// ReplicaLists converts a [brick][rank] replica assignment into
// per-server lists of ReplicaEntry, preserving ascending brick order
// (and rank order within a brick) in each list. The list order defines
// subfile slot order: entry j of server s's list is stored at byte
// offset j*SlotBytes in s's subfile.
func ReplicaLists(assign [][]int, numServers int) [][]ReplicaEntry {
	lists := make([][]ReplicaEntry, numServers)
	for b, set := range assign {
		for r, s := range set {
			lists[s] = append(lists[s], ReplicaEntry{Brick: b, Rank: r})
		}
	}
	return lists
}

// FormatReplicaList renders a server's replica brick list for the
// catalog. Rank-0-only lists (unreplicated files) use the plain
// FormatBrickList form ("0,2,6") so replication factor 1 stays
// byte-identical with the pre-replication catalog; mixed-rank lists
// annotate each entry as brick:rank ("0:0,3:1,6:0").
func FormatReplicaList(entries []ReplicaEntry) string {
	plain := true
	for _, e := range entries {
		if e.Rank != 0 {
			plain = false
			break
		}
	}
	var sb strings.Builder
	for i, e := range entries {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(e.Brick))
		if !plain {
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(e.Rank))
		}
	}
	return sb.String()
}

// ParseReplicaList parses the catalog representation produced by
// FormatReplicaList. Plain entries ("6") are rank 0.
func ParseReplicaList(s string) ([]ReplicaEntry, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]ReplicaEntry, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		e := ReplicaEntry{}
		if i := strings.IndexByte(p, ':'); i >= 0 {
			r, err := strconv.Atoi(p[i+1:])
			if err != nil {
				return nil, fmt.Errorf("stripe: bad replica rank in %q: %w", p, err)
			}
			e.Rank = r
			p = p[:i]
		}
		b, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("stripe: bad brick list entry %q: %w", p, err)
		}
		e.Brick = b
		out = append(out, e)
	}
	return out, nil
}

// ReplicaSet is the client-side view of a replicated file's layout,
// reconstructed from the per-server catalog lists.
type ReplicaSet struct {
	// Servers maps [brick][rank] to the server index holding that
	// replica.
	Servers [][]int
	// Local maps [brick][rank] to the replica's slot within its
	// server's subfile (its position in the server's stored list, which
	// repair may have appended to — slot order is list order, not brick
	// order).
	Local [][]int64
}

// ReplicaSetFromLists reconstructs the replica layout from per-server
// lists, validating that every brick in [0,numBricks) appears with each
// rank 0..replicas-1 exactly once and that no server holds two replicas
// of the same brick.
func ReplicaSetFromLists(lists [][]ReplicaEntry, numBricks, replicas int) (*ReplicaSet, error) {
	if replicas < 1 {
		replicas = 1
	}
	rs := &ReplicaSet{
		Servers: make([][]int, numBricks),
		Local:   make([][]int64, numBricks),
	}
	for b := range rs.Servers {
		rs.Servers[b] = make([]int, replicas)
		rs.Local[b] = make([]int64, replicas)
		for r := range rs.Servers[b] {
			rs.Servers[b][r] = -1
		}
	}
	for s, list := range lists {
		for j, e := range list {
			if e.Brick < 0 || e.Brick >= numBricks {
				return nil, fmt.Errorf("stripe: brick %d out of range [0,%d)", e.Brick, numBricks)
			}
			if e.Rank < 0 || e.Rank >= replicas {
				return nil, fmt.Errorf("stripe: replica rank %d of brick %d out of range [0,%d)",
					e.Rank, e.Brick, replicas)
			}
			if rs.Servers[e.Brick][e.Rank] >= 0 {
				return nil, fmt.Errorf("stripe: replica %d of brick %d assigned twice", e.Rank, e.Brick)
			}
			for r, held := range rs.Servers[e.Brick] {
				if r != e.Rank && held == s {
					return nil, fmt.Errorf("stripe: server %d holds two replicas of brick %d", s, e.Brick)
				}
			}
			rs.Servers[e.Brick][e.Rank] = s
			rs.Local[e.Brick][e.Rank] = int64(j)
		}
	}
	for b, set := range rs.Servers {
		for r, s := range set {
			if s < 0 {
				return nil, fmt.Errorf("stripe: replica %d of brick %d unassigned", r, b)
			}
		}
	}
	return rs, nil
}

// Replicas returns the replication factor of the set.
func (rs *ReplicaSet) Replicas() int {
	if len(rs.Servers) == 0 {
		return 1
	}
	return len(rs.Servers[0])
}

// Primary returns the rank-0 brick→server assignment, the shape the
// unreplicated planner APIs (Combine, PerBrick, LocalIndex) consume.
func (rs *ReplicaSet) Primary() []int {
	out := make([]int, len(rs.Servers))
	for b, set := range rs.Servers {
		out[b] = set[0]
	}
	return out
}

// RankAssignment returns the brick→server assignment of replica rank r.
func (rs *ReplicaSet) RankAssignment(r int) []int {
	out := make([]int, len(rs.Servers))
	for b, set := range rs.Servers {
		out[b] = set[r]
	}
	return out
}

// SlotOn returns the subfile slot of brick b on server s, or -1 when s
// holds no replica of b.
func (rs *ReplicaSet) SlotOn(b, s int) int64 {
	for r, held := range rs.Servers[b] {
		if held == s {
			return rs.Local[b][r]
		}
	}
	return -1
}

// RankOn returns the replica rank brick b has on server s, or -1.
func (rs *ReplicaSet) RankOn(b, s int) int {
	for r, held := range rs.Servers[b] {
		if held == s {
			return r
		}
	}
	return -1
}
