// Package stripe implements the striping core of DPFS: the three file
// levels of the paper (linear, multidimensional and array striping), the
// placement algorithms that assign bricks to I/O servers (round-robin
// and the greedy load-balancing algorithm of Fig. 8), and the request
// combination / scheduling optimization of Section 4.2.
//
// The package is pure computation: given a file geometry and an access
// region it produces the exact set of bricks touched, and for every
// brick the byte segments to move between brick storage and the
// caller's packed buffer. Network and disk I/O live elsewhere
// (internal/core, internal/server).
package stripe

import (
	"errors"
	"fmt"
)

// Level identifies one of the three DPFS file levels. The level is
// chosen by the user at file creation time through the hint structure
// and determines which striping method lays the file out on storage.
type Level uint8

const (
	// LevelLinear treats the file as a stream of contiguous bytes; a
	// brick is a contiguous run of BrickBytes bytes (Fig. 4).
	LevelLinear Level = iota + 1
	// LevelMultidim treats the file as an N-dimensional array; a brick
	// is an N-dimensional tile of shape Tile (Fig. 6).
	LevelMultidim
	// LevelArray treats the file as an N-dimensional array pre-chunked
	// by an HPF distribution; a brick is one whole coarse chunk
	// (Fig. 7).
	LevelArray
)

// String returns the paper's name for the level.
func (l Level) String() string {
	switch l {
	case LevelLinear:
		return "linear"
	case LevelMultidim:
		return "multidim"
	case LevelArray:
		return "array"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// ParseLevel converts a level name as stored in the catalog back to a
// Level value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "linear":
		return LevelLinear, nil
	case "multidim":
		return LevelMultidim, nil
	case "array":
		return LevelArray, nil
	}
	return 0, fmt.Errorf("stripe: unknown file level %q", s)
}

// Dist is a per-dimension HPF distribution specifier for array-level
// files.
type Dist uint8

const (
	// DistStar ("*") leaves the dimension undistributed: a single chunk
	// spans the whole dimension.
	DistStar Dist = iota
	// DistBlock ("BLOCK") divides the dimension into Grid[d] contiguous
	// blocks of ceil(n/p) elements.
	DistBlock
)

// String returns the HPF notation for the distribution.
func (d Dist) String() string {
	if d == DistBlock {
		return "BLOCK"
	}
	return "*"
}

// Geometry fully describes the brick layout of a DPFS file. Exactly the
// fields relevant to the level need to be set; Validate reports
// misconfiguration.
type Geometry struct {
	Level Level

	// ElemSize is the size in bytes of one array element. Linear files
	// that are pure byte streams use ElemSize 1.
	ElemSize int64

	// Dims are the array dimensions in elements. For linear files Dims
	// may describe the logical array stored row-major in the byte
	// stream (used by PlanSection); a pure byte stream uses a single
	// dimension holding the length.
	Dims []int64

	// BrickBytes is the linear-level brick size in bytes.
	BrickBytes int64

	// Tile is the multidimensional-level brick shape in elements per
	// dimension; len(Tile) == len(Dims).
	Tile []int64

	// Pattern and Grid describe the array-level HPF distribution:
	// Pattern[d] says how dimension d is distributed and Grid[d] is the
	// number of blocks in dimension d (ignored, forced to 1, for
	// DistStar). len(Pattern) == len(Grid) == len(Dims).
	Pattern []Dist
	Grid    []int64
}

// Validate checks internal consistency of the geometry.
func (g *Geometry) Validate() error {
	if g.ElemSize <= 0 {
		return errors.New("stripe: ElemSize must be positive")
	}
	if len(g.Dims) == 0 {
		return errors.New("stripe: Dims must not be empty")
	}
	for _, d := range g.Dims {
		if d <= 0 {
			return errors.New("stripe: all Dims must be positive")
		}
	}
	switch g.Level {
	case LevelLinear:
		if g.BrickBytes <= 0 {
			return errors.New("stripe: linear level requires positive BrickBytes")
		}
	case LevelMultidim:
		if len(g.Tile) != len(g.Dims) {
			return errors.New("stripe: multidim level requires len(Tile) == len(Dims)")
		}
		for _, t := range g.Tile {
			if t <= 0 {
				return errors.New("stripe: all Tile extents must be positive")
			}
		}
	case LevelArray:
		if len(g.Pattern) != len(g.Dims) || len(g.Grid) != len(g.Dims) {
			return errors.New("stripe: array level requires len(Pattern) == len(Grid) == len(Dims)")
		}
		for d, p := range g.Pattern {
			switch p {
			case DistStar:
				// Grid ignored.
			case DistBlock:
				if g.Grid[d] <= 0 {
					return errors.New("stripe: BLOCK dimensions require positive Grid")
				}
				if g.Grid[d] > g.Dims[d] {
					return errors.New("stripe: Grid must not exceed Dims for BLOCK dimensions")
				}
			default:
				return fmt.Errorf("stripe: unknown distribution %d", p)
			}
		}
	default:
		return fmt.Errorf("stripe: unknown level %d", g.Level)
	}
	return nil
}

// Size returns the total logical file size in bytes.
func (g *Geometry) Size() int64 {
	n := g.ElemSize
	for _, d := range g.Dims {
		n *= d
	}
	return n
}

// NumBricks returns the number of bricks the file consists of.
func (g *Geometry) NumBricks() int {
	switch g.Level {
	case LevelLinear:
		return int(ceilDiv(g.Size(), g.BrickBytes))
	case LevelMultidim:
		n := int64(1)
		for d := range g.Dims {
			n *= ceilDiv(g.Dims[d], g.Tile[d])
		}
		return int(n)
	case LevelArray:
		n := int64(1)
		for d := range g.Dims {
			n *= g.chunkCount(d)
		}
		return int(n)
	}
	return 0
}

// SlotBytes returns the uniform storage slot size reserved for each
// brick in a subfile. Bricks are stored at localIndex*SlotBytes in
// their server's subfile; partial edge bricks occupy a prefix of their
// slot and the remainder is a hole in the (sparse) subfile.
func (g *Geometry) SlotBytes() int64 {
	switch g.Level {
	case LevelLinear:
		return g.BrickBytes
	case LevelMultidim:
		n := g.ElemSize
		for _, t := range g.Tile {
			n *= t
		}
		return n
	case LevelArray:
		n := g.ElemSize
		for d := range g.Dims {
			n *= ceilDiv(g.Dims[d], g.chunkCount(d))
		}
		return n
	}
	return 0
}

// BrickBytesOf returns the number of stored bytes of brick b (partial
// edge bricks are smaller than SlotBytes).
func (g *Geometry) BrickBytesOf(b int) int64 {
	switch g.Level {
	case LevelLinear:
		sz := g.Size()
		off := int64(b) * g.BrickBytes
		if off+g.BrickBytes > sz {
			return sz - off
		}
		return g.BrickBytes
	case LevelMultidim:
		// Bricks use the full tile shape as their storage layout, so
		// even edge bricks occupy a full slot (with padding holes).
		return g.SlotBytes()
	case LevelArray:
		origin, shape := g.chunkExtent(b)
		_ = origin
		n := g.ElemSize
		for _, s := range shape {
			n *= s
		}
		return n
	}
	return 0
}

// chunkCount returns the number of chunks along dimension d for an
// array-level file.
func (g *Geometry) chunkCount(d int) int64 {
	if g.Pattern[d] == DistBlock {
		return g.Grid[d]
	}
	return 1
}

// chunkExtent returns the origin and shape (in elements) of array-level
// brick b.
func (g *Geometry) chunkExtent(b int) (origin, shape []int64) {
	nd := len(g.Dims)
	coord := make([]int64, nd)
	rem := int64(b)
	for d := nd - 1; d >= 0; d-- {
		c := g.chunkCount(d)
		coord[d] = rem % c
		rem /= c
	}
	origin = make([]int64, nd)
	shape = make([]int64, nd)
	for d := 0; d < nd; d++ {
		c := g.chunkCount(d)
		blk := ceilDiv(g.Dims[d], c)
		origin[d] = coord[d] * blk
		end := origin[d] + blk
		if end > g.Dims[d] {
			end = g.Dims[d]
		}
		shape[d] = end - origin[d]
	}
	return origin, shape
}

// ChunkSection returns the array section covered by chunk (brick) b of
// an array-level file: the region HPF assigns to processor b under the
// file's Pattern/Grid. Compute ranks use it to derive "my chunk"
// without repeating the block arithmetic.
func (g *Geometry) ChunkSection(b int) (Section, error) {
	if err := g.Validate(); err != nil {
		return Section{}, err
	}
	if g.Level != LevelArray {
		return Section{}, fmt.Errorf("stripe: ChunkSection requires an array-level file, have %v", g.Level)
	}
	if b < 0 || b >= g.NumBricks() {
		return Section{}, fmt.Errorf("stripe: chunk %d out of range [0,%d)", b, g.NumBricks())
	}
	origin, shape := g.chunkExtent(b)
	return Section{Start: origin, Count: shape}, nil
}

// tileGrid returns the number of tiles along each dimension for a
// multidim file.
func (g *Geometry) tileGrid() []int64 {
	grid := make([]int64, len(g.Dims))
	for d := range g.Dims {
		grid[d] = ceilDiv(g.Dims[d], g.Tile[d])
	}
	return grid
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func prod(xs []int64) int64 {
	n := int64(1)
	for _, x := range xs {
		n *= x
	}
	return n
}

// rowMajorOffset returns the row-major linear index of pos within an
// array of the given shape.
func rowMajorOffset(pos, shape []int64) int64 {
	off := int64(0)
	for d := range shape {
		off = off*shape[d] + pos[d]
	}
	return off
}
