package stripe

import (
	"errors"
	"fmt"
)

// Section is a hyper-rectangular region of an N-dimensional array: for
// each dimension d it covers indices [Start[d], Start[d]+Count[d]).
// When a section is read or written, the data moves through a packed
// buffer holding the section's elements in row-major order of the
// section itself (the same convention as an MPI subarray datatype).
type Section struct {
	Start []int64
	Count []int64
}

// NewSection builds a section from start/count slices (copied).
func NewSection(start, count []int64) Section {
	return Section{Start: append([]int64(nil), start...), Count: append([]int64(nil), count...)}
}

// FullSection returns the section covering the entire array.
func FullSection(dims []int64) Section {
	return Section{Start: make([]int64, len(dims)), Count: append([]int64(nil), dims...)}
}

// NumElems returns the number of elements in the section.
func (s Section) NumElems() int64 { return prod(s.Count) }

// Bytes returns the number of bytes of the section's packed buffer for
// the given element size.
func (s Section) Bytes(elemSize int64) int64 { return s.NumElems() * elemSize }

// Validate checks the section against the array dimensions.
func (s Section) Validate(dims []int64) error {
	if len(s.Start) != len(dims) || len(s.Count) != len(dims) {
		return errors.New("stripe: section rank does not match array rank")
	}
	for d := range dims {
		if s.Start[d] < 0 || s.Count[d] <= 0 {
			return fmt.Errorf("stripe: invalid section dim %d: start=%d count=%d", d, s.Start[d], s.Count[d])
		}
		if s.Start[d]+s.Count[d] > dims[d] {
			return fmt.Errorf("stripe: section exceeds array in dim %d: start=%d count=%d dim=%d",
				d, s.Start[d], s.Count[d], dims[d])
		}
	}
	return nil
}

// String renders the section like [0:4,8:16).
func (s Section) String() string {
	out := "["
	for d := range s.Start {
		if d > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d:%d", s.Start[d], s.Start[d]+s.Count[d])
	}
	return out + ")"
}

// intersect returns the intersection of [aStart,aStart+aCount) and
// [bStart,bStart+bCount) per dimension, and whether it is non-empty.
func intersect(aStart, aCount, bStart, bCount []int64) (start, count []int64, ok bool) {
	nd := len(aStart)
	start = make([]int64, nd)
	count = make([]int64, nd)
	for d := 0; d < nd; d++ {
		lo := max64(aStart[d], bStart[d])
		hi := min64(aStart[d]+aCount[d], bStart[d]+bCount[d])
		if hi <= lo {
			return nil, nil, false
		}
		start[d] = lo
		count[d] = hi - lo
	}
	return start, count, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// iterOuter invokes f for every position of the outer (all but last)
// dimensions of count, in row-major order. pos has len(count) entries;
// pos[len-1] is always 0 and f is expected to treat the last dimension
// as a contiguous run. The pos slice is reused between calls.
func iterOuter(count []int64, f func(pos []int64) error) error {
	nd := len(count)
	pos := make([]int64, nd)
	if nd == 1 {
		return f(pos)
	}
	for {
		if err := f(pos); err != nil {
			return err
		}
		// Odometer increment over dims [0, nd-2].
		d := nd - 2
		for d >= 0 {
			pos[d]++
			if pos[d] < count[d] {
				break
			}
			pos[d] = 0
			d--
		}
		if d < 0 {
			return nil
		}
	}
}
