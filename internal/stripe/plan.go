package stripe

import (
	"fmt"
	"sort"
)

// Segment describes one contiguous byte run to move between a brick's
// storage and the caller's packed buffer.
type Segment struct {
	// BrickOff is the byte offset within the brick's stored bytes.
	BrickOff int64
	// MemOff is the byte offset within the caller's packed buffer.
	MemOff int64
	// Len is the run length in bytes.
	Len int64
}

// BrickIO is the complete set of segments an access touches within one
// brick. Plans list bricks in ascending brick-id order and each brick's
// segments in ascending MemOff order.
type BrickIO struct {
	Brick int
	Segs  []Segment
}

// Bytes returns the number of payload bytes the brick access moves.
func (b *BrickIO) Bytes() int64 {
	var n int64
	for _, s := range b.Segs {
		n += s.Len
	}
	return n
}

// Extent is a contiguous byte range of a linear file.
type Extent struct {
	Off int64
	Len int64
}

// PlanSection computes, for an access to the given array section, the
// bricks touched and the byte segments within each. It supports all
// three file levels; for linear files the array is assumed stored
// row-major in the byte stream.
func (g *Geometry) PlanSection(sec Section) ([]BrickIO, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := sec.Validate(g.Dims); err != nil {
		return nil, err
	}
	switch g.Level {
	case LevelLinear:
		return g.planLinearSection(sec)
	case LevelMultidim:
		return g.planTiledSection(sec, multidimTiles{g})
	case LevelArray:
		return g.planTiledSection(sec, arrayChunks{g})
	}
	return nil, fmt.Errorf("stripe: unknown level %d", g.Level)
}

// PlanExtents computes the bricks touched by a raw byte access to a
// linear file. MemOff values index the concatenation of the extents in
// order.
func (g *Geometry) PlanExtents(exts []Extent) ([]BrickIO, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Level != LevelLinear {
		return nil, fmt.Errorf("stripe: PlanExtents requires a linear file, have %v", g.Level)
	}
	sz := g.Size()
	pl := newPlanner()
	mem := int64(0)
	for _, e := range exts {
		if e.Off < 0 || e.Len < 0 || e.Off+e.Len > sz {
			return nil, fmt.Errorf("stripe: extent [%d,%d) outside file of %d bytes", e.Off, e.Off+e.Len, sz)
		}
		g.splitRun(pl, e.Off, mem, e.Len)
		mem += e.Len
	}
	return pl.finish(), nil
}

// planLinearSection maps an array section onto a linear (row-major
// flattened) file: every run along the last dimension is a contiguous
// byte range, split across brick boundaries.
func (g *Geometry) planLinearSection(sec Section) ([]BrickIO, error) {
	pl := newPlanner()
	nd := len(g.Dims)
	runBytes := sec.Count[nd-1] * g.ElemSize
	mem := int64(0)
	abs := make([]int64, nd)
	err := iterOuter(sec.Count, func(pos []int64) error {
		for d := 0; d < nd; d++ {
			abs[d] = sec.Start[d] + pos[d]
		}
		fileOff := rowMajorOffset(abs, g.Dims) * g.ElemSize
		g.splitRun(pl, fileOff, mem, runBytes)
		mem += runBytes
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pl.finish(), nil
}

// splitRun splits the contiguous file range [fileOff, fileOff+n) across
// linear bricks and records the pieces.
func (g *Geometry) splitRun(pl *planner, fileOff, memOff, n int64) {
	for n > 0 {
		b := fileOff / g.BrickBytes
		inOff := fileOff - b*g.BrickBytes
		take := min64(n, g.BrickBytes-inOff)
		pl.add(int(b), Segment{BrickOff: inOff, MemOff: memOff, Len: take})
		fileOff += take
		memOff += take
		n -= take
	}
}

// tileSource abstracts "the file is covered by disjoint rectangular
// bricks": multidim tiles (uniform shape, full-tile storage layout) and
// array chunks (HPF blocks, actual-shape storage layout).
type tileSource interface {
	// overlapping returns the brick ids whose extent intersects the
	// section, in ascending order.
	overlapping(sec Section) []int
	// extent returns brick b's origin in the array and the shape used
	// for its in-brick storage layout, plus the shape actually stored
	// (clip of layout shape against the array); for multidim tiles
	// layout is the full tile shape even at edges.
	extent(b int) (origin, layout, clipped []int64)
}

type multidimTiles struct{ g *Geometry }

func (m multidimTiles) overlapping(sec Section) []int {
	g := m.g
	grid := g.tileGrid()
	nd := len(g.Dims)
	lo := make([]int64, nd)
	cnt := make([]int64, nd)
	for d := 0; d < nd; d++ {
		lo[d] = sec.Start[d] / g.Tile[d]
		hi := (sec.Start[d] + sec.Count[d] - 1) / g.Tile[d]
		cnt[d] = hi - lo[d] + 1
	}
	var ids []int
	pos := make([]int64, nd)
	for {
		id := int64(0)
		for d := 0; d < nd; d++ {
			id = id*grid[d] + lo[d] + pos[d]
		}
		ids = append(ids, int(id))
		d := nd - 1
		for d >= 0 {
			pos[d]++
			if pos[d] < cnt[d] {
				break
			}
			pos[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	sort.Ints(ids)
	return ids
}

func (m multidimTiles) extent(b int) (origin, layout, clipped []int64) {
	g := m.g
	grid := g.tileGrid()
	nd := len(g.Dims)
	coord := make([]int64, nd)
	rem := int64(b)
	for d := nd - 1; d >= 0; d-- {
		coord[d] = rem % grid[d]
		rem /= grid[d]
	}
	origin = make([]int64, nd)
	layout = make([]int64, nd)
	clipped = make([]int64, nd)
	for d := 0; d < nd; d++ {
		origin[d] = coord[d] * g.Tile[d]
		layout[d] = g.Tile[d]
		end := min64(origin[d]+g.Tile[d], g.Dims[d])
		clipped[d] = end - origin[d]
	}
	return origin, layout, clipped
}

type arrayChunks struct{ g *Geometry }

func (a arrayChunks) overlapping(sec Section) []int {
	g := a.g
	nd := len(g.Dims)
	lo := make([]int64, nd)
	cnt := make([]int64, nd)
	counts := make([]int64, nd)
	for d := 0; d < nd; d++ {
		counts[d] = g.chunkCount(d)
		blk := ceilDiv(g.Dims[d], counts[d])
		lo[d] = sec.Start[d] / blk
		hi := (sec.Start[d] + sec.Count[d] - 1) / blk
		cnt[d] = hi - lo[d] + 1
	}
	var ids []int
	pos := make([]int64, nd)
	for {
		id := int64(0)
		for d := 0; d < nd; d++ {
			id = id*counts[d] + lo[d] + pos[d]
		}
		ids = append(ids, int(id))
		d := nd - 1
		for d >= 0 {
			pos[d]++
			if pos[d] < cnt[d] {
				break
			}
			pos[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	sort.Ints(ids)
	return ids
}

func (a arrayChunks) extent(b int) (origin, layout, clipped []int64) {
	origin, shape := a.g.chunkExtent(b)
	return origin, shape, shape
}

// planTiledSection enumerates, for each brick overlapping the section,
// the contiguous runs (along the last dimension) of the intersection,
// with offsets in both brick storage space and the packed section
// buffer.
func (g *Geometry) planTiledSection(sec Section, src tileSource) ([]BrickIO, error) {
	nd := len(g.Dims)
	var out []BrickIO
	relBrick := make([]int64, nd)
	relMem := make([]int64, nd)
	for _, b := range src.overlapping(sec) {
		origin, layout, _ := src.extent(b)
		iStart, iCount, ok := intersect(sec.Start, sec.Count, origin, layoutClip(origin, layout, g.Dims))
		if !ok {
			continue
		}
		bio := BrickIO{Brick: b}
		runBytes := iCount[nd-1] * g.ElemSize
		err := iterOuter(iCount, func(pos []int64) error {
			for d := 0; d < nd; d++ {
				abs := iStart[d] + pos[d]
				relBrick[d] = abs - origin[d]
				relMem[d] = abs - sec.Start[d]
			}
			bio.Segs = append(bio.Segs, Segment{
				BrickOff: rowMajorOffset(relBrick, layout) * g.ElemSize,
				MemOff:   rowMajorOffset(relMem, sec.Count) * g.ElemSize,
				Len:      runBytes,
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Slice(bio.Segs, func(i, j int) bool { return bio.Segs[i].MemOff < bio.Segs[j].MemOff })
		bio.Segs = coalesce(bio.Segs)
		out = append(out, bio)
	}
	return out, nil
}

// coalesce merges segments that are contiguous in both brick storage
// and the packed buffer. Whole-chunk array accesses collapse to a
// single segment; tile rows spanning a full tile width merge likewise.
// Segs must be sorted by MemOff.
func coalesce(segs []Segment) []Segment {
	if len(segs) < 2 {
		return segs
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.MemOff == last.MemOff+last.Len && s.BrickOff == last.BrickOff+last.Len {
			last.Len += s.Len
			continue
		}
		out = append(out, s)
	}
	return out
}

// layoutClip clips a brick layout shape at origin against the array
// dims, yielding the count of valid elements per dimension.
func layoutClip(origin, layout, dims []int64) []int64 {
	out := make([]int64, len(layout))
	for d := range layout {
		out[d] = min64(layout[d], dims[d]-origin[d])
	}
	return out
}

// planner accumulates segments per brick id.
type planner struct {
	byBrick map[int]*BrickIO
}

func newPlanner() *planner { return &planner{byBrick: make(map[int]*BrickIO)} }

func (p *planner) add(brick int, s Segment) {
	b, ok := p.byBrick[brick]
	if !ok {
		b = &BrickIO{Brick: brick}
		p.byBrick[brick] = b
	}
	b.Segs = append(b.Segs, s)
}

func (p *planner) finish() []BrickIO {
	out := make([]BrickIO, 0, len(p.byBrick))
	for _, b := range p.byBrick {
		sort.Slice(b.Segs, func(i, j int) bool { return b.Segs[i].MemOff < b.Segs[j].MemOff })
		b.Segs = coalesce(b.Segs)
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Brick < out[j].Brick })
	return out
}
