package gossip

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Magic is the first byte of a gossip connection. The I/O server's
// accept loop sniffs it alongside the v1 (0xD9) and v2 (0xDA) wire
// magics and hands matching connections to the gossip node, so the
// health plane rides the existing data port.
const Magic = 0xDB

// maxWireMessage bounds one gob-encoded gossip message on the wire;
// anything larger is a protocol violation and the connection is
// dropped.
const maxWireMessage = 1 << 20

// MemNet is a deterministic in-process transport for simulation:
// exchanges are synchronous calls into the target node, and an
// optional Fail hook injects partitions. It backs the 100+ node
// convergence tests and the chaos gossip sweeps.
type MemNet struct {
	mu    sync.Mutex
	nodes map[string]*Node
	fail  func(from, to string) bool
	sends int64
}

// NewMemNet returns an empty in-memory network.
func NewMemNet() *MemNet {
	return &MemNet{nodes: make(map[string]*Node)}
}

// Add registers a node under its own ID.
func (m *MemNet) Add(n *Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[n.Self()] = n
}

// SetFail installs (or clears, with nil) the partition hook: an
// exchange from→to for which fail returns true errors without
// reaching the target.
func (m *MemNet) SetFail(fail func(from, to string) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fail = fail
}

// Sends returns how many exchanges were attempted through this
// network.
func (m *MemNet) Sends() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sends
}

// Exchange implements Transport by calling the target node directly.
func (m *MemNet) Exchange(_ context.Context, to string, msg *Message) (*Message, error) {
	m.mu.Lock()
	m.sends++
	fail := m.fail
	target := m.nodes[to]
	m.mu.Unlock()
	if fail != nil && msg != nil && fail(msg.From, to) {
		return nil, fmt.Errorf("gossip: partitioned from %s", to)
	}
	if target == nil {
		return nil, fmt.Errorf("gossip: no such node %s", to)
	}
	return target.HandleMessage(msg), nil
}

// NetTransport carries gossip exchanges over TCP: one connection per
// exchange, opened with the gossip magic byte so the server's accept
// loop routes it, then a gob-encoded Message each way. Dial is
// pluggable so internal/fault's injector can storm the gossip plane
// in chaos tests.
type NetTransport struct {
	// Dial opens connections; nil uses net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Timeout bounds one whole exchange (default 2s).
	Timeout time.Duration
}

// Exchange implements Transport over a fresh connection to the
// peer's data port.
func (t *NetTransport) Exchange(ctx context.Context, to string, msg *Message) (*Message, error) {
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	dial := t.Dial
	if dial == nil {
		var d net.Dialer
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, to)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if _, err := conn.Write([]byte{Magic}); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(conn).Encode(msg); err != nil {
		return nil, err
	}
	if msg.Kind != KindPull {
		// Wait for the receiver to process and close: pushes are
		// fire-and-forget in spirit, but the close-wait makes a
		// dropped push surface as an error and keeps tests
		// deterministic.
		var one [1]byte
		conn.Read(one[:])
		return nil, nil
	}
	var reply Message
	if err := gob.NewDecoder(io.LimitReader(conn, maxWireMessage)).Decode(&reply); err != nil {
		return nil, err
	}
	if len(reply.Recs) > maxRecordsPerMessage || len(reply.IDs) > maxReplyIDs {
		return nil, fmt.Errorf("gossip: oversized reply from %s", to)
	}
	return &reply, nil
}

// ServeConn handles one inbound gossip connection on the server
// side: the magic byte has already been consumed by the accept
// loop's sniffer; what remains is one gob-encoded Message, answered
// with the node's reply when the message is a pull.
func ServeConn(conn net.Conn, n *Node) error {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var msg Message
	if err := gob.NewDecoder(io.LimitReader(conn, maxWireMessage)).Decode(&msg); err != nil {
		return fmt.Errorf("gossip: decode: %w", err)
	}
	if len(msg.Recs) > maxRecordsPerMessage || len(msg.IDs) > maxReplyIDs {
		return fmt.Errorf("gossip: oversized message from %s", msg.From)
	}
	reply := n.HandleMessage(&msg)
	if reply == nil {
		return nil
	}
	if err := gob.NewEncoder(conn).Encode(reply); err != nil {
		return fmt.Errorf("gossip: encode reply: %w", err)
	}
	return nil
}
