package gossip

import (
	"hash/fnv"
	"math/rand"
)

// sampler is the Brahms min-wise independent sampler: L2 slots, each
// with its own random hash key, each retaining the ID that minimizes
// its keyed hash over everything the node has ever heard. Because an
// adversary cannot predict the keys, flooding the view with sybil
// IDs does not displace honest IDs from the sample — the property
// that keeps the gamma fraction of the view honest.
type sampler struct {
	slots []samplerSlot
}

type samplerSlot struct {
	key uint64
	id  string
	min uint64
}

// newSampler builds an n-slot sampler keyed from rnd.
func newSampler(rnd *rand.Rand, n int) *sampler {
	if n < 1 {
		n = 1
	}
	s := &sampler{slots: make([]samplerSlot, n)}
	for i := range s.slots {
		s.slots[i].key = rnd.Uint64()
	}
	return s
}

// update offers id to every slot.
func (s *sampler) update(id string) {
	if id == "" {
		return
	}
	for i := range s.slots {
		h := keyedHash(s.slots[i].key, id)
		if s.slots[i].id == "" || h < s.slots[i].min {
			s.slots[i].id = id
			s.slots[i].min = h
		}
	}
}

// sample returns the distinct IDs currently held, in slot order.
func (s *sampler) sample() []string {
	out := make([]string, 0, len(s.slots))
	seen := make(map[string]struct{}, len(s.slots))
	for i := range s.slots {
		id := s.slots[i].id
		if id == "" {
			continue
		}
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// invalidate evicts id from any slot holding it (used when a member
// is confirmed dead, so the sampler re-fills from live IDs).
func (s *sampler) invalidate(id string) {
	for i := range s.slots {
		if s.slots[i].id == id {
			s.slots[i].id = ""
			s.slots[i].min = 0
		}
	}
}

// keyedHash is FNV-1a over the slot key then the ID bytes.
func keyedHash(key uint64, id string) uint64 {
	h := fnv.New64a()
	var kb [8]byte
	for i := 0; i < 8; i++ {
		kb[i] = byte(key >> (8 * i))
	}
	h.Write(kb[:])
	h.Write([]byte(id))
	return h.Sum64()
}
