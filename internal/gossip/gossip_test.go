package gossip

import (
	"context"
	"fmt"
	"testing"

	"dpfs/internal/obs"
)

// buildNet builds n nodes on a MemNet bootstrapped as a ring (each
// node seeds only its successor), the worst-case sparse topology
// from the Brahms paper's TestLargeNetwork.
func buildNet(t testing.TB, n int, params Params) (*MemNet, []*Node) {
	t.Helper()
	net := NewMemNet()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("10.0.0.%d:7800", i)
		next := fmt.Sprintf("10.0.0.%d:7800", (i+1)%n)
		node, err := NewNode(Config{
			Self:      Record{Addr: addr, Name: fmt.Sprintf("io%d", i)},
			Seeds:     []string{next},
			Seed:      int64(1000 + i),
			Params:    params,
			Transport: net,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Add(node)
		nodes = append(nodes, node)
	}
	return net, nodes
}

// stepAll runs one synchronous gossip round across every node in a
// fixed order — fully deterministic given the per-node seeds.
func stepAll(nodes []*Node) {
	for _, n := range nodes {
		n.Step(context.Background())
	}
}

// TestLargeNetworkConvergence is the acceptance gate from ISSUE 10 /
// ROADMAP item 2: 100+ simulated servers bootstrapped as a ring must
// converge to full membership knowledge within bounded rounds.
func TestLargeNetworkConvergence(t *testing.T) {
	const n = 120
	const maxRounds = 30
	_, nodes := buildNet(t, n, DefaultParams(n))

	full := -1
	for round := 1; round <= maxRounds; round++ {
		stepAll(nodes)
		complete := 0
		for _, node := range nodes {
			if len(node.Snapshot()) == n {
				complete++
			}
		}
		if complete == n {
			full = round
			break
		}
	}
	if full < 0 {
		t.Fatalf("membership did not converge to %d nodes in %d rounds", n, maxRounds)
	}
	t.Logf("%d nodes converged to full membership in %d rounds", n, full)

	// Every node's view must stay usable: non-empty and fanout-sized.
	p := DefaultParams(n)
	for i, node := range nodes {
		v := node.ViewIDs()
		if len(v) == 0 {
			t.Fatalf("node %d has an empty view after convergence", i)
		}
		if len(v) > 2*p.L1 {
			t.Fatalf("node %d view grew past the fanout bound: %d members", i, len(v))
		}
	}
}

// TestFailureDetectionAndRefutation kills one node, requires every
// survivor to learn the suspicion (with multiple distinct observers)
// within bounded rounds, then heals the partition and requires the
// refutation — an incarnation bump — to clear the suspicion
// everywhere.
func TestFailureDetectionAndRefutation(t *testing.T) {
	const n = 60
	net, nodes := buildNet(t, n, DefaultParams(n))
	for i := 0; i < 15; i++ {
		stepAll(nodes)
	}

	victim := nodes[7].Self()
	net.SetFail(func(from, to string) bool { return to == victim || from == victim })

	live := func() []*Node {
		out := make([]*Node, 0, n-1)
		for _, node := range nodes {
			if node.Self() != victim {
				out = append(out, node)
			}
		}
		return out
	}()

	detected := -1
	for round := 1; round <= 30; round++ {
		stepAll(live)
		know := 0
		for _, node := range live {
			if rec, ok := node.Lookup(victim); ok && rec.State == StateSuspect {
				know++
			}
		}
		if know == len(live) {
			detected = round
			break
		}
	}
	if detected < 0 {
		t.Fatalf("suspicion of %s did not reach all %d survivors in 30 rounds", victim, len(live))
	}
	t.Logf("all %d survivors suspect the victim after %d rounds", len(live), detected)

	// The observer sets must show independent witnesses, not one
	// rumor echoed around: the two-witness escalation in repair
	// depends on this.
	multi := 0
	for _, node := range live {
		if len(node.SuspectedBy(victim)) >= 2 {
			multi++
		}
	}
	if multi < len(live)/2 {
		t.Fatalf("only %d/%d survivors saw >=2 distinct observers", multi, len(live))
	}

	// Heal: the victim refutes by bumping its incarnation, and the
	// refutation must out-gossip the suspicion.
	net.SetFail(nil)
	cleared := -1
	for round := 1; round <= 40; round++ {
		stepAll(nodes)
		clean := 0
		for _, node := range live {
			if rec, ok := node.Lookup(victim); ok && rec.State == StateAlive && rec.Inc > 0 {
				clean++
			}
		}
		if clean == len(live) {
			cleared = round
			break
		}
	}
	if cleared < 0 {
		t.Fatalf("refutation did not clear the suspicion in 40 rounds")
	}
	t.Logf("refutation cleared the suspicion after %d rounds", cleared)
	if rec, _ := nodes[7].Lookup(victim); rec.Inc == 0 {
		t.Fatal("victim never bumped its incarnation")
	}
}

// TestMergeRules pins the record-merge lattice: incarnation wins,
// severity breaks ties, observer sets union, generation marks never
// regress.
func TestMergeRules(t *testing.T) {
	net := NewMemNet()
	node, err := NewNode(Config{
		Self:      Record{Addr: "a:1", Name: "a"},
		Seed:      1,
		Transport: net,
	})
	if err != nil {
		t.Fatal(err)
	}

	peer := "b:1"
	node.Inject(Record{Addr: peer, Name: "b", Inc: 3, State: StateAlive, Gen: 10})
	if rec, _ := node.Lookup(peer); rec.State != StateAlive || rec.Gen != 10 {
		t.Fatalf("seed record = %+v", rec)
	}

	// Lower incarnation loses outright.
	node.Inject(Record{Addr: peer, Inc: 2, State: StateDead})
	if rec, _ := node.Lookup(peer); rec.State != StateAlive {
		t.Fatalf("stale incarnation overrode: %+v", rec)
	}

	// Same incarnation: suspect beats alive; observers accumulate.
	node.Inject(Record{Addr: peer, Name: "b", Inc: 3, State: StateSuspect, Observers: []string{"w1"}})
	node.Inject(Record{Addr: peer, Name: "b", Inc: 3, State: StateSuspect, Observers: []string{"w2"}})
	rec, _ := node.Lookup(peer)
	if rec.State != StateSuspect || len(rec.Observers) != 2 {
		t.Fatalf("observer union = %+v", rec)
	}
	if got := node.SuspectedBy(peer); len(got) != 2 {
		t.Fatalf("SuspectedBy = %v", got)
	}

	// Same incarnation: alive does not beat suspect.
	node.Inject(Record{Addr: peer, Inc: 3, State: StateAlive})
	if rec, _ := node.Lookup(peer); rec.State != StateSuspect {
		t.Fatalf("alive overrode suspect at equal incarnation: %+v", rec)
	}

	// Higher incarnation beats suspect — and keeps the gen HWM.
	node.Inject(Record{Addr: peer, Name: "b", Inc: 4, State: StateAlive, Gen: 5})
	rec, _ = node.Lookup(peer)
	if rec.State != StateAlive || rec.Inc != 4 {
		t.Fatalf("refutation did not land: %+v", rec)
	}
	if rec.Gen != 10 {
		t.Fatalf("generation high-water mark regressed to %d", rec.Gen)
	}

	// Dead wins at equal incarnation and evicts from the view.
	node.Inject(Record{Addr: peer, Inc: 4, State: StateDead})
	if rec, _ := node.Lookup(peer); rec.State != StateDead {
		t.Fatalf("dead did not win: %+v", rec)
	}
	for _, id := range node.ViewIDs() {
		if id == peer {
			t.Fatal("dead member still in the view")
		}
	}
}

// TestSelfRefutation pins the SWIM self-defense rule: merging a
// suspicion about ourselves bumps our incarnation past it.
func TestSelfRefutation(t *testing.T) {
	reg := obs.NewRegistry()
	node, err := NewNode(Config{
		Self:      Record{Addr: "a:1", Name: "a"},
		Seed:      1,
		Transport: NewMemNet(),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Inject(Record{Addr: "a:1", Inc: 0, State: StateSuspect, Observers: []string{"b:1"}})
	rec, _ := node.Lookup("a:1")
	if rec.State != StateAlive || rec.Inc != 1 {
		t.Fatalf("no refutation: %+v", rec)
	}
	if got := reg.Counter(MetricRefutations).Value(); got != 1 {
		t.Fatalf("refutations counter = %d", got)
	}
	// A suspicion at the new incarnation is refuted again.
	node.Inject(Record{Addr: "a:1", Inc: 5, State: StateDead})
	if rec, _ := node.Lookup("a:1"); rec.State != StateAlive || rec.Inc != 6 {
		t.Fatalf("no re-refutation: %+v", rec)
	}
}

// TestUpdateSelfDraining pins that a draining transition bumps the
// incarnation, so the announcement beats circulating alive records.
func TestUpdateSelfDraining(t *testing.T) {
	node, err := NewNode(Config{
		Self:      Record{Addr: "a:1", Name: "a"},
		Seed:      1,
		Transport: NewMemNet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := node.Version()
	node.UpdateSelf(func(r *Record) { r.Gen = 42 })
	if rec, _ := node.Lookup("a:1"); rec.Gen != 42 || rec.Inc != 0 {
		t.Fatalf("gen update = %+v", rec)
	}
	if node.Version() == v0 {
		t.Fatal("version did not advance on self update")
	}
	node.UpdateSelf(func(r *Record) { r.State = StateDraining })
	rec, _ := node.Lookup("a:1")
	if rec.State != StateDraining || rec.Inc != 1 {
		t.Fatalf("draining transition = %+v", rec)
	}
}

// TestGossipEvents pins that suspicion and membership discovery
// reach the cluster event log.
func TestGossipEvents(t *testing.T) {
	events := obs.NewEventLog(64)
	net := NewMemNet()
	node, err := NewNode(Config{
		Self:      Record{Addr: "a:1", Name: "a"},
		Seeds:     []string{"gone:1"},
		Seed:      1,
		Transport: net,
		Events:    events,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Add(node)
	node.Step(context.Background()) // exchanges with gone:1 fail
	if got := events.ByType(obs.EventGossipSuspect); len(got) == 0 {
		t.Fatal("no gossip_suspect event after failed exchange")
	}
	node.Inject(Record{Addr: "new:1", Name: "new", State: StateAlive})
	if got := events.ByType(obs.EventGossipMemberJoin); len(got) == 0 {
		t.Fatal("no gossip_member_join event for discovered member")
	}
}

// TestSamplerUniformity sanity-checks the min-wise sampler: offered
// many IDs, the sample holds distinct survivors and invalidation
// evicts.
func TestSamplerUniformity(t *testing.T) {
	node, err := NewNode(Config{
		Self:      Record{Addr: "a:1"},
		Seed:      7,
		Transport: NewMemNet(),
		Params:    Params{Alpha: 0.45, Beta: 0.45, Gamma: 0.1, L1: 4, L2: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		node.sampler.update(fmt.Sprintf("s%d:1", i))
	}
	got := node.sampler.sample()
	if len(got) == 0 {
		t.Fatal("empty sample after 200 offers")
	}
	seen := make(map[string]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %s in sample", id)
		}
		seen[id] = true
	}
	victim := got[0]
	node.sampler.invalidate(victim)
	for _, id := range node.sampler.sample() {
		if id == victim {
			t.Fatal("invalidated id survived in the sample")
		}
	}
}
