package gossip

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Server-table deltas are the client-facing face of the gossip
// plane: the I/O server appends a compact encoding of recently
// changed records to RPC responses it was sending anyway, so a
// client learns about address changes, drains and confirmed deaths
// at RPC latency instead of waiting out its metadata-cache TTL.
//
// The encoding is deliberately tiny and self-contained (no gob):
//
//	4-byte magic "DPgd" | u8 version | u16 count | entries
//	entry: u8 state | i64 inc | i64 gen | u16 addrLen | addr |
//	       u16 nameLen | name
//
// all little-endian. Decoding is strict — any truncation, length
// overrun or unknown state yields an error — but callers treat a
// failed decode as "no delta": a damaged piggyback must never fail
// the RPC that carried it (the same best-effort contract as the v1
// trace trailer).

// DeltaMagic is the 4-byte marker opening an encoded delta. The v1
// response footer also ends with it so the decoder can find the
// boundary from the tail of the frame.
var DeltaMagic = [4]byte{'D', 'P', 'g', 'd'}

// deltaVersion is the current delta encoding version.
const deltaVersion = 1

// Caps on one encoded delta: a piggyback must stay a small fraction
// of the response it rides.
const (
	// MaxDeltaRecords bounds how many records one delta may carry.
	MaxDeltaRecords = 256
	// MaxDeltaBytes bounds the encoded size of one delta.
	MaxDeltaBytes = 64 << 10
)

// deltaStates maps Record.State to its wire byte and back.
var deltaStates = map[string]byte{
	StateAlive:    0,
	StateDraining: 1,
	StateSuspect:  2,
	StateDead:     3,
}

var deltaStateNames = [...]string{StateAlive, StateDraining, StateSuspect, StateDead}

// EncodeDelta serializes records into the delta wire format.
// Observer sets and health counters are dropped — clients need only
// identity, state, incarnation and the generation mark. Records
// beyond MaxDeltaRecords or bytes beyond MaxDeltaBytes are truncated
// (non-alive records are kept preferentially).
func EncodeDelta(recs []Record) []byte {
	if len(recs) == 0 {
		return nil
	}
	if len(recs) > MaxDeltaRecords {
		sorted := append([]Record(nil), recs...)
		sort.SliceStable(sorted, func(i, j int) bool {
			return prec(sorted[i].State) > prec(sorted[j].State)
		})
		recs = sorted[:MaxDeltaRecords]
	}
	buf := make([]byte, 0, 64*len(recs)+8)
	buf = append(buf, DeltaMagic[:]...)
	buf = append(buf, deltaVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // count patched below
	count := 0
	for _, r := range recs {
		st, ok := deltaStates[r.State]
		if !ok || r.Addr == "" || len(r.Addr) > 0xFFFF || len(r.Name) > 0xFFFF {
			continue
		}
		entry := make([]byte, 0, 24+len(r.Addr)+len(r.Name))
		entry = append(entry, st)
		entry = binary.LittleEndian.AppendUint64(entry, uint64(r.Inc))
		entry = binary.LittleEndian.AppendUint64(entry, uint64(r.Gen))
		entry = binary.LittleEndian.AppendUint16(entry, uint16(len(r.Addr)))
		entry = append(entry, r.Addr...)
		entry = binary.LittleEndian.AppendUint16(entry, uint16(len(r.Name)))
		entry = append(entry, r.Name...)
		if len(buf)+len(entry) > MaxDeltaBytes {
			break
		}
		buf = append(buf, entry...)
		count++
	}
	if count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint16(buf[5:7], uint16(count))
	return buf
}

// DecodeDelta parses a delta produced by EncodeDelta. Any deviation
// — short buffer, bad magic or version, count overrun, unknown state
// — returns an error; callers must treat that as "no delta", never
// as an RPC failure.
func DecodeDelta(data []byte) ([]Record, error) {
	if len(data) < 7 {
		return nil, fmt.Errorf("gossip: delta too short (%d bytes)", len(data))
	}
	if len(data) > MaxDeltaBytes {
		return nil, fmt.Errorf("gossip: delta oversized (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != DeltaMagic {
		return nil, fmt.Errorf("gossip: bad delta magic")
	}
	if data[4] != deltaVersion {
		return nil, fmt.Errorf("gossip: unknown delta version %d", data[4])
	}
	count := int(binary.LittleEndian.Uint16(data[5:7]))
	if count == 0 || count > MaxDeltaRecords {
		return nil, fmt.Errorf("gossip: delta record count %d out of range", count)
	}
	p := 7
	recs := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		if p+21 > len(data) {
			return nil, fmt.Errorf("gossip: delta truncated in entry %d", i)
		}
		st := data[p]
		if int(st) >= len(deltaStateNames) {
			return nil, fmt.Errorf("gossip: delta entry %d has unknown state %d", i, st)
		}
		inc := int64(binary.LittleEndian.Uint64(data[p+1 : p+9]))
		gen := int64(binary.LittleEndian.Uint64(data[p+9 : p+17]))
		alen := int(binary.LittleEndian.Uint16(data[p+17 : p+19]))
		p += 19
		if p+alen+2 > len(data) {
			return nil, fmt.Errorf("gossip: delta entry %d address overruns buffer", i)
		}
		addr := string(data[p : p+alen])
		p += alen
		nlen := int(binary.LittleEndian.Uint16(data[p : p+2]))
		p += 2
		if p+nlen > len(data) {
			return nil, fmt.Errorf("gossip: delta entry %d name overruns buffer", i)
		}
		name := string(data[p : p+nlen])
		p += nlen
		if addr == "" {
			return nil, fmt.Errorf("gossip: delta entry %d has empty address", i)
		}
		if name == "" {
			name = addr
		}
		recs = append(recs, Record{Addr: addr, Name: name, Inc: inc, Gen: gen, State: deltaStateNames[st]})
	}
	if p != len(data) {
		return nil, fmt.Errorf("gossip: %d trailing bytes after delta", len(data)-p)
	}
	return recs, nil
}

// DeltaSince encodes every record that changed after table version
// v, returning the encoded delta (nil when nothing changed or
// nothing encodable) and the version the caller should remember.
// The I/O server calls this per connection, so each client conn sees
// each change exactly once.
func (n *Node) DeltaSince(v uint64) ([]byte, uint64) {
	n.mu.Lock()
	cur := n.version
	if cur == v {
		n.mu.Unlock()
		return nil, cur
	}
	changed := make([]Record, 0, 8)
	for _, addr := range sortedTableKeys(n.table) {
		e := n.table[addr]
		if e.ver > v {
			changed = append(changed, cloneRecord(e.rec))
		}
	}
	n.mu.Unlock()
	if len(changed) == 0 {
		return nil, cur
	}
	return EncodeDelta(changed), cur
}
