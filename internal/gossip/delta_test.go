package gossip

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
)

func newLocalListener(t testing.TB) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

func sampleRecords() []Record {
	return []Record{
		{Addr: "10.0.0.1:7801", Name: "io0", Inc: 2, State: StateAlive, Gen: 17},
		{Addr: "10.0.0.2:7801", Name: "io1", Inc: 0, State: StateSuspect, Gen: 3,
			Observers: []string{"10.0.0.1:7801"}},
		{Addr: "10.0.0.3:7801", Name: "io2", Inc: 5, State: StateDead},
		{Addr: "10.0.0.4:7801", Name: "io3", Inc: 1, State: StateDraining, Gen: 9},
	}
}

// TestDeltaRoundtrip pins the encoding: identity, state, incarnation
// and gen survive; observer sets and health counters are dropped by
// design.
func TestDeltaRoundtrip(t *testing.T) {
	in := sampleRecords()
	data := EncodeDelta(in)
	if data == nil {
		t.Fatal("empty encoding")
	}
	out, err := DecodeDelta(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		want := Record{Addr: in[i].Addr, Name: in[i].Name, Inc: in[i].Inc,
			Gen: in[i].Gen, State: in[i].State}
		if !reflect.DeepEqual(out[i], want) {
			t.Fatalf("record %d = %+v, want %+v", i, out[i], want)
		}
	}
}

// TestDeltaDecodeRobustness is the satellite-task table: truncated,
// corrupt and oversized deltas must all yield a decode error (which
// the carrying RPC treats as "no delta") and never a panic.
func TestDeltaDecodeRobustness(t *testing.T) {
	valid := EncodeDelta(sampleRecords())

	t.Run("every prefix truncation", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := DecodeDelta(valid[:cut]); err == nil {
				t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(valid))
			}
		}
	})

	mutants := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"unknown version", func(b []byte) []byte { b[4] = 99; return b }},
		{"zero count", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[5:7], 0)
			return b
		}},
		{"count beyond cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[5:7], MaxDeltaRecords+1)
			return b
		}},
		{"count beyond body", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[5:7], 200)
			return b
		}},
		{"unknown state byte", func(b []byte) []byte { b[7] = 0xEE; return b }},
		{"address length overruns", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[7+17:], 0xFFFF)
			return b
		}},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAB) }},
		{"oversized buffer", func(b []byte) []byte {
			return append(b, make([]byte, MaxDeltaBytes)...)
		}},
	}
	for _, tc := range mutants {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			if _, err := DecodeDelta(b); err == nil {
				t.Fatal("corrupt delta decoded without error")
			}
		})
	}

	t.Run("empty input", func(t *testing.T) {
		if _, err := DecodeDelta(nil); err == nil {
			t.Fatal("nil delta decoded without error")
		}
	})
}

// TestDeltaEncodeSkipsUnencodable pins that records without an
// address or with an unknown state are skipped, and an all-skipped
// batch encodes to nil.
func TestDeltaEncodeSkipsUnencodable(t *testing.T) {
	if got := EncodeDelta([]Record{{Addr: "", State: StateAlive}, {Addr: "a:1", State: "zombie"}}); got != nil {
		t.Fatalf("unencodable records produced %d bytes", len(got))
	}
	if got := EncodeDelta(nil); got != nil {
		t.Fatal("nil records produced a delta")
	}
}

// TestDeltaTruncationPrefersSevere pins that when a delta overflows
// the record cap, non-alive records survive the cut.
func TestDeltaTruncationPrefersSevere(t *testing.T) {
	recs := make([]Record, 0, MaxDeltaRecords+10)
	for i := 0; i < MaxDeltaRecords+9; i++ {
		recs = append(recs, Record{Addr: addrN(i), Name: "x", State: StateAlive})
	}
	recs = append(recs, Record{Addr: "dead:1", Name: "dead", Inc: 1, State: StateDead})
	out, err := DecodeDelta(EncodeDelta(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != MaxDeltaRecords {
		t.Fatalf("got %d records, want cap %d", len(out), MaxDeltaRecords)
	}
	if out[0].State != StateDead || out[0].Addr != "dead:1" {
		t.Fatalf("severe record lost in truncation; first = %+v", out[0])
	}
}

func addrN(i int) string {
	return "10.0." + string(rune('a'+i%26)) + ":7801"
}

// TestDeltaSince pins the per-connection versioning: a delta covers
// exactly the records that changed after the caller's version, and
// an unchanged table yields nil.
func TestDeltaSince(t *testing.T) {
	node, err := NewNode(Config{
		Self:      Record{Addr: "a:1", Name: "a"},
		Seed:      1,
		Transport: NewMemNet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	data, v1 := node.DeltaSince(0)
	recs, err := DecodeDelta(data)
	if err != nil || len(recs) != 1 || recs[0].Addr != "a:1" {
		t.Fatalf("initial delta = %v (%v)", recs, err)
	}
	if data, v := node.DeltaSince(v1); data != nil || v != v1 {
		t.Fatalf("unchanged table produced a delta (%d bytes)", len(data))
	}
	node.Inject(Record{Addr: "b:1", Name: "b", State: StateSuspect, Inc: 0,
		Observers: []string{"c:1"}})
	data, v2 := node.DeltaSince(v1)
	if v2 == v1 {
		t.Fatal("version did not advance")
	}
	recs, err = DecodeDelta(data)
	if err != nil || len(recs) != 1 || recs[0].Addr != "b:1" || recs[0].State != StateSuspect {
		t.Fatalf("incremental delta = %v (%v)", recs, err)
	}
}

// TestNetTransportRoundtrip runs a real push/pull over TCP through
// ServeConn, as the server's accept loop would after sniffing the
// gossip magic.
func TestNetTransportRoundtrip(t *testing.T) {
	node, err := NewNode(Config{
		Self:      Record{Addr: "srv:1", Name: "srv"},
		Seed:      1,
		Transport: NewMemNet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := newLocalListener(t)
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			one := make([]byte, 1)
			if _, err := conn.Read(one); err != nil || one[0] != Magic {
				conn.Close()
				continue
			}
			go ServeConn(conn, node)
		}
	}()

	tr := &NetTransport{}
	reply, err := tr.Exchange(context.Background(), lis.Addr().String(), &Message{
		Kind: KindPull, From: "cli:1",
		Recs: []Record{{Addr: "cli:1", Name: "cli", State: StateAlive}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply == nil || reply.From != "srv:1" {
		t.Fatalf("reply = %+v", reply)
	}
	found := false
	for _, r := range reply.Recs {
		if r.Addr == "srv:1" {
			found = true
		}
	}
	if !found {
		t.Fatal("pull reply missing the server's own record")
	}
	// The pull also delivered the client's record to the server.
	if rec, ok := node.Lookup("cli:1"); !ok || rec.Name != "cli" {
		t.Fatalf("server did not merge the pull's records: %+v", rec)
	}
	// A push gets no reply but still merges.
	if _, err := tr.Exchange(context.Background(), lis.Addr().String(), &Message{
		Kind: KindPush, From: "cli:2",
		Recs: []Record{{Addr: "cli:2", State: StateDraining, Inc: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := node.Lookup("cli:2"); !ok || rec.State != StateDraining {
		t.Fatalf("push did not merge: %+v", rec)
	}
}

// FuzzDecodeDelta throws arbitrary bytes at the delta decoder: it
// must never panic, and anything it accepts must re-encode and
// decode to the same records.
func FuzzDecodeDelta(f *testing.F) {
	f.Add(EncodeDelta(sampleRecords()))
	f.Add(EncodeDelta([]Record{{Addr: "a:1", State: StateAlive}}))
	f.Add([]byte("DPgd\x01\x00\x00"))
	f.Add(bytes.Repeat([]byte{0xDB}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeDelta(data)
		if err != nil {
			return
		}
		again, err := DecodeDelta(EncodeDelta(recs))
		if err != nil {
			t.Fatalf("re-encoded accepted delta rejected: %v", err)
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", recs, again)
		}
	})
}
