// Package gossip implements decentralized membership and failure
// detection for the DPFS I/O servers (DESIGN.md §14, ROADMAP item 2).
//
// Every dpfs-server runs a Node: a seeded, deterministic Brahms-style
// push/pull core (View + min-wise Sampler + alpha/beta/gamma Params)
// whose node ID is the server's advertised address. Each round a node
// pushes its identity to a few peers, pulls views and health tables
// from a few more, and rebuilds its view from a weighted mix of
// pushed IDs, pulled IDs and the sampler — the construction from
// "Brahms: Byzantine Resilient Random Membership Sampling" that keeps
// views connected and near-uniform even when some peers misbehave.
//
// Riding on the membership exchange is a SWIM-style health table:
// incarnation-numbered records (alive / suspect / dead / draining)
// carrying each server's generation high-water mark and health
// counters. Higher incarnations win; at equal incarnations the more
// severe state wins and suspect records union their observer sets. A
// node that hears itself suspected bumps its own incarnation and
// re-announces — the classic refutation rule that lets a merely
// slow or partially partitioned server clear its name without any
// central coordinator.
//
// The gossip table is the second witness for repair's dead
// escalation (internal/repair), the source of the server-table
// deltas piggybacked on RPC responses (internal/server, internal/
// core), and the health plane that keeps failure detection alive
// while dpfs-meta is unreachable.
package gossip

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dpfs/internal/obs"
)

// States a health record can announce. Severity ascends: a record in
// a later state wins a merge against an earlier state at the same
// incarnation.
const (
	// StateAlive is the default healthy state.
	StateAlive = "alive"
	// StateDraining marks a server that announced a graceful
	// shutdown; it still answers but should be avoided for new work.
	StateDraining = "draining"
	// StateSuspect marks a server that one or more gossip observers
	// failed to exchange with. Suspicion is reversible: the suspect
	// refutes by bumping its incarnation.
	StateSuspect = "suspect"
	// StateDead marks a server confirmed dead. Gossip never produces
	// dead on its own authority — only the repair prober's two-witness
	// escalation injects it (DESIGN.md §14).
	StateDead = "dead"
)

// maxObservers bounds the observer set carried by a suspect record;
// beyond this many distinct witnesses the set carries no extra
// signal.
const maxObservers = 16

// Record is one server's entry in the gossip health table. Records
// are ordered by incarnation: a server re-announcing itself bumps
// Inc, which beats every record from its previous life.
type Record struct {
	// Addr is the node ID: the server's advertised dial address.
	Addr string
	// Name is the server's catalog name (may equal Addr).
	Name string
	// Inc is the record's incarnation number.
	Inc int64
	// State is one of StateAlive, StateDraining, StateSuspect,
	// StateDead.
	State string
	// Gen is the highest subfile generation the server has observed —
	// the high-water mark repair planning uses when the catalog is
	// unreachable.
	Gen int64
	// DiskErrors and CopyPeerErrors snapshot the server's health
	// counters at announcement time.
	DiskErrors     int64
	CopyPeerErrors int64
	// Observers lists the distinct node IDs that independently
	// suspected this server (bounded, sorted). Only meaningful for
	// StateSuspect.
	Observers []string
}

// prec ranks states for same-incarnation merges.
func prec(state string) int {
	switch state {
	case StateDraining:
		return 1
	case StateSuspect:
		return 2
	case StateDead:
		return 3
	default:
		return 0
	}
}

// Params are the Brahms mixing weights and fanouts. Alpha, Beta and
// Gamma are the view fractions rebuilt from pushed IDs, pulled IDs
// and the sampler; L1 is the push/pull fanout and L2 the sampler
// size.
type Params struct {
	Alpha, Beta, Gamma float64
	L1, L2             int
}

// DefaultParams returns the canonical Brahms weights (0.45, 0.45,
// 0.1) with fanouts scaled to n^(1/3) for an expected network of n
// nodes, following the paper's sizing.
func DefaultParams(n int) Params {
	if n < 2 {
		n = 2
	}
	l := int(math.Round(math.Pow(float64(n), 1.0/3)))
	if l < 2 {
		l = 2
	}
	return Params{Alpha: 0.45, Beta: 0.45, Gamma: 0.1, L1: l, L2: l * 2}
}

// Message kinds exchanged between nodes.
const (
	// KindPush announces the sender's ID and a few records; no reply.
	KindPush = 1
	// KindPull requests the receiver's view and health table.
	KindPull = 2
	// KindReply answers a pull.
	KindReply = 3
)

// Message is one gossip exchange payload, gob-encoded on the wire
// transport and passed by value on the in-memory one.
type Message struct {
	// Kind is KindPush, KindPull or KindReply.
	Kind int
	// From is the sender's node ID.
	From string
	// IDs carries view member IDs (pull replies).
	IDs []string
	// Recs carries health records: the sender's own record plus a
	// bounded slice of its table.
	Recs []Record
}

// Transport delivers one gossip exchange. Push messages ignore the
// reply; pull messages expect a KindReply. Implementations must be
// safe for concurrent use.
type Transport interface {
	Exchange(ctx context.Context, to string, msg *Message) (*Message, error)
}

// Metric names registered by a Node (frozen in
// scripts/metric_names.txt; obslint gates renames).
const (
	// MetricRounds counts completed gossip rounds.
	MetricRounds = "gossip_rounds_total"
	// MetricExchanges counts attempted push/pull exchanges.
	MetricExchanges = "gossip_exchanges_total"
	// MetricExchangeErrors counts exchanges that failed at the
	// transport level (each marks the peer suspect).
	MetricExchangeErrors = "gossip_exchange_errors_total"
	// MetricRefutations counts incarnation bumps made to refute a
	// suspicion about ourselves.
	MetricRefutations = "gossip_refutations_total"
	// MetricMerges counts records that changed the local table.
	MetricMerges = "gossip_records_merged_total"
	// MetricMembers gauges the table size (all known servers).
	MetricMembers = "gossip_members"
	// MetricSuspects gauges how many table entries are currently
	// suspect or dead.
	MetricSuspects = "gossip_suspects"
)

// entry is a table record plus the local version stamp used for
// delta extraction.
type entry struct {
	rec Record
	ver uint64
}

// Config configures a Node.
type Config struct {
	// Self seeds the node's own record; Addr is required and becomes
	// the node ID.
	Self Record
	// Seeds are peer addresses used to bootstrap the view.
	Seeds []string
	// Seed seeds the node's deterministic RNG.
	Seed int64
	// Params are the Brahms weights; zero value selects
	// DefaultParams(64).
	Params Params
	// Transport delivers exchanges. Required.
	Transport Transport
	// Metrics and Events are optional observability sinks.
	Metrics *obs.Registry
	Events  *obs.EventLog
	// SelfUpdate, when non-nil, is applied to the node's own record
	// at the start of every Step — the hook a server uses to feed its
	// generation high-water mark, health counters and draining state
	// into the gossip plane without polling.
	SelfUpdate func(*Record)
}

// Node is one gossip participant. All methods are safe for
// concurrent use; Step and HandleMessage may be driven manually for
// deterministic simulation or via Run for background operation.
type Node struct {
	mu      sync.Mutex
	rnd     *rand.Rand
	tr      Transport
	params  Params
	self    string
	view    map[string]struct{}
	sampler *sampler
	table   map[string]*entry
	version uint64
	pushed  []string
	reg     *obs.Registry
	events  *obs.EventLog
	rounds  int64

	selfUpdate func(*Record)
}

// NewNode builds a gossip node from cfg. The view starts from
// cfg.Seeds (self excluded); the health table starts with the self
// record at incarnation cfg.Self.Inc in StateAlive unless the record
// says otherwise.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self.Addr == "" {
		return nil, fmt.Errorf("gossip: Config.Self.Addr is required")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("gossip: Config.Transport is required")
	}
	p := cfg.Params
	if p.L1 <= 0 {
		p = DefaultParams(64)
	}
	if cfg.Self.State == "" {
		cfg.Self.State = StateAlive
	}
	if cfg.Self.Name == "" {
		cfg.Self.Name = cfg.Self.Addr
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	n := &Node{
		rnd:     rnd,
		tr:      cfg.Transport,
		params:  p,
		self:    cfg.Self.Addr,
		view:    make(map[string]struct{}),
		sampler: newSampler(rnd, p.L2),
		table:   make(map[string]*entry),
		reg:     cfg.Metrics,
		events:  cfg.Events,

		selfUpdate: cfg.SelfUpdate,
	}
	n.version++
	n.table[n.self] = &entry{rec: cfg.Self, ver: n.version}
	for _, s := range cfg.Seeds {
		if s != "" && s != n.self {
			n.view[s] = struct{}{}
			n.sampler.update(s)
		}
	}
	n.updateGauges()
	return n, nil
}

// Self returns the node's ID (its advertised address).
func (n *Node) Self() string { return n.self }

// Version returns the table version: a counter bumped on every table
// mutation, used to cut per-connection deltas.
func (n *Node) Version() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// Rounds returns how many gossip rounds this node has completed.
func (n *Node) Rounds() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rounds
}

// Snapshot returns a copy of the health table sorted by address.
func (n *Node) Snapshot() []Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Record, 0, len(n.table))
	for _, e := range n.table {
		out = append(out, cloneRecord(e.rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Lookup returns the table record for addr, if any.
func (n *Node) Lookup(addr string) (Record, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.table[addr]
	if !ok {
		return Record{}, false
	}
	return cloneRecord(e.rec), true
}

// ViewIDs returns the current view members, sorted.
func (n *Node) ViewIDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return sortedKeys(n.view)
}

// UpdateSelf mutates the node's own record under the table lock —
// the server feeds its generation high-water mark, health counters
// and draining transitions through this. Entering or leaving
// StateDraining bumps the incarnation so the announcement beats any
// circulating record from the previous state.
func (n *Node) UpdateSelf(fn func(*Record)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.updateSelfLocked(fn)
}

func (n *Node) updateSelfLocked(fn func(*Record)) {
	e := n.table[n.self]
	before := cloneRecord(e.rec)
	fn(&e.rec)
	e.rec.Addr = n.self // the ID is immutable
	if e.rec.State != before.State {
		e.rec.Inc = before.Inc + 1
	}
	if !recordsEqual(e.rec, before) {
		n.version++
		e.ver = n.version
	}
	n.updateGauges()
}

// Inject merges an externally produced record — the hook the repair
// prober uses to spread a two-witness-confirmed dead verdict (or a
// catalog-sourced membership seed) through the gossip plane.
func (n *Node) Inject(rec Record) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mergeLocked(rec)
	n.updateGauges()
}

// SuspectedBy returns the distinct observers currently suspecting
// addr (nil when the record is not suspect).
func (n *Node) SuspectedBy(addr string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.table[addr]
	if !ok || e.rec.State != StateSuspect {
		return nil
	}
	return append([]string(nil), e.rec.Observers...)
}

// Step runs one gossip round: push to L1 view members, pull from L1
// view members, then rebuild the view from the alpha/beta/gamma mix
// of pushed IDs, pulled IDs and sampler output. Exchange failures
// mark the peer suspect with this node as the observer. Step is
// synchronous and deterministic given a deterministic Transport.
func (n *Node) Step(ctx context.Context) {
	n.mu.Lock()
	if n.selfUpdate != nil {
		n.updateSelfLocked(n.selfUpdate)
	}
	pushTargets := n.pickLocked(n.params.L1)
	pullTargets := n.pickLocked(n.params.L1)
	pushMsg := &Message{Kind: KindPush, From: n.self, Recs: n.pushRecsLocked()}
	pullMsg := &Message{Kind: KindPull, From: n.self, Recs: []Record{cloneRecord(n.table[n.self].rec)}}
	n.mu.Unlock()

	var pulledIDs []string
	var pulledRecs []Record
	failed := make(map[string]struct{})
	for _, to := range pushTargets {
		n.count(MetricExchanges)
		if _, err := n.tr.Exchange(ctx, to, pushMsg); err != nil {
			n.count(MetricExchangeErrors)
			failed[to] = struct{}{}
		}
	}
	for _, to := range pullTargets {
		n.count(MetricExchanges)
		reply, err := n.tr.Exchange(ctx, to, pullMsg)
		if err != nil || reply == nil {
			if err != nil {
				n.count(MetricExchangeErrors)
			}
			failed[to] = struct{}{}
			continue
		}
		pulledIDs = append(pulledIDs, reply.IDs...)
		pulledRecs = append(pulledRecs, reply.Recs...)
	}

	n.mu.Lock()
	for addr := range failed {
		n.suspectLocked(addr)
	}
	for _, rec := range pulledRecs {
		n.mergeLocked(rec)
	}
	pushedIDs := n.pushed
	n.pushed = nil
	n.rebuildViewLocked(pushedIDs, pulledIDs)
	n.rounds++
	n.updateGauges()
	n.mu.Unlock()
	n.count(MetricRounds)
}

// Run drives Step at the given interval (with up to 25% deterministic
// jitter per tick so a fleet started together does not synchronize)
// until ctx is cancelled.
func (n *Node) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		n.mu.Lock()
		jitter := time.Duration(n.rnd.Int63n(int64(interval)/4 + 1))
		n.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval + jitter):
		}
		n.Step(ctx)
	}
}

// HandleMessage merges an incoming message into the node and returns
// the reply (nil for pushes). Transports call this on the receiving
// side.
func (n *Node) HandleMessage(msg *Message) *Message {
	if msg == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, rec := range msg.Recs {
		n.mergeLocked(rec)
	}
	switch msg.Kind {
	case KindPush:
		if msg.From != "" && msg.From != n.self {
			if len(n.pushed) < maxPushBuffer {
				n.pushed = append(n.pushed, msg.From)
			}
			n.sampler.update(msg.From)
		}
		n.updateGauges()
		return nil
	case KindPull:
		ids := sortedKeys(n.view)
		if len(ids) > maxReplyIDs {
			ids = ids[:maxReplyIDs]
		}
		reply := &Message{Kind: KindReply, From: n.self, IDs: ids, Recs: n.tableRecsLocked(maxRecordsPerMessage)}
		n.updateGauges()
		return reply
	default:
		n.updateGauges()
		return nil
	}
}

// Bounds on message contents: gossip messages must stay small no
// matter how large the cluster grows, so tables are sampled rather
// than shipped whole past these caps.
const (
	maxRecordsPerMessage = 512
	maxReplyIDs          = 256
	maxPushBuffer        = 1024
)

// pushRecsLocked selects the records accompanying a push: always
// self, plus every non-alive record (rumors about trouble spread
// fastest) up to the message cap.
func (n *Node) pushRecsLocked() []Record {
	recs := []Record{cloneRecord(n.table[n.self].rec)}
	for _, addr := range sortedTableKeys(n.table) {
		if len(recs) >= maxRecordsPerMessage {
			break
		}
		e := n.table[addr]
		if addr != n.self && e.rec.State != StateAlive {
			recs = append(recs, cloneRecord(e.rec))
		}
	}
	return recs
}

// tableRecsLocked returns up to max records for a pull reply: all of
// them when the table fits, otherwise self + non-alive + a random
// sample of the rest.
func (n *Node) tableRecsLocked(max int) []Record {
	keys := sortedTableKeys(n.table)
	if len(keys) <= max {
		recs := make([]Record, 0, len(keys))
		for _, k := range keys {
			recs = append(recs, cloneRecord(n.table[k].rec))
		}
		return recs
	}
	recs := []Record{cloneRecord(n.table[n.self].rec)}
	var alive []string
	for _, k := range keys {
		if k == n.self {
			continue
		}
		if n.table[k].rec.State != StateAlive {
			if len(recs) < max {
				recs = append(recs, cloneRecord(n.table[k].rec))
			}
		} else {
			alive = append(alive, k)
		}
	}
	n.rnd.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, k := range alive {
		if len(recs) >= max {
			break
		}
		recs = append(recs, cloneRecord(n.table[k].rec))
	}
	return recs
}

// pickLocked samples up to k distinct view members, skipping members
// known dead.
func (n *Node) pickLocked(k int) []string {
	keys := sortedKeys(n.view)
	live := keys[:0]
	for _, id := range keys {
		if e, ok := n.table[id]; ok && e.rec.State == StateDead {
			continue
		}
		live = append(live, id)
	}
	n.rnd.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if len(live) > k {
		live = live[:k]
	}
	return append([]string(nil), live...)
}

// rebuildViewLocked applies the Brahms view update: when the push
// buffer is not flooded (≤ L1 pushers — the attack-resistance guard)
// and the round produced any input, the new view is αL1 pushed IDs +
// βL1 pulled IDs + γL1 sampler IDs, deduplicated, self and dead
// excluded.
func (n *Node) rebuildViewLocked(pushedIDs, pulledIDs []string) {
	for _, id := range pulledIDs {
		if id != n.self {
			n.sampler.update(id)
		}
	}
	if len(pushedIDs) == 0 && len(pulledIDs) == 0 {
		return
	}
	if len(pushedIDs) > n.params.L1 {
		// Flooded with pushes: an adversary (or a partition heal
		// stampede) could capture the view; keep the old one.
		return
	}
	next := make(map[string]struct{}, n.params.L1)
	add := func(ids []string, want int) {
		ids = dedupe(ids)
		n.rnd.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		took := 0
		for _, id := range ids {
			if took >= want {
				break
			}
			if id == n.self || id == "" {
				continue
			}
			if e, ok := n.table[id]; ok && e.rec.State == StateDead {
				continue
			}
			if _, dup := next[id]; dup {
				continue
			}
			next[id] = struct{}{}
			took++
		}
	}
	l1 := float64(n.params.L1)
	add(pushedIDs, int(math.Ceil(n.params.Alpha*l1)))
	add(pulledIDs, int(math.Ceil(n.params.Beta*l1)))
	add(n.sampler.sample(), int(math.Ceil(n.params.Gamma*l1)))
	// Top up from the old view so a quiet round cannot shrink
	// connectivity below L1.
	if len(next) < n.params.L1 {
		add(sortedKeys(n.view), n.params.L1-len(next))
	}
	if len(next) > 0 {
		n.view = next
	}
}

// suspectLocked records a failed exchange with addr: the record
// moves to StateSuspect at its current incarnation with this node
// added to the observer set.
func (n *Node) suspectLocked(addr string) {
	if addr == n.self {
		return
	}
	e, ok := n.table[addr]
	if !ok {
		e = &entry{rec: Record{Addr: addr, Name: addr, State: StateAlive}}
		n.table[addr] = e
	}
	if prec(e.rec.State) >= prec(StateDead) {
		return
	}
	changed := false
	if e.rec.State != StateSuspect {
		e.rec.State = StateSuspect
		e.rec.Observers = nil
		changed = true
	}
	if addObserver(&e.rec, n.self) {
		changed = true
	}
	if changed {
		n.version++
		e.ver = n.version
		n.count(MetricMerges)
		n.emit(obs.EventGossipSuspect, map[string]string{
			"server": e.rec.Name, "addr": addr, "observers": fmt.Sprint(len(e.rec.Observers)),
		})
	}
}

// mergeLocked folds one remote record into the table, applying the
// incarnation and severity rules plus self-refutation. Reports
// whether the table changed.
func (n *Node) mergeLocked(rec Record) bool {
	if rec.Addr == "" {
		return false
	}
	if rec.State == "" {
		rec.State = StateAlive
	}
	if rec.Addr == n.self {
		return n.mergeSelfLocked(rec)
	}
	e, ok := n.table[rec.Addr]
	if !ok {
		e = &entry{rec: cloneRecord(rec)}
		n.table[rec.Addr] = e
		n.version++
		e.ver = n.version
		n.sampler.update(rec.Addr)
		n.count(MetricMerges)
		n.emit(obs.EventGossipMemberJoin, map[string]string{
			"server": rec.Name, "addr": rec.Addr, "state": rec.State,
		})
		return true
	}
	cur := &e.rec
	changed := false
	switch {
	case rec.Inc > cur.Inc:
		wasSuspect := cur.State == StateSuspect || cur.State == StateDead
		gen := cur.Gen // the generation high-water mark never regresses
		*cur = cloneRecord(rec)
		if gen > cur.Gen {
			cur.Gen = gen
		}
		changed = true
		if (cur.State == StateSuspect || cur.State == StateDead) && !wasSuspect {
			n.emit(obs.EventGossipSuspect, map[string]string{
				"server": cur.Name, "addr": cur.Addr, "state": cur.State,
				"observers": fmt.Sprint(len(cur.Observers)),
			})
		}
	case rec.Inc == cur.Inc:
		if prec(rec.State) > prec(cur.State) {
			gen := cur.Gen
			obsSet := cur.Observers
			*cur = cloneRecord(rec)
			if gen > cur.Gen {
				cur.Gen = gen
			}
			if cur.State == StateSuspect {
				for _, o := range obsSet {
					addObserver(cur, o)
				}
			}
			changed = true
			if cur.State == StateSuspect || cur.State == StateDead {
				n.emit(obs.EventGossipSuspect, map[string]string{
					"server": cur.Name, "addr": cur.Addr, "state": cur.State,
					"observers": fmt.Sprint(len(cur.Observers)),
				})
			}
		} else if prec(rec.State) == prec(cur.State) && cur.State == StateSuspect {
			for _, o := range rec.Observers {
				if addObserver(cur, o) {
					changed = true
				}
			}
		}
		if rec.Gen > cur.Gen {
			cur.Gen = rec.Gen
			changed = true
		}
	default:
		// Stale incarnation: ignore.
	}
	if changed {
		n.version++
		e.ver = n.version
		n.count(MetricMerges)
		if cur.State == StateDead {
			n.sampler.invalidate(cur.Addr)
			delete(n.view, cur.Addr)
		}
	}
	return changed
}

// mergeSelfLocked applies the refutation rule: a record claiming we
// are suspect or dead at our current (or a later) incarnation is
// answered by bumping our incarnation and re-announcing our actual
// state.
func (n *Node) mergeSelfLocked(rec Record) bool {
	e := n.table[n.self]
	if rec.Inc < e.rec.Inc {
		return false
	}
	if prec(rec.State) <= prec(e.rec.State) {
		// Nothing to refute: the rumor is no worse than what we
		// already announce.
		return false
	}
	e.rec.Inc = rec.Inc + 1
	e.rec.Observers = nil
	n.version++
	e.ver = n.version
	n.count(MetricRefutations)
	return true
}

// count bumps a node counter if metrics are configured.
func (n *Node) count(name string) {
	if n.reg != nil {
		n.reg.Counter(name).Inc()
	}
}

// emit writes a gossip event if an event log is configured.
func (n *Node) emit(typ string, fields map[string]string) {
	if n.events != nil {
		n.events.Emit(typ, "gossip", fields)
	}
}

// updateGauges refreshes the membership gauges; callers hold n.mu.
func (n *Node) updateGauges() {
	if n.reg == nil {
		return
	}
	suspects := 0
	for _, e := range n.table {
		if e.rec.State == StateSuspect || e.rec.State == StateDead {
			suspects++
		}
	}
	n.reg.Gauge(MetricMembers).Set(int64(len(n.table)))
	n.reg.Gauge(MetricSuspects).Set(int64(suspects))
}

// addObserver inserts o into rec.Observers keeping the set sorted,
// distinct and bounded; reports whether the set grew.
func addObserver(rec *Record, o string) bool {
	if o == "" || len(rec.Observers) >= maxObservers {
		return false
	}
	i := sort.SearchStrings(rec.Observers, o)
	if i < len(rec.Observers) && rec.Observers[i] == o {
		return false
	}
	rec.Observers = append(rec.Observers, "")
	copy(rec.Observers[i+1:], rec.Observers[i:])
	rec.Observers[i] = o
	return true
}

// recordsEqual compares two records field by field (Record holds a
// slice, so == does not apply).
func recordsEqual(a, b Record) bool {
	if a.Addr != b.Addr || a.Name != b.Name || a.Inc != b.Inc || a.State != b.State ||
		a.Gen != b.Gen || a.DiskErrors != b.DiskErrors || a.CopyPeerErrors != b.CopyPeerErrors ||
		len(a.Observers) != len(b.Observers) {
		return false
	}
	for i := range a.Observers {
		if a.Observers[i] != b.Observers[i] {
			return false
		}
	}
	return true
}

// cloneRecord deep-copies a record (the observer slice is shared
// state otherwise).
func cloneRecord(r Record) Record {
	out := r
	if r.Observers != nil {
		out.Observers = append([]string(nil), r.Observers...)
	}
	return out
}

// sortedKeys returns the keys of a string set, sorted (map iteration
// order would break seeded determinism).
func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedTableKeys is sortedKeys for the record table.
func sortedTableKeys(m map[string]*entry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// dedupe returns ids with duplicates and empty strings removed,
// preserving first-seen order.
func dedupe(ids []string) []string {
	seen := make(map[string]struct{}, len(ids))
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			continue
		}
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
