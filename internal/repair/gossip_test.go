package repair_test

import (
	"sync"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/gossip"
	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/repair"
)

// fakeGossip is a hand-driven GossipView: tests set exactly the health
// records the prober should see.
type fakeGossip struct {
	mu       sync.Mutex
	recs     map[string]gossip.Record // keyed by addr
	injected []gossip.Record
}

func newFakeGossip() *fakeGossip {
	return &fakeGossip{recs: make(map[string]gossip.Record)}
}

func (f *fakeGossip) set(rec gossip.Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recs[rec.Addr] = rec
}

func (f *fakeGossip) Snapshot() []gossip.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]gossip.Record, 0, len(f.recs))
	for _, r := range f.recs {
		out = append(out, r)
	}
	return out
}

func (f *fakeGossip) Lookup(addr string) (gossip.Record, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.recs[addr]
	return r, ok
}

func (f *fakeGossip) Inject(rec gossip.Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recs[rec.Addr] = rec
	f.injected = append(f.injected, rec)
}

func (f *fakeGossip) injectedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.injected)
}

// TestTwoWitnessEscalation pins the two-witness rule: with a gossip
// source configured, a server the central probe cannot reach is held
// at suspect — however many probes miss — until the gossip plane
// corroborates with enough distinct observers. Once it does, the next
// probe escalates to dead and feeds the death back into the mesh.
func TestTwoWitnessEscalation(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(2), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.IOServers[1].Close(); err != nil {
		t.Fatal(err)
	}
	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	deadName, deadAddr := c.Specs[1].Name, c.IOServers[1].Addr()

	fg := newFakeGossip()
	// Gossip still believes the server is alive: only one witness (the
	// central probe) sees the failure.
	fg.set(gossip.Record{Addr: deadAddr, Name: deadName, Inc: 1, State: gossip.StateAlive})

	reg := obs.NewRegistry()
	r := repair.New(cat, repair.Options{
		PingTimeout: 500 * time.Millisecond,
		Gossip:      fg,
		Witnesses:   2,
		Metrics:     reg,
	})
	defer r.Close()

	state := func() string {
		t.Helper()
		hs, err := cat.ServerHealth()
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hs {
			if h.Name == deadName {
				return h.State
			}
		}
		return ""
	}

	ctx := ctxT(t)
	for i := 0; i < 3; i++ {
		if _, err := r.Probe(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if st := state(); st != meta.StateSuspect {
		t.Fatalf("state after 3 uncorroborated probes = %q, want held at suspect", st)
	}
	if v := reg.Counter(repair.MetricDeadHolds).Value(); v == 0 {
		t.Fatal("withheld escalations were not counted")
	}
	if fg.injectedCount() != 0 {
		t.Fatal("prober injected a death gossip never confirmed")
	}

	// One gossip observer is still not enough for Witnesses=2.
	fg.set(gossip.Record{Addr: deadAddr, Name: deadName, Inc: 1,
		State: gossip.StateSuspect, Observers: []string{"10.0.0.1:1"}})
	if _, err := r.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	if st := state(); st != meta.StateSuspect {
		t.Fatalf("state with one observer = %q, want suspect", st)
	}

	// Two distinct observers corroborate: the next probe may bury it.
	fg.set(gossip.Record{Addr: deadAddr, Name: deadName, Inc: 1,
		State: gossip.StateSuspect, Observers: []string{"10.0.0.1:1", "10.0.0.2:1"}})
	if _, err := r.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	if st := state(); st != meta.StateDead {
		t.Fatalf("state with two observers = %q, want dead", st)
	}
	if fg.injectedCount() == 0 {
		t.Fatal("confirmed death was not injected back into the mesh")
	}
	if got := fg.injected[len(fg.injected)-1]; got.State != gossip.StateDead || got.Addr != deadAddr {
		t.Fatalf("injected record = %+v, want dead %s", got, deadAddr)
	}
}

// TestProbeMetaUnreachableFallback pins the meta-outage path: when the
// catalog cannot be reached, Probe answers from the gossip snapshot
// (emitting meta_unreachable) instead of erroring, and PlanOffline
// produces an aliveness plan that never declares a merely-partitioned
// server dead.
func TestProbeMetaUnreachableFallback(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(2), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}

	fg := newFakeGossip()
	fg.set(gossip.Record{Addr: c.IOServers[0].Addr(), Name: c.Specs[0].Name, State: gossip.StateAlive})
	fg.set(gossip.Record{Addr: c.IOServers[1].Addr(), Name: c.Specs[1].Name, State: gossip.StateDead})

	events := obs.NewEventLog(64)
	r := repair.New(cat, repair.Options{
		PingTimeout: 500 * time.Millisecond,
		Gossip:      fg,
		Events:      events,
	})
	defer r.Close()

	if err := c.StopMetaShard(0); err != nil {
		t.Fatal(err)
	}
	alive, err := r.Probe(ctxT(t))
	if err != nil {
		t.Fatalf("probe with meta down: %v", err)
	}
	if !alive[c.Specs[0].Name] || alive[c.Specs[1].Name] {
		t.Fatalf("gossip-fallback alive = %v, want %s up and %s down", alive, c.Specs[0].Name, c.Specs[1].Name)
	}
	if evs := events.ByType(obs.EventMetaUnreachable); len(evs) == 0 {
		t.Fatal("meta outage emitted no meta_unreachable event")
	}

	// Offline plan: io1's record says dead but the server actually
	// answers pings (a partition healed, gossip not yet refuted) — the
	// two-witness plan keeps it alive. A server that is BOTH
	// gossip-dead and unreachable plans as down.
	plan, err := r.PlanOffline(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Alive[c.Specs[0].Name] || !plan.Alive[c.Specs[1].Name] {
		t.Fatalf("offline plan = %v, want both alive (io1 still answers pings)", plan.Alive)
	}
	if err := c.IOServers[1].Close(); err != nil {
		t.Fatal(err)
	}
	plan, err = r.PlanOffline(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Alive[c.Specs[0].Name] || plan.Alive[c.Specs[1].Name] {
		t.Fatalf("offline plan after kill = %v, want only %s alive", plan.Alive, c.Specs[0].Name)
	}
}
