// Package repair implements DPFS's online re-replication: it probes
// the registered I/O servers, records their health in the catalog's
// dpfs_server_health table, and rebuilds the replica sets of files
// whose bricks lost copies to dead servers.
//
// A repair run works per file, entirely through the existing
// generation scheme:
//
//  1. Every live server holding bricks of the file copies its slots to
//     a fresh generation (a local-bump OpCopy), arming the servers'
//     stale-generation check against the old distribution.
//  2. Lost brick replicas are re-created by pull OpCopy requests: each
//     chosen target server fetches the brick from a surviving replica
//     at the new generation and stores it at the end of its own slot
//     list.
//  3. The catalog's distribution rows are rewritten in one transaction
//     with the new replica lists and the new generation.
//  4. Best-effort cleanup OpCopy requests clear the superseded on-disk
//     generations.
//
// Old generations are deleted only after step 3: a crash anywhere
// before the catalog commit leaves the previous generation fully
// intact, so a re-run starts over with nothing lost. A copy on a dead
// server can never be resurrected — the new generation's subfile never
// existed there, so requests at the committed generation find no stale
// bytes even if the server returns.
//
// Repair is an administrative operation: it assumes no concurrent
// writers to the files it touches (readers fail over and re-open).
package repair

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"dpfs/internal/gossip"
	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
	"dpfs/internal/wire"
)

// Metric names recorded in Options.Metrics (when set).
const (
	// MetricFilesRepaired counts files whose replica sets were rebuilt.
	MetricFilesRepaired = "repair_files_repaired_total"
	// MetricBricksCopied counts brick replicas re-created on new
	// servers.
	MetricBricksCopied = "repair_bricks_copied_total"
	// MetricFilesFailed counts files a run could not repair.
	MetricFilesFailed = "repair_files_failed_total"
	// MetricDeadHolds counts dead escalations withheld because the
	// gossip plane had not independently confirmed the failure (the
	// two-witness rule of DESIGN.md §14).
	MetricDeadHolds = "repair_dead_holds_total"
)

// GossipView is the slice of a *gossip.Node the repair plane consumes:
// the second witness consulted before a server may be declared dead,
// and the membership snapshot used to keep assessing liveness when the
// metadata service itself is unreachable.
type GossipView interface {
	// Snapshot returns the node's full health table.
	Snapshot() []gossip.Record
	// Lookup returns the health record for one server address.
	Lookup(addr string) (gossip.Record, bool)
	// Inject merges a locally-derived record (the prober feeding a
	// two-witness-confirmed death back into the mesh).
	Inject(rec gossip.Record)
}

// Options tune a repair run.
type Options struct {
	// Dial overrides how servers are reached (fault injection, tests).
	Dial server.DialFunc
	// Retry tunes the copy traffic's per-RPC policy.
	Retry server.RetryPolicy
	// PingTimeout bounds each liveness probe (default 2s).
	PingTimeout time.Duration
	// CopyChunkBytes caps the payload of one OpCopy request; larger
	// brick sets split into several requests (default 32 MiB).
	CopyChunkBytes int64
	// Metrics, when non-nil, receives the repair counters.
	Metrics *obs.Registry
	// Events receives health escalations and the repair lifecycle
	// (plan, commit, cleanup) as structured cluster events. Nil uses
	// the process-default log.
	Events *obs.EventLog
	// WireV2 switches the copy-traffic clients to the tagged-frame
	// wire protocol (DESIGN.md §11). Default off.
	WireV2 bool
	// Gossip, when non-nil, arms the two-witness rule: a failed central
	// probe escalates a server to dead only if the gossip plane also
	// reports it suspect (with at least Witnesses distinct observers)
	// or dead. It also lets the prober keep assessing liveness from the
	// gossip snapshot when the metadata service is unreachable, and
	// receives confirmed deaths back via Inject. Nil restores
	// probe-only escalation.
	Gossip GossipView
	// Witnesses is how many distinct gossip observers must corroborate
	// a suspicion before the prober may escalate a probe-failed server
	// to dead (default 2). Only meaningful with Gossip set.
	Witnesses int
	// ProbeConcurrency caps how many liveness probes run at once in one
	// Probe pass (default 8) — the fan-out bound that keeps a probe of
	// a large cluster from opening every connection simultaneously.
	ProbeConcurrency int
	// Seed makes RunProber's interval jitter deterministic (tests,
	// chaos sweeps). The zero value is a valid seed.
	Seed int64
}

// FileRepair is one file's outcome in a repair run.
type FileRepair struct {
	Path string
	// LostReplicas is how many brick copies were on dead servers.
	LostReplicas int
	// CopiedBricks is how many replica copies were re-created.
	CopiedBricks int
	// NewGen is the generation the repaired distribution was committed
	// under (0 when nothing was changed).
	NewGen int64
	// Err is non-empty when the file could not be repaired.
	Err string
}

// Report summarizes a repair run.
type Report struct {
	// Alive maps every registered server to its probe result.
	Alive map[string]bool
	// Checked counts catalog files examined.
	Checked int
	// Intact counts files with every replica on a live server.
	Intact int
	// Repaired counts files whose distribution was rewritten.
	Repaired int
	// Failed counts files that could not be repaired.
	Failed int
	// Files holds per-file detail for every non-intact file.
	Files []FileRepair
}

// Runner executes repair runs against one catalog surface (a single
// catalog or a shard router).
type Runner struct {
	cat     meta.Router
	opts    Options
	clients map[string]*server.Client // addr -> copy-traffic client
}

// New builds a Runner. Close it to drop pooled server connections.
func New(cat meta.Router, opts Options) *Runner {
	if opts.PingTimeout <= 0 {
		opts.PingTimeout = 2 * time.Second
	}
	if opts.CopyChunkBytes <= 0 {
		opts.CopyChunkBytes = 32 << 20
	}
	if opts.Events == nil {
		opts.Events = obs.Events()
	}
	return &Runner{cat: cat, opts: opts, clients: make(map[string]*server.Client)}
}

// Close drops the runner's server connections.
func (r *Runner) Close() {
	for _, c := range r.clients {
		c.Close()
	}
	r.clients = make(map[string]*server.Client)
}

func (r *Runner) client(addr string) *server.Client {
	if c, ok := r.clients[addr]; ok {
		return c
	}
	c := server.NewClientWith(addr, server.ClientConfig{Dial: r.opts.Dial, Retry: r.opts.Retry, WireV2: r.opts.WireV2})
	r.clients[addr] = c
	return c
}

// ping checks one server's liveness with a bounded OpPing over a
// dedicated connection (no retries, no breaker: a probe must see the
// server as it is right now).
func (r *Runner) ping(ctx context.Context, addr string) error {
	ctx, cancel := context.WithTimeout(ctx, r.opts.PingTimeout)
	defer cancel()
	dial := r.opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	if err := wire.WriteRequest(conn, &wire.Request{Op: wire.OpPing}); err != nil {
		return err
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("ping: %s", resp.Err)
	}
	return nil
}

// pingAll probes every address concurrently, at most ProbeConcurrency
// at a time, and returns each probe's error in address order. The
// bound keeps a probe pass over a large cluster from opening every
// connection at the same instant.
func (r *Runner) pingAll(ctx context.Context, addrs []string) []error {
	conc := r.opts.ProbeConcurrency
	if conc <= 0 {
		conc = 8
	}
	errs := make([]error, len(addrs))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := range addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = r.ping(ctx, addrs[i])
		}(i)
	}
	wg.Wait()
	return errs
}

// deadConfirmed applies the two-witness rule: a probe-failed server
// already suspect may become dead only when the gossip plane
// independently agrees — its record is dead, or suspect with at least
// Witnesses distinct observers. With no gossip source the central
// probe remains the sole authority (the pre-gossip behaviour).
func (r *Runner) deadConfirmed(addr string) bool {
	g := r.opts.Gossip
	if g == nil {
		return true
	}
	rec, ok := g.Lookup(addr)
	if !ok {
		return false
	}
	switch rec.State {
	case gossip.StateDead:
		return true
	case gossip.StateSuspect:
		k := r.opts.Witnesses
		if k <= 0 {
			k = 2
		}
		return len(rec.Observers) >= k
	}
	return false
}

// Probe pings every registered server once (bounded fan-out) and
// records the outcome in the catalog's health table. A responding
// server becomes alive; a non-responding one escalates one step per
// probe (alive → suspect → dead), so a single missed probe never
// declares death — and with a gossip source configured, the final step
// additionally requires the mesh to corroborate (two-witness rule,
// DESIGN.md §14), so a server only the prober cannot reach is held at
// suspect instead of being falsely buried. Confirmed deaths are
// injected back into the gossip mesh. When the metadata service itself
// is unreachable, the probe falls back to the last gossip snapshot so
// liveness assessment survives a meta outage (the returned map then
// reflects gossip state and nothing is written to the catalog).
func (r *Runner) Probe(ctx context.Context) (map[string]bool, error) {
	infos, err := r.cat.Servers()
	if err != nil {
		if alive, ok := r.gossipAlive(); ok {
			r.opts.Events.Emit(obs.EventMetaUnreachable, "repair", map[string]string{
				"err": err.Error(),
			})
			return alive, nil
		}
		return nil, err
	}
	states := make(map[string]string)
	if rows, err := r.cat.ServerHealth(); err == nil {
		for _, h := range rows {
			states[h.Name] = h.State
		}
	}
	addrs := make([]string, len(infos))
	for i, si := range infos {
		addrs[i] = si.Addr
	}
	pings := r.pingAll(ctx, addrs)
	alive := make(map[string]bool, len(infos))
	for i, si := range infos {
		if pings[i] == nil {
			alive[si.Name] = true
			_ = r.cat.SetServerState(si.Name, meta.StateAlive)
			continue
		}
		alive[si.Name] = false
		next := meta.StateSuspect
		if states[si.Name] == meta.StateSuspect || states[si.Name] == meta.StateDead {
			if r.deadConfirmed(si.Addr) {
				next = meta.StateDead
			} else if r.opts.Metrics != nil {
				r.opts.Metrics.Counter(MetricDeadHolds).Inc()
			}
		}
		if next != states[si.Name] {
			from := states[si.Name]
			if from == "" {
				from = meta.StateAlive
			}
			r.opts.Events.Emit(obs.EventHealthEscalation, "repair", map[string]string{
				"server": si.Name,
				"from":   from,
				"to":     next,
			})
		}
		_ = r.cat.SetServerState(si.Name, next)
		if next == meta.StateDead && r.opts.Gossip != nil {
			if rec, ok := r.opts.Gossip.Lookup(si.Addr); ok {
				rec.State = gossip.StateDead
				// The mesh may only know this server by address (it
				// learned of it through a failed exchange); the prober
				// has the catalog name, so the verdict carries it.
				if rec.Name == "" || rec.Name == rec.Addr {
					rec.Name = si.Name
				}
				r.opts.Gossip.Inject(rec)
			}
		}
	}
	return alive, nil
}

// gossipAlive derives a liveness map from the gossip snapshot: alive
// and draining records count as up, suspect and dead as down. ok is
// false when no gossip source is configured or its table is empty.
func (r *Runner) gossipAlive() (map[string]bool, bool) {
	g := r.opts.Gossip
	if g == nil {
		return nil, false
	}
	recs := g.Snapshot()
	if len(recs) == 0 {
		return nil, false
	}
	alive := make(map[string]bool, len(recs))
	for _, rec := range recs {
		name := rec.Name
		if name == "" {
			name = rec.Addr
		}
		alive[name] = rec.State == gossip.StateAlive || rec.State == gossip.StateDraining
	}
	return alive, true
}

// PlanOffline assesses cluster liveness without the metadata service:
// the server set comes from the gossip snapshot, each server is probed
// directly (bounded fan-out), and a server counts as down only when
// BOTH the direct probe failed and gossip does not call it alive — the
// offline form of the two-witness rule, so a server merely partitioned
// from this prober is not planned into a repair. The report carries
// the aliveness assessment; file repair itself still needs the catalog
// and runs once the metadata service returns.
func (r *Runner) PlanOffline(ctx context.Context) (*Report, error) {
	g := r.opts.Gossip
	if g == nil {
		return nil, errors.New("repair: no gossip source to plan from")
	}
	recs := g.Snapshot()
	if len(recs) == 0 {
		return nil, errors.New("repair: gossip snapshot is empty")
	}
	addrs := make([]string, len(recs))
	for i := range recs {
		addrs[i] = recs[i].Addr
	}
	pings := r.pingAll(ctx, addrs)
	alive := make(map[string]bool, len(recs))
	for i, rec := range recs {
		name := rec.Name
		if name == "" {
			name = rec.Addr
		}
		gossipUp := rec.State == gossip.StateAlive || rec.State == gossip.StateDraining
		alive[name] = pings[i] == nil || gossipUp
	}
	return &Report{Alive: alive}, nil
}

// RunProber probes all servers every interval until ctx is done — the
// background health feed that turns unreachable servers suspect and
// then dead between repair runs. Each cycle sleeps the interval plus
// up to 25% deterministic jitter (Options.Seed), so several probers
// started together do not fire their probe fan-outs in lockstep.
func (r *Runner) RunProber(ctx context.Context, interval time.Duration) {
	rnd := rand.New(rand.NewSource(r.opts.Seed))
	for {
		d := interval
		if interval >= 4 {
			d += time.Duration(rnd.Int63n(int64(interval) / 4))
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
			_, _ = r.Probe(ctx)
		}
	}
}

// Run probes the servers and repairs every under-replicated file.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	alive, err := r.Probe(ctx)
	if err != nil {
		return nil, err
	}
	infos, err := r.cat.Servers()
	if err != nil {
		return nil, err
	}
	addrs := make(map[string]string, len(infos))
	for _, si := range infos {
		addrs[si.Name] = si.Addr
	}
	files, err := r.cat.Files()
	if err != nil {
		return nil, err
	}
	rep := &Report{Alive: alive}
	for _, path := range files {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		fr := r.repairFile(ctx, path, alive, addrs)
		rep.Checked++
		switch {
		case fr == nil:
			rep.Intact++
		case fr.Err != "":
			rep.Failed++
			rep.Files = append(rep.Files, *fr)
			if r.opts.Metrics != nil {
				r.opts.Metrics.Counter(MetricFilesFailed).Inc()
			}
		default:
			rep.Repaired++
			rep.Files = append(rep.Files, *fr)
			if r.opts.Metrics != nil {
				r.opts.Metrics.Counter(MetricFilesRepaired).Inc()
				r.opts.Metrics.Counter(MetricBricksCopied).Add(int64(fr.CopiedBricks))
			}
		}
	}
	return rep, nil
}

// copyOp is one planned re-replication: target pulls brick from src.
type copyOp struct {
	brick   int
	rank    int
	src     int // server index of the surviving copy
	srcSlot int64
	dst     int // server index of the new copy
	dstSlot int64
}

// repairFile rebuilds one file's replica set. It returns nil when the
// file is intact, or a FileRepair describing what was done (or why it
// failed).
func (r *Runner) repairFile(ctx context.Context, path string, alive map[string]bool, addrs map[string]string) *FileRepair {
	fi, rs, err := r.cat.LookupReplicated(path)
	if err != nil {
		return &FileRepair{Path: path, Err: err.Error()}
	}
	nb := fi.Geometry.NumBricks()
	nsrv := len(fi.Servers)
	live := make([]bool, nsrv)
	for i, name := range fi.Servers {
		live[i] = alive[name]
	}

	// Current per-server slot lists, rebuilt from the replica set so
	// retained bricks keep their slots.
	lists := make([][]stripe.ReplicaEntry, nsrv)
	for s := 0; s < nsrv; s++ {
		n := 0
		for b := 0; b < nb; b++ {
			if rs.SlotOn(b, s) >= 0 {
				n++
			}
		}
		lists[s] = make([]stripe.ReplicaEntry, n)
	}
	lost := 0
	for b := 0; b < nb; b++ {
		for k := 0; k < rs.Replicas(); k++ {
			s := rs.Servers[b][k]
			slot := rs.Local[b][k]
			lists[s][slot] = stripe.ReplicaEntry{Brick: b, Rank: k}
			if !live[s] {
				lost++
			}
		}
	}
	if lost == 0 {
		return nil
	}
	fr := &FileRepair{Path: path, LostReplicas: lost}

	// Plan first, copy second: a file that cannot be fully repaired is
	// left untouched.
	newLists := make([][]stripe.ReplicaEntry, nsrv)
	for s := 0; s < nsrv; s++ {
		if live[s] {
			newLists[s] = append([]stripe.ReplicaEntry(nil), lists[s]...)
		}
	}
	var ops []copyOp
	for b := 0; b < nb; b++ {
		// A surviving copy to pull from (lowest live rank).
		src := -1
		for k := 0; k < rs.Replicas(); k++ {
			if live[rs.Servers[b][k]] {
				src = rs.Servers[b][k]
				break
			}
		}
		for k := 0; k < rs.Replicas(); k++ {
			s := rs.Servers[b][k]
			if live[s] {
				continue
			}
			if src < 0 {
				fr.Err = fmt.Sprintf("brick %d: every replica is on a dead server", b)
				return fr
			}
			// Target: live server with the fewest bricks that does not
			// already hold this brick. The new copy inherits the dead
			// copy's rank and lands at the end of the target's list.
			dst := -1
			for t := 0; t < nsrv; t++ {
				if !live[t] || holdsBrick(newLists[t], b) {
					continue
				}
				if dst < 0 || len(newLists[t]) < len(newLists[dst]) {
					dst = t
				}
			}
			if dst < 0 {
				fr.Err = fmt.Sprintf("brick %d: no live server can take a new replica", b)
				return fr
			}
			newLists[dst] = append(newLists[dst], stripe.ReplicaEntry{Brick: b, Rank: k})
			ops = append(ops, copyOp{
				brick: b, rank: k,
				src: src, srcSlot: rs.SlotOn(b, src),
				dst: dst, dstSlot: int64(len(newLists[dst]) - 1),
			})
		}
	}

	newGen, err := r.cat.NextGeneration(fi.Path)
	if err != nil {
		fr.Err = err.Error()
		return fr
	}
	r.opts.Events.Emit(obs.EventRepairPlan, "repair", map[string]string{
		"path":    fi.Path,
		"lost":    fmt.Sprint(lost),
		"copies":  fmt.Sprint(len(ops)),
		"new_gen": fmt.Sprint(newGen),
	})

	// Step 1: every live server bumps its retained slots to newGen.
	g := &fi.Geometry
	slotB := g.SlotBytes()
	for s := 0; s < nsrv; s++ {
		if !live[s] || len(lists[s]) == 0 {
			continue
		}
		var pairs []wire.Extent
		var total int64
		flush := func() error {
			if len(pairs) == 0 {
				return nil
			}
			req := &wire.Request{
				Op: wire.OpCopy, Path: fi.Path, Gen: newGen,
				Extents: pairs,
				Data:    wire.FormatCopySource("", fi.Path, fi.Generation),
			}
			_, err := r.client(addrs[fi.Servers[s]]).Do(ctx, req)
			pairs, total = nil, 0
			return err
		}
		for slot, e := range lists[s] {
			blen := g.BrickBytesOf(e.Brick)
			off := int64(slot) * slotB
			pairs = append(pairs, wire.Extent{Off: off, Len: blen}, wire.Extent{Off: off, Len: blen})
			total += blen
			if total >= r.opts.CopyChunkBytes {
				if err := flush(); err != nil {
					fr.Err = fmt.Sprintf("bump %s: %v", fi.Servers[s], err)
					return fr
				}
			}
		}
		if err := flush(); err != nil {
			fr.Err = fmt.Sprintf("bump %s: %v", fi.Servers[s], err)
			return fr
		}
	}

	// Step 2: targets pull the lost bricks from surviving replicas at
	// the new generation.
	for _, op := range ops {
		blen := g.BrickBytesOf(op.brick)
		req := &wire.Request{
			Op: wire.OpCopy, Path: fi.Path, Gen: newGen,
			Extents: []wire.Extent{
				{Off: op.dstSlot * slotB, Len: blen},
				{Off: op.srcSlot * slotB, Len: blen},
			},
			Data: wire.FormatCopySource(addrs[fi.Servers[op.src]], fi.Path, newGen),
		}
		if _, err := r.client(addrs[fi.Servers[op.dst]]).Do(ctx, req); err != nil {
			fr.Err = fmt.Sprintf("copy brick %d to %s: %v", op.brick, fi.Servers[op.dst], err)
			return fr
		}
		fr.CopiedBricks++
	}

	// Step 3: commit the rewritten distribution. Dead servers keep a
	// row with an empty brick list, preserving the file's server-index
	// space.
	for s := 0; s < nsrv; s++ {
		if newLists[s] == nil {
			newLists[s] = []stripe.ReplicaEntry{}
		}
	}
	if err := r.cat.UpdateDistribution(fi.Path, fi.Servers, newLists, newGen); err != nil {
		fr.Err = fmt.Sprintf("commit: %v", err)
		return fr
	}
	fr.NewGen = newGen
	r.opts.Events.Emit(obs.EventRepairCommit, "repair", map[string]string{
		"path":    fi.Path,
		"copied":  fmt.Sprint(fr.CopiedBricks),
		"new_gen": fmt.Sprint(newGen),
	})

	// Step 4: best-effort cleanup of superseded generations, safe only
	// now that the catalog points at newGen.
	for s := 0; s < nsrv; s++ {
		if !live[s] || len(newLists[s]) == 0 {
			continue
		}
		req := &wire.Request{
			Op: wire.OpCopy, Path: fi.Path, Gen: newGen,
			Data: wire.FormatCopySource("", "", newGen),
		}
		_, _ = r.client(addrs[fi.Servers[s]]).Do(ctx, req)
	}
	r.opts.Events.Emit(obs.EventRepairCleanup, "repair", map[string]string{
		"path":    fi.Path,
		"new_gen": fmt.Sprint(newGen),
	})
	return fr
}

func holdsBrick(list []stripe.ReplicaEntry, brick int) bool {
	for _, e := range list {
		if e.Brick == brick {
			return true
		}
	}
	return false
}
