package repair_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/meta"
	"dpfs/internal/repair"
	"dpfs/internal/stripe"
)

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestProbeEscalation: a non-responding server walks alive -> suspect
// -> dead one step per missed probe, so a single missed probe never
// declares a server dead; a responding server stays alive.
func TestProbeEscalation(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(2), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.IOServers[1].Close(); err != nil {
		t.Fatal(err)
	}
	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	r := repair.New(cat, repair.Options{PingTimeout: 500 * time.Millisecond})
	defer r.Close()

	states := func() map[string]string {
		t.Helper()
		hs, err := cat.ServerHealth()
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]string{}
		for _, h := range hs {
			m[h.Name] = h.State
		}
		return m
	}

	alive, err := r.Probe(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !alive["io0"] || alive["io1"] {
		t.Fatalf("probe alive = %v, want io0 only", alive)
	}
	if st := states(); st["io0"] != meta.StateAlive || st["io1"] != meta.StateSuspect {
		t.Fatalf("after one probe: %v, want io0 alive, io1 suspect", st)
	}
	if _, err := r.Probe(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if st := states(); st["io1"] != meta.StateDead {
		t.Fatalf("after two probes: %v, want io1 dead", st)
	}
	if st := states(); st["io0"] != meta.StateAlive {
		t.Fatalf("responding server drifted to %q", st["io0"])
	}
}

// TestRepairRereplicates: an R=2 file loses one server's replicas and
// is rebuilt onto the survivors under a fresh generation; an R=1 file
// with bricks on the dead server is reported unrepairable and left
// untouched. A second run finds the R=2 file intact (idempotence).
func TestRepairRereplicates(t *testing.T) {
	const size = 16 * 4096
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxT(t)

	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	pattern := make([]byte, size)
	for i := range pattern {
		pattern[i] = byte(i*3 + 1)
	}
	for _, f := range []struct {
		path string
		rep  int
	}{{"/a.dat", 2}, {"/b.dat", 1}} {
		fh, err := fs.Create(f.path, 1, []int64{size}, core.Hint{
			Level: stripe.LevelLinear, BrickBytes: 4096, Replicas: f.rep,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fh.WriteAt(ctx, pattern, 0); err != nil {
			t.Fatal(err)
		}
		fh.Close()
	}
	fs.Close()

	if err := c.IOServers[3].Close(); err != nil {
		t.Fatal(err)
	}
	deadName := c.Specs[3].Name

	rep, err := c.Repair(ctx, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 || rep.Failed != 1 || rep.Checked != 2 {
		t.Fatalf("repair = %d repaired / %d failed / %d checked, want 1/1/2", rep.Repaired, rep.Failed, rep.Checked)
	}
	for _, fr := range rep.Files {
		switch fr.Path {
		case "/a.dat":
			if fr.Err != "" || fr.CopiedBricks == 0 {
				t.Fatalf("/a.dat: %+v, want copied bricks and no error", fr)
			}
		case "/b.dat":
			if !strings.Contains(fr.Err, "every replica is on a dead server") {
				t.Fatalf("/b.dat err = %q, want unrepairable", fr.Err)
			}
		}
	}

	// The repaired file is fully replicated on live servers and reads
	// back byte-identical with the dead server still down.
	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	fi, rs, err := cat.LookupReplicated("/a.dat")
	if err != nil {
		t.Fatal(err)
	}
	for b, reps := range rs.Servers {
		if len(reps) != 2 {
			t.Fatalf("brick %d: %d replicas, want 2", b, len(reps))
		}
		for _, s := range reps {
			if fi.Servers[s] == deadName {
				t.Fatalf("brick %d still on dead server", b)
			}
		}
	}
	fs2, err := c.NewFS(1, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	fh, err := fs2.Open("/a.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := fh.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if !bytes.Equal(got, pattern) {
		t.Fatal("repaired file diverges from the original bytes")
	}

	// Idempotence: a second pass repairs nothing new.
	rep2, err := c.Repair(ctx, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Repaired != 0 || rep2.Intact != 1 || rep2.Failed != 1 {
		t.Fatalf("second repair = %d repaired / %d intact / %d failed, want 0/1/1", rep2.Repaired, rep2.Intact, rep2.Failed)
	}
}
